"""Multi-core distributed matching with the process runtime.

The Section 4.3 protocol is embarrassingly parallel across sites, but
Python threads serialize pure-Python site evaluation on the GIL.  The
process runtime (``Cluster(backend="processes")``) hosts one site
worker per OS process behind a pluggable transport: queries, updates
and partial results cross the process boundary in version-stamped wire
form, cross-site fetches are request/reply through the coordinator
(batched per BFS layer), and the full protocol observation — result
set, per-site partials, every traffic counter — is byte-identical to
the in-process backends.

This example walks through:

1. one query on a process-backed cluster, checked against the
   centralized result and against an in-process cluster's observation;
2. the warmth guarantee — each worker process compiles its per-site
   CSR index once and keeps it across queries *and* live updates;
3. serving distributed queries through ``MatchService`` while
   centralized queries keep flowing on the same pool.
"""

from repro.core.strong import match
from repro.datasets import generate_graph
from repro.datasets.patterns import sample_pattern_from_data
from repro.distributed import (
    Cluster,
    bfs_partition,
    process_backend_available,
)
from repro.service import MatchService

SITES = 4


def observation(report):
    """The comparable protocol output of one run."""
    return (
        {sg.signature() for sg in report.result},
        dict(report.per_site_subgraphs),
        report.bus.units_by_kind(),
    )


def main() -> None:
    if not process_backend_available():
        print("process backend unavailable on this platform; nothing to show")
        return

    data = generate_graph(400, alpha=1.15, num_labels=12, seed=37)
    pattern = sample_pattern_from_data(data, 5, seed=41)
    assert pattern is not None
    assignment = bfs_partition(data, SITES)
    print(f"data graph: |V|={data.num_nodes}, |E|={data.num_edges}, "
          f"{SITES} sites (bfs partition)")

    # ------------------------------------------------------------------
    # 1. One query, three ways: centralized, in-process, processes.
    # ------------------------------------------------------------------
    centralized = {sg.signature() for sg in match(pattern, data)}
    with Cluster(data, assignment, SITES) as inproc_cluster, Cluster(
        data, assignment, SITES, backend="processes"
    ) as proc_cluster:
        inproc_report = inproc_cluster.run(pattern)
        proc_report = proc_cluster.run(pattern)
        print("result identical to centralized:",
              {sg.signature() for sg in proc_report.result} == centralized)
        print("observation identical to in-process backend:",
              observation(proc_report) == observation(inproc_report))
        kinds = proc_report.bus.units_by_kind()
        print(f"traffic: fetch={kinds.get('fetch', 0)} units "
              f"(the Sec. 4.3 accounted shipment), "
              f"query={kinds.get('query', 0)}, "
              f"result={kinds.get('result', 0)}")

        # --------------------------------------------------------------
        # 2. Warm worker processes: compile once, survive updates.
        # --------------------------------------------------------------
        proc_cluster.run(pattern)  # second query: indexes stay warm
        builds = [
            stats["index_builds"]
            for stats in proc_cluster.worker_stats().values()
        ]
        print("site indexes compiled once per worker process:",
              all(b == 1 for b in builds))
        nodes = list(data.nodes())
        for i in range(6):  # a live insertion stream, routed site by site
            proc_cluster.add_node(f"new{i}", "l0")
            proc_cluster.add_edge(f"new{i}", nodes[i])
        proc_cluster.run(pattern)
        builds = [
            stats["index_builds"]
            for stats in proc_cluster.worker_stats().values()
        ]
        print("still compiled once after live updates:",
              all(b == 1 for b in builds))

        # --------------------------------------------------------------
        # 3. Distributed queries through the service layer.
        # --------------------------------------------------------------
        with MatchService(max_workers=3) as service:
            distributed_future = service.submit_distributed(
                pattern, proc_cluster
            )
            central_results = [
                service.query(pattern, data, "dual") for _ in range(3)
            ]
            report = distributed_future.result()
        print("service distributed result non-empty:", len(report.result) > 0)
        print(f"service also answered {len(central_results)} centralized "
              f"queries while the distributed run was in flight")


if __name__ == "__main__":
    main()
