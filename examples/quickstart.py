#!/usr/bin/env python3
"""Quickstart: the paper's headhunter example (Figure 1), end to end.

A headhunter needs a biologist (Bio) who is recommended by an HR person,
a software engineer (SE) and a data-mining specialist (DM); the SE must
also be recommended by an HR person, and an AI expert recommends the DM
and is recommended by a DM.

This script builds the pattern and the expertise network, then compares
what subgraph isomorphism, graph simulation and strong simulation return
— reproducing the paper's motivating observation: isomorphism finds
nothing, simulation finds everyone, strong simulation finds exactly the
right candidate (Bio4).

Run:  python examples/quickstart.py
"""

from repro import DiGraph, Pattern, graph_simulation, match
from repro.baselines import has_subgraph_isomorphism


def build_pattern() -> Pattern:
    """The pattern Q1 of Fig. 1 (diameter 3)."""
    return Pattern.build(
        {"HR": "HR", "SE": "SE", "Bio": "Bio", "DM": "DM", "AI": "AI"},
        [
            ("HR", "Bio"),   # recommended by HR
            ("SE", "Bio"),   # recommended by an SE
            ("DM", "Bio"),   # recommended by a DM
            ("HR", "SE"),    # the SE is recommended by HR too
            ("AI", "DM"),    # an AI expert recommends the DM ...
            ("DM", "AI"),    # ... and is recommended by a DM
        ],
    )


def build_network() -> DiGraph:
    """The expertise recommendation network G1 of Fig. 1 (abridged)."""
    from repro.datasets.paper_figures import data_g1

    return data_g1(cycle_length=4)


def main() -> None:
    pattern = build_pattern()
    network = build_network()
    print(f"pattern:  {pattern}")
    print(f"network:  {network}")
    print()

    # 1. Subgraph isomorphism: too strict — nothing matches.
    found = has_subgraph_isomorphism(pattern, network)
    print(f"subgraph isomorphism finds a match: {found}")

    # 2. Graph simulation: too loose — every biologist "matches".
    relation = graph_simulation(pattern, network)
    print(f"graph simulation matches for Bio:   "
          f"{sorted(relation.matches_of('Bio'))}")

    # 3. Strong simulation: exactly the sensible candidate.
    result = match(pattern, network)
    print(f"strong simulation matches for Bio:  "
          f"{sorted(result.all_matches_of('Bio'))}")
    print()

    print(f"strong simulation returned {len(result)} perfect subgraph(s):")
    for subgraph in result:
        nodes = ", ".join(sorted(map(str, subgraph.graph.nodes())))
        print(f"  center={subgraph.center!r}: {{{nodes}}}")

    biggest = max(result, key=lambda sg: sg.num_nodes)
    print()
    print("the maximal perfect subgraph is the full 'good' community "
          f"around Bio4 ({biggest.num_nodes} nodes, "
          f"{biggest.num_edges} edges)")


if __name__ == "__main__":
    main()
