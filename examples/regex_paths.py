#!/usr/bin/env python3
"""Regular-expression edge constraints (the paper's deferred extension).

The Remark of Section 2.2 notes that strong simulation readily extends
with hop bounds and regular expressions as edge constraints, along the
lines of Fan et al. ICDE 2011 ([18]).  This example shows both on an
influence network: find an executive (EX) who influences an engineer
(EN) *through a chain of managers* — something plain strong simulation
cannot express, because the managers make the edge a path.

Run:  python examples/regex_paths.py
"""

from repro import DiGraph, Pattern, match
from repro.core.regular import (
    RegularPattern,
    hop_bounded_pattern,
    regular_strong_match,
)


def build_network() -> DiGraph:
    """Three reporting chains of different shapes."""
    return DiGraph.from_parts(
        {
            # chain 1: EX -> M -> M -> EN  (managers all the way down)
            "ex1": "EX", "m1": "M", "m2": "M", "en1": "EN",
            # chain 2: EX -> EN             (direct influence)
            "ex2": "EX", "en2": "EN",
            # chain 3: EX -> C -> EN        (via a contractor, not a manager)
            "ex3": "EX", "c1": "C", "en3": "EN",
        },
        [
            ("ex1", "m1"), ("m1", "m2"), ("m2", "en1"),
            ("ex2", "en2"),
            ("ex3", "c1"), ("c1", "en3"),
        ],
    )


def main() -> None:
    network = build_network()
    pattern = Pattern.build({"ex": "EX", "en": "EN"}, [("ex", "en")])
    print(f"network: {network}")
    print()

    # Plain strong simulation: only the direct edge qualifies.
    plain = match(pattern, network)
    print("plain strong simulation (direct edges only):")
    print("  engineers:", sorted(map(str, plain.all_matches_of("en"))))
    print()

    # Regex constraint: influence through managers only (M*).  With an
    # unbounded regex there is no canonical ball radius, so the locality
    # radius is chosen explicitly: chains up to 3 hops stay relevant.
    managers_only = RegularPattern(pattern, {("ex", "en"): "M*"})
    result = regular_strong_match(managers_only, network, radius=3)
    print("regex constraint M* (any chain of managers, or direct):")
    print("  engineers:", sorted(map(str, result.all_matches_of("en"))))
    print()

    # Regex constraint: at least one manager in between (M+).
    at_least_one = RegularPattern(pattern, {("ex", "en"): "M+"})
    result = regular_strong_match(at_least_one, network, radius=3)
    print("regex constraint M+ (at least one manager):")
    print("  engineers:", sorted(map(str, result.all_matches_of("en"))))
    print()

    # Hop bound without label constraints: anything within 2 hops.
    bounded = hop_bounded_pattern(pattern, {("ex", "en"): 2})
    result = regular_strong_match(bounded, network)
    print("hop bound 2 (any labels in between):")
    print("  engineers:", sorted(map(str, result.all_matches_of("en"))))


if __name__ == "__main__":
    main()
