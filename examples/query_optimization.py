#!/usr/bin/env python3
"""Query minimization and the Match+ optimizations (Section 4.2).

Walks through:

1. ``minQ`` on the paper's Figure 6(a) pattern — a redundant 8-node query
   collapses to its 5-node minimum equivalent;
2. the three Match+ optimizations toggled one by one on a synthetic
   workload, timing each configuration while asserting the results never
   change.

Run:  python examples/query_optimization.py
"""

from repro import MatchPlusOptions, match, match_plus, minimize_pattern
from repro.datasets import generate_graph
from repro.datasets.paper_figures import pattern_q5
from repro.datasets.patterns import sample_pattern_from_data
from repro.utils.timer import timed


def demo_minimization() -> None:
    pattern = pattern_q5()
    minimized = minimize_pattern(pattern)
    print("-- query minimization (minQ, Fig. 6(a)) --")
    print(f"original:  {pattern.num_nodes} nodes, {pattern.num_edges} edges")
    print(f"minimized: {minimized.pattern.num_nodes} nodes, "
          f"{minimized.pattern.num_edges} edges "
          f"(ball radius stays {minimized.radius})")
    for class_id, members in enumerate(minimized.classes):
        print(f"  class {class_id}: {sorted(map(str, members))}")
    print()


def demo_optimizations() -> None:
    print("-- Match+ ablation --")
    data = generate_graph(1500, alpha=1.2, num_labels=20, seed=3)
    pattern = sample_pattern_from_data(data, 8, seed=1)
    assert pattern is not None

    reference, base_seconds = timed(lambda: match(pattern, data))
    reference_signatures = {sg.signature() for sg in reference}
    print(f"Match (no optimizations):  {base_seconds:.3f}s, "
          f"{len(reference)} subgraphs")

    configs = {
        "minQ only": MatchPlusOptions(True, False, False, False),
        "dual filter only": MatchPlusOptions(False, True, False, False),
        "pruning only": MatchPlusOptions(False, False, True, True),
        "Match+ (all)": MatchPlusOptions(True, True, True, True),
    }
    for name, options in configs.items():
        result, seconds = timed(lambda: match_plus(pattern, data, options))
        same = {sg.signature() for sg in result} == reference_signatures
        print(f"{name:24s} {seconds:.3f}s  "
              f"(x{base_seconds / max(seconds, 1e-9):.1f} speedup, "
              f"identical output: {same})")
    print()


if __name__ == "__main__":
    demo_minimization()
    demo_optimizations()
