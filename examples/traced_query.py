"""One distributed query, fully traced: a merged coordinator+site view.

Tracing (``repro.obs``) is off by default and costs nothing that way;
flipping it on for a query makes the Section 4.3 protocol legible.  The
coordinator opens a ``distributed.run`` span, each site worker records
its own ``site.evaluate`` span — on the ``processes`` backend inside a
*different OS process*, shipped back over the wire with the partials —
and the coordinator grafts them all into ONE trace.  The per-site spans
carry the fetch traffic as attributes (round trips per BFS layer,
records, shipped units), and the root span carries the per-query bus
log itself, so the trace *is* the protocol observation.

This example runs one traced query on a process-backed cluster (falling
back to threads where fork is unavailable), prints the merged per-site
phase breakdown, and cross-checks the trace's bus-traffic attributes
against the cluster report's query log — they are the same object of
record, byte for byte.  Pass a path argument to also write the full
JSON trace document there (CI exports its sample artifact this way)::

    python examples/traced_query.py [trace.json]
"""

import sys

from repro.datasets import generate_graph
from repro.datasets.patterns import sample_pattern_from_data
from repro.distributed import Cluster, bfs_partition, process_backend_available
from repro.obs import (
    QueryReport,
    collector,
    export_traces_json,
    get_registry,
    set_tracing,
)

SITES = 3


def main(out_path=None) -> None:
    backend = "processes" if process_backend_available() else "threads"
    data = generate_graph(400, alpha=1.15, num_labels=12, seed=37)
    pattern = sample_pattern_from_data(data, 5, seed=41)
    assert pattern is not None
    assignment = bfs_partition(data, SITES)
    print(f"data graph: |V|={data.num_nodes}, |E|={data.num_edges}, "
          f"{SITES} sites, backend={backend}")

    collector().clear()
    previous = set_tracing(True)
    try:
        with Cluster(data, assignment, SITES, backend=backend) as cluster:
            report = cluster.run(pattern)
            snapshot = cluster.metrics_snapshot()
    finally:
        set_tracing(previous)

    root = collector().roots()[-1]
    assert root.name == "distributed.run"

    # The merged trace: coordinator phases + one site.evaluate per site,
    # each shipped back from its worker (process boundary included).
    print()
    print("merged per-site phase breakdown:")
    print(QueryReport.from_span(root).format())

    sites_in_trace = sorted(
        child.attrs["site"] for child in root.children
        if child.name == "site.evaluate"
    )
    print()
    print(f"site spans merged into one trace: {sites_in_trace}")

    # The root span's bus.log attribute IS the per-query bus log.
    identical = root.attrs["bus.log"] == report.query_log
    print(f"trace bus log identical to protocol log: {identical}")
    print(f"result: {len(report.result)} perfect subgraph(s), "
          f"{report.bus.total_units} units on the bus")

    # The merged metrics snapshot folds in each worker process's
    # registry next to the coordinator's bus counters.
    bus_units = {
        key: value for key, value in sorted(snapshot["counters"].items())
        if key.startswith("bus.units{kind=")
    }
    print(f"bus units by kind (metrics registry): {bus_units}")
    # A counter that can only originate *inside* each worker process:
    # every worker decoded the broadcast pattern frame exactly once, so
    # a merged value of SITES proves the per-site snapshots shipped.
    decodes = snapshot["counters"].get(
        "wire.frames{kind=pattern,op=decode}", 0
    )
    print(f"pattern frames decoded across workers: {decodes}")
    assert get_registry() is not None

    if out_path is not None:
        export_traces_json([root], out_path)
        print(f"trace JSON written to {out_path}")


if __name__ == "__main__":
    main(sys.argv[1] if len(sys.argv) > 1 else None)
