#!/usr/bin/env python3
"""Product co-purchase search on an Amazon-style network (Figure 7(a)).

Scenario: find "Parenting & Families" books that are co-purchased with
"Children's Books" and "Home & Garden" books, and mutually co-purchased
with "Health, Mind & Body" books — the pattern QA of the paper's Amazon
case study — on a synthetic co-purchase network with realistic degree
skew and category labels.

The script contrasts the three matching notions and shows why strong
simulation is the practical choice: isomorphism misses near-matches,
simulation drowns the analyst, strong simulation returns a handful of
small, inspectable subgraphs.

Run:  python examples/product_recommendations.py
"""

from repro import graph_simulation, match_plus, minimize_pattern
from repro.baselines import vf2
from repro.datasets import generate_amazon
from repro.datasets.paper_figures import pattern_qa


def main() -> None:
    network = generate_amazon(4000, num_labels=30, seed=2024)
    pattern = pattern_qa()
    print(f"co-purchase network: {network}")
    print(f"pattern QA: {pattern} (labels: {sorted(map(str, pattern.label_set()))})")
    print()

    # Exact isomorphism (budgeted — it is exponential).
    iso = vf2(pattern, network, max_matches=500, max_states=2_000_000)
    print(f"VF2:   {iso.num_matched_subgraphs} matched subgraphs "
          f"({'budget hit' if iso.exhausted else 'complete'})")

    # Plain simulation: one giant relation.
    relation = graph_simulation(pattern, network)
    print(f"Sim:   one relation touching {len(relation.data_nodes())} products")

    # Strong simulation (Match+ — all optimizations).
    result = match_plus(pattern, network)
    print(f"Match: {len(result)} perfect subgraphs, touching "
          f"{len(result.matched_data_nodes())} products")
    print()

    minimized = minimize_pattern(pattern)
    focal_class = minimized.node_to_class["PF"]
    focal = sorted(map(str, result.all_matches_of(focal_class)))[:10]
    print("sample 'Parenting & Families' hits:", focal)

    sizes = sorted(sg.num_nodes for sg in result)
    if sizes:
        print(f"subgraph sizes: min={sizes[0]}, median={sizes[len(sizes)//2]}, "
              f"max={sizes[-1]} — all small enough to inspect by hand")


if __name__ == "__main__":
    main()
