#!/usr/bin/env python3
"""The query service: concurrent matching with a delta-invalidated cache.

A talent-search portal keeps a social network graph and serves pattern
queries from many users at once.  Three serving-layer features carry the
load, demonstrated in order:

1. **Concurrency** — queries run on a thread pool (``submit`` returns a
   future; ``submit_batch`` fans a stream out).
2. **Canonical fingerprints** — two users phrase the *same* structural
   query with different node names; the service recognizes the shapes as
   isomorphic and answers the second from cache.
3. **Delta invalidation** — the graph mutates between queries.  A
   mutation that provably cannot affect a cached result (no label
   overlap) keeps the entry warm; an overlapping one drops exactly the
   affected entries.

Run:  python examples/concurrent_service.py
"""

from repro import DiGraph, MatchService, Pattern, Query
from repro.service import replay_workload


def build_network() -> DiGraph:
    """A small endorsement network: HR people vouch for engineers/biologists."""
    graph = DiGraph()
    people = {
        "HR1": "HR", "HR2": "HR",
        "SE1": "SE", "SE2": "SE",
        "Bio1": "Bio", "Bio2": "Bio",
        "DM1": "DM",  # a data miner nobody queries for (yet)
    }
    for person, role in people.items():
        graph.add_node(person, role)
    for edge in [
        ("HR1", "SE1"), ("SE1", "Bio1"), ("Bio1", "HR1"),
        ("HR2", "SE2"), ("SE2", "Bio2"), ("Bio2", "HR2"),
        ("HR1", "Bio2"),
    ]:
        graph.add_edge(*edge)
    return graph


def main() -> None:
    network = build_network()

    # Two users ask for the same shape — an HR -> SE -> Bio endorsement
    # cycle — under different variable names and insertion orders.
    query_a = Pattern.build(
        {"h": "HR", "s": "SE", "b": "Bio"},
        [("h", "s"), ("s", "b"), ("b", "h")],
    )
    query_b = Pattern.build(
        {"bio": "Bio", "hr": "HR", "eng": "SE"},
        [("hr", "eng"), ("eng", "bio"), ("bio", "hr")],
    )
    print("fingerprint A:", query_a.fingerprint()[:16])
    print("fingerprint B:", query_b.fingerprint()[:16])
    print("structurally identical:", query_a.fingerprint() == query_b.fingerprint())
    print()

    with MatchService(max_workers=4) as service:
        # 1. Concurrency: a small stream served through the pool.
        stream = [Query(query_a, network) for _ in range(3)]
        report, results = replay_workload(service, stream)
        print(f"served {report.queries} queries "
              f"({len(results[0])} perfect subgraph(s) each)")

        # 2. Fingerprint sharing: user B's query hits user A's entry.
        result_b = service.query(query_b, network)
        cache = service.stats.cache
        print(f"user B served from cache: hits={cache.hits}, "
              f"misses={cache.misses}")
        for subgraph in result_b:
            members = ", ".join(sorted(subgraph.graph.nodes()))
            print(f"  matched cycle: {{{members}}}")
        print()

        # 3a. A mutation in an unrelated label class (the data miner
        # gets relabeled) cannot affect the cached HR/SE/Bio result —
        # the entry survives and keeps serving hits.
        network.relabel_node("DM1", "ML")
        service.query(query_a, network)
        print(f"after unrelated relabel: hits={cache.hits}, "
              f"misses={cache.misses} (entry retained)")

        # 3b. An edge touching the queried labels invalidates: the new
        # endorsement creates a second cross-team cycle, and the
        # recomputed result sees it.
        network.add_edge("Bio2", "HR1")
        result = service.query(query_a, network)
        print(f"after relevant insert:  hits={cache.hits}, "
              f"misses={cache.misses} (entry invalidated, recomputed)")
        print(f"perfect subgraphs now: {len(result)}")


if __name__ == "__main__":
    main()
