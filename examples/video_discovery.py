#!/usr/bin/env python3
"""Related-video discovery on a YouTube-style network (Figure 7(b)).

Scenario: find "Entertainment" videos related to both "Film & Animation"
and "Music" videos, where some "Sports" video is related to the same two
— the pattern QY of the paper's YouTube case study.

Also demonstrates bounded simulation (the prior art the paper extends):
relaxing each pattern edge to a 2-hop path finds more candidates, at the
cost of the topology guarantees strong simulation provides.

Run:  python examples/video_discovery.py
"""

from repro import (
    BoundedPattern,
    bounded_simulation,
    match_plus,
    minimize_pattern,
)
from repro.datasets import generate_youtube
from repro.datasets.paper_figures import pattern_qy


def main() -> None:
    network = generate_youtube(3000, num_labels=15, seed=77)
    pattern = pattern_qy()
    print(f"related-video network: {network}")
    print(f"pattern QY: {pattern}")
    print()

    # Strong simulation: topology-preserving matches.
    result = match_plus(pattern, network)
    minimized = minimize_pattern(pattern)
    focal_class = minimized.node_to_class["E"]
    strong_hits = result.all_matches_of(focal_class)
    print(f"strong simulation: {len(result)} perfect subgraphs; "
          f"{len(strong_hits)} Entertainment videos qualify")

    # Bounded simulation with 2-hop edges: a looser, larger answer.
    bounded = BoundedPattern(
        pattern, {edge: 2 for edge in pattern.edges()}
    )
    bounded_rel = bounded_simulation(bounded, network)
    bounded_hits = (
        bounded_rel.matches_of("E") if bounded_rel.is_total() else frozenset()
    )
    print(f"bounded simulation (2 hops): {len(bounded_hits)} Entertainment "
          "videos qualify")
    print()

    extra = len(bounded_hits) - len(strong_hits & set(bounded_hits))
    print("bounded simulation trades topology for recall: "
          f"{extra} extra candidates lack the exact relatedness structure")

    for subgraph in list(result)[:3]:
        nodes = sorted(map(str, subgraph.graph.nodes()))[:8]
        print(f"  sample perfect subgraph ({subgraph.num_nodes} nodes): {nodes}")


if __name__ == "__main__":
    main()
