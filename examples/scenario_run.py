"""The scenario harness end to end: manifest -> replay -> SLO -> diff.

A scenario manifest (``repro.scenarios``) pins a whole workload fixture
declaratively — generator seed and scale table, pattern sample seeds,
the query/mutation stream shape, and the engine/backend matrix — so a
run is a pure function of the manifest.  The runner replays it with the
observability stack live and folds what it saw into one case report:

* the **observation digest**, a SHA-256 over the canonical result
  stream (results only, never timings), gated against the committed
  ``EXPECTED_DIGESTS`` pin — the same digest on every engine, or the
  engines' output-identity contract is broken;
* **SLO rows** (p50/p99/mean per algorithm) interpolated from the
  case's own log-bucket histogram window;
* throughput, cache behavior, and — for distributed scenarios — exact
  bus traffic.

This example runs one scenario across all three engines, shows the
digest agreeing everywhere, prints the dashboard table, and then runs
the regression diff twice: once against itself (clean) and once against
a doctored baseline with an injected 10x p99 regression and a flipped
digest (both flagged)::

    python examples/scenario_run.py
"""

import json

from repro.scenarios import (
    EXPECTED_DIGESTS,
    ScenarioRunner,
    diff_payloads,
    get_scenario,
    matrix_payload,
    render_cases,
)


def main() -> None:
    manifest = get_scenario("tenancy-mixed")
    print(f"scenario: {manifest.name} — {manifest.title}")
    print(f"engines: {', '.join(manifest.engines)}; "
          f"algorithms: {', '.join(manifest.algorithms)}; "
          f"mutations: {manifest.mutation_segments} segment(s) of "
          f"{manifest.mutation_count} edge insertions")

    runner = ScenarioRunner(manifest)
    cases = runner.run("smoke")
    print()
    print(render_cases(cases))

    ran = [case for case in cases if case.skipped is None]
    digests = {case.digest for case in ran}
    pinned = EXPECTED_DIGESTS[(manifest.name, "smoke")]
    print()
    print(f"one digest across {len(ran)} engine(s): {len(digests) == 1}")
    print(f"digest matches the committed pin: "
          f"{digests == {pinned}}")

    # The SLO rows come from the case's own metrics window.
    sample = ran[0]
    rows = {name: row for name, row in sorted(sample.latency.items())
            if name != "queue_wait"}
    print(f"per-algorithm p99 rows observed: {len(rows)}")

    # The dashboard: clean against itself...
    payload = matrix_payload(cases, "smoke")
    print(f"clean diff findings: {len(diff_payloads(payload, payload))}")

    # ...and loud against a doctored baseline.
    doctored = json.loads(json.dumps(payload))
    doctored["cases"][0]["digest"] = "0" * 16
    for row in doctored["cases"][1]["latency"].values():
        row["p99_ms"] = 0.0
    findings = diff_payloads(doctored, payload)
    kinds = sorted({finding["kind"] for finding in findings})
    print(f"injected regressions flagged: {kinds}")
    for finding in findings:
        print(f"  [{finding['kind']}] {finding['case']}")


if __name__ == "__main__":
    main()
