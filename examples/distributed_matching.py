#!/usr/bin/env python3
"""Distributed strong simulation over a partitioned graph (Section 4.3).

The locality of strong simulation makes it distributable: each site
evaluates the balls centered at its own nodes, fetching only the
boundary-crossing ball regions from its peers.  This script partitions a
synthetic social network across simulated sites with two different
partitioners, runs the coordinator protocol, verifies the answer equals
the centralized one, and reports the measured data shipment against the
paper's bound.

Run:  python examples/distributed_matching.py
"""

from repro import match
from repro.datasets import generate_graph
from repro.datasets.patterns import sample_pattern_from_data
from repro.distributed import (
    bfs_partition,
    crossing_ball_bound,
    cut_edges,
    distributed_match,
    hash_partition,
)


def main() -> None:
    graph = generate_graph(1000, alpha=1.15, num_labels=15, seed=5)
    pattern = sample_pattern_from_data(graph, 6, seed=9)
    assert pattern is not None
    print(f"data graph: {graph}")
    print(f"pattern:    {pattern}")
    print()

    central = match(pattern, graph)
    central_signatures = {sg.signature() for sg in central}
    print(f"centralized Match: {len(central)} perfect subgraphs")
    print()

    num_sites = 4
    for name, partitioner in (
        ("hash (locality-oblivious)", hash_partition),
        ("bfs  (locality-aware)", bfs_partition),
    ):
        assignment = partitioner(graph, num_sites)
        report = distributed_match(pattern, graph, assignment, num_sites)
        assert {sg.signature() for sg in report.result} == central_signatures
        bound = crossing_ball_bound(graph, assignment, pattern.diameter)
        print(f"partitioner: {name}")
        print(f"  cut edges:            {cut_edges(graph, assignment)}")
        print(f"  messages:             {report.bus.total_messages}")
        print(f"  data shipped (units): {report.data_shipment_units}")
        print(f"  paper's bound:        {bound}")
        print(f"  per-site subgraphs:   {report.per_site_subgraphs}")
        print("  result identical to centralized: True")
        print()


if __name__ == "__main__":
    main()
