#!/usr/bin/env python3
"""Streaming graph updates with incremental strong simulation (future work).

A recommendation network evolves — endorsements appear and disappear —
and an analyst keeps a standing pattern query against it.  The paper
lists incremental strong simulation as future work (Section 6) and
observes that deletions are the easy direction (Section 4.2); this
example exercises both directions and shows the ranked top matches after
every change, using the ranking extension.

Run:  python examples/streaming_updates.py
"""

from repro.core.incremental import IncrementalMatcher
from repro.core.ranking import score_match, top_k_matches
from repro.datasets.paper_figures import data_g1, pattern_q1


def show(matcher, title):
    result = matcher.result()
    print(title)
    if not result:
        print("  (no matches)")
        return
    for subgraph in top_k_matches(result, 2):
        score = score_match(result.pattern, subgraph)
        nodes = ", ".join(sorted(map(str, subgraph.graph.nodes())))
        print(f"  score={score:.3f}  {{{nodes}}}")
    print()


def main() -> None:
    pattern = pattern_q1()
    network = data_g1(cycle_length=4)
    matcher = IncrementalMatcher(pattern, network)
    print(f"standing query: {pattern}")
    print(f"initial network: {network}")
    print()

    show(matcher, "-- initial matches --")

    # The HR person withdraws the endorsement of the good biologist:
    # the match must collapse (Bio4 loses its HR parent).
    matcher.remove_edge("HR2", "Bio4")
    show(matcher, "-- after HR2 un-recommends Bio4 --")

    # A different HR person vouches for Bio4: the match re-forms, but
    # only if that HR also recommends an SE (the pattern's duality).
    matcher.add_node("HR3", "HR")
    matcher.add_edge("HR3", "Bio4")
    show(matcher, "-- after new HR3 recommends Bio4 (no SE edge yet) --")

    matcher.add_edge("HR3", "SE2")
    show(matcher, "-- after HR3 also recommends SE2 --")

    print(f"balls recomputed across all updates: {matcher.balls_recomputed} "
          f"(graph has {matcher.data.num_nodes} nodes; a non-incremental "
          "system would rebuild every ball on every update)")


if __name__ == "__main__":
    main()
