from setuptools import find_packages, setup

setup(
    name="repro-strong-simulation",
    version="1.0.0",
    description=(
        "Strong simulation for graph pattern matching (Ma et al., "
        "PVLDB 2011): reference + compiled-kernel engines, distributed "
        "evaluation, incremental updates, and a concurrent query service"
    ),
    long_description=(
        "A from-scratch reproduction of 'Capturing Topology in Graph "
        "Pattern Matching' grown into a serving-oriented system: two "
        "output-identical execution engines, a simulated distributed "
        "protocol with traffic accounting, an incremental mutation "
        "pipeline, and the repro.service query layer (canonical pattern "
        "fingerprints, delta-invalidated result caching, thread-pooled "
        "execution)."
    ),
    long_description_content_type="text/plain",
    license="MIT",
    package_dir={"": "src"},
    packages=find_packages("src"),
    python_requires=">=3.9",
    install_requires=[
        # The engine="numpy" array engine; the python and kernel engines
        # run without it (resolve_engine degrades gracefully), but the
        # default install ships all three.
        "numpy",
    ],
    classifiers=[
        "Development Status :: 4 - Beta",
        "Intended Audience :: Science/Research",
        "License :: OSI Approved :: MIT License",
        "Operating System :: OS Independent",
        "Programming Language :: Python",
        "Programming Language :: Python :: 3",
        "Programming Language :: Python :: 3.11",
        "Programming Language :: Python :: 3.12",
        "Topic :: Scientific/Engineering :: Information Analysis",
        "Topic :: Database :: Database Engines/Servers",
    ],
    entry_points={
        "console_scripts": [
            "repro=repro.cli:main",
        ],
    },
)
