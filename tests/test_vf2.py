"""Tests for the VF2 enumerator, cross-checked against networkx and Ullmann."""

import networkx as nx
import pytest
from hypothesis import given, settings

from repro.baselines.ullmann import enumerate_embeddings_ullmann
from repro.baselines.vf2 import (
    VF2Budget,
    embedding_subgraph_signature,
    enumerate_embeddings,
    has_subgraph_isomorphism,
    vf2,
)
from repro.core.digraph import DiGraph
from repro.core.pattern import Pattern
from tests.conftest import (
    graph_seeds,
    pattern_seeds,
    random_connected_pattern,
    random_digraph,
)


def to_networkx(graph) -> nx.DiGraph:
    nxg = nx.DiGraph()
    for node in graph.nodes():
        nxg.add_node(node, label=graph.label(node))
    nxg.add_edges_from(graph.edges())
    return nxg


def networkx_embedding_count(pattern: Pattern, data: DiGraph) -> int:
    """Count labeled subgraph monomorphisms via networkx (the oracle)."""
    matcher = nx.algorithms.isomorphism.DiGraphMatcher(
        to_networkx(data),
        to_networkx(pattern.graph),
        node_match=lambda d, p: d["label"] == p["label"],
    )
    return sum(1 for _ in matcher.subgraph_monomorphisms_iter())


class TestBasics:
    def test_single_embedding(self):
        pattern = Pattern.build({"a": "A", "b": "B"}, [("a", "b")])
        data = DiGraph.from_parts({"x": "A", "y": "B"}, [("x", "y")])
        embeddings = list(enumerate_embeddings(pattern, data))
        assert embeddings == [{"a": "x", "b": "y"}]

    def test_injective(self):
        pattern = Pattern.build(
            {"a": "X", "b": "X"}, [("a", "b"), ("b", "a")]
        )
        data = DiGraph.from_parts({"x": "X"}, [("x", "x")])
        # The only candidate maps both pattern nodes to x: not injective.
        assert list(enumerate_embeddings(pattern, data)) == []

    def test_every_pattern_edge_mapped(self):
        pattern = Pattern.build(
            {"a": "A", "b": "B", "c": "C"},
            [("a", "b"), ("b", "c"), ("a", "c")],
        )
        data = DiGraph.from_parts(
            {"x": "A", "y": "B", "z": "C"},
            [("x", "y"), ("y", "z")],  # missing x -> z
        )
        assert not has_subgraph_isomorphism(pattern, data)

    def test_max_matches_cap(self):
        pattern = Pattern.build({"a": "X"}, [])
        data = DiGraph.from_parts({i: "X" for i in range(10)}, [])
        embeddings = list(enumerate_embeddings(pattern, data, max_matches=3))
        assert len(embeddings) == 3

    def test_budget_exhaustion_flagged(self):
        pattern = Pattern.build({"a": "X", "b": "X"}, [("a", "b")])
        data = DiGraph.from_parts(
            {i: "X" for i in range(20)},
            [(i, j) for i in range(20) for j in range(20) if i != j],
        )
        result = vf2(pattern, data, max_states=5)
        assert result.exhausted

    def test_subgraph_signature(self):
        pattern = Pattern.build({"a": "A", "b": "B"}, [("a", "b")])
        nodes, edges = embedding_subgraph_signature(
            pattern, {"a": "x", "b": "y"}
        )
        assert nodes == frozenset({"x", "y"})
        assert edges == frozenset({("x", "y")})

    def test_matched_nodes_union(self):
        pattern = Pattern.build({"a": "A", "b": "B"}, [("a", "b")])
        data = DiGraph.from_parts(
            {"x": "A", "y": "B", "z": "B"},
            [("x", "y"), ("x", "z")],
        )
        result = vf2(pattern, data)
        assert result.matched_nodes() == {"x", "y", "z"}
        assert result.num_matched_subgraphs == 2


class TestOracles:
    @given(graph_seeds, pattern_seeds)
    @settings(max_examples=30, deadline=None)
    def test_embedding_count_matches_networkx(self, gseed, pseed):
        data = random_digraph(gseed, max_nodes=8, edge_prob=0.3)
        pattern = random_connected_pattern(pseed, max_nodes=3)
        ours = len(list(enumerate_embeddings(pattern, data)))
        theirs = networkx_embedding_count(pattern, data)
        assert ours == theirs

    @given(graph_seeds, pattern_seeds)
    @settings(max_examples=20, deadline=None)
    def test_vf2_agrees_with_ullmann(self, gseed, pseed):
        data = random_digraph(gseed, max_nodes=7, edge_prob=0.3)
        pattern = random_connected_pattern(pseed, max_nodes=3)
        vf2_set = {
            frozenset(emb.items())
            for emb in enumerate_embeddings(pattern, data)
        }
        ull_set = {
            frozenset(emb.items())
            for emb in enumerate_embeddings_ullmann(pattern, data)
        }
        assert vf2_set == ull_set

    def test_fig1_negative_cross_check(self):
        from repro.datasets.paper_figures import data_g1, pattern_q1

        pattern, data = pattern_q1(), data_g1()
        assert not has_subgraph_isomorphism(pattern, data)
        assert networkx_embedding_count(pattern, data) == 0


class TestUllmann:
    def test_simple_positive(self):
        pattern = Pattern.build({"a": "A", "b": "B"}, [("a", "b")])
        data = DiGraph.from_parts({"x": "A", "y": "B"}, [("x", "y")])
        assert list(enumerate_embeddings_ullmann(pattern, data)) == [
            {"a": "x", "b": "y"}
        ]

    def test_refinement_prunes_before_search(self):
        from repro.baselines.ullmann import has_subgraph_isomorphism_ullmann

        pattern = Pattern.build(
            {"a": "A", "b": "B", "c": "C"},
            [("a", "b"), ("b", "c")],
        )
        data = DiGraph.from_parts(
            {"x": "A", "y": "B"},
            [("x", "y")],
        )
        assert not has_subgraph_isomorphism_ullmann(pattern, data)

    def test_max_matches(self):
        pattern = Pattern.build({"a": "X"}, [])
        data = DiGraph.from_parts({i: "X" for i in range(5)}, [])
        embeddings = list(
            enumerate_embeddings_ullmann(pattern, data, max_matches=2)
        )
        assert len(embeddings) == 2
