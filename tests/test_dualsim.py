"""Unit + property tests for dual simulation (Section 2.2, Lemma 1)."""

import pytest
from hypothesis import given, settings

from repro.core.digraph import DiGraph
from repro.core.dualsim import (
    dual_simulation,
    dual_simulation_naive,
    is_dual_simulation_relation,
    matches_via_dual_simulation,
)
from repro.core.matchrel import MatchRelation
from repro.core.pattern import Pattern
from repro.core.simulation import graph_simulation
from tests.conftest import graph_and_pattern


def parent_pair():
    """Pattern requiring B to have an A parent."""
    pattern = Pattern.build({"a": "A", "b": "B"}, [("a", "b")])
    data = DiGraph.from_parts(
        {"a1": "A", "b1": "B", "b2": "B", "x": "X"},
        [("a1", "b1"), ("x", "b2")],
    )
    return pattern, data


class TestDuality:
    def test_parent_condition_prunes(self):
        pattern, data = parent_pair()
        rel = dual_simulation(pattern, data)
        # b2's only parent is labeled X: fails the duality condition.
        assert rel.matches_of("b") == frozenset({"b1"})

    def test_simulation_keeps_what_duality_drops(self):
        pattern, data = parent_pair()
        sim = graph_simulation(pattern, data)
        assert sim.matches_of("b") == frozenset({"b1", "b2"})

    def test_collapse_on_failure(self):
        pattern = Pattern.build({"a": "A", "b": "B"}, [("a", "b")])
        data = DiGraph.from_parts({"b1": "B"}, [])
        rel = dual_simulation(pattern, data)
        assert rel.is_empty()
        assert not matches_via_dual_simulation(pattern, data)

    def test_two_cycle_needs_two_cycle_or_longer(self):
        pattern = Pattern.build({"a": "X", "b": "X"}, [("a", "b"), ("b", "a")])
        cycle4 = DiGraph.from_parts(
            {i: "X" for i in range(4)},
            [(i, (i + 1) % 4) for i in range(4)],
        )
        rel = dual_simulation(pattern, cycle4)
        # Every node of a directed 4-cycle has an X parent and X child.
        assert rel.matches_of("a") == frozenset(range(4))
        chain = DiGraph.from_parts({0: "X", 1: "X"}, [(0, 1)])
        assert dual_simulation(pattern, chain).is_empty()

    def test_fig1_dual_relation(self):
        from repro.datasets.paper_figures import data_g1, pattern_q1

        rel = dual_simulation(pattern_q1(), data_g1())
        assert rel.matches_of("Bio") == frozenset({"Bio4"})
        assert rel.matches_of("HR") == frozenset({"HR2"})
        assert rel.matches_of("SE") == frozenset({"SE2"})
        assert rel.matches_of("DM") == frozenset({"DM'1", "DM'2"})
        assert rel.matches_of("AI") == frozenset({"AI'1", "AI'2"})


class TestLemma1Uniqueness:
    @given(graph_and_pattern())
    @settings(max_examples=60, deadline=None)
    def test_naive_and_worklist_agree(self, pair):
        """Both fixpoints compute the same relation — the unique maximum
        (Lemma 1): any two maximum relations would have to contain each
        other."""
        data, pattern = pair
        assert dual_simulation(pattern, data) == dual_simulation_naive(
            pattern, data
        )

    @given(graph_and_pattern())
    @settings(max_examples=60, deadline=None)
    def test_result_is_valid_or_empty(self, pair):
        data, pattern = pair
        rel = dual_simulation(pattern, data)
        if rel.is_total():
            assert is_dual_simulation_relation(pattern, data, rel)
        else:
            assert rel.is_empty()

    @given(graph_and_pattern())
    @settings(max_examples=60, deadline=None)
    def test_contained_in_simulation(self, pair):
        """Proposition 1(3): dual simulation refines simulation, so the
        maximum dual relation is contained in the maximum simulation."""
        data, pattern = pair
        dual = dual_simulation(pattern, data)
        sim = graph_simulation(pattern, data)
        if dual.is_total():
            assert sim.contains_relation(dual)

    @given(graph_and_pattern())
    @settings(max_examples=30, deadline=None)
    def test_maximality(self, pair):
        data, pattern = pair
        rel = dual_simulation(pattern, data)
        if not rel.is_total():
            return
        for u in pattern.nodes():
            current = rel.matches_of_raw(u)
            for v in data.nodes_with_label(pattern.label(u)):
                if v in current:
                    continue
                extended = rel.copy()
                extended.matches_of_raw(u).add(v)
                assert not is_dual_simulation_relation(pattern, data, extended)


class TestSeededRefinement:
    def test_seeds_superset_converges_to_maximum(self):
        pattern, data = parent_pair()
        from repro.core.simulation import initial_candidates

        seeds = initial_candidates(pattern, data)
        rel = dual_simulation(pattern, data, seeds=seeds)
        assert rel == dual_simulation(pattern, data)

    def test_checker_rejects_non_dual(self):
        pattern, data = parent_pair()
        bogus = MatchRelation.from_pairs(
            pattern, [("a", "a1"), ("b", "b1"), ("b", "b2")]
        )
        assert not is_dual_simulation_relation(pattern, data, bogus)
