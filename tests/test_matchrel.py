"""Unit tests for MatchRelation."""

import pytest

from repro.core.matchrel import MatchRelation
from repro.core.pattern import Pattern
from repro.exceptions import MatchingError


@pytest.fixture
def pattern() -> Pattern:
    return Pattern.build({"u": "A", "w": "B"}, [("u", "w")])


class TestConstruction:
    def test_empty(self, pattern):
        rel = MatchRelation.empty(pattern)
        assert rel.is_empty()
        assert not rel.is_total()
        assert len(rel) == 0

    def test_from_pairs(self, pattern):
        rel = MatchRelation.from_pairs(pattern, [("u", 1), ("u", 2), ("w", 3)])
        assert rel.matches_of("u") == frozenset({1, 2})
        assert rel.matches_of("w") == frozenset({3})
        assert rel.is_total()
        assert len(rel) == 3

    def test_from_pairs_unknown_pattern_node(self, pattern):
        with pytest.raises(MatchingError):
            MatchRelation.from_pairs(pattern, [("zzz", 1)])

    def test_matches_of_unknown_node(self, pattern):
        rel = MatchRelation.empty(pattern)
        with pytest.raises(MatchingError):
            rel.matches_of("zzz")


class TestViews:
    def test_pairs_and_pair_set(self, pattern):
        rel = MatchRelation.from_pairs(pattern, [("u", 1), ("w", 2)])
        assert set(rel.pairs()) == {("u", 1), ("w", 2)}
        assert rel.pair_set() == frozenset({("u", 1), ("w", 2)})

    def test_data_nodes(self, pattern):
        rel = MatchRelation.from_pairs(pattern, [("u", 1), ("w", 1), ("w", 2)])
        assert rel.data_nodes() == {1, 2}

    def test_contains(self, pattern):
        rel = MatchRelation.from_pairs(pattern, [("u", 1)])
        assert ("u", 1) in rel
        assert ("u", 2) not in rel
        assert ("w", 1) not in rel

    def test_equality(self, pattern):
        a = MatchRelation.from_pairs(pattern, [("u", 1), ("w", 2)])
        b = MatchRelation.from_pairs(pattern, [("w", 2), ("u", 1)])
        assert a == b
        c = MatchRelation.from_pairs(pattern, [("u", 1)])
        assert a != c

    def test_unhashable(self, pattern):
        rel = MatchRelation.empty(pattern)
        with pytest.raises(TypeError):
            hash(rel)


class TestOperations:
    def test_restriction(self, pattern):
        rel = MatchRelation.from_pairs(pattern, [("u", 1), ("u", 2), ("w", 3)])
        restricted = rel.restricted_to({1, 3})
        assert restricted.matches_of("u") == frozenset({1})
        assert restricted.matches_of("w") == frozenset({3})

    def test_copy_is_deep(self, pattern):
        rel = MatchRelation.from_pairs(pattern, [("u", 1)])
        clone = rel.copy()
        clone.matches_of_raw("u").add(99)
        assert 99 not in rel.matches_of("u")

    def test_contains_relation(self, pattern):
        big = MatchRelation.from_pairs(pattern, [("u", 1), ("u", 2), ("w", 3)])
        small = MatchRelation.from_pairs(pattern, [("u", 1), ("w", 3)])
        assert big.contains_relation(small)
        assert not small.contains_relation(big)

    def test_clear(self, pattern):
        rel = MatchRelation.from_pairs(pattern, [("u", 1), ("w", 2)])
        rel.clear()
        assert rel.is_empty()

    def test_to_sim_dict_is_fresh(self, pattern):
        rel = MatchRelation.from_pairs(pattern, [("u", 1)])
        sim = rel.to_sim_dict()
        sim["u"].add(99)
        assert 99 not in rel.matches_of("u")
