"""Run the doctests embedded in the library's docstrings.

The public-facing docstrings carry executable examples (module
quickstarts, class usage snippets); this keeps them honest.
"""

import doctest

import pytest

import repro
import repro.core.digraph
import repro.core.incremental
import repro.core.minimize
import repro.core.pattern
import repro.core.regex
import repro.utils.timer

MODULES = [
    repro,
    repro.core.digraph,
    repro.core.incremental,
    repro.core.minimize,
    repro.core.pattern,
    repro.core.regex,
    repro.utils.timer,
]


@pytest.mark.parametrize("module", MODULES, ids=lambda m: m.__name__)
def test_doctests(module):
    results = doctest.testmod(module, verbose=False)
    assert results.failed == 0, f"{results.failed} doctest failure(s) in {module.__name__}"
    assert results.attempted > 0, f"no doctests found in {module.__name__}"
