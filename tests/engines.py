"""Reusable cross-engine differential harness.

Every matching entry point in the repo runs on three execution engines —
``"python"`` (the reference path, transcribed from the paper's
pseudocode), ``"kernel"`` (the compiled CSR path of
:mod:`repro.core.kernel` / :mod:`repro.distributed.sitekernel`), and
``"numpy"`` (the vectorized array passes of :mod:`repro.core.npkernel`
over the same compiled index).  The
engines' contract is *output identity*, and this module is the one place
that knows how to observe each entry point in an engine-independent,
comparable form:

* :data:`ENGINES` / :data:`ENTRY_POINTS` — the matrix under test;
* :func:`run_entry_point` — run one entry point on one engine and return
  its canonical observation;
* :func:`assert_entry_point_identical` /
  :func:`assert_all_entry_points_identical` — the differential asserts;
* :func:`cluster_observation` — the full observable protocol output of a
  distributed run: canonical result set, per-site partial-subgraph
  counts, and the complete message-bus accounting (message count, units
  by kind, units per directed link);
* the **update-workload harness** — random interleavings of graph
  mutations and queries (:func:`random_mutation`,
  :func:`assert_update_workload_identical`): after every mutation the
  warm incremental kernel (one cached, delta-maintained ``GraphIndex``;
  warm per-site indexes on the distributed path) must observe
  identically to the from-scratch reference engine *and* to a
  from-scratch kernel compile of a graph copy.

Test modules parametrize over these instead of hand-rolling per-entry
canonicalization; new engines or entry points get differential coverage
by extending the tables here.
"""

from __future__ import annotations

import random
from typing import Any, Dict, List, Optional, Tuple

from repro.core.digraph import DiGraph, GraphDelta
from repro.core.dualsim import dual_simulation
from repro.core.kernel import dual_simulation_kernel, get_index
from repro.core.npkernel import dual_simulation_numpy
from repro.core.matchplus import match_plus
from repro.core.pattern import Pattern
from repro.core.simulation import graph_simulation
from repro.core.strong import match
from repro.distributed import Cluster
from repro.distributed.coordinator import DistributedRunReport
from repro.distributed.network import MessageBus
from repro.distributed.runtime import process_backend_available

ENGINES = ("python", "kernel", "numpy")

#: The cluster runtime backends under differential test.  The process
#: backend is included only where the platform can host it; callers that
#: need an unconditional tuple use :data:`ALL_BACKENDS`.
ALL_BACKENDS = ("inproc", "threads", "processes")


def available_backends():
    """The backends this platform can actually run."""
    if process_backend_available():
        return ALL_BACKENDS
    return ("inproc", "threads")


# ----------------------------------------------------------------------
# Canonical forms
# ----------------------------------------------------------------------
def canonical_result(result) -> frozenset:
    """Engine-independent form of a ``MatchResult``.

    The set of (node/edge signature, relation pair set) pairs: discovery
    order and the incidental recorded center may differ between engines,
    the subgraphs and their relations may not.
    """
    return frozenset(
        (sg.signature(), sg.relation.pair_set()) for sg in result
    )


def canonical_relation(relation) -> frozenset:
    """Engine-independent form of a ``MatchRelation``."""
    return relation.pair_set()


def bus_observation(bus) -> Dict[str, Any]:
    """Everything the message bus accounts, in comparable form."""
    return {
        "total_messages": bus.total_messages,
        "total_units": bus.total_units,
        "units_by_kind": bus.units_by_kind(),
        "units_by_link": {
            link: bus.units_between(*link)
            for link in {(m.sender, m.receiver) for m in bus.messages}
        },
        "data_units": bus.data_units(),
    }


def cluster_observation(report: DistributedRunReport) -> Dict[str, Any]:
    """The full observable output of one distributed run."""
    return {
        "result": canonical_result(report.result),
        "per_site_subgraphs": dict(report.per_site_subgraphs),
        "bus": bus_observation(report.bus),
    }


def distributed_observation(report: DistributedRunReport) -> Dict[str, Any]:
    """The *per-query* observation of one distributed run.

    Replays the report's own ``query_log`` onto a fresh bus, so reports
    from warm clusters (whose live bus is cumulative), cache replays
    (whose bus is already per-query) and freshly built clusters are all
    directly comparable: result set, per-site partial counts, and the
    query's complete bus accounting.
    """
    bus = MessageBus()
    for sender, receiver, kind, units in report.query_log:
        bus.send(sender, receiver, kind, units)
    return {
        "result": canonical_result(report.result),
        "per_site_subgraphs": dict(report.per_site_subgraphs),
        "bus": bus_observation(bus),
    }


# ----------------------------------------------------------------------
# Entry points
# ----------------------------------------------------------------------
def _run_match(pattern, data, engine, **_):
    return canonical_result(match(pattern, data, engine=engine))


def _run_match_plus(pattern, data, engine, **_):
    return canonical_result(match_plus(pattern, data, engine=engine))


def _run_graph_simulation(pattern, data, engine, **_):
    return canonical_relation(graph_simulation(pattern, data, engine=engine))


def _run_dual_simulation(pattern, data, engine, **_):
    if engine == "kernel":
        runner = dual_simulation_kernel
    elif engine == "numpy":
        runner = dual_simulation_numpy
    else:
        runner = dual_simulation
    return canonical_relation(runner(pattern, data))


def _run_cluster(
    pattern, data, engine, *, assignment=None, num_sites=None, backend=None
):
    if assignment is None or num_sites is None:
        raise ValueError("cluster entry point needs assignment and num_sites")
    cluster = Cluster(data, assignment, num_sites, engine=engine,
                      backend=backend)
    try:
        return cluster_observation(cluster.run(pattern))
    finally:
        cluster.close()


#: name -> runner(pattern, data, engine, **kwargs) returning a canonical,
#: directly comparable observation.
ENTRY_POINTS = {
    "match": _run_match,
    "match_plus": _run_match_plus,
    "graph_simulation": _run_graph_simulation,
    "dual_simulation": _run_dual_simulation,
    "cluster_run": _run_cluster,
}

#: The entry points that need no cluster setup.
CENTRALIZED_ENTRY_POINTS = (
    "match",
    "match_plus",
    "graph_simulation",
    "dual_simulation",
)


def run_entry_point(
    name: str,
    engine: str,
    pattern: Pattern,
    data: DiGraph,
    *,
    assignment: Optional[Dict] = None,
    num_sites: Optional[int] = None,
    backend: Optional[str] = None,
):
    """Run one entry point on one engine; return its canonical observation."""
    return ENTRY_POINTS[name](
        pattern, data, engine, assignment=assignment, num_sites=num_sites,
        backend=backend,
    )


def assert_entry_point_identical(
    name: str,
    pattern: Pattern,
    data: DiGraph,
    *,
    assignment: Optional[Dict] = None,
    num_sites: Optional[int] = None,
    backend: Optional[str] = None,
) -> None:
    """Assert one entry point observes identically on every engine."""
    kwargs = {
        "assignment": assignment,
        "num_sites": num_sites,
        "backend": backend,
    }
    reference = run_entry_point(name, ENGINES[0], pattern, data, **kwargs)
    for engine in ENGINES[1:]:
        observed = run_entry_point(name, engine, pattern, data, **kwargs)
        assert observed == reference, (
            f"{name} diverged between engines {ENGINES[0]!r} and {engine!r}"
        )


def assert_cluster_backends_identical(
    pattern: Pattern,
    data: DiGraph,
    *,
    assignment: Dict,
    num_sites: int,
    engines: Tuple[str, ...] = ENGINES,
    backends: Optional[Tuple[str, ...]] = None,
) -> None:
    """Assert the full protocol observation is backend-independent.

    For each engine, runs one cluster per backend over the same
    partition and compares the complete observation — canonical result
    set, per-site partial counts, message count and units per kind and
    per directed link.  This is the byte-identity contract of the
    runtime layer: where the workers live (serial, thread-per-site, or
    process-per-site) must be unobservable in the protocol.
    """
    if backends is None:
        backends = available_backends()
    for engine in engines:
        observations = {}
        for backend in backends:
            observations[backend] = run_entry_point(
                "cluster_run",
                engine,
                pattern,
                data,
                assignment=assignment,
                num_sites=num_sites,
                backend=backend,
            )
        reference = observations[backends[0]]
        for backend in backends[1:]:
            assert observations[backend] == reference, (
                f"cluster_run[{engine}] diverged between backends "
                f"{backends[0]!r} and {backend!r}"
            )


def assert_all_entry_points_identical(
    pattern: Pattern,
    data: DiGraph,
    *,
    assignment: Optional[Dict] = None,
    num_sites: Optional[int] = None,
) -> None:
    """Differential-check every entry point on (pattern, data).

    The cluster entry point is included whenever a partition is supplied.
    """
    for name in CENTRALIZED_ENTRY_POINTS:
        assert_entry_point_identical(name, pattern, data)
    if assignment is not None and num_sites is not None:
        assert_entry_point_identical(
            "cluster_run",
            pattern,
            data,
            assignment=assignment,
            num_sites=num_sites,
        )


# ----------------------------------------------------------------------
# Update-workload differential harness
# ----------------------------------------------------------------------
class DeltaRecorder:
    """Captures the :class:`GraphDelta` stream of a master graph.

    Used to mirror mutations into live clusters: the recorder subscribes
    to the master ``DiGraph`` and :meth:`drain` hands the buffered events
    to ``Cluster.apply_update`` verbatim.
    """

    def __init__(self, graph: DiGraph) -> None:
        self.deltas: List[GraphDelta] = []
        graph.subscribe(self)

    def on_graph_deltas(self, deltas) -> None:
        self.deltas.extend(deltas)

    def drain(self) -> List[GraphDelta]:
        drained, self.deltas = self.deltas, []
        return drained


#: Mutation kinds the workload generator draws from.
MUTATION_KINDS = (
    "add_edge", "remove_edge", "add_node", "remove_node", "relabel",
)

#: Labels used for nodes the workload generator creates or relabels.
WORKLOAD_LABELS = ("l0", "l1", "l2")


def random_mutation(
    rng: "random.Random", graph: DiGraph, fresh_node: int
) -> Optional[Tuple]:
    """Apply one random mutation to ``graph``; describe what happened.

    Returns ``(kind, *args)`` or ``None`` when the drawn mutation was
    inapplicable (e.g. removing an edge from an edgeless graph).  The
    caller supplies ``fresh_node``, a node id not yet in the graph, so
    sequences are reproducible from the rng alone.
    """
    nodes = list(graph.nodes())
    kind = rng.choice(MUTATION_KINDS)
    if kind == "add_edge":
        if not nodes:
            return None
        source, target = rng.choice(nodes), rng.choice(nodes)
        if graph.has_edge(source, target):
            return None
        graph.add_edge(source, target)
        return ("add_edge", source, target)
    if kind == "remove_edge":
        edges = list(graph.edges())
        if not edges:
            return None
        source, target = rng.choice(edges)
        graph.remove_edge(source, target)
        return ("remove_edge", source, target)
    if kind == "add_node":
        label = rng.choice(WORKLOAD_LABELS)
        graph.add_node(fresh_node, label)
        return ("add_node", fresh_node, label)
    if kind == "remove_node":
        if len(nodes) < 2:
            return None
        node = rng.choice(nodes)
        graph.remove_node(node)
        return ("remove_node", node)
    # relabel
    if not nodes:
        return None
    node = rng.choice(nodes)
    label = rng.choice(WORKLOAD_LABELS)
    if graph.label(node) == label:
        return None
    graph.relabel_node(node, label)
    return ("relabel", node, label)


def assert_centralized_update_step_identical(
    pattern: Pattern, graph: DiGraph
) -> None:
    """One post-mutation differential check of the centralized matrix.

    The warm incremental kernel (``graph``'s cached index, maintained
    through the delta stream) must observe identically to the
    from-scratch reference engine on ``graph`` *and* to a from-scratch
    kernel compile on a structural copy of ``graph``.
    """
    copy = graph.copy()  # fresh object: fresh, from-scratch compiles
    compiled_engines = [e for e in ENGINES if e != "python"]
    for name in CENTRALIZED_ENTRY_POINTS:
        reference = run_entry_point(name, "python", pattern, graph)
        for engine in compiled_engines:
            warm = run_entry_point(name, engine, pattern, graph)
            assert warm == reference, (
                f"{name}: warm incremental {engine} engine diverged "
                f"from the reference"
            )
            fresh = run_entry_point(name, engine, pattern, copy)
            assert fresh == reference, (
                f"{name}: from-scratch {engine} engine diverged "
                f"from the reference"
            )


# ----------------------------------------------------------------------
# Query-service differential harness
# ----------------------------------------------------------------------
def permuted_pattern(pattern: Pattern, seed: int) -> Pattern:
    """An isomorphic copy with renamed nodes and shuffled insertion order.

    The adversarial twin for fingerprint tests and the service cache:
    structurally identical to ``pattern`` but sharing no node names, with
    node/edge insertion order reshuffled so nothing about iteration
    order survives either.
    """
    rng = random.Random(seed)
    nodes = list(pattern.nodes())
    names = [f"perm{i}" for i in range(len(nodes))]
    rng.shuffle(names)
    rename = dict(zip(nodes, names))
    entries = [(rename[u], pattern.label(u)) for u in nodes]
    rng.shuffle(entries)
    graph = DiGraph()
    for node, label in entries:
        graph.add_node(node, label)
    edges = [(rename[a], rename[b]) for a, b in pattern.edges()]
    rng.shuffle(edges)
    for a, b in edges:
        graph.add_edge(a, b)
    return Pattern(graph)



#: algorithm name -> (direct runner(pattern, data, engine), canonicalizer).
#: The service contract: MatchService.query(pattern, data, algorithm,
#: engine) observes identically to the direct runner — cache cold, warm,
#: or hit through an isomorphic pattern's fingerprint.
SERVICE_ALGORITHM_RUNNERS = {
    "match-plus": (
        lambda p, g, e: match_plus(p, g, engine=e),
        canonical_result,
    ),
    "match": (lambda p, g, e: match(p, g, engine=e), canonical_result),
    "dual": (
        lambda p, g, e: (
            dual_simulation_kernel(p, g) if e == "kernel"
            else dual_simulation_numpy(p, g) if e == "numpy"
            else dual_simulation(p, g)
        ),
        canonical_relation,
    ),
    "sim": (
        lambda p, g, e: graph_simulation(p, g, engine=e),
        canonical_relation,
    ),
}


def assert_service_identical(
    service,
    pattern: Pattern,
    graph: DiGraph,
    *,
    algorithms: Optional[Tuple[str, ...]] = None,
    engines: Tuple[str, ...] = ENGINES,
) -> None:
    """Assert the service observes identically to direct engine calls.

    Runs every (algorithm, engine) combination through ``service`` and
    compares against the direct entry point — which also cross-checks
    cache hits (second and later submissions of one fingerprint replay
    the stored encoding) against fresh computations.
    """
    for algorithm in algorithms or tuple(SERVICE_ALGORITHM_RUNNERS):
        direct, canonicalize = SERVICE_ALGORITHM_RUNNERS[algorithm]
        for engine in engines:
            expected = canonicalize(direct(pattern, graph, engine))
            observed = canonicalize(
                service.query(pattern, graph, algorithm, engine)
            )
            assert observed == expected, (
                f"service diverged from direct {algorithm} on engine "
                f"{engine!r}"
            )


def assert_service_update_workload_identical(
    service,
    pattern: Pattern,
    graph: DiGraph,
    num_ops: int,
    op_seed: int,
    *,
    algorithms: Optional[Tuple[str, ...]] = None,
    check_every: int = 1,
) -> None:
    """Drive mutations against a graph the service has cached results on.

    After every ``check_every``-th applied mutation the service — whose
    cache heard the deltas and either invalidated or provably retained
    each entry — must still observe identically to direct calls.  This
    is the soundness gate of the delta-invalidation rules: a wrongly
    retained entry would surface here as a stale hit.
    """
    assert_service_identical(
        service, pattern, graph, algorithms=algorithms
    )  # warm the cache before the first mutation
    rng = random.Random(op_seed)
    fresh_node = 20_000 + op_seed
    applied = 0
    for _ in range(num_ops):
        op = random_mutation(rng, graph, fresh_node)
        if op is None:
            continue
        if op[0] == "add_node":
            fresh_node += 1
        applied += 1
        if applied % check_every:
            continue
        assert_service_identical(
            service, pattern, graph, algorithms=algorithms
        )


def assert_update_workload_identical(
    pattern: Pattern,
    graph: DiGraph,
    num_ops: int,
    op_seed: int,
    *,
    assignment: Optional[Dict] = None,
    num_sites: Optional[int] = None,
    check_every: int = 1,
) -> None:
    """Drive a random mutation/query interleaving differentially.

    Mutates ``graph`` in place for ``num_ops`` steps (seeded by
    ``op_seed``), asserting after every ``check_every``-th applied
    mutation that the warm incremental kernel results equal from-scratch
    reference results (see
    :func:`assert_centralized_update_step_identical`).

    With a partition supplied, the same delta stream is also mirrored
    into one live cluster per engine via ``Cluster.apply_update`` and the
    full protocol observation is compared at every checkpoint — the warm
    python cluster vs every warm compiled-engine cluster (bus accounting
    included, so update charges and fetch traffic must agree exactly)
    and all against a cluster built fresh from the mutated graph (result
    set and per-site counts; its bus only ever saw one query).
    """
    get_index(graph)  # prime the warm index before the first mutation
    clusters = {}
    recorder = None
    if assignment is not None and num_sites is not None:
        clusters = {
            engine: Cluster(graph.copy(), dict(assignment), num_sites,
                            engine=engine)
            for engine in ENGINES
        }
        recorder = DeltaRecorder(graph)
    rng = random.Random(op_seed)
    fresh_node = 10_000 + op_seed  # never collides with fixture nodes
    applied = 0
    for _ in range(num_ops):
        op = random_mutation(rng, graph, fresh_node)
        if op is None:
            continue
        if op[0] == "add_node":
            fresh_node += 1
        applied += 1
        if recorder is not None:
            for delta in recorder.drain():
                for cluster in clusters.values():
                    cluster.apply_update(delta)
        if applied % check_every:
            continue
        assert_centralized_update_step_identical(pattern, graph)
        if clusters:
            observed = {
                engine: cluster_observation(cluster.run(pattern))
                for engine, cluster in clusters.items()
            }
            for engine in ENGINES[1:]:
                assert observed["python"] == observed[engine], (
                    f"warm clusters diverged between engines 'python' "
                    f"and {engine!r} after updates"
                )
            fresh_cluster = Cluster(
                graph.copy(),
                dict(clusters["kernel"].assignment),
                num_sites,
                engine="kernel",
            )
            fresh_report = fresh_cluster.run(pattern)
            assert (
                canonical_result(fresh_report.result)
                == observed["kernel"]["result"]
            ), "warm cluster result diverged from a freshly built cluster"
            assert (
                dict(fresh_report.per_site_subgraphs)
                == observed["kernel"]["per_site_subgraphs"]
            ), "warm cluster per-site counts diverged from a fresh cluster"


# ----------------------------------------------------------------------
# Path-matching differential harness (bounded / regular, PR 8)
# ----------------------------------------------------------------------
#: The engines the path algorithms run on (no numpy batch path yet —
#: ROADMAP open item).
PATH_ENGINES_TESTED = ("python", "kernel")

#: Default per-edge bound cycle for mixed-bound patterns: one plain
#: edge, two finite path bounds, one unbounded edge.
BOUND_CYCLE = (1, 2, 3, None)


def mixed_bounds(pattern: Pattern, cycle: Tuple = BOUND_CYCLE) -> Dict:
    """Deterministic mixed per-edge bounds: cycle over sorted edges."""
    edges = sorted(pattern.edges(), key=repr)
    return {edge: cycle[i % len(cycle)] for i, edge in enumerate(edges)}


def canonical_path_observation(
    pattern: Pattern,
    data: DiGraph,
    engine: str,
    *,
    bounds: Optional[Dict] = None,
    constraints: Optional[Dict] = None,
    radius: Optional[int] = None,
) -> Dict[str, Any]:
    """One engine's complete path-matching observation.

    Bounded simulation under ``bounds`` plus regular dual simulation and
    regular strong matching under ``bounds`` + ``constraints`` (wildcard
    ``.*`` constraints when none given — plain hop-bound semantics), all
    in canonical comparable form.
    """
    from repro.core.bounded import BoundedPattern, bounded_simulation
    from repro.core.regular import (
        RegularPattern,
        hop_bounded_pattern,
        regular_dual_simulation,
        regular_strong_match,
    )

    if bounds is None:
        bounds = mixed_bounds(pattern)
    bp = BoundedPattern(pattern, bounds)
    if constraints is None:
        rpattern = hop_bounded_pattern(pattern, bounds)
    else:
        rpattern = RegularPattern(pattern, constraints, bounds)
    return {
        "bounded": canonical_relation(
            bounded_simulation(bp, data, engine=engine)
        ),
        "regular_dual": canonical_relation(
            regular_dual_simulation(rpattern, data, engine=engine)
        ),
        "regular_strong": canonical_result(
            regular_strong_match(rpattern, data, radius=radius, engine=engine)
        ),
    }


def assert_paths_identical(
    pattern: Pattern,
    data: DiGraph,
    *,
    bounds: Optional[Dict] = None,
    constraints: Optional[Dict] = None,
    radius: Optional[int] = None,
) -> None:
    """Assert every path algorithm observes identically on every engine."""
    kwargs = {"bounds": bounds, "constraints": constraints, "radius": radius}
    reference = canonical_path_observation(
        pattern, data, PATH_ENGINES_TESTED[0], **kwargs
    )
    for engine in PATH_ENGINES_TESTED[1:]:
        observed = canonical_path_observation(pattern, data, engine, **kwargs)
        for key in reference:
            assert observed[key] == reference[key], (
                f"{key} diverged between engines "
                f"{PATH_ENGINES_TESTED[0]!r} and {engine!r}"
            )


def assert_paths_containment(pattern: Pattern, data: DiGraph) -> None:
    """The containment chain ``strong ⊆ dual ⊆ bounded(1) = simulation``.

    With every bound 1, bounded simulation *is* plain simulation (checked
    as pair-set equality on both engines); dual simulation refines it and
    the union of strong simulation's per-ball relations refines that.
    """
    from repro.core.bounded import BoundedPattern, bounded_simulation

    sim_pairs = canonical_relation(graph_simulation(pattern, data))
    ones = BoundedPattern(pattern, {e: 1 for e in pattern.edges()})
    for engine in PATH_ENGINES_TESTED:
        assert canonical_relation(
            bounded_simulation(ones, data, engine=engine)
        ) == sim_pairs, (
            f"bounded(1) != simulation on engine {engine!r}"
        )
    dual_pairs = canonical_relation(dual_simulation(pattern, data))
    assert dual_pairs <= sim_pairs, "dual ⊄ simulation"
    strong_pairs = set()
    for subgraph in match(pattern, data):
        strong_pairs |= subgraph.relation.pair_set()
    assert strong_pairs <= dual_pairs, "strong ⊄ dual"


def assert_paths_update_workload_identical(
    pattern: Pattern,
    graph: DiGraph,
    num_ops: int,
    op_seed: int,
    *,
    bounds: Optional[Dict] = None,
    constraints: Optional[Dict] = None,
    check_every: int = 1,
) -> None:
    """Drive random mutations against a warm reach index, differentially.

    Primes the graph's ``GraphIndex`` *and* its ``ReachIndex``, then
    mutates the graph in place (seeded by ``op_seed``), asserting after
    every ``check_every``-th applied mutation that the warm kernel —
    whose labeling was patched in place for insertions and rebuilt only
    after deletions — observes identically to the reference engine on
    the same graph and to a from-scratch kernel compile of a copy.
    """
    from repro.core.reach import get_reach_index

    get_index(graph)
    get_reach_index(graph)  # prime the labeling before the first mutation
    rng = random.Random(op_seed)
    fresh_node = 40_000 + op_seed
    applied = 0
    for _ in range(num_ops):
        op = random_mutation(rng, graph, fresh_node)
        if op is None:
            continue
        if op[0] == "add_node":
            fresh_node += 1
        applied += 1
        if applied % check_every:
            continue
        kwargs = {"bounds": bounds, "constraints": constraints}
        reference = canonical_path_observation(
            pattern, graph, "python", **kwargs
        )
        warm = canonical_path_observation(pattern, graph, "kernel", **kwargs)
        fresh = canonical_path_observation(
            pattern, graph.copy(), "kernel", **kwargs
        )
        for key in reference:
            assert warm[key] == reference[key], (
                f"{key}: warm incremental kernel diverged from the "
                f"reference after updates"
            )
            assert fresh[key] == reference[key], (
                f"{key}: from-scratch kernel diverged from the reference "
                f"after updates"
            )


# ----------------------------------------------------------------------
# Distributed-cache differential harness
# ----------------------------------------------------------------------
def assert_distributed_service_identical(
    pattern: Pattern,
    data: DiGraph,
    assignment: Dict,
    num_sites: int,
    *,
    engines: Tuple[str, ...] = ENGINES,
    backends: Tuple[str, ...] = ("inproc",),
    num_ops: int = 0,
    op_seed: int = 0,
) -> None:
    """Cached vs uncached service vs direct ``cluster.run``, differentially.

    For each backend: one warm cluster per engine over the same
    partition, plus a master graph whose mutation deltas are mirrored
    into every cluster through ``Cluster.apply_update``.  At every
    checkpoint (before the first mutation and after each applied one),
    per engine:

    * a direct ``cluster.run`` fixes the expected per-query observation
      (:func:`distributed_observation`);
    * an uncached service submit (``cached=False``) must match it;
    * a cached service submit must match it — whether it computes, was
      provably retained across the deltas, or replays — and an
      immediately repeated submit must match again *as a replay* (the
      version vector is stable between the two).

    Observations must also agree across engines.  A stale retained
    entry, a wrong version-vector gate, or a lossy run-report encoding
    all surface here as a byte-level divergence.
    """
    from repro.service import MatchService

    for backend in backends:
        master = data.copy()
        recorder = DeltaRecorder(master)
        clusters = {
            engine: Cluster(
                data.copy(), dict(assignment), num_sites,
                engine=engine, backend=backend,
            )
            for engine in engines
        }
        service = MatchService(max_workers=2)
        try:
            def check() -> None:
                observed = {}
                for engine, cluster in clusters.items():
                    direct = distributed_observation(cluster.run(pattern))
                    uncached = distributed_observation(
                        service.query_distributed(
                            pattern, cluster, cached=False
                        )
                    )
                    assert uncached == direct, (
                        f"uncached service diverged from cluster.run "
                        f"({engine=}, {backend=})"
                    )
                    first = distributed_observation(
                        service.query_distributed(pattern, cluster)
                    )
                    assert first == direct, (
                        f"cached service diverged from cluster.run "
                        f"({engine=}, {backend=})"
                    )
                    replayed_before = service.stats.replayed
                    second = distributed_observation(
                        service.query_distributed(pattern, cluster)
                    )
                    assert second == direct, (
                        f"cache replay diverged from cluster.run "
                        f"({engine=}, {backend=})"
                    )
                    assert service.stats.replayed == replayed_before + 1, (
                        f"repeat submit at a stable version vector must "
                        f"replay, not recompute ({engine=}, {backend=})"
                    )
                    observed[engine] = direct
                reference = observed[engines[0]]
                for engine in engines[1:]:
                    assert observed[engine] == reference, (
                        f"distributed observation diverged between engines "
                        f"{engines[0]!r} and {engine!r} ({backend=})"
                    )

            check()
            rng = random.Random(op_seed)
            fresh_node = 30_000 + op_seed
            for _ in range(num_ops):
                op = random_mutation(rng, master, fresh_node)
                if op is None:
                    continue
                if op[0] == "add_node":
                    fresh_node += 1
                for delta in recorder.drain():
                    for cluster in clusters.values():
                        cluster.apply_update(delta)
                check()
        finally:
            service.close()
            for cluster in clusters.values():
                cluster.close()
