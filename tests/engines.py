"""Reusable cross-engine differential harness.

Every matching entry point in the repo runs on two execution engines —
``"python"`` (the reference path, transcribed from the paper's
pseudocode) and ``"kernel"`` (the compiled CSR path of
:mod:`repro.core.kernel` / :mod:`repro.distributed.sitekernel`).  The
engines' contract is *output identity*, and this module is the one place
that knows how to observe each entry point in an engine-independent,
comparable form:

* :data:`ENGINES` / :data:`ENTRY_POINTS` — the matrix under test;
* :func:`run_entry_point` — run one entry point on one engine and return
  its canonical observation;
* :func:`assert_entry_point_identical` /
  :func:`assert_all_entry_points_identical` — the differential asserts;
* :func:`cluster_observation` — the full observable protocol output of a
  distributed run: canonical result set, per-site partial-subgraph
  counts, and the complete message-bus accounting (message count, units
  by kind, units per directed link).

Test modules parametrize over these instead of hand-rolling per-entry
canonicalization; new engines or entry points get differential coverage
by extending the tables here.
"""

from __future__ import annotations

from typing import Any, Dict, Optional

from repro.core.digraph import DiGraph
from repro.core.dualsim import dual_simulation
from repro.core.kernel import dual_simulation_kernel
from repro.core.matchplus import match_plus
from repro.core.pattern import Pattern
from repro.core.simulation import graph_simulation
from repro.core.strong import match
from repro.distributed import Cluster
from repro.distributed.coordinator import DistributedRunReport

ENGINES = ("python", "kernel")


# ----------------------------------------------------------------------
# Canonical forms
# ----------------------------------------------------------------------
def canonical_result(result) -> frozenset:
    """Engine-independent form of a ``MatchResult``.

    The set of (node/edge signature, relation pair set) pairs: discovery
    order and the incidental recorded center may differ between engines,
    the subgraphs and their relations may not.
    """
    return frozenset(
        (sg.signature(), sg.relation.pair_set()) for sg in result
    )


def canonical_relation(relation) -> frozenset:
    """Engine-independent form of a ``MatchRelation``."""
    return relation.pair_set()


def bus_observation(bus) -> Dict[str, Any]:
    """Everything the message bus accounts, in comparable form."""
    return {
        "total_messages": bus.total_messages,
        "total_units": bus.total_units,
        "units_by_kind": bus.units_by_kind(),
        "units_by_link": {
            link: bus.units_between(*link)
            for link in {(m.sender, m.receiver) for m in bus.messages}
        },
        "data_units": bus.data_units(),
    }


def cluster_observation(report: DistributedRunReport) -> Dict[str, Any]:
    """The full observable output of one distributed run."""
    return {
        "result": canonical_result(report.result),
        "per_site_subgraphs": dict(report.per_site_subgraphs),
        "bus": bus_observation(report.bus),
    }


# ----------------------------------------------------------------------
# Entry points
# ----------------------------------------------------------------------
def _run_match(pattern, data, engine, **_):
    return canonical_result(match(pattern, data, engine=engine))


def _run_match_plus(pattern, data, engine, **_):
    return canonical_result(match_plus(pattern, data, engine=engine))


def _run_graph_simulation(pattern, data, engine, **_):
    return canonical_relation(graph_simulation(pattern, data, engine=engine))


def _run_dual_simulation(pattern, data, engine, **_):
    runner = dual_simulation_kernel if engine == "kernel" else dual_simulation
    return canonical_relation(runner(pattern, data))


def _run_cluster(pattern, data, engine, *, assignment=None, num_sites=None):
    if assignment is None or num_sites is None:
        raise ValueError("cluster entry point needs assignment and num_sites")
    cluster = Cluster(data, assignment, num_sites, engine=engine)
    return cluster_observation(cluster.run(pattern))


#: name -> runner(pattern, data, engine, **kwargs) returning a canonical,
#: directly comparable observation.
ENTRY_POINTS = {
    "match": _run_match,
    "match_plus": _run_match_plus,
    "graph_simulation": _run_graph_simulation,
    "dual_simulation": _run_dual_simulation,
    "cluster_run": _run_cluster,
}

#: The entry points that need no cluster setup.
CENTRALIZED_ENTRY_POINTS = (
    "match",
    "match_plus",
    "graph_simulation",
    "dual_simulation",
)


def run_entry_point(
    name: str,
    engine: str,
    pattern: Pattern,
    data: DiGraph,
    *,
    assignment: Optional[Dict] = None,
    num_sites: Optional[int] = None,
):
    """Run one entry point on one engine; return its canonical observation."""
    return ENTRY_POINTS[name](
        pattern, data, engine, assignment=assignment, num_sites=num_sites
    )


def assert_entry_point_identical(
    name: str,
    pattern: Pattern,
    data: DiGraph,
    *,
    assignment: Optional[Dict] = None,
    num_sites: Optional[int] = None,
) -> None:
    """Assert one entry point observes identically on every engine."""
    kwargs = {"assignment": assignment, "num_sites": num_sites}
    reference = run_entry_point(name, ENGINES[0], pattern, data, **kwargs)
    for engine in ENGINES[1:]:
        observed = run_entry_point(name, engine, pattern, data, **kwargs)
        assert observed == reference, (
            f"{name} diverged between engines {ENGINES[0]!r} and {engine!r}"
        )


def assert_all_entry_points_identical(
    pattern: Pattern,
    data: DiGraph,
    *,
    assignment: Optional[Dict] = None,
    num_sites: Optional[int] = None,
) -> None:
    """Differential-check every entry point on (pattern, data).

    The cluster entry point is included whenever a partition is supplied.
    """
    for name in CENTRALIZED_ENTRY_POINTS:
        assert_entry_point_identical(name, pattern, data)
    if assignment is not None and num_sites is not None:
        assert_entry_point_identical(
            "cluster_run",
            pattern,
            data,
            assignment=assignment,
            num_sites=num_sites,
        )
