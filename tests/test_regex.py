"""Tests for the label-regex engine (parser, NFA, graph reachability)."""

import pytest

from repro.core.digraph import DiGraph
from repro.core.regex import (
    RegexSyntaxError,
    compile_regex,
    regex_predecessors,
    regex_successors,
)


class TestWordAcceptance:
    def test_empty_regex_accepts_empty_word(self):
        nfa = compile_regex("")
        assert nfa.accepts_word([])
        assert not nfa.accepts_word(["A"])

    def test_single_label(self):
        nfa = compile_regex("A")
        assert nfa.accepts_word(["A"])
        assert not nfa.accepts_word([])
        assert not nfa.accepts_word(["B"])
        assert not nfa.accepts_word(["A", "A"])

    def test_concatenation(self):
        nfa = compile_regex("A B")
        assert nfa.accepts_word(["A", "B"])
        assert not nfa.accepts_word(["B", "A"])

    def test_alternation(self):
        nfa = compile_regex("A|B")
        assert nfa.accepts_word(["A"])
        assert nfa.accepts_word(["B"])
        assert not nfa.accepts_word(["C"])

    def test_kleene_star(self):
        nfa = compile_regex("A*")
        assert nfa.accepts_word([])
        assert nfa.accepts_word(["A"] * 5)
        assert not nfa.accepts_word(["A", "B"])

    def test_plus(self):
        nfa = compile_regex("A+")
        assert not nfa.accepts_word([])
        assert nfa.accepts_word(["A", "A"])

    def test_optional(self):
        nfa = compile_regex("A?")
        assert nfa.accepts_word([])
        assert nfa.accepts_word(["A"])
        assert not nfa.accepts_word(["A", "A"])

    def test_wildcard(self):
        nfa = compile_regex(". .")
        assert nfa.accepts_word(["X", "Y"])
        assert not nfa.accepts_word(["X"])

    def test_grouping(self):
        nfa = compile_regex("A (B|C)* D")
        assert nfa.accepts_word(["A", "D"])
        assert nfa.accepts_word(["A", "B", "C", "B", "D"])
        assert not nfa.accepts_word(["A", "E", "D"])

    def test_multichar_labels(self):
        nfa = compile_regex("Film&Animation Music*")
        assert nfa.accepts_word(["Film&Animation"])
        assert nfa.accepts_word(["Film&Animation", "Music", "Music"])

    def test_syntax_errors(self):
        with pytest.raises(RegexSyntaxError):
            compile_regex("(A")
        with pytest.raises(RegexSyntaxError):
            compile_regex("A)")
        with pytest.raises(RegexSyntaxError):
            compile_regex("*")


class TestGraphReachability:
    @pytest.fixture
    def chain(self) -> DiGraph:
        # a -> m1 -> m2 -> b, with labels A, M, M, B
        return DiGraph.from_parts(
            {"a": "A", "m1": "M", "m2": "M", "b": "B"},
            [("a", "m1"), ("m1", "m2"), ("m2", "b")],
        )

    def test_empty_regex_is_direct_edge(self, chain):
        nfa = compile_regex("")
        assert regex_successors(chain, "a", nfa) == {"m1"}

    def test_star_skips_intermediates(self, chain):
        nfa = compile_regex("M*")
        assert regex_successors(chain, "a", nfa) == {"m1", "m2", "b"}

    def test_exact_intermediate_count(self, chain):
        nfa = compile_regex("M M")
        assert regex_successors(chain, "a", nfa) == {"b"}

    def test_hop_bound(self, chain):
        nfa = compile_regex("M*")
        assert regex_successors(chain, "a", nfa, max_hops=2) == {"m1", "m2"}

    def test_predecessors_mirror_successors(self, chain):
        nfa = compile_regex("M*")
        # b is regex-reachable from a, m1, m2.
        assert regex_predecessors(chain, "b", nfa) == {"a", "m1", "m2"}

    def test_predecessor_word_order(self):
        # s -> x(X) -> y(Y) -> t : word from s to t is "X Y".
        g = DiGraph.from_parts(
            {"s": "S", "x": "X", "y": "Y", "t": "T"},
            [("s", "x"), ("x", "y"), ("y", "t")],
        )
        forward = compile_regex("X Y")
        assert regex_successors(g, "s", forward) == {"t"}
        assert regex_predecessors(g, "t", forward) == {"s"}
        backward = compile_regex("Y X")
        assert regex_successors(g, "s", backward) == set()
        assert regex_predecessors(g, "t", backward) == set()

    def test_cycle_termination(self):
        g = DiGraph.from_parts(
            {"a": "A", "b": "B"},
            [("a", "b"), ("b", "a")],
        )
        nfa = compile_regex("(A|B)*")
        # Must terminate despite the cycle and find both nodes.
        assert regex_successors(g, "a", nfa) == {"a", "b"}

    def test_no_match(self, chain):
        nfa = compile_regex("Z")
        assert regex_successors(chain, "a", nfa) == set()
