"""Accounting invariants of the message bus and the worker fetch path.

The Section 4.3 claim is quantitative, so the accounting machinery in
:mod:`repro.distributed.network` and the fetch/caching discipline in
:mod:`repro.distributed.worker` are load-bearing: a double-charged or
silently-dropped fetch would invalidate every traffic number the
benchmarks report.  These tests pin the previously untested failure
paths: the fetch-once-per-query cache (on both engines), monotonicity of
``data_units()``, kind/link/total consistency, and the ownership errors
a mis-routed ``serve_node`` must raise.
"""

from __future__ import annotations

import pytest

from repro.core.digraph import DiGraph
from repro.datasets.patterns import sample_pattern_from_data
from repro.distributed import Cluster, MessageBus, hash_partition
from repro.distributed.fragment import fragment_graph
from repro.distributed.network import Message
from repro.distributed.worker import SiteWorker
from repro.exceptions import DistributedError

from tests.engines import ENGINES


def two_site_setup():
    """A 4-node line graph split across two sites, with wired workers."""
    graph = DiGraph.from_parts(
        {"a": "A", "b": "B", "c": "A", "d": "B"},
        [("a", "b"), ("b", "c"), ("c", "d")],
    )
    assignment = {"a": 0, "b": 0, "c": 1, "d": 1}
    bus = MessageBus()
    fragments = fragment_graph(graph, assignment, 2)
    workers = {
        fragment.site_id: SiteWorker(fragment, bus)
        for fragment in fragments
    }
    for worker in workers.values():
        worker.connect(workers)
    return graph, workers, bus


class TestMessageBusInvariants:
    def test_kind_totals_sum_to_total_units(self):
        bus = MessageBus()
        bus.send(-1, 0, "query", 3)
        bus.send(0, 1, "fetch", 7)
        bus.send(1, 0, "fetch", 2)
        bus.send(0, -1, "result", 5)
        assert sum(bus.units_by_kind().values()) == bus.total_units == 17
        assert bus.total_messages == 4

    def test_link_totals_sum_to_total_units(self):
        bus = MessageBus()
        bus.send(0, 1, "fetch", 4)
        bus.send(0, 1, "fetch", 6)
        bus.send(1, 0, "fetch", 1)
        assert bus.units_between(0, 1) == 10
        assert bus.units_between(1, 0) == 1
        assert bus.units_between(1, 2) == 0  # silent zero for unused links
        assert bus.total_units == 11

    def test_data_units_counts_only_fetch_traffic(self):
        bus = MessageBus()
        bus.send(-1, 0, "query", 100)
        bus.send(0, -1, "result", 100)
        assert bus.data_units() == 0
        bus.send(1, 0, "fetch", 9)
        assert bus.data_units() == 9

    def test_data_units_monotone_under_sends(self):
        bus = MessageBus()
        previous = bus.data_units()
        for i, kind in enumerate(("query", "fetch", "result", "fetch")):
            bus.send(0, 1, kind, i + 1)
            current = bus.data_units()
            assert current >= previous
            previous = current
        assert previous == 2 + 4

    def test_zero_unit_messages_count_as_messages(self):
        """An empty partial result still ships a (zero-unit) message —
        message count and unit volume are independent measures."""
        bus = MessageBus()
        bus.send(0, -1, "result", 0)
        assert bus.total_messages == 1
        assert bus.total_units == 0

    def test_messages_record_full_metadata(self):
        bus = MessageBus()
        bus.send(3, 5, "fetch", 11)
        assert bus.messages == [Message(3, 5, "fetch", 11)]


class TestWorkerFetchAccounting:
    def test_fetch_charged_once_per_query(self):
        _, workers, bus = two_site_setup()
        worker = workers[0]
        first = worker._record_for("c")
        units_after_first = bus.data_units()
        assert units_after_first == 1 + len(first[1]) + len(first[2])
        assert worker._record_for("c") == first
        assert bus.data_units() == units_after_first  # cache hit: no charge
        assert bus.total_messages == 1

    def test_clear_cache_recharges_next_query(self):
        _, workers, bus = two_site_setup()
        worker = workers[0]
        worker._record_for("c")
        charged = bus.data_units()
        worker.clear_cache()
        worker._record_for("c")
        assert bus.data_units() == 2 * charged
        assert bus.total_messages == 2

    def test_owned_nodes_are_never_charged(self):
        _, workers, bus = two_site_setup()
        workers[0]._record_for("a")
        workers[0]._record_for("b")
        assert bus.total_messages == 0
        assert bus.data_units() == 0

    @pytest.mark.parametrize("engine", ENGINES)
    def test_fetch_once_per_query_through_matching(self, engine):
        """A full per-site match visits remote nodes through many balls;
        the per-query cache must still ship each record exactly once, on
        either engine."""
        graph, _, _ = two_site_setup()
        assignment = {"a": 0, "b": 0, "c": 1, "d": 1}
        pattern = sample_pattern_from_data(graph, 2, seed=1)
        assert pattern is not None
        cluster = Cluster(graph, assignment, 2, engine=engine)
        report = cluster.run(pattern)
        fetch_messages = [
            m for m in report.bus.messages if m.kind == "fetch"
        ]
        # Each (requesting site, fetched node) pair is charged at most
        # once: with 2 sites and 4 nodes there can be no more fetch
        # messages than remote nodes visible to each site.
        per_receiver = {}
        for message in fetch_messages:
            per_receiver.setdefault(message.receiver, 0)
            per_receiver[message.receiver] += 1
        for site, count in per_receiver.items():
            remote_nodes = 4 - cluster.workers[site].fragment.num_nodes
            assert count <= remote_nodes

    def test_repeated_queries_charge_identically(self):
        """data_units() grows by the same amount every query — the
        per-query reset must neither double-charge nor carry paid-for
        records across queries."""
        graph, _, _ = two_site_setup()
        assignment = {"a": 0, "b": 0, "c": 1, "d": 1}
        pattern = sample_pattern_from_data(graph, 2, seed=1)
        assert pattern is not None
        for engine in ENGINES:
            cluster = Cluster(graph, assignment, 2, engine=engine)
            deltas = []
            previous = 0
            for _ in range(3):
                current = cluster.run(pattern).bus.data_units()
                deltas.append(current - previous)
                previous = current
            assert deltas[0] > 0
            assert deltas[0] == deltas[1] == deltas[2]


class TestServeNodeOwnership:
    def test_serve_node_rejects_foreign_node(self):
        _, workers, _ = two_site_setup()
        with pytest.raises(DistributedError, match="does not own"):
            workers[0].serve_node("c")

    def test_serve_node_rejects_unknown_node(self):
        _, workers, _ = two_site_setup()
        with pytest.raises(DistributedError, match="does not own"):
            workers[1].serve_node("ghost")

    def test_locate_owner_raises_for_unowned_node(self):
        _, workers, _ = two_site_setup()
        with pytest.raises(DistributedError, match="no site owns"):
            workers[0]._locate_owner("ghost")

    def test_fetching_unknown_node_raises_not_charges(self):
        _, workers, bus = two_site_setup()
        with pytest.raises(DistributedError):
            workers[0]._record_for("ghost")
        assert bus.total_messages == 0
