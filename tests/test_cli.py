"""Tests for the command-line interface."""

import json

import pytest

from repro.cli import build_parser, main
from repro.core.pattern import Pattern
from repro.io.jsonio import pattern_to_dict, write_graph_json
from repro.datasets.paper_figures import data_g2, pattern_q2


@pytest.fixture
def graph_file(tmp_path):
    path = tmp_path / "g2.json"
    write_graph_json(data_g2(), path)
    return str(path)


@pytest.fixture
def pattern_file(tmp_path):
    path = tmp_path / "q2.json"
    path.write_text(json.dumps(pattern_to_dict(pattern_q2())))
    return str(path)


class TestParser:
    def test_requires_subcommand(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_match_defaults(self):
        args = build_parser().parse_args(
            ["match", "--data", "d", "--pattern", "p"]
        )
        assert args.algorithm == "strong-plus"
        assert args.format == "json"


class TestMatchCommand:
    def test_strong_match(self, graph_file, pattern_file, capsys):
        code = main(["match", "--data", graph_file, "--pattern", pattern_file])
        assert code == 0
        out = capsys.readouterr().out
        assert "perfect subgraph" in out
        assert "book2" in out

    def test_plain_strong_algorithm(self, graph_file, pattern_file, capsys):
        code = main([
            "match", "--data", graph_file, "--pattern", pattern_file,
            "--algorithm", "strong",
        ])
        assert code == 0
        assert "book2" in capsys.readouterr().out

    def test_sim_algorithm(self, graph_file, pattern_file, capsys):
        code = main([
            "match", "--data", graph_file, "--pattern", pattern_file,
            "--algorithm", "sim",
        ])
        assert code == 0
        out = capsys.readouterr().out
        assert "book1" in out  # simulation keeps the bad book

    def test_dual_algorithm(self, graph_file, pattern_file, capsys):
        code = main([
            "match", "--data", graph_file, "--pattern", pattern_file,
            "--algorithm", "dual",
        ])
        assert code == 0
        out = capsys.readouterr().out
        assert "book2" in out
        assert "book1" not in out

    def test_no_match_exit_code(self, tmp_path, graph_file, capsys):
        pattern = Pattern.build({"z": "ZZZ"}, [])
        path = tmp_path / "never.json"
        path.write_text(json.dumps(pattern_to_dict(pattern)))
        code = main(["match", "--data", graph_file, "--pattern", str(path)])
        assert code == 1
        assert "no match" in capsys.readouterr().out

    def test_top_k_and_out(self, tmp_path, graph_file, pattern_file, capsys):
        out_path = tmp_path / "result.json"
        code = main([
            "match", "--data", graph_file, "--pattern", pattern_file,
            "--top", "1", "--out", str(out_path),
        ])
        assert code == 0
        payload = json.loads(out_path.read_text())
        assert payload["num_subgraphs"] >= 1


class TestGenerateAndInfo:
    def test_generate_synthetic_json(self, tmp_path, capsys):
        out = tmp_path / "syn.json"
        code = main([
            "generate", "--kind", "synthetic", "--nodes", "30",
            "--labels", "4", "--out", str(out),
        ])
        assert code == 0
        payload = json.loads(out.read_text())
        assert len(payload["nodes"]) == 30

    def test_generate_amazon_edgelist(self, tmp_path, capsys):
        out = tmp_path / "amz.txt"
        code = main([
            "generate", "--kind", "amazon", "--nodes", "50",
            "--format", "edgelist", "--out", str(out),
        ])
        assert code == 0
        assert out.exists()

    def test_info(self, graph_file, capsys):
        code = main(["info", "--data", graph_file])
        assert code == 0
        out = capsys.readouterr().out
        assert "nodes:  5" in out
        assert "connected components" in out

    def test_info_edgelist_roundtrip(self, tmp_path, capsys):
        out = tmp_path / "g.txt"
        main([
            "generate", "--kind", "youtube", "--nodes", "40",
            "--format", "edgelist", "--out", str(out),
        ])
        capsys.readouterr()
        code = main(["info", "--data", str(out), "--format", "edgelist"])
        assert code == 0
        assert "nodes:  40" in capsys.readouterr().out


class TestDistributedCommand:
    def test_single_run_has_no_cache_line(
        self, graph_file, pattern_file, capsys
    ):
        code = main([
            "distributed", "--data", graph_file, "--pattern", pattern_file,
            "--sites", "2",
        ])
        assert code == 0
        out = capsys.readouterr().out
        assert "data shipment" in out
        assert "distributed cache" not in out

    def test_repeat_reports_cache_accounting(
        self, graph_file, pattern_file, capsys
    ):
        code = main([
            "distributed", "--data", graph_file, "--pattern", pattern_file,
            "--sites", "2", "--repeat", "3",
        ])
        assert code == 0
        out = capsys.readouterr().out
        assert "distributed cache: 1 computed, 2 replayed over 3 runs" in out
        assert "version vector (0, 0)" in out


@pytest.fixture
def paths_spec_file(tmp_path):
    path = tmp_path / "spec.json"
    path.write_text(json.dumps({
        "edges": [
            {"source": "ST", "target": "B", "bound": 2},
            {"source": "TE", "target": "B", "bound": None, "regex": ".*"},
        ],
        "radius": 3,
    }))
    return str(path)


class TestPathAlgorithms:
    def test_bounded_algorithm(self, tmp_path, graph_file, pattern_file,
                               capsys):
        spec = tmp_path / "bounds.json"
        spec.write_text(json.dumps({"edges": [
            {"source": "ST", "target": "B", "bound": 2},
            {"source": "TE", "target": "B", "bound": None},
        ]}))
        code = main([
            "match", "--data", graph_file, "--pattern", pattern_file,
            "--algorithm", "bounded", "--paths-spec", str(spec),
        ])
        assert code == 0
        assert "match relation" in capsys.readouterr().out

    def test_bounded_without_spec_defaults_to_simulation(
        self, graph_file, pattern_file, capsys
    ):
        code = main([
            "match", "--data", graph_file, "--pattern", pattern_file,
            "--algorithm", "bounded",
        ])
        assert code == 0
        assert "match relation" in capsys.readouterr().out

    def test_regular_algorithm(self, graph_file, pattern_file,
                               paths_spec_file, capsys):
        code = main([
            "match", "--data", graph_file, "--pattern", pattern_file,
            "--algorithm", "regular", "--paths-spec", paths_spec_file,
        ])
        assert code == 0
        assert "perfect subgraph" in capsys.readouterr().out

    def test_engines_agree(self, graph_file, pattern_file, paths_spec_file,
                           capsys):
        outputs = {}
        for engine in ("python", "kernel"):
            code = main([
                "match", "--data", graph_file, "--pattern", pattern_file,
                "--algorithm", "regular", "--paths-spec", paths_spec_file,
                "--engine", engine,
            ])
            assert code == 0
            outputs[engine] = capsys.readouterr().out
        assert outputs["python"] == outputs["kernel"]

    def test_regex_in_bounded_spec_rejected(self, graph_file, pattern_file,
                                            paths_spec_file, capsys):
        code = main([
            "match", "--data", graph_file, "--pattern", pattern_file,
            "--algorithm", "bounded", "--paths-spec", paths_spec_file,
        ])
        assert code == 2
        assert "regular" in capsys.readouterr().out

    def test_numpy_engine_rejected(self, graph_file, pattern_file, capsys):
        code = main([
            "match", "--data", graph_file, "--pattern", pattern_file,
            "--algorithm", "bounded", "--engine", "numpy",
        ])
        assert code == 2
        assert "numpy" in capsys.readouterr().out

    def test_bad_spec_edge_rejected(self, tmp_path, graph_file, pattern_file,
                                    capsys):
        spec = tmp_path / "bad.json"
        spec.write_text(json.dumps({"edges": [
            {"source": "B", "target": "ST", "bound": 2},  # not a pattern edge
        ]}))
        code = main([
            "match", "--data", graph_file, "--pattern", pattern_file,
            "--algorithm", "bounded", "--paths-spec", str(spec),
        ])
        assert code == 2
        assert "bad paths spec" in capsys.readouterr().out

    def test_spec_with_other_algorithm_rejected(self, graph_file,
                                                pattern_file, paths_spec_file,
                                                capsys):
        code = main([
            "match", "--data", graph_file, "--pattern", pattern_file,
            "--algorithm", "dual", "--paths-spec", paths_spec_file,
        ])
        assert code == 2
        assert "--paths-spec" in capsys.readouterr().out
