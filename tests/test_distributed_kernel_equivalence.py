"""Cross-engine differential tests: distributed protocol + all entry points.

The contract under test (via the :mod:`tests.engines` harness): for every
entry point — ``match``, ``match_plus``, ``graph_simulation``,
``dual_simulation`` and ``Cluster.run`` — the ``"kernel"`` and
``"python"`` engines are *output-identical*.  For the distributed
protocol that identity is three-fold: the deduplicated result set Θ, the
per-site partial-subgraph counts, and the complete message-bus
accounting (message count, units per kind, units per directed link —
hence also the Section 4.3 data-shipment volume).
"""

from __future__ import annotations

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.strong import match
from repro.distributed import (
    PARTITIONERS,
    Cluster,
    bfs_partition,
    crossing_ball_bound,
    hash_partition,
)
from repro.datasets.paper_figures import data_g1, pattern_q1
from repro.datasets.patterns import sample_pattern_from_data

from tests.conftest import (
    graph_seeds,
    pattern_seeds,
    random_connected_pattern,
    random_digraph,
)
from tests.engines import (
    CENTRALIZED_ENTRY_POINTS,
    ENGINES,
    assert_all_entry_points_identical,
    assert_entry_point_identical,
    canonical_result,
    cluster_observation,
    run_entry_point,
)

def random_assignment(data, num_sites: int, seed: int):
    """An arbitrary (not locality-aware) node-to-site assignment."""
    rng = random.Random(seed)
    return {node: rng.randrange(num_sites) for node in data.nodes()}


# ----------------------------------------------------------------------
# Centralized entry points over the fixture corpus
# ----------------------------------------------------------------------
class TestCentralizedEntryPoints:
    @pytest.mark.parametrize("name", CENTRALIZED_ENTRY_POINTS)
    def test_paper_figure(self, name, q1, g1):
        assert_entry_point_identical(name, q1, g1)

    @pytest.mark.parametrize("name", CENTRALIZED_ENTRY_POINTS)
    def test_small_synthetic(self, name, small_synthetic):
        for seed in range(4):
            pattern = sample_pattern_from_data(small_synthetic, 4, seed=seed)
            if pattern is None:
                continue
            assert_entry_point_identical(name, pattern, small_synthetic)

    @pytest.mark.parametrize("name", CENTRALIZED_ENTRY_POINTS)
    @settings(max_examples=25, deadline=None)
    @given(seed=graph_seeds, pattern_seed=pattern_seeds)
    def test_random_graphs(self, name, seed, pattern_seed):
        data = random_digraph(seed, max_nodes=12, edge_prob=0.3)
        pattern = random_connected_pattern(pattern_seed, max_nodes=4)
        assert_entry_point_identical(name, pattern, data)


# ----------------------------------------------------------------------
# Distributed protocol: fixtures × partitioners × site counts
# ----------------------------------------------------------------------
class TestClusterEquivalence:
    @pytest.mark.parametrize("num_sites", [1, 2, 3, 5])
    @pytest.mark.parametrize("partitioner", sorted(PARTITIONERS))
    def test_paper_figure_full_matrix(self, partitioner, num_sites):
        pattern, data = pattern_q1(), data_g1(4)
        assignment = PARTITIONERS[partitioner](data, num_sites)
        assert_entry_point_identical(
            "cluster_run",
            pattern,
            data,
            assignment=assignment,
            num_sites=num_sites,
        )

    @pytest.mark.parametrize("partitioner", sorted(PARTITIONERS))
    def test_synthetic_all_partitioners(self, partitioner, small_synthetic):
        pattern = sample_pattern_from_data(small_synthetic, 4, seed=2)
        assert pattern is not None
        assignment = PARTITIONERS[partitioner](small_synthetic, 3)
        assert_all_entry_points_identical(
            pattern,
            small_synthetic,
            assignment=assignment,
            num_sites=3,
        )

    def test_kernel_cluster_matches_centralized_and_bound(
        self, small_synthetic
    ):
        """The kernel cluster returns the centralized Θ and respects the
        Section 4.3 shipment bound, like the reference cluster."""
        pattern = sample_pattern_from_data(small_synthetic, 4, seed=3)
        assert pattern is not None
        central = canonical_result(
            match(pattern, small_synthetic, engine="python")
        )
        assignment = hash_partition(small_synthetic, 4)
        bound = crossing_ball_bound(
            small_synthetic, assignment, pattern.diameter
        )
        for engine in ENGINES:
            cluster = Cluster(small_synthetic, assignment, 4, engine=engine)
            report = cluster.run(pattern)
            assert canonical_result(report.result) == central
            assert report.data_shipment_units <= bound

    def test_multi_query_cluster_stays_in_lockstep(self, small_synthetic):
        """Across several queries on one long-lived cluster, both engines
        re-fetch after the per-query cache clear, so the *cumulative*
        accounting stays identical (the per-site index reuse must not
        leak paid-for records into the next query)."""
        patterns = [
            sample_pattern_from_data(small_synthetic, size, seed=seed)
            for size, seed in ((3, 1), (4, 2), (3, 1))
        ]
        assignment = bfs_partition(small_synthetic, 3)
        clusters = {
            engine: Cluster(small_synthetic, assignment, 3, engine=engine)
            for engine in ENGINES
        }
        for pattern in patterns:
            assert pattern is not None
            observations = {
                engine: cluster_observation(clusters[engine].run(pattern))
                for engine in ENGINES
            }
            reference = observations[ENGINES[0]]
            for engine in ENGINES[1:]:
                assert observations[engine] == reference

    def test_engine_override_per_query(self, small_synthetic):
        pattern = sample_pattern_from_data(small_synthetic, 3, seed=5)
        assert pattern is not None
        assignment = hash_partition(small_synthetic, 2)
        cluster = Cluster(small_synthetic, assignment, 2, engine="python")
        default_run = cluster_observation(cluster.run(pattern))
        override_run = cluster_observation(
            cluster.run(pattern, engine="kernel")
        )
        assert override_run["result"] == default_run["result"]
        assert (
            override_run["per_site_subgraphs"]
            == default_run["per_site_subgraphs"]
        )

    def test_invalid_engine_rejected_before_running(self, small_synthetic):
        assignment = hash_partition(small_synthetic, 2)
        with pytest.raises(ValueError):
            Cluster(small_synthetic, assignment, 2, engine="fortran")
        cluster = Cluster(small_synthetic, assignment, 2)
        pattern = sample_pattern_from_data(small_synthetic, 3, seed=5)
        assert pattern is not None
        with pytest.raises(ValueError):
            cluster.run(pattern, engine="fortran")
        # "numpy" is a real engine now: accepted and output-identical.
        numpy_cluster = Cluster(small_synthetic, assignment, 2, engine="numpy")
        kernel_cluster = Cluster(small_synthetic, assignment, 2, engine="kernel")
        assert cluster_observation(numpy_cluster.run(pattern)) == (
            cluster_observation(kernel_cluster.run(pattern))
        )


# ----------------------------------------------------------------------
# Randomized distributed equivalence (hypothesis shrinks over seeds)
# ----------------------------------------------------------------------
class TestRandomizedClusterEquivalence:
    @settings(max_examples=20, deadline=None)
    @given(
        seed=graph_seeds,
        pattern_seed=pattern_seeds,
        num_sites=st.integers(min_value=1, max_value=4),
    )
    def test_random_graphs_random_assignments(
        self, seed, pattern_seed, num_sites
    ):
        data = random_digraph(seed, max_nodes=12, edge_prob=0.3)
        pattern = random_connected_pattern(pattern_seed, max_nodes=3)
        assignment = random_assignment(data, num_sites, seed + pattern_seed)
        assert_entry_point_identical(
            "cluster_run",
            pattern,
            data,
            assignment=assignment,
            num_sites=num_sites,
        )

    @settings(max_examples=10, deadline=None)
    @given(seed=graph_seeds, num_sites=st.integers(min_value=2, max_value=4))
    def test_sampled_pattern_nonempty_results(self, seed, num_sites):
        """Bias toward runs that actually produce matches: patterns
        sampled from the data graph itself."""
        data = random_digraph(seed, max_nodes=14, edge_prob=0.3)
        pattern = sample_pattern_from_data(data, 3, seed=seed)
        if pattern is None:
            pattern = random_connected_pattern(seed, max_nodes=3)
        assignment = random_assignment(data, num_sites, seed * 31 + 7)
        observed = {
            engine: run_entry_point(
                "cluster_run",
                engine,
                pattern,
                data,
                assignment=assignment,
                num_sites=num_sites,
            )
            for engine in ENGINES
        }
        reference = observed[ENGINES[0]]
        for engine in ENGINES[1:]:
            assert observed[engine] == reference
        # And the distributed result agrees with centralized Match.
        assert reference["result"] == canonical_result(
            match(pattern, data, engine="python")
        )
