"""Unit tests for bounded simulation (the Fan et al. 2010 extension)."""

import pytest

from repro.core.bounded import (
    BoundedPattern,
    bounded_simulation,
    matches_via_bounded_simulation,
)
from repro.core.digraph import DiGraph
from repro.core.pattern import Pattern
from repro.core.simulation import graph_simulation
from repro.exceptions import PatternError


def chain_data(n: int) -> DiGraph:
    g = DiGraph()
    g.add_node(0, "A")
    for i in range(1, n):
        g.add_node(i, "M")
        g.add_edge(i - 1, i)
    g.relabel_node(n - 1, "B")
    return g


class TestBoundedPattern:
    def test_default_bound_is_one(self):
        p = Pattern.build({"a": "A", "b": "B"}, [("a", "b")])
        bp = BoundedPattern(p)
        assert bp.bound(("a", "b")) == 1

    def test_bound_for_non_edge_rejected(self):
        p = Pattern.build({"a": "A", "b": "B"}, [("a", "b")])
        with pytest.raises(PatternError):
            BoundedPattern(p, {("b", "a"): 2})

    def test_non_positive_bound_rejected(self):
        p = Pattern.build({"a": "A", "b": "B"}, [("a", "b")])
        with pytest.raises(PatternError):
            BoundedPattern(p, {("a", "b"): 0})


class TestBoundedSimulation:
    def test_bound_one_equals_simulation(self):
        p = Pattern.build({"a": "A", "b": "B"}, [("a", "b")])
        data = chain_data(2)
        bounded = bounded_simulation(BoundedPattern(p), data)
        plain = graph_simulation(p, data)
        assert bounded == plain

    def test_hop_bound_respected(self):
        p = Pattern.build({"a": "A", "b": "B"}, [("a", "b")])
        data = chain_data(4)  # A -> M -> M -> B: distance 3
        assert not matches_via_bounded_simulation(
            BoundedPattern(p, {("a", "b"): 2}), data
        )
        assert matches_via_bounded_simulation(
            BoundedPattern(p, {("a", "b"): 3}), data
        )

    def test_unbounded_reachability(self):
        p = Pattern.build({"a": "A", "b": "B"}, [("a", "b")])
        data = chain_data(9)
        assert matches_via_bounded_simulation(
            BoundedPattern(p, {("a", "b"): None}), data
        )

    def test_direction_matters(self):
        p = Pattern.build({"b": "B", "a": "A"}, [("b", "a")])
        data = chain_data(3)  # edges point A -> ... -> B only
        assert not matches_via_bounded_simulation(
            BoundedPattern(p, {("b", "a"): None}), data
        )

    def test_cycle_self_reachability(self):
        p = Pattern.build({"x": "X", "y": "X"}, [("x", "y"), ("y", "x")])
        data = DiGraph.from_parts(
            {0: "X", 1: "X", 2: "X"},
            [(0, 1), (1, 2), (2, 0)],
        )
        bp = BoundedPattern(p, {("x", "y"): 2, ("y", "x"): 2})
        rel = bounded_simulation(bp, data)
        assert rel.matches_of("x") == frozenset({0, 1, 2})

    def test_failure_collapses(self):
        p = Pattern.build({"a": "A", "b": "B"}, [("a", "b")])
        data = DiGraph.from_parts({0: "A"}, [])
        rel = bounded_simulation(BoundedPattern(p, {("a", "b"): 5}), data)
        assert rel.is_empty()

    def test_strong_simulation_matches_subset_of_bounded(self):
        """Containment chain: strong matches are bounded(1) matches."""
        from repro.core.strong import match
        from repro.datasets.paper_figures import data_g1, pattern_q1

        pattern, data = pattern_q1(), data_g1()
        bounded = bounded_simulation(BoundedPattern(pattern), data)
        strong_nodes = match(pattern, data).matched_data_nodes()
        assert strong_nodes <= bounded.data_nodes()
