"""Unit tests for bounded simulation (the Fan et al. 2010 extension)."""

import pytest

from repro.core.bounded import (
    BoundedPattern,
    bounded_simulation,
    matches_via_bounded_simulation,
)
from repro.core.digraph import DiGraph
from repro.core.pattern import Pattern
from repro.core.simulation import graph_simulation
from repro.exceptions import PatternError


def chain_data(n: int) -> DiGraph:
    g = DiGraph()
    g.add_node(0, "A")
    for i in range(1, n):
        g.add_node(i, "M")
        g.add_edge(i - 1, i)
    g.relabel_node(n - 1, "B")
    return g


class TestBoundedPattern:
    def test_default_bound_is_one(self):
        p = Pattern.build({"a": "A", "b": "B"}, [("a", "b")])
        bp = BoundedPattern(p)
        assert bp.bound(("a", "b")) == 1

    def test_bound_for_non_edge_rejected(self):
        p = Pattern.build({"a": "A", "b": "B"}, [("a", "b")])
        with pytest.raises(PatternError):
            BoundedPattern(p, {("b", "a"): 2})

    def test_non_positive_bound_rejected(self):
        p = Pattern.build({"a": "A", "b": "B"}, [("a", "b")])
        with pytest.raises(PatternError):
            BoundedPattern(p, {("a", "b"): 0})


class TestBoundedSimulation:
    def test_bound_one_equals_simulation(self):
        p = Pattern.build({"a": "A", "b": "B"}, [("a", "b")])
        data = chain_data(2)
        bounded = bounded_simulation(BoundedPattern(p), data)
        plain = graph_simulation(p, data)
        assert bounded == plain

    def test_hop_bound_respected(self):
        p = Pattern.build({"a": "A", "b": "B"}, [("a", "b")])
        data = chain_data(4)  # A -> M -> M -> B: distance 3
        assert not matches_via_bounded_simulation(
            BoundedPattern(p, {("a", "b"): 2}), data
        )
        assert matches_via_bounded_simulation(
            BoundedPattern(p, {("a", "b"): 3}), data
        )

    def test_unbounded_reachability(self):
        p = Pattern.build({"a": "A", "b": "B"}, [("a", "b")])
        data = chain_data(9)
        assert matches_via_bounded_simulation(
            BoundedPattern(p, {("a", "b"): None}), data
        )

    def test_direction_matters(self):
        p = Pattern.build({"b": "B", "a": "A"}, [("b", "a")])
        data = chain_data(3)  # edges point A -> ... -> B only
        assert not matches_via_bounded_simulation(
            BoundedPattern(p, {("b", "a"): None}), data
        )

    def test_cycle_self_reachability(self):
        p = Pattern.build({"x": "X", "y": "X"}, [("x", "y"), ("y", "x")])
        data = DiGraph.from_parts(
            {0: "X", 1: "X", 2: "X"},
            [(0, 1), (1, 2), (2, 0)],
        )
        bp = BoundedPattern(p, {("x", "y"): 2, ("y", "x"): 2})
        rel = bounded_simulation(bp, data)
        assert rel.matches_of("x") == frozenset({0, 1, 2})

    def test_failure_collapses(self):
        p = Pattern.build({"a": "A", "b": "B"}, [("a", "b")])
        data = DiGraph.from_parts({0: "A"}, [])
        rel = bounded_simulation(BoundedPattern(p, {("a", "b"): 5}), data)
        assert rel.is_empty()

    def test_strong_simulation_matches_subset_of_bounded(self):
        """Containment chain: strong matches are bounded(1) matches."""
        from repro.core.strong import match
        from repro.datasets.paper_figures import data_g1, pattern_q1

        pattern, data = pattern_q1(), data_g1()
        bounded = bounded_simulation(BoundedPattern(pattern), data)
        strong_nodes = match(pattern, data).matched_data_nodes()
        assert strong_nodes <= bounded.data_nodes()


class TestCycleBackBoundSemantics:
    """The bound applies to the cycle back to the source too.

    A 3-cycle reaches its own source in exactly 3 hops: bound 2 must
    exclude it, bound 3 (and unbounded) must include it.  The original
    implementation patched the source in with a bound-oblivious fixup
    after the BFS; these tests pin the corrected in-BFS detection.
    """

    def _three_cycle(self) -> DiGraph:
        return DiGraph.from_parts(
            {0: "X", 1: "X", 2: "X"}, [(0, 1), (1, 2), (2, 0)]
        )

    def test_cycle_longer_than_bound_excluded(self):
        from repro.core.bounded import _ReachabilityOracle

        oracle = _ReachabilityOracle(self._three_cycle())
        assert oracle.reachable_set(0, 2) == {1, 2}

    def test_cycle_within_bound_included(self):
        from repro.core.bounded import _ReachabilityOracle

        oracle = _ReachabilityOracle(self._three_cycle())
        assert 0 in oracle.reachable_set(0, 3)
        assert 0 in oracle.reachable_set(0, None)

    def test_self_loop_is_depth_one(self):
        from repro.core.bounded import _ReachabilityOracle

        g = DiGraph.from_parts({0: "X", 1: "X"}, [(0, 0), (0, 1)])
        oracle = _ReachabilityOracle(g)
        assert 0 in oracle.reachable_set(0, 1)

    def test_matching_respects_cycle_bound(self):
        p = Pattern.build({"x": "X", "y": "X"}, [("x", "y"), ("y", "x")])
        data = self._three_cycle()
        # Bound 2 per edge: every pair is witnessed by the two forward
        # hops, so the relation is total.
        total = bounded_simulation(
            BoundedPattern(p, {("x", "y"): 2, ("y", "x"): 2}), data
        )
        assert total.matches_of("x") == frozenset({0, 1, 2})
        # With distinct labels the only witness for a pattern self-loop
        # is the node itself: the 3-cycle closes in 3 hops, so bound 2
        # fails and bound 3 succeeds.
        distinct = DiGraph.from_parts(
            {0: "X", 1: "Y", 2: "Z"}, [(0, 1), (1, 2), (2, 0)]
        )
        loop = Pattern.build({"x": "X"}, [("x", "x")])
        assert bounded_simulation(
            BoundedPattern(loop, {("x", "x"): 2}), distinct
        ).is_empty()
        assert not bounded_simulation(
            BoundedPattern(loop, {("x", "x"): 3}), distinct
        ).is_empty()
