"""Unit tests for connected components and SCCs, cross-checked vs networkx."""

import networkx as nx
import pytest
from hypothesis import given, settings

from repro.core.components import (
    component_containing,
    component_containing_restricted,
    condensation,
    connected_components,
    strongly_connected_components,
)
from repro.core.digraph import DiGraph
from repro.exceptions import NodeNotFound
from tests.conftest import graph_seeds, random_digraph


def to_networkx(graph: DiGraph) -> nx.DiGraph:
    nxg = nx.DiGraph()
    for node in graph.nodes():
        nxg.add_node(node)
    nxg.add_edges_from(graph.edges())
    return nxg


def two_islands() -> DiGraph:
    g = DiGraph()
    for n in ("a", "b", "c", "x", "y"):
        g.add_node(n, "L")
    g.add_edge("a", "b")
    g.add_edge("b", "c")
    g.add_edge("x", "y")
    return g


class TestConnectedComponents:
    def test_two_islands(self):
        comps = connected_components(two_islands())
        assert sorted(sorted(c) for c in comps) == [["a", "b", "c"], ["x", "y"]]

    def test_component_containing(self):
        g = two_islands()
        assert component_containing(g, "b") == {"a", "b", "c"}
        assert component_containing(g, "y") == {"x", "y"}

    def test_component_containing_missing_node(self):
        with pytest.raises(NodeNotFound):
            component_containing(two_islands(), "zzz")

    def test_restricted_component(self):
        g = two_islands()
        # Forbidding "b" disconnects a from c.
        assert component_containing_restricted(g, "a", {"a", "c"}) == {"a"}
        assert component_containing_restricted(
            g, "a", {"a", "b", "c"}
        ) == {"a", "b", "c"}

    def test_restricted_component_center_not_allowed(self):
        g = two_islands()
        assert component_containing_restricted(g, "a", {"b", "c"}) == set()

    @given(graph_seeds)
    @settings(max_examples=40, deadline=None)
    def test_matches_networkx_weak_components(self, seed):
        g = random_digraph(seed)
        ours = sorted(sorted(map(repr, c)) for c in connected_components(g))
        theirs = sorted(
            sorted(map(repr, c))
            for c in nx.weakly_connected_components(to_networkx(g))
        )
        assert ours == theirs


class TestStronglyConnectedComponents:
    def test_simple_cycle_is_one_scc(self):
        g = DiGraph()
        for i in range(3):
            g.add_node(i, "L")
        for i in range(3):
            g.add_edge(i, (i + 1) % 3)
        sccs = strongly_connected_components(g)
        assert len(sccs) == 1
        assert sccs[0] == {0, 1, 2}

    def test_dag_has_singleton_sccs(self):
        g = DiGraph()
        for i in range(4):
            g.add_node(i, "L")
        g.add_edge(0, 1)
        g.add_edge(1, 2)
        g.add_edge(2, 3)
        assert sorted(map(tuple, strongly_connected_components(g))) == [
            (0,), (1,), (2,), (3,)
        ]

    @given(graph_seeds)
    @settings(max_examples=40, deadline=None)
    def test_matches_networkx_sccs(self, seed):
        g = random_digraph(seed)
        ours = sorted(
            sorted(map(repr, c)) for c in strongly_connected_components(g)
        )
        theirs = sorted(
            sorted(map(repr, c))
            for c in nx.strongly_connected_components(to_networkx(g))
        )
        assert ours == theirs

    def test_condensation_is_acyclic(self):
        g = DiGraph()
        for i in range(5):
            g.add_node(i, "L")
        # Two 2-cycles joined by an edge.
        g.add_edge(0, 1)
        g.add_edge(1, 0)
        g.add_edge(2, 3)
        g.add_edge(3, 2)
        g.add_edge(1, 2)
        g.add_edge(4, 0)
        dag, membership = condensation(g)
        from repro.core.traversal import has_directed_cycle

        assert not has_directed_cycle(dag)
        assert membership[0] == membership[1]
        assert membership[2] == membership[3]
        assert membership[0] != membership[2]
