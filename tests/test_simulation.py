"""Unit + property tests for graph simulation."""

import pytest
from hypothesis import given, settings

from repro.core.digraph import DiGraph
from repro.core.matchrel import MatchRelation
from repro.core.pattern import Pattern
from repro.core.simulation import (
    graph_simulation,
    initial_candidates,
    is_simulation_relation,
    matches_via_simulation,
    simulation_fixpoint,
    simulation_fixpoint_naive,
)
from tests.conftest import graph_and_pattern


def simple_pair():
    pattern = Pattern.build({"a": "A", "b": "B"}, [("a", "b")])
    data = DiGraph.from_parts(
        {"a1": "A", "a2": "A", "b1": "B"},
        [("a1", "b1")],
    )
    return pattern, data


class TestBasics:
    def test_initial_candidates_use_labels(self):
        pattern, data = simple_pair()
        seeds = initial_candidates(pattern, data)
        assert seeds["a"] == {"a1", "a2"}
        assert seeds["b"] == {"b1"}

    def test_child_condition_prunes(self):
        pattern, data = simple_pair()
        rel = graph_simulation(pattern, data)
        # a2 has no B child, so it cannot simulate a.
        assert rel.matches_of("a") == frozenset({"a1"})
        assert rel.matches_of("b") == frozenset({"b1"})

    def test_no_parent_condition(self):
        # Simulation (unlike dual simulation) ignores parents: b1 matches
        # even if reached from a non-matching parent only.
        pattern = Pattern.build({"b": "B"}, [])
        data = DiGraph.from_parts({"x": "X", "b1": "B"}, [("x", "b1")])
        rel = graph_simulation(pattern, data)
        assert rel.matches_of("b") == frozenset({"b1"})

    def test_failure_collapses_to_empty(self):
        pattern = Pattern.build({"a": "A", "b": "B"}, [("a", "b")])
        data = DiGraph.from_parts({"a1": "A"}, [])
        rel = graph_simulation(pattern, data)
        assert rel.is_empty()
        assert not matches_via_simulation(pattern, data)

    def test_cycle_pattern_on_cycle_data(self):
        pattern = Pattern.build({"a": "X", "b": "X"}, [("a", "b"), ("b", "a")])
        data = DiGraph.from_parts(
            {i: "X" for i in range(4)},
            [(i, (i + 1) % 4) for i in range(4)],
        )
        rel = graph_simulation(pattern, data)
        # A 2-cycle pattern simulates into any directed cycle.
        assert rel.matches_of("a") == frozenset(range(4))

    def test_self_loop_pattern(self):
        pattern = Pattern.build({"a": "X"}, [("a", "a")])
        data = DiGraph.from_parts({0: "X", 1: "X"}, [(0, 0), (0, 1)])
        rel = graph_simulation(pattern, data)
        assert rel.matches_of("a") == frozenset({0})

    def test_single_node_pattern_matches_all_label_nodes(self):
        pattern = Pattern.build({"a": "X"}, [])
        data = DiGraph.from_parts({0: "X", 1: "X", 2: "Y"}, [])
        rel = graph_simulation(pattern, data)
        assert rel.matches_of("a") == frozenset({0, 1})


class TestCheckers:
    def test_maximum_relation_is_a_simulation(self):
        pattern, data = simple_pair()
        rel = graph_simulation(pattern, data)
        assert is_simulation_relation(pattern, data, rel)

    def test_checker_rejects_bogus_relation(self):
        pattern, data = simple_pair()
        bogus = MatchRelation.from_pairs(pattern, [("a", "a2"), ("b", "b1")])
        assert not is_simulation_relation(pattern, data, bogus)

    def test_checker_rejects_partial_relation(self):
        pattern, data = simple_pair()
        partial = MatchRelation.from_pairs(pattern, [("a", "a1")])
        assert not is_simulation_relation(pattern, data, partial)

    def test_checker_rejects_label_mismatch(self):
        pattern, data = simple_pair()
        bad = MatchRelation.from_pairs(pattern, [("a", "b1"), ("b", "b1")])
        assert not is_simulation_relation(pattern, data, bad)


class TestFixpointEquivalence:
    @given(graph_and_pattern())
    @settings(max_examples=60, deadline=None)
    def test_worklist_equals_naive(self, pair):
        data, pattern = pair
        worklist = simulation_fixpoint(pattern, data)
        naive = simulation_fixpoint_naive(pattern, data)
        assert worklist == naive

    @given(graph_and_pattern())
    @settings(max_examples=60, deadline=None)
    def test_result_is_valid_simulation_or_empty(self, pair):
        data, pattern = pair
        rel = graph_simulation(pattern, data)
        if rel.is_total():
            assert is_simulation_relation(pattern, data, rel)
        else:
            assert rel.is_empty()

    @given(graph_and_pattern())
    @settings(max_examples=40, deadline=None)
    def test_maximality(self, pair):
        """No label-compatible pair outside the maximum relation can be
        added while keeping it a simulation (gfp maximality)."""
        data, pattern = pair
        rel = graph_simulation(pattern, data)
        if not rel.is_total():
            return
        for u in pattern.nodes():
            current = rel.matches_of_raw(u)
            for v in data.nodes_with_label(pattern.label(u)):
                if v in current:
                    continue
                extended = rel.copy()
                extended.matches_of_raw(u).add(v)
                assert not is_simulation_relation(pattern, data, extended)
