"""Tests for incremental maintenance under graph updates."""

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.digraph import DiGraph
from repro.core.dualsim import dual_simulation
from repro.core.incremental import IncrementalDualSimulation, IncrementalMatcher
from repro.core.pattern import Pattern
from repro.core.strong import match
from repro.exceptions import MatchingError
from tests.conftest import random_connected_pattern, random_digraph


def fresh_pair():
    pattern = Pattern.build({"a": "A", "b": "B"}, [("a", "b")])
    data = DiGraph.from_parts(
        {"a1": "A", "a2": "A", "b1": "B", "b2": "B"},
        [("a1", "b1"), ("a2", "b2")],
    )
    return pattern, data


class TestIncrementalDualSimulation:
    def test_initial_state_matches_batch(self):
        pattern, data = fresh_pair()
        inc = IncrementalDualSimulation(pattern, data)
        assert inc.relation == dual_simulation(pattern, data)

    def test_edge_deletion_cascades(self):
        pattern, data = fresh_pair()
        inc = IncrementalDualSimulation(pattern, data)
        inc.remove_edge("a1", "b1")
        assert inc.relation == dual_simulation(pattern, data)
        assert "a1" not in inc.relation.matches_of("a")
        assert inc.cascade_removals >= 2  # (a, a1) and (b, b1)

    def test_deletion_to_empty(self):
        pattern, data = fresh_pair()
        inc = IncrementalDualSimulation(pattern, data)
        inc.remove_edge("a1", "b1")
        inc.remove_edge("a2", "b2")
        assert inc.relation.is_empty()

    def test_edge_insertion_grows(self):
        pattern = Pattern.build({"a": "A", "b": "B"}, [("a", "b")])
        data = DiGraph.from_parts(
            {"a1": "A", "b1": "B", "a2": "A"},
            [("a1", "b1")],
        )
        inc = IncrementalDualSimulation(pattern, data)
        assert "a2" not in inc.relation.matches_of("a")
        inc.add_edge("a2", "b1")
        assert inc.relation == dual_simulation(pattern, data)
        assert "a2" in inc.relation.matches_of("a")

    def test_node_removal(self):
        pattern, data = fresh_pair()
        inc = IncrementalDualSimulation(pattern, data)
        inc.remove_node("b1")
        assert inc.relation == dual_simulation(pattern, data)
        assert "a1" not in inc.relation.matches_of("a")

    def test_isolated_node_insert_noop_for_edge_patterns(self):
        pattern, data = fresh_pair()
        inc = IncrementalDualSimulation(pattern, data)
        before = inc.relation.pair_set()
        inc.add_node("z", "A")
        assert inc.relation.pair_set() == before

    def test_isolated_node_insert_single_node_pattern(self):
        pattern = Pattern.build({"a": "A"}, [])
        data = DiGraph.from_parts({"x": "B"}, [])
        inc = IncrementalDualSimulation(pattern, data)
        inc.add_node("y", "A")
        assert inc.relation.matches_of("a") == frozenset({"y"})

    @given(st.integers(min_value=0, max_value=3000))
    @settings(max_examples=30, deadline=None)
    def test_random_update_sequences_track_batch(self, seed):
        """After any mixed sequence of updates the incremental relation
        equals the from-scratch computation."""
        rng = random.Random(seed)
        data = random_digraph(seed, max_nodes=10, edge_prob=0.25)
        pattern = random_connected_pattern(seed + 1, max_nodes=3)
        inc = IncrementalDualSimulation(pattern, data)
        nodes = list(data.nodes())
        for _ in range(6):
            u, v = rng.choice(nodes), rng.choice(nodes)
            if u == v:
                continue
            if data.has_edge(u, v):
                inc.remove_edge(u, v)
            else:
                inc.add_edge(u, v)
            assert inc.relation == dual_simulation(pattern, data)


class TestIncrementalMatcher:
    def test_initial_result_matches_batch(self):
        pattern, data = fresh_pair()
        matcher = IncrementalMatcher(pattern, data.copy())
        batch = {sg.signature() for sg in match(pattern, data)}
        assert {sg.signature() for sg in matcher.result()} == batch

    def test_edge_insertion_updates_result(self):
        pattern = Pattern.build({"a": "A", "b": "B"}, [("a", "b")])
        data = DiGraph.from_parts({"a1": "A", "b1": "B"}, [])
        matcher = IncrementalMatcher(pattern, data)
        assert len(matcher.result()) == 0
        matcher.add_edge("a1", "b1")
        assert len(matcher.result()) == 1

    def test_edge_deletion_updates_result(self):
        pattern, data = fresh_pair()
        matcher = IncrementalMatcher(pattern, data)
        assert len(matcher.result()) >= 1
        matcher.remove_edge("a1", "b1")
        matcher.remove_edge("a2", "b2")
        assert len(matcher.result()) == 0

    def test_only_affected_balls_recomputed(self):
        # Two far-apart communities: updating one must not touch the other.
        pattern = Pattern.build({"a": "A", "b": "B"}, [("a", "b")])
        data = DiGraph()
        for i in range(2):
            data.add_node(f"a{i}", "A")
            data.add_node(f"b{i}", "B")
            data.add_edge(f"a{i}", f"b{i}")
        # Long insulating chain of unrelated labels between communities.
        previous = "b0"
        for i in range(6):
            name = f"m{i}"
            data.add_node(name, "M")
            data.add_edge(previous, name)
            previous = name
        data.add_edge(previous, "a1")

        matcher = IncrementalMatcher(pattern, data)
        before = matcher.balls_recomputed
        matcher.remove_edge("a0", "b0")
        recomputed = matcher.balls_recomputed - before
        # Radius is d_Q = 1: only balls centered within 1 hop of a0/b0.
        assert recomputed <= 4
        # The far community's match must survive untouched.
        assert any(
            "a1" in sg.graph.nodes() for sg in matcher.result()
        )

    def test_node_operations(self):
        pattern, data = fresh_pair()
        matcher = IncrementalMatcher(pattern, data)
        matcher.add_node("a3", "A")
        matcher.add_edge("a3", "b1")
        batch = {
            sg.signature() for sg in match(pattern, matcher.data)
        }
        assert {sg.signature() for sg in matcher.result()} == batch
        matcher.remove_node("b1")
        batch = {
            sg.signature() for sg in match(pattern, matcher.data)
        }
        assert {sg.signature() for sg in matcher.result()} == batch

    def test_remove_missing_node_raises(self):
        pattern, data = fresh_pair()
        matcher = IncrementalMatcher(pattern, data)
        with pytest.raises(MatchingError):
            matcher.remove_node("zzz")

    @given(st.integers(min_value=0, max_value=2000))
    @settings(max_examples=15, deadline=None)
    def test_random_updates_track_batch(self, seed):
        rng = random.Random(seed)
        data = random_digraph(seed, max_nodes=9, edge_prob=0.25)
        pattern = random_connected_pattern(seed + 2, max_nodes=3)
        matcher = IncrementalMatcher(pattern, data)
        nodes = list(data.nodes())
        for _ in range(4):
            u, v = rng.choice(nodes), rng.choice(nodes)
            if u == v:
                continue
            if matcher.data.has_edge(u, v):
                matcher.remove_edge(u, v)
            else:
                matcher.add_edge(u, v)
            batch = {sg.signature() for sg in match(pattern, matcher.data)}
            assert {sg.signature() for sg in matcher.result()} == batch
