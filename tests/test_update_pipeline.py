"""The unified mutation pipeline, end to end.

Four layers under test, matching the pipeline's shape:

1. **DiGraph change-log** — mutators emit typed
   :class:`~repro.core.digraph.GraphDelta` events; ``batch()`` groups
   them; listeners are held weakly.
2. **Incremental GraphIndex maintenance** — a cached index syncs itself
   from the delta stream: insertions never recompile (the acceptance
   criterion: ``stats.full_compiles`` stays at 1 across an insertion
   workload), deletions fall back to a full recompile only past the
   density threshold, and a *held* stale index raises
   :class:`~repro.exceptions.MatchingError` instead of serving rows from
   mixed epochs.  Plus the ``auto`` engine heuristic built on top.
3. **Incremental matching engines** — ``IncrementalDualSimulation`` /
   ``IncrementalMatcher`` with ``engine="kernel"`` or ``engine="numpy"``
   stay output-identical to from-scratch reference runs under random
   update sequences.
4. **Update-workload differential suite** — random interleavings of
   mutations and queries over every entry point, centralized and
   distributed, via the harness in :mod:`tests.engines` (fixtures +
   hypothesis; CI re-runs with a pinned seed).
"""

from __future__ import annotations

import gc
import random
import threading

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.digraph import (
    ADD_EDGE,
    ADD_NODE,
    REMOVE_EDGE,
    REMOVE_NODE,
    RELABEL,
    DiGraph,
    GraphDelta,
)
from repro.core.dualsim import dual_simulation
from repro.core.incremental import IncrementalDualSimulation, IncrementalMatcher
from repro.core.kernel import (
    NUMPY_AUTO_THRESHOLD,
    TINY_AUTO_THRESHOLD,
    get_index,
    index_maintenance,
    resolve_engine,
)
from repro.core.matchplus import match_plus
from repro.core.pattern import Pattern
from repro.core.strong import match
from repro.datasets.synthetic import generate_graph
from repro.exceptions import MatchingError

from tests.conftest import (
    graph_seeds,
    pattern_seeds,
    random_connected_pattern,
    random_digraph,
)
from tests.engines import (
    DeltaRecorder,
    assert_update_workload_identical,
    canonical_result,
)


def _canonical(result):
    return canonical_result(result)


# ----------------------------------------------------------------------
# Layer 1: the change-log
# ----------------------------------------------------------------------
class TestGraphDeltas:
    def test_every_mutator_emits_a_typed_event(self):
        graph = DiGraph()
        recorder = DeltaRecorder(graph)
        graph.add_node(1, "A")
        graph.add_node(2, "B")
        graph.add_edge(1, 2)
        graph.relabel_node(2, "C")
        graph.remove_edge(1, 2)
        graph.remove_node(2)
        kinds = [d.kind for d in recorder.deltas]
        assert kinds == [
            ADD_NODE, ADD_NODE, ADD_EDGE, RELABEL, REMOVE_EDGE, REMOVE_NODE,
        ]
        relabel = recorder.deltas[3]
        assert (relabel.node, relabel.old_label, relabel.label) == (2, "B", "C")

    def test_noop_mutations_emit_nothing(self):
        graph = DiGraph.from_parts({1: "A", 2: "B"}, [(1, 2)])
        recorder = DeltaRecorder(graph)
        graph.add_edge(1, 2)  # already present: set semantics
        graph.relabel_node(1, "A")  # unchanged label
        assert recorder.deltas == []

    def test_remove_node_emits_edge_removals_first_in_one_batch(self):
        graph = DiGraph.from_parts(
            {1: "A", 2: "B", 3: "C"}, [(1, 2), (3, 1), (1, 1)]
        )
        deliveries = []

        class Listener:
            def on_graph_deltas(self, deltas):
                deliveries.append(deltas)

        listener = Listener()
        graph.subscribe(listener)
        graph.remove_node(1)
        assert len(deliveries) == 1  # one grouped delivery
        group = deliveries[0]
        assert [d.kind for d in group[:-1]] == [REMOVE_EDGE] * 3
        assert group[-1].kind == REMOVE_NODE and group[-1].label == "A"

    def test_batch_groups_deliveries(self):
        graph = DiGraph.from_parts({1: "A", 2: "B"}, [])
        deliveries = []

        class Listener:
            def on_graph_deltas(self, deltas):
                deliveries.append(deltas)

        listener = Listener()
        graph.subscribe(listener)
        with graph.batch():
            graph.add_edge(1, 2)
            graph.add_node(3, "C")
            assert deliveries == []  # nothing delivered mid-batch
        assert len(deliveries) == 1
        assert [d.kind for d in deliveries[0]] == [ADD_EDGE, ADD_NODE]
        assert graph.version >= 2  # versions still bumped per mutation

    def test_listener_is_held_weakly(self):
        graph = DiGraph.from_parts({1: "A"}, [])
        recorder = DeltaRecorder(graph)
        del recorder
        gc.collect()
        graph.add_node(2, "B")  # must not raise into a dead listener
        assert graph.num_nodes == 2


class TestSubscriberCleanup:
    def test_collected_subscriber_never_blocks_delivery(self):
        """Regression: a garbage-collected subscriber must be pruned on
        the next emit and meanwhile never stop live subscribers from
        hearing deltas."""
        graph = DiGraph.from_parts({1: "A"}, [])
        dead = DeltaRecorder(graph)
        live = DeltaRecorder(graph)
        del dead
        gc.collect()
        graph.add_node(2, "B")
        assert [d.kind for d in live.deltas] == [ADD_NODE]
        # The dead weakref is gone after the emit, not retained forever.
        assert len(graph._listeners) == 1

    def test_unsubscribe_is_idempotent(self):
        graph = DiGraph.from_parts({1: "A"}, [])
        recorder = DeltaRecorder(graph)
        graph.unsubscribe(recorder)
        graph.unsubscribe(recorder)  # second call: clean no-op
        graph.unsubscribe(object())  # never-subscribed: clean no-op
        graph.add_node(2, "B")
        assert recorder.deltas == []

    def test_unsubscribe_during_delivery_sticks(self):
        """Regression: pruning dead weakrefs used to rebuild the
        listener list from a pre-delivery snapshot, resurrecting a
        listener that unsubscribed inside its own callback."""
        graph = DiGraph.from_parts({1: "A"}, [])

        class OneShot:
            def __init__(self):
                self.heard = 0

            def on_graph_deltas(self, deltas):
                self.heard += 1
                graph.unsubscribe(self)

        dead = DeltaRecorder(graph)  # a dead ref forces the prune path
        one_shot = OneShot()
        graph.subscribe(one_shot)
        del dead
        gc.collect()
        graph.add_node(2, "B")
        graph.add_node(3, "C")
        assert one_shot.heard == 1  # not resurrected by the prune


# ----------------------------------------------------------------------
# Layer 2: incremental index maintenance
# ----------------------------------------------------------------------
class TestIncrementalIndexMaintenance:
    def test_insertion_workload_never_recompiles(self):
        """The acceptance criterion: N single-edge insertions into an
        indexed graph, re-querying after each — zero full recompiles."""
        data = generate_graph(300, alpha=1.15, num_labels=8, seed=23)
        pattern = Pattern.build({"x": 0, "y": 1}, [("x", "y")])
        reference = _canonical(match_plus(pattern, data, engine="python"))
        assert _canonical(match_plus(pattern, data, engine="kernel")) == (
            reference
        )
        index = get_index(data)
        assert index.stats.full_compiles == 1
        rng = random.Random(7)
        nodes = list(data.nodes())
        inserted = 0
        while inserted < 25:
            source, target = rng.choice(nodes), rng.choice(nodes)
            if data.has_edge(source, target):
                continue
            data.add_edge(source, target)
            inserted += 1
            kernel = _canonical(match_plus(pattern, data, engine="kernel"))
            assert kernel == _canonical(
                match_plus(pattern, data, engine="python")
            )
        after = get_index(data)
        assert after is index  # one warm index throughout
        assert after.stats.full_compiles == 1  # zero recompiles
        assert after.stats.deltas_applied == 25

    def test_node_insertions_extend_in_place(self):
        data = random_digraph(3, max_nodes=8)
        pattern = random_connected_pattern(5, max_nodes=3)
        match_plus(pattern, data, engine="kernel")
        index = get_index(data)
        for i in range(10):
            data.add_node(f"new{i}", "l0")
            data.add_edge(f"new{i}", next(iter(data.nodes())))
            assert _canonical(
                match_plus(pattern, data, engine="kernel")
            ) == _canonical(match_plus(pattern, data, engine="python"))
        assert get_index(data) is index
        assert index.stats.full_compiles == 1

    def test_deletions_past_threshold_trigger_recompile(self):
        data = random_digraph(11, max_nodes=12, edge_prob=0.6)
        get_index(data)
        # Remove far more than a quarter of the graph: the density
        # threshold (floor 64) must eventually force a compacting
        # recompile rather than unbounded tombstone accumulation.
        removed = 0
        for source, target in list(data.edges()):
            data.remove_edge(source, target)
            get_index(data)
            removed += 1
        for node in list(data.nodes())[:-1]:
            data.remove_node(node)
            get_index(data)
            removed += 1
        index = get_index(data)
        if removed > 64:
            assert index.stats.full_compiles > 1
        # Whatever path was taken, the index must be exact.
        assert index.n >= data.num_nodes
        assert sorted(index.index_of) == sorted(data.nodes())

    def test_stale_held_index_raises_matching_error(self):
        data = random_digraph(17, max_nodes=10, edge_prob=0.4)
        pattern = random_connected_pattern(9, max_nodes=3)
        held = get_index(data)
        data.add_node("fresh", "l0")  # always a real mutation
        with pytest.raises(MatchingError, match="stale GraphIndex"):
            held.new_epoch()
        # Re-acquiring through get_index syncs and works again.
        synced = get_index(data)
        assert synced is held
        synced.new_epoch()
        assert _canonical(match(pattern, data, engine="kernel")) == (
            _canonical(match(pattern, data, engine="python"))
        )

    def test_stale_held_index_raises_with_maintenance_off(self):
        with index_maintenance(False):
            data = random_digraph(21, max_nodes=10, edge_prob=0.4)
            held = get_index(data)
            data.remove_edge(*next(iter(data.edges())))
            with pytest.raises(MatchingError, match="stale GraphIndex"):
                held.new_epoch()
            # get_index hands out a *fresh* index instead of syncing.
            fresh = get_index(data)
            assert fresh is not held
            assert fresh.stats.full_compiles == 1

    def test_maintenance_toggle_restores(self):
        with index_maintenance(False):
            with index_maintenance(True):
                pass
            data = DiGraph.from_parts({1: "A"}, [])
            first = get_index(data)
            data.add_node(2, "B")
            assert get_index(data) is not first


class TestBatchLevelIndexSync:
    def test_relabel_storm_coalesces_to_one_label_move(self):
        """The open ROADMAP item: a whole batch() group applies with one
        label-group pass — k relabels of one node cost at most one
        label-group move, while deltas_applied still counts every event."""
        data = random_digraph(43, max_nodes=10, edge_prob=0.3)
        index = get_index(data)
        node = next(iter(data.nodes()))
        before = index.stats.label_moves
        applied_before = index.stats.deltas_applied
        with data.batch():
            for step in range(5):
                data.relabel_node(node, f"spin{step}")
        get_index(data)
        assert index.stats.deltas_applied == applied_before + 5
        assert index.stats.label_moves == before + 1  # one net move
        assert index.labels[index.index_of[node]] == "spin4"
        assert index.index_of[node] in index.label_groups["spin4"]

    def test_round_trip_relabel_moves_nothing(self):
        data = random_digraph(47, max_nodes=8, edge_prob=0.3)
        index = get_index(data)
        node = next(iter(data.nodes()))
        original = data.label(node)
        before = index.stats.label_moves
        with data.batch():
            data.relabel_node(node, "elsewhere")
            data.relabel_node(node, original)  # net no-op
        get_index(data)
        assert index.stats.label_moves == before  # zero group churn
        assert index.labels[index.index_of[node]] == original

    def test_relabel_then_remove_in_one_batch(self):
        """A deferred relabel must settle before the node's removal so
        the removal finds the node under its latest label."""
        data = random_digraph(53, max_nodes=8, edge_prob=0.4)
        pattern = random_connected_pattern(19, max_nodes=3)
        index = get_index(data)
        victim = next(iter(data.nodes()))
        with data.batch():
            data.relabel_node(victim, "doomed")
            data.remove_node(victim)
        assert _canonical(match_plus(pattern, data, engine="kernel")) == (
            _canonical(match_plus(pattern, data, engine="python"))
        )
        assert get_index(data) is index
        assert victim not in index.index_of
        assert "doomed" not in index.label_groups

    def test_mixed_batch_stays_output_identical(self):
        data = random_digraph(59, max_nodes=10, edge_prob=0.3)
        pattern = random_connected_pattern(29, max_nodes=3)
        index = get_index(data)
        nodes = list(data.nodes())
        with data.batch():
            data.add_node("fresh1", "l0")
            data.add_edge("fresh1", nodes[0])
            data.relabel_node(nodes[0], "l2")
            data.relabel_node(nodes[0], "l1")
            if data.num_edges:
                data.remove_edge(*next(iter(data.edges())))
        get_index(data)
        assert index.stats.full_compiles == 1  # synced in place
        assert _canonical(match_plus(pattern, data, engine="kernel")) == (
            _canonical(match_plus(pattern, data, engine="python"))
        )


class TestAutoEngineHeuristic:
    def test_tiny_unindexed_graph_resolves_to_python(self):
        data = DiGraph.from_parts({1: "A", 2: "B"}, [(1, 2)])
        assert data.size < TINY_AUTO_THRESHOLD
        assert resolve_engine("auto", data) == "python"

    def test_tiny_graph_with_cached_index_resolves_to_kernel(self):
        data = DiGraph.from_parts({1: "A", 2: "B"}, [(1, 2)])
        get_index(data)
        assert resolve_engine("auto", data) == "kernel"

    def test_midsize_graph_resolves_to_kernel(self):
        data = generate_graph(400, alpha=1.1, num_labels=5, seed=3)
        assert TINY_AUTO_THRESHOLD <= data.size < NUMPY_AUTO_THRESHOLD
        assert resolve_engine("auto", data) == "kernel"

    def test_large_graph_resolves_to_numpy(self):
        data = generate_graph(700, alpha=1.15, num_labels=5, seed=3)
        assert data.size >= NUMPY_AUTO_THRESHOLD
        assert resolve_engine("auto", data) == "numpy"

    def test_dataless_auto_keeps_kernel(self):
        assert resolve_engine("auto") == "kernel"

    def test_explicit_engines_unaffected(self):
        data = DiGraph.from_parts({1: "A"}, [])
        assert resolve_engine("python", data) == "python"
        assert resolve_engine("kernel", data) == "kernel"
        assert resolve_engine("numpy", data) == "numpy"
        with pytest.raises(ValueError):
            resolve_engine("fortran", data)

    def test_auto_output_identical_either_way(self):
        data = random_digraph(29, max_nodes=8)
        pattern = random_connected_pattern(31, max_nodes=3)
        assert _canonical(match_plus(pattern, data)) == _canonical(
            match_plus(pattern, data, engine="python")
        )


# ----------------------------------------------------------------------
# Layer 3: incremental matching on the compiled substrates
# ----------------------------------------------------------------------
COMPILED_ENGINES = ("kernel", "numpy")


class TestIncrementalKernelEngine:
    @pytest.mark.parametrize("engine", COMPILED_ENGINES)
    @settings(max_examples=20, deadline=None)
    @given(
        seed=graph_seeds,
        pattern_seed=pattern_seeds,
        op_seed=st.integers(min_value=0, max_value=10_000),
        num_ops=st.integers(min_value=1, max_value=10),
    )
    def test_dual_simulation_tracks_scratch(
        self, engine, seed, pattern_seed, op_seed, num_ops
    ):
        data = random_digraph(seed, max_nodes=9, edge_prob=0.3)
        pattern = random_connected_pattern(pattern_seed, max_nodes=4)
        inc = IncrementalDualSimulation(pattern, data, engine=engine)
        assert inc.engine == engine
        rng = random.Random(op_seed)
        fresh = 5000
        for _ in range(num_ops):
            nodes = list(data.nodes())
            edges = list(data.edges())
            choice = rng.random()
            if choice < 0.35 and nodes:
                source, target = rng.choice(nodes), rng.choice(nodes)
                if not data.has_edge(source, target):
                    inc.add_edge(source, target)
            elif choice < 0.60 and edges:
                inc.remove_edge(*rng.choice(edges))
            elif choice < 0.75:
                inc.add_node(fresh, "l1")
                fresh += 1
            elif len(nodes) > 1:
                inc.remove_node(rng.choice(nodes))
            assert inc.relation.pair_set() == dual_simulation(
                pattern, data
            ).pair_set()

    @pytest.mark.parametrize("engine", COMPILED_ENGINES)
    @settings(max_examples=12, deadline=None)
    @given(
        seed=graph_seeds,
        pattern_seed=pattern_seeds,
        op_seed=st.integers(min_value=0, max_value=10_000),
    )
    def test_matcher_tracks_scratch(self, engine, seed, pattern_seed, op_seed):
        data = random_digraph(seed, max_nodes=8, edge_prob=0.3)
        pattern = random_connected_pattern(pattern_seed, max_nodes=3)
        matcher = IncrementalMatcher(pattern, data, engine=engine)
        rng = random.Random(op_seed)
        fresh = 6000
        for _ in range(5):
            nodes = list(data.nodes())
            edges = list(data.edges())
            choice = rng.random()
            if choice < 0.4 and nodes:
                source, target = rng.choice(nodes), rng.choice(nodes)
                if not data.has_edge(source, target):
                    matcher.add_edge(source, target)
            elif choice < 0.65 and edges:
                matcher.remove_edge(*rng.choice(edges))
            elif choice < 0.8:
                matcher.add_node(fresh, "l0")
                fresh += 1
            elif len(nodes) > 1:
                matcher.remove_node(rng.choice(nodes))
            assert _canonical(matcher.result()) == _canonical(
                match(pattern, data, engine="python")
            )

    @pytest.mark.parametrize("engine", COMPILED_ENGINES)
    def test_survives_threshold_compaction(self, engine):
        """Regression: a deletion-heavy stream pushes the warm index past
        the density threshold, recompiling it IN PLACE with compacted
        ids; the kernel incremental state must remap through the old
        node list (captured before the recompile), not the new one."""
        data = generate_graph(150, alpha=1.25, num_labels=4, seed=2)
        pattern = random_connected_pattern(61, max_nodes=3)
        inc = IncrementalDualSimulation(pattern, data, engine=engine)
        rng = random.Random(8)
        for step in range(140):
            nodes = list(data.nodes())
            edges = list(data.edges())
            choice = rng.random()
            if choice < 0.45 and edges:
                inc.remove_edge(*rng.choice(edges))
            elif choice < 0.7 and len(nodes) > 1:
                inc.remove_node(rng.choice(nodes))
            elif nodes:
                source, target = rng.choice(nodes), rng.choice(nodes)
                if not data.has_edge(source, target):
                    inc.add_edge(source, target)
            if step % 20 == 19:
                assert inc.relation.pair_set() == dual_simulation(
                    pattern, data
                ).pair_set()
        # The point of the scenario: compaction actually happened.
        assert get_index(data).stats.full_compiles > 1
        assert inc.relation.pair_set() == dual_simulation(
            pattern, data
        ).pair_set()

    @pytest.mark.parametrize("engine", COMPILED_ENGINES)
    def test_single_node_pattern_node_churn(self, engine):
        pattern = Pattern.build({"x": "A"}, [])
        data = DiGraph.from_parts({1: "A", 2: "B"}, [])
        inc = IncrementalDualSimulation(pattern, data, engine=engine)
        inc.add_node(3, "A")
        assert inc.relation.pair_set() == dual_simulation(
            pattern, data
        ).pair_set()
        inc.remove_node(1)
        assert inc.relation.pair_set() == dual_simulation(
            pattern, data
        ).pair_set()
        assert sorted(inc.relation.matches_of("x")) == [3]


# ----------------------------------------------------------------------
# Reader–writer guard: syncs defer behind in-flight queries, fail loud
# on self-deadlock
# ----------------------------------------------------------------------
class TestIndexReadGuard:
    def test_sync_waits_for_inflight_reader(self):
        """A ``get_index`` sync from another thread must block until an
        in-flight reader drains, then apply — never rewrite rows under a
        reader, never drop the sync."""
        data = random_digraph(63, max_nodes=10, edge_prob=0.4)
        index = get_index(data)
        entered = threading.Event()
        release = threading.Event()

        def reader():
            with index.reading():
                entered.set()
                release.wait(timeout=10)

        reader_thread = threading.Thread(target=reader)
        reader_thread.start()
        assert entered.wait(timeout=10)
        data.add_node("fresh", "l0")
        synced = {}

        def writer():
            synced["index"] = get_index(data)

        writer_thread = threading.Thread(target=writer)
        writer_thread.start()
        writer_thread.join(timeout=0.3)
        assert writer_thread.is_alive(), (
            "sync went through while a reader held the index"
        )
        release.set()
        writer_thread.join(timeout=10)
        reader_thread.join(timeout=10)
        assert not writer_thread.is_alive()
        assert synced["index"] is index
        assert index.graph_version == data.version
        assert "fresh" in index.index_of

    def test_mid_query_sync_from_reading_thread_fails_loud(self):
        """A thread that mutates the graph mid-query and then re-enters
        ``get_index`` on its own read would self-deadlock behind its own
        read hold; the guard raises ``MatchingError`` instead."""
        data = random_digraph(67, max_nodes=10, edge_prob=0.4)
        index = get_index(data)
        with index.reading():
            with index.reading():  # queries nest (ball inside match)
                pass
            data.add_node("fresh", "l0")
            with pytest.raises(MatchingError, match="mid-query"):
                get_index(data)
        # Out of the read section the deferred sync applies normally.
        assert get_index(data) is index
        assert index.graph_version == data.version


# ----------------------------------------------------------------------
# Layer 4: the update-workload differential suite
# ----------------------------------------------------------------------
class TestUpdateWorkloadCentralized:
    def test_paper_figure_fixture(self, q1, g1):
        assert_update_workload_identical(q1, g1, num_ops=12, op_seed=13)

    def test_synthetic_fixture(self, small_synthetic):
        pattern = random_connected_pattern(41, max_nodes=3)
        assert_update_workload_identical(
            pattern, small_synthetic, num_ops=15, op_seed=17
        )

    @settings(max_examples=15, deadline=None)
    @given(
        seed=graph_seeds,
        pattern_seed=pattern_seeds,
        op_seed=st.integers(min_value=0, max_value=10_000),
        num_ops=st.integers(min_value=1, max_value=10),
    )
    def test_random_interleavings(self, seed, pattern_seed, op_seed, num_ops):
        data = random_digraph(seed, max_nodes=10, edge_prob=0.3)
        pattern = random_connected_pattern(pattern_seed, max_nodes=4)
        assert_update_workload_identical(
            pattern, data, num_ops=num_ops, op_seed=op_seed
        )


class TestUpdateWorkloadDistributed:
    def test_paper_figure_fixture(self, q1, g1):
        nodes = list(g1.nodes())
        assignment = {node: i % 2 for i, node in enumerate(nodes)}
        assert_update_workload_identical(
            q1, g1, num_ops=10, op_seed=19,
            assignment=assignment, num_sites=2, check_every=2,
        )

    @settings(max_examples=10, deadline=None)
    @given(
        seed=graph_seeds,
        pattern_seed=pattern_seeds,
        op_seed=st.integers(min_value=0, max_value=10_000),
        num_sites=st.integers(min_value=2, max_value=3),
    )
    def test_random_interleavings(
        self, seed, pattern_seed, op_seed, num_sites
    ):
        data = random_digraph(seed, max_nodes=10, edge_prob=0.3)
        pattern = random_connected_pattern(pattern_seed, max_nodes=3)
        rng = random.Random(seed + op_seed)
        assignment = {
            node: rng.randrange(num_sites) for node in data.nodes()
        }
        assert_update_workload_identical(
            pattern, data, num_ops=6, op_seed=op_seed,
            assignment=assignment, num_sites=num_sites, check_every=2,
        )
