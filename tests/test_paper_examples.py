"""End-to-end assertions of the paper's worked examples (Figures 1, 2, 6).

Each test quotes the claim it checks; together these pin the library to
the published semantics.
"""

import pytest

from repro.baselines.vf2 import has_subgraph_isomorphism, vf2
from repro.core.dualsim import dual_simulation, matches_via_dual_simulation
from repro.core.matchplus import match_plus
from repro.core.simulation import graph_simulation, matches_via_simulation
from repro.core.strong import match
from repro.datasets import paper_figures as fig


class TestFigure1:
    """Example 1/2/3: the headhunter network."""

    def test_no_subgraph_isomorphism(self, q1, g1):
        """'No subgraph of G1 is isomorphic to Q1.'"""
        assert not has_subgraph_isomorphism(q1, g1)

    def test_simulation_matches_all_biologists(self, q1, g1):
        """'When graph simulation ... all four biologists in G1 are
        matches for Bio.'"""
        rel = graph_simulation(q1, g1)
        assert rel.matches_of("Bio") == frozenset(
            {"Bio1", "Bio2", "Bio3", "Bio4"}
        )

    def test_simulation_match_maps(self, q1, g1):
        """Example 2(2): the simulation relation maps every pattern node
        onto the full corresponding label class of G1."""
        rel = graph_simulation(q1, g1)
        assert rel.matches_of("HR") == frozenset({"HR1", "HR2"})
        assert rel.matches_of("SE") == frozenset({"SE1", "SE2"})
        assert {m for m in rel.matches_of("DM")} >= {"DM'1", "DM'2", "DM1"}
        assert {m for m in rel.matches_of("AI")} >= {"AI'1", "AI'2", "AI1"}

    def test_strong_simulation_finds_only_bio4(self, q1, g1):
        """'Matching Q1 on G1 via strong simulation finds Bio4 as the
        only match for Bio.'"""
        result = match(q1, g1)
        assert result.all_matches_of("Bio") == {"Bio4"}

    def test_union_of_matches_is_good_component(self, q1, g1):
        """Example 2(3): the match is inside the connected component Gc
        containing Bio4, and the largest perfect subgraph is exactly Gc."""
        result = match(q1, g1)
        assert result.matched_data_nodes() == set(
            fig.g1_good_component_nodes()
        )
        biggest = max(result, key=lambda sg: sg.num_nodes)
        assert set(biggest.graph.nodes()) == set(fig.g1_good_component_nodes())

    def test_long_cycle_excluded(self, q1):
        """'The cycle AI1, DM1, ..., AIk, DMk, AI1 in G1 is not part of
        the match.'"""
        g1 = fig.data_g1(cycle_length=6)
        result = match(q1, g1)
        matched = result.matched_data_nodes()
        assert not any(node.startswith("AI1") for node in matched)
        assert "DM1" not in matched

    def test_ball_around_bio4_is_good_component(self, q1, g1):
        """Example 2(3b): 'the ball with center Bio4 and radius 3 (the
        diameter of Q1) is exactly Gc.'"""
        from repro.core.ball import extract_ball

        ball = extract_ball(g1, "Bio4", q1.diameter)
        assert set(ball.graph.nodes()) == set(fig.g1_good_component_nodes())


class TestFigure2Books:
    """Example 2(4): pattern Q2 on data G2."""

    def test_simulation_returns_both_books(self):
        rel = graph_simulation(fig.pattern_q2(), fig.data_g2())
        assert rel.matches_of("B") == frozenset({"book1", "book2"})

    def test_strong_simulation_returns_book2_only(self):
        result = match(fig.pattern_q2(), fig.data_g2())
        assert result.all_matches_of("B") == {"book2"}

    def test_strong_returns_single_match_graph(self):
        """'book2 is the only match by the duality, in a single match
        graph.'"""
        result = match(fig.pattern_q2(), fig.data_g2())
        assert len(result) == 1

    def test_vf2_returns_two_match_graphs(self):
        """'subgraph isomorphism ... returns two match graphs.'"""
        assert vf2(fig.pattern_q2(), fig.data_g2()).num_matched_subgraphs == 2


class TestFigure2People:
    """Example 2(5): mutual recommendation Q3 on G3."""

    def test_simulation_and_dual_match_everyone(self):
        q3, g3 = fig.pattern_q3(), fig.data_g3()
        assert graph_simulation(q3, g3).matches_of("P") == frozenset(
            {"P1", "P2", "P3", "P4"}
        )
        assert dual_simulation(q3, g3).matches_of("P") == frozenset(
            {"P1", "P2", "P3", "P4"}
        )

    def test_strong_simulation_excludes_p4(self):
        """'When strong simulation is adopted, P1, P2 and P3 are the only
        matches by the locality.'"""
        result = match(fig.pattern_q3(), fig.data_g3())
        assert result.matched_data_nodes() == {"P1", "P2", "P3"}


class TestFigure2Papers:
    """Example 2(6): citation pattern Q4 on G4."""

    def test_simulation_matches_all_sn(self):
        rel = graph_simulation(fig.pattern_q4(), fig.data_g4())
        assert rel.matches_of("SN") == frozenset({"SN1", "SN2", "SN3", "SN4"})

    def test_strong_matches_sn1_sn2_only(self):
        result = match(fig.pattern_q4(), fig.data_g4())
        assert result.all_matches_of("SN") == {"SN1", "SN2"}

    def test_vf2_returns_four_match_graphs(self):
        """'returned in four match graphs (G4,i,j for i, j ∈ [1, 2]).'"""
        assert vf2(fig.pattern_q4(), fig.data_g4()).num_matched_subgraphs == 4

    def test_maximal_subgraph_is_the_union(self):
        """'returned in a single match graph (union of G4,i,j)': the
        largest perfect subgraph is the union of all four isomorphism
        match graphs."""
        result = match(fig.pattern_q4(), fig.data_g4())
        biggest = max(result, key=lambda sg: sg.num_nodes)
        assert set(biggest.graph.nodes()) == {
            "db1", "db2", "SN1", "SN2", "graph1", "graph2"
        }


class TestFigure6:
    """Examples 4, 5, 6: the optimization figures."""

    def test_q5_minimization(self):
        """Example 4: Q5's 8 nodes collapse to 5 equivalence classes."""
        from repro.core.minimize import minimize_pattern

        minimized = minimize_pattern(fig.pattern_q5())
        assert minimized.pattern.num_nodes == 5
        class_sets = sorted(sorted(c) for c in minimized.classes)
        assert class_sets == [
            ["A"], ["B1", "B2"], ["C1", "C2"], ["D1", "D2"], ["R"]
        ]

    def test_q6_global_dual_relation(self):
        """Example 5: S_G6 keeps {A2, A3}, {B2, B3}, {C}."""
        rel = dual_simulation(fig.pattern_q6(), fig.data_g6())
        assert rel.matches_of("A") == frozenset({"A2", "A3"})
        assert rel.matches_of("B") == frozenset({"B2", "B3"})
        assert rel.matches_of("C") == frozenset({"C0"})

    def test_q7_g7_ball_is_whole_graph(self):
        """Example 6: d_Q7 > d_G7, so every ball is G7 itself."""
        from repro.core.ball import extract_ball
        from repro.core.traversal import diameter_undirected

        q7, g7 = fig.pattern_q7(), fig.data_g7()
        assert q7.diameter == 5
        assert diameter_undirected(g7) == 4
        ball = extract_ball(g7, "A1", q7.diameter)
        assert set(ball.graph.nodes()) == set(g7.nodes())

    def test_q7_pruning_splits_candidates(self):
        """Example 6: candidate nodes form two components SC1/SC2; only
        the center's survives pruning."""
        from repro.core.ball import extract_ball
        from repro.core.pruning import prune_candidates_by_connectivity

        q7, g7 = fig.pattern_q7(), fig.data_g7()
        ball = extract_ball(g7, "A1", q7.diameter)
        seeds = {
            u: set(ball.graph.nodes_with_label(q7.label(u)))
            for u in q7.nodes()
        }
        pruned = prune_candidates_by_connectivity(q7, ball, seeds)
        assert pruned is not None
        surviving = set()
        for candidates in pruned.values():
            surviving |= candidates
        assert surviving == {"A1", "B1"}  # SC2 = {A2, B2} pruned


class TestAllFixtures:
    @pytest.mark.parametrize(
        "name,pattern,data",
        [pytest.param(*triple, id=triple[0]) for triple in fig.all_fixture_pairs()],
    )
    def test_match_plus_equals_match_on_fixtures(self, name, pattern, data):
        plain = {sg.signature() for sg in match(pattern, data)}
        plus = {sg.signature() for sg in match_plus(pattern, data)}
        assert plain == plus
