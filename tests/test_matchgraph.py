"""Unit tests for match-graph construction (Section 2.2 semantics)."""

from repro.core.digraph import DiGraph
from repro.core.matchgraph import (
    build_match_graph,
    match_graph_edge_set,
    relation_restricted_to_component,
)
from repro.core.matchrel import MatchRelation
from repro.core.pattern import Pattern


def setup_pair():
    pattern = Pattern.build({"a": "A", "b": "B"}, [("a", "b")])
    data = DiGraph.from_parts(
        {"a1": "A", "a2": "A", "b1": "B", "b2": "B"},
        [("a1", "b1"), ("a2", "b2"), ("b1", "a2"), ("a1", "a2")],
    )
    relation = MatchRelation.from_pairs(
        pattern, [("a", "a1"), ("a", "a2"), ("b", "b1"), ("b", "b2")]
    )
    return pattern, data, relation


class TestBuildMatchGraph:
    def test_keeps_only_witnessing_edges(self):
        pattern, data, relation = setup_pair()
        mg = build_match_graph(pattern, data, relation)
        # a1->b1 and a2->b2 witness the pattern edge (a, b).
        assert mg.has_edge("a1", "b1")
        assert mg.has_edge("a2", "b2")
        # b1->a2 and a1->a2 do not witness any pattern edge: dropped.
        assert not mg.has_edge("b1", "a2")
        assert not mg.has_edge("a1", "a2")

    def test_nodes_are_exactly_matched_nodes(self):
        pattern, data, relation = setup_pair()
        mg = build_match_graph(pattern, data, relation)
        assert set(mg.nodes()) == {"a1", "a2", "b1", "b2"}

    def test_empty_relation_gives_empty_graph(self):
        pattern, data, _ = setup_pair()
        mg = build_match_graph(pattern, data, MatchRelation.empty(pattern))
        assert mg.num_nodes == 0
        assert mg.num_edges == 0

    def test_edge_set_agrees_with_graph(self):
        pattern, data, relation = setup_pair()
        mg = build_match_graph(pattern, data, relation)
        assert set(mg.edges()) == match_graph_edge_set(pattern, data, relation)

    def test_scan_direction_symmetry(self):
        # Force both scan branches (sources smaller vs targets smaller).
        pattern = Pattern.build({"a": "A", "b": "B"}, [("a", "b")])
        data = DiGraph.from_parts(
            {"a1": "A", "b1": "B", "b2": "B", "b3": "B"},
            [("a1", "b1"), ("a1", "b2"), ("a1", "b3")],
        )
        rel_small_source = MatchRelation.from_pairs(
            pattern, [("a", "a1"), ("b", "b1"), ("b", "b2"), ("b", "b3")]
        )
        mg = build_match_graph(pattern, data, rel_small_source)
        assert mg.num_edges == 3
        rel_small_target = MatchRelation.from_pairs(
            pattern, [("a", "a1"), ("b", "b1")]
        )
        mg2 = build_match_graph(pattern, data, rel_small_target)
        assert set(mg2.edges()) == {("a1", "b1")}


class TestComponentRestriction:
    def test_restriction_projects_relation(self):
        pattern, data, relation = setup_pair()
        restricted = relation_restricted_to_component(relation, {"a1", "b1"})
        assert restricted.matches_of("a") == frozenset({"a1"})
        assert restricted.matches_of("b") == frozenset({"b1"})

    def test_paper_example_cycle_excluded(self):
        """Fig. 1: the long AI/DM cycle must not enter the match graph of
        the dual-simulation relation (those nodes are not matched)."""
        from repro.core.dualsim import dual_simulation
        from repro.datasets.paper_figures import data_g1, pattern_q1

        pattern, data = pattern_q1(), data_g1(cycle_length=4)
        relation = dual_simulation(pattern, data)
        mg = build_match_graph(pattern, data, relation)
        assert "AI1" not in mg
        assert "DM1" not in mg
