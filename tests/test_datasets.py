"""Tests for the dataset generators."""

import pytest

from repro.core.traversal import is_connected_undirected
from repro.datasets import (
    amazon_label_alphabet,
    edge_count_for,
    generate_amazon,
    generate_graph,
    generate_pattern,
    generate_youtube,
    label_alphabet,
    pattern_suite_for_data,
    sample_pattern_from_data,
    youtube_label_alphabet,
)
from repro.datasets.amazon import CASE_STUDY_CATEGORIES as AMAZON_CATEGORIES
from repro.datasets.youtube import CASE_STUDY_CATEGORIES as YOUTUBE_CATEGORIES
from repro.exceptions import DatasetError


class TestSynthetic:
    def test_node_and_edge_counts(self):
        g = generate_graph(100, alpha=1.2, num_labels=10, seed=0)
        assert g.num_nodes == 100
        assert g.num_edges == edge_count_for(100, 1.2)

    def test_edge_count_formula(self):
        assert edge_count_for(100, 1.2) == round(100 ** 1.2)
        assert edge_count_for(1, 1.5) == 0
        # Clamped to the simple-digraph maximum.
        assert edge_count_for(3, 3.0) == 6

    def test_determinism(self):
        a = generate_graph(50, seed=7)
        b = generate_graph(50, seed=7)
        assert a.same_as(b)

    def test_different_seeds_differ(self):
        a = generate_graph(50, seed=7)
        b = generate_graph(50, seed=8)
        assert not a.same_as(b)

    def test_labels_from_alphabet(self):
        g = generate_graph(50, num_labels=5, seed=1)
        assert g.label_set() <= frozenset(label_alphabet(5))

    def test_no_self_loops(self):
        g = generate_graph(40, alpha=1.3, num_labels=5, seed=3)
        assert all(s != t for s, t in g.edges())

    def test_invalid_parameters(self):
        with pytest.raises(DatasetError):
            generate_graph(0)
        with pytest.raises(DatasetError):
            generate_graph(10, alpha=0.5)
        with pytest.raises(DatasetError):
            generate_graph(10, num_labels=0)


class TestPatternGenerators:
    def test_generated_pattern_connected_and_sized(self):
        p = generate_pattern(8, alpha=1.2, labels=["a", "b", "c"], seed=0)
        assert p.num_nodes == 8
        assert is_connected_undirected(p.graph)

    def test_generated_pattern_requires_labels(self):
        with pytest.raises(DatasetError):
            generate_pattern(5, labels=[])

    def test_sampled_pattern_has_iso_match(self):
        from repro.baselines.vf2 import has_subgraph_isomorphism

        data = generate_graph(80, alpha=1.2, num_labels=5, seed=2)
        pattern = sample_pattern_from_data(data, 5, seed=1)
        assert pattern is not None
        assert has_subgraph_isomorphism(pattern, data)

    def test_sampled_pattern_too_large_returns_none(self):
        data = generate_graph(5, alpha=1.0, num_labels=2, seed=0)
        assert sample_pattern_from_data(data, 50, seed=0) is None

    def test_pattern_suite(self):
        data = generate_graph(100, alpha=1.2, num_labels=5, seed=4)
        suite = pattern_suite_for_data(data, [2, 4, 6], seed=0)
        assert len(suite) == 3
        assert [p.num_nodes for p in suite] == [2, 4, 6]

    def test_sampled_pattern_node_ids_fresh(self):
        data = generate_graph(30, alpha=1.1, num_labels=3, seed=5)
        pattern = sample_pattern_from_data(data, 4, seed=0)
        assert pattern is not None
        assert all(str(u).startswith("q") for u in pattern.nodes())


class TestSurrogates:
    def test_amazon_density_regime(self):
        g = generate_amazon(500, seed=0)
        avg_out = g.num_edges / g.num_nodes
        assert 2.0 <= avg_out <= 5.0  # the co-purchase regime

    def test_youtube_denser_than_amazon(self):
        amazon = generate_amazon(500, seed=0)
        youtube = generate_youtube(500, seed=0)
        assert (
            youtube.num_edges / youtube.num_nodes
            > amazon.num_edges / amazon.num_nodes
        )

    def test_case_study_labels_present(self):
        amazon = generate_amazon(2000, seed=1)
        youtube = generate_youtube(2000, seed=1)
        assert set(AMAZON_CATEGORIES) <= set(amazon.label_set())
        assert set(YOUTUBE_CATEGORIES) <= set(youtube.label_set())

    def test_determinism(self):
        assert generate_amazon(200, seed=3).same_as(generate_amazon(200, seed=3))
        assert generate_youtube(200, seed=3).same_as(generate_youtube(200, seed=3))

    def test_degree_skew(self):
        """Preferential attachment must produce a heavy tail: the top
        node's degree far exceeds the average."""
        g = generate_amazon(1000, seed=2)
        degrees = sorted((g.degree(n) for n in g.nodes()), reverse=True)
        average = sum(degrees) / len(degrees)
        assert degrees[0] > 4 * average

    def test_alphabet_helpers(self):
        assert len(amazon_label_alphabet(10)) == 10
        assert len(youtube_label_alphabet(8)) == 8
        with pytest.raises(DatasetError):
            amazon_label_alphabet(2)
        with pytest.raises(DatasetError):
            youtube_label_alphabet(1)

    def test_invalid_sizes(self):
        with pytest.raises(DatasetError):
            generate_amazon(0)
        with pytest.raises(DatasetError):
            generate_youtube(-5)
