"""The distributed runtime: backend equivalence, warm processes, service.

The contract under test (via the :mod:`tests.engines` harness): the full
protocol observation of ``Cluster.run`` — deduplicated result set Θ,
per-site partial counts, and the complete message-bus accounting
(message count, units per kind, units per directed link, hence the
Section 4.3 data-shipment volume) — is **byte-identical across runtime
backends** (``inproc`` | ``threads`` | ``processes``), for both
execution engines, on fixtures and hypothesis-generated
graphs/partitions, across repeated queries on warm clusters and across
mutation streams routed through ``Cluster.apply_update``.

The process-specific sections additionally pin the runtime's warmth
guarantee (each worker process compiles its ``SiteGraphIndex`` exactly
once, across queries *and* updates — zero full recompiles on an
insertion stream) and the service integration
(``MatchService.submit_distributed``).
"""

from __future__ import annotations

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.strong import match
from repro.datasets.paper_figures import data_g1, pattern_q1
from repro.datasets.patterns import sample_pattern_from_data
from repro.distributed import (
    PARTITIONERS,
    Cluster,
    bfs_partition,
    crossing_ball_bound,
    distributed_match,
    hash_partition,
    process_backend_available,
)
from repro.exceptions import DistributedError
from repro.service import MatchService

from tests.conftest import graph_seeds, pattern_seeds, random_digraph
from tests.engines import (
    ENGINES,
    DeltaRecorder,
    assert_cluster_backends_identical,
    bus_observation,
    canonical_result,
    cluster_observation,
    random_mutation,
    available_backends,
)

needs_processes = pytest.mark.skipif(
    not process_backend_available(),
    reason="platform has no fork/forkserver/spawn support",
)


def random_assignment(data, num_sites: int, seed: int):
    rng = random.Random(seed)
    return {node: rng.randrange(num_sites) for node in data.nodes()}


# ----------------------------------------------------------------------
# Backend equivalence: fixtures × partitioners × engines
# ----------------------------------------------------------------------
class TestBackendEquivalence:
    @pytest.mark.parametrize("num_sites", [2, 3])
    @pytest.mark.parametrize("partitioner", sorted(PARTITIONERS))
    def test_paper_figure_full_matrix(self, partitioner, num_sites):
        pattern, data = pattern_q1(), data_g1(4)
        assignment = PARTITIONERS[partitioner](data, num_sites)
        assert_cluster_backends_identical(
            pattern, data, assignment=assignment, num_sites=num_sites
        )

    def test_synthetic_bfs_partition(self, small_synthetic):
        pattern = sample_pattern_from_data(small_synthetic, 4, seed=2)
        assert pattern is not None
        assignment = bfs_partition(small_synthetic, 3)
        assert_cluster_backends_identical(
            pattern, small_synthetic, assignment=assignment, num_sites=3
        )

    @needs_processes
    def test_process_cluster_matches_centralized_and_bound(
        self, small_synthetic
    ):
        """The process backend returns the centralized Θ and respects the
        Section 4.3 shipment bound, like the in-process backends."""
        pattern = sample_pattern_from_data(small_synthetic, 4, seed=3)
        assert pattern is not None
        central = canonical_result(
            match(pattern, small_synthetic, engine="python")
        )
        assignment = hash_partition(small_synthetic, 4)
        bound = crossing_ball_bound(
            small_synthetic, assignment, pattern.diameter
        )
        for engine in ENGINES:
            with Cluster(
                small_synthetic, assignment, 4, engine=engine,
                backend="processes",
            ) as cluster:
                report = cluster.run(pattern)
                assert canonical_result(report.result) == central
                assert report.data_shipment_units <= bound

    def test_multi_query_warm_clusters_stay_in_lockstep(
        self, small_synthetic
    ):
        """Cumulative accounting across several queries on one long-lived
        cluster per backend: per-query remote resets must re-charge
        fetches identically everywhere, including in worker processes."""
        patterns = [
            sample_pattern_from_data(small_synthetic, size, seed=seed)
            for size, seed in ((3, 1), (4, 2), (3, 1))
        ]
        assignment = bfs_partition(small_synthetic, 3)
        clusters = {
            backend: Cluster(small_synthetic, assignment, 3, backend=backend)
            for backend in available_backends()
        }
        try:
            for pattern in patterns:
                assert pattern is not None
                observations = {
                    backend: cluster_observation(cluster.run(pattern))
                    for backend, cluster in clusters.items()
                }
                reference = observations["inproc"]
                for backend, observed in observations.items():
                    assert observed == reference, (
                        f"backend {backend!r} left lockstep"
                    )
        finally:
            for cluster in clusters.values():
                cluster.close()

    @needs_processes
    def test_engine_override_per_query(self, small_synthetic):
        pattern = sample_pattern_from_data(small_synthetic, 3, seed=5)
        assert pattern is not None
        assignment = hash_partition(small_synthetic, 2)
        with Cluster(
            small_synthetic, assignment, 2, engine="python",
            backend="processes",
        ) as cluster:
            default_run = cluster_observation(cluster.run(pattern))
            override_run = cluster_observation(
                cluster.run(pattern, engine="kernel")
            )
        assert override_run["result"] == default_run["result"]
        assert (
            override_run["per_site_subgraphs"]
            == default_run["per_site_subgraphs"]
        )


# ----------------------------------------------------------------------
# Randomized backend equivalence (hypothesis shrinks over seeds)
# ----------------------------------------------------------------------
class TestRandomizedBackendEquivalence:
    @settings(max_examples=8, deadline=None)
    @given(
        seed=graph_seeds,
        pattern_seed=pattern_seeds,
        num_sites=st.integers(min_value=1, max_value=3),
    )
    def test_random_graphs_random_assignments(
        self, seed, pattern_seed, num_sites
    ):
        data = random_digraph(seed, max_nodes=12, edge_prob=0.3)
        pattern = sample_pattern_from_data(data, 3, seed=pattern_seed)
        if pattern is None:
            from tests.conftest import random_connected_pattern

            pattern = random_connected_pattern(pattern_seed, max_nodes=3)
        assignment = random_assignment(data, num_sites, seed + pattern_seed)
        assert_cluster_backends_identical(
            pattern, data, assignment=assignment, num_sites=num_sites
        )


# ----------------------------------------------------------------------
# Mutation pipeline across backends
# ----------------------------------------------------------------------
class TestBackendUpdateEquivalence:
    def test_update_stream_keeps_backends_in_lockstep(self, small_synthetic):
        """Mirror one master delta stream into a live cluster per backend
        and compare full observations at every checkpoint (plus a
        freshly built cluster's result as the ground truth)."""
        graph = small_synthetic
        pattern = sample_pattern_from_data(graph, 4, seed=2)
        assert pattern is not None
        assignment = bfs_partition(graph, 3)
        clusters = {
            backend: Cluster(graph.copy(), dict(assignment), 3,
                             backend=backend)
            for backend in available_backends()
        }
        recorder = DeltaRecorder(graph)
        rng = random.Random(42)
        fresh_node = 30_000
        try:
            applied = 0
            for _ in range(24):
                op = random_mutation(rng, graph, fresh_node)
                if op is None:
                    continue
                if op[0] == "add_node":
                    fresh_node += 1
                applied += 1
                for delta in recorder.drain():
                    for cluster in clusters.values():
                        cluster.apply_update(delta)
                if applied % 6:
                    continue
                observations = {
                    backend: cluster_observation(cluster.run(pattern))
                    for backend, cluster in clusters.items()
                }
                reference = observations["inproc"]
                for backend, observed in observations.items():
                    assert observed == reference, (
                        f"backend {backend!r} diverged after updates"
                    )
                fresh = Cluster(
                    graph.copy(),
                    dict(clusters["inproc"].assignment),
                    3,
                )
                fresh_report = fresh.run(pattern)
                assert (
                    canonical_result(fresh_report.result)
                    == reference["result"]
                ), "warm clusters diverged from a freshly built cluster"
            assert applied >= 12, "mutation stream fizzled; weak test"
        finally:
            for cluster in clusters.values():
                cluster.close()


# ----------------------------------------------------------------------
# Process-runtime specifics
# ----------------------------------------------------------------------
@needs_processes
class TestProcessRuntime:
    def test_worker_processes_keep_their_index_warm(self, small_synthetic):
        """Zero full recompiles across queries and an insertion stream:
        each worker process compiles its ``SiteGraphIndex`` exactly once
        (``index_builds == 1``), and updates patch it in place."""
        pattern = sample_pattern_from_data(small_synthetic, 4, seed=2)
        assert pattern is not None
        assignment = bfs_partition(small_synthetic, 3)
        with Cluster(
            small_synthetic, assignment, 3, engine="kernel",
            backend="processes",
        ) as cluster:
            cluster.run(pattern)
            first = cluster.worker_stats()
            assert all(s["index_builds"] == 1 for s in first.values())
            # Insertion stream: new nodes and edges, routed like a
            # production master->cluster mirror would route them.
            nodes = list(small_synthetic.nodes())
            for i in range(8):
                cluster.add_node(f"ins{i}", "l0")
                cluster.add_edge(f"ins{i}", nodes[i % len(nodes)])
            cluster.run(pattern)
            cluster.run(pattern)
            after = cluster.worker_stats()
            assert all(s["index_builds"] == 1 for s in after.values()), (
                "an insertion stream must not recompile any site index"
            )
            assert all(s["queries_served"] == 3 for s in after.values())

    def test_run_parallel_flag_is_inert_on_processes(self, small_synthetic):
        pattern = sample_pattern_from_data(small_synthetic, 3, seed=5)
        assert pattern is not None
        assignment = bfs_partition(small_synthetic, 2)
        with Cluster(
            small_synthetic, assignment, 2, backend="processes"
        ) as cluster:
            serial = cluster_observation(cluster.run(pattern, parallel=False))
            again = cluster_observation(cluster.run(pattern, parallel=True))
        assert serial["result"] == again["result"]
        assert serial["per_site_subgraphs"] == again["per_site_subgraphs"]

    def test_closed_transport_fails_loud(self, small_synthetic):
        pattern = sample_pattern_from_data(small_synthetic, 3, seed=5)
        assert pattern is not None
        assignment = bfs_partition(small_synthetic, 2)
        cluster = Cluster(small_synthetic, assignment, 2, backend="processes")
        cluster.close()
        cluster.close()  # idempotent
        with pytest.raises(DistributedError):
            cluster.run(pattern)

    def test_distributed_match_does_not_leak_processes(self, small_synthetic):
        pattern = sample_pattern_from_data(small_synthetic, 3, seed=5)
        assert pattern is not None
        assignment = bfs_partition(small_synthetic, 2)
        report = distributed_match(
            pattern, small_synthetic, assignment, 2, backend="processes"
        )
        direct = distributed_match(pattern, small_synthetic, assignment, 2)
        assert canonical_result(report.result) == canonical_result(
            direct.result
        )

    def test_invalid_backend_rejected(self, small_synthetic):
        assignment = bfs_partition(small_synthetic, 2)
        with pytest.raises(DistributedError):
            Cluster(small_synthetic, assignment, 2, backend="sparks")

    def test_distributed_match_does_not_leak_threads(self, small_synthetic):
        """A one-shot threads-backend call must close the per-site pool.

        Regression: ``distributed_match`` used to close the cluster only
        on the processes backend, leaving the (non-daemon) site threads
        alive until interpreter exit on ``backend="threads"``."""
        import threading

        pattern = sample_pattern_from_data(small_synthetic, 3, seed=5)
        assert pattern is not None
        assignment = bfs_partition(small_synthetic, 2)
        report = distributed_match(
            pattern, small_synthetic, assignment, 2, backend="threads"
        )
        assert canonical_result(report.result) == canonical_result(
            match(pattern, small_synthetic)
        )
        leaked = [
            t for t in threading.enumerate()
            if t.name.startswith("repro-site") and t.is_alive()
        ]
        assert not leaked, f"site threads survived the one-shot call: {leaked}"


# ----------------------------------------------------------------------
# CLI: the --backend flag
# ----------------------------------------------------------------------
class TestCliBackend:
    @pytest.fixture
    def files(self, tmp_path):
        import json

        from repro.io.jsonio import pattern_to_dict, write_graph_json

        data = random_digraph(9, max_nodes=30, edge_prob=0.25)
        pattern = sample_pattern_from_data(data, 3, seed=4)
        assert pattern is not None
        graph_path = tmp_path / "g.json"
        write_graph_json(data, graph_path)
        pattern_path = tmp_path / "q.json"
        pattern_path.write_text(json.dumps(pattern_to_dict(pattern)))
        return str(graph_path), str(pattern_path)

    @pytest.mark.parametrize("backend", ["inproc", "threads", "processes"])
    def test_distributed_backend_flag(self, backend, files, capsys):
        if backend == "processes" and not process_backend_available():
            pytest.skip("no process support")
        from repro.cli import main

        graph_path, pattern_path = files
        code = main([
            "distributed", "--data", graph_path, "--pattern", pattern_path,
            "--sites", "2", "--backend", backend,
        ])
        out = capsys.readouterr().out
        assert code in (0, 1)  # 1 = legitimately empty result
        assert f"backend={backend}" in out
        assert "data shipment" in out

    def test_parallel_still_means_threads(self, files, capsys):
        from repro.cli import main

        graph_path, pattern_path = files
        code = main([
            "distributed", "--data", graph_path, "--pattern", pattern_path,
            "--sites", "2", "--parallel",
        ])
        assert code in (0, 1)
        assert "backend=threads" in capsys.readouterr().out


# ----------------------------------------------------------------------
# Service integration: distributed queries through MatchService
# ----------------------------------------------------------------------
class TestServiceDistributed:
    @pytest.mark.parametrize("backend", ["inproc", "processes"])
    def test_service_run_observes_identically_to_direct(
        self, backend, small_synthetic
    ):
        if backend == "processes" and not process_backend_available():
            pytest.skip("no process support")
        pattern = sample_pattern_from_data(small_synthetic, 4, seed=2)
        assert pattern is not None
        assignment = bfs_partition(small_synthetic, 3)
        with Cluster(
            small_synthetic, assignment, 3, backend=backend
        ) as served_cluster, Cluster(
            small_synthetic, assignment, 3
        ) as direct_cluster, MatchService(max_workers=2) as service:
            served = cluster_observation(
                service.query_distributed(pattern, served_cluster)
            )
            direct = cluster_observation(direct_cluster.run(pattern))
        assert served == direct

    @needs_processes
    def test_concurrent_distributed_submits_coalesce_per_cluster(
        self, small_synthetic
    ):
        """Several in-flight distributed futures against one cluster:
        the processes backend's shared result store single-flights them
        into one protocol run, every report observes identically to a
        serial run, and the cluster's cumulative bus shows exactly one
        query's traffic."""
        pattern = sample_pattern_from_data(small_synthetic, 4, seed=2)
        assert pattern is not None
        assignment = bfs_partition(small_synthetic, 3)
        rounds = 4
        with Cluster(
            small_synthetic, assignment, 3, backend="processes"
        ) as cluster, MatchService(max_workers=rounds) as service:
            assert cluster.result_store is not None
            futures = [
                service.submit_distributed(pattern, cluster)
                for _ in range(rounds)
            ]
            reports = [future.result() for future in futures]
            assert service.stats.computed == 1
            assert service.stats.computed + service.stats.replayed == rounds
        results = {canonical_result(r.result) for r in reports}
        assert len(results) == 1
        expected = canonical_result(match(pattern, small_synthetic))
        assert results.pop() == expected
        with Cluster(small_synthetic, assignment, 3) as serial_cluster:
            serial_report = serial_cluster.run(pattern)
        assert (
            cluster.bus.units_by_kind()
            == serial_report.bus.units_by_kind()
        ), "coalesced submits must cost exactly one protocol run"
        for report in reports:
            assert bus_observation(report.bus) == bus_observation(
                serial_report.bus
            ), "every report must account like one serial run"
