"""Differential suite for the path-matching engines (PR 8).

The kernel path answers bounded / regular matching through the
``ReachIndex`` 2-hop distance labeling; the python path is the reference
BFS / NFA product walk.  Both compute unique greatest fixpoints, so the
contract is *output identity* — enforced here over paper fixtures,
random graphs (hypothesis), regex constraint pools, and interleaved
mutation streams, plus direct properties of the labeling itself
(exact distances, in-place insertion patches, drop-on-deletion).
"""

from __future__ import annotations

from collections import deque

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.bounded import BoundedPattern, _ReachabilityOracle, bounded_simulation
from repro.core.digraph import DiGraph
from repro.core.kernel import get_index
from repro.core.pattern import Pattern
from repro.core.reach import (
    PATH_ENGINES,
    TargetProbe,
    get_reach_index,
    resolve_path_engine,
)
from repro.exceptions import MatchingError
from tests.conftest import (
    graph_seeds,
    graph_with_sampled_pattern,
    pattern_seeds,
    random_digraph,
)
from tests.engines import (
    assert_paths_containment,
    assert_paths_identical,
    assert_paths_update_workload_identical,
    mixed_bounds,
)

#: Regex constraint pool cycled over pattern edges in the regex tests.
CONSTRAINT_POOL = (".*", "l0", "l0*", "(l0|l1)*", "l1?", ".")


def _chain(labels):
    graph = DiGraph()
    for i, label in enumerate(labels):
        graph.add_node(i, label)
    for i in range(len(labels) - 1):
        graph.add_edge(i, i + 1)
    return graph


def _bfs_dist(data: DiGraph, source, target):
    if source == target:
        return 0
    frontier = deque([(source, 0)])
    seen = {source}
    while frontier:
        node, depth = frontier.popleft()
        for child in data.successors_raw(node):
            if child == target:
                return depth + 1
            if child not in seen:
                seen.add(child)
                frontier.append((child, depth + 1))
    return None


def _bfs_dist_positive(data: DiGraph, source, target):
    """Length of the shortest path of >= 1 hop (cycle length for
    source == target), the witness semantics of the probes."""
    best = None
    for child in data.successors_raw(source):
        step = 0 if child == target else _bfs_dist(data, child, target)
        if step is not None and (best is None or step + 1 < best):
            best = step + 1
    return best


def _constraints(pattern: Pattern):
    edges = sorted(pattern.edges(), key=repr)
    return {
        edge: CONSTRAINT_POOL[i % len(CONSTRAINT_POOL)]
        for i, edge in enumerate(edges)
    }


# ----------------------------------------------------------------------
# Engine seam
# ----------------------------------------------------------------------
class TestEngineSeam:
    def test_known_engines(self, small_synthetic):
        for engine in PATH_ENGINES:
            assert resolve_path_engine(engine, small_synthetic) in (
                "python",
                "kernel",
            )

    def test_explicit_numpy_rejected(self, small_synthetic):
        # There is no numpy path engine (probe batching is a ROADMAP
        # item); only an *auto*-resolved numpy tier maps onto kernel.
        with pytest.raises(ValueError):
            resolve_path_engine("numpy", small_synthetic)

    def test_unknown_engine_rejected(self, small_synthetic):
        with pytest.raises(ValueError):
            resolve_path_engine("fortran", small_synthetic)


# ----------------------------------------------------------------------
# Corrected bounded-BFS cycle semantics (satellite a)
# ----------------------------------------------------------------------
class TestCycleBackSemantics:
    def test_three_cycle_bound_two_excludes_source(self):
        graph = _chain(["a", "b", "c"])
        graph.add_edge(2, 0)  # 3-cycle 0 -> 1 -> 2 -> 0
        oracle = _ReachabilityOracle(graph)
        # The cycle back to 0 needs 3 hops; bound 2 must NOT include it.
        assert 0 not in oracle.reachable_set(0, 2)
        assert oracle.reachable_set(0, 2) == {1, 2}
        # Bound 3 (and unbounded) close the cycle.
        assert 0 in oracle.reachable_set(0, 3)
        assert 0 in oracle.reachable_set(0, None)

    def test_self_loop_within_every_bound(self):
        graph = _chain(["a", "b"])
        graph.add_edge(0, 0)
        oracle = _ReachabilityOracle(graph)
        assert 0 in oracle.reachable_set(0, 1)

    def test_kernel_agrees_on_cycle_bounds(self):
        graph = _chain(["a", "b", "c"])
        graph.add_edge(2, 0)
        pgraph = DiGraph()
        pgraph.add_node("u", "a")
        pgraph.add_node("w", "a")
        pgraph.add_edge("u", "w")
        pattern = Pattern(pgraph)
        for bound in (2, 3, None):
            bp = BoundedPattern(pattern, {("u", "w"): bound})
            assert bounded_simulation(
                bp, graph, engine="kernel"
            ).pair_set() == bounded_simulation(
                bp, graph, engine="python"
            ).pair_set()


# ----------------------------------------------------------------------
# The labeling itself: exact distances, probes
# ----------------------------------------------------------------------
class TestReachIndex:
    @settings(max_examples=40, deadline=None)
    @given(graph_seeds)
    def test_dist_matches_bfs(self, seed):
        data = random_digraph(seed, max_nodes=14, edge_prob=0.3)
        ri = get_reach_index(data)
        gi = ri.gi
        nodes = list(data.nodes())
        for u in nodes:
            for w in nodes:
                expected = _bfs_dist(data, u, w)
                assert ri.dist(gi.index_of[u], gi.index_of[w]) == expected, (
                    f"dist({u!r}, {w!r}) wrong at seed {seed}"
                )

    @settings(max_examples=25, deadline=None)
    @given(graph_seeds, st.sampled_from([1, 2, 3, None]))
    def test_target_probe_matches_bfs_witness(self, seed, bound):
        data = random_digraph(seed, max_nodes=12, edge_prob=0.3)
        ri = get_reach_index(data)
        gi = ri.gi
        nodes = list(data.nodes())
        targets = {gi.index_of[v] for v in nodes[::2]}
        probe = TargetProbe(ri, targets)
        for v in nodes:
            expected = any(
                (d := _bfs_dist_positive(data, v, t)) is not None
                and (bound is None or d <= bound)
                for t in nodes[::2]
            )
            assert probe.witness_from(gi.index_of[v], bound) == expected

    def test_insertions_patch_in_place(self):
        data = random_digraph(3, max_nodes=10, edge_prob=0.25)
        get_reach_index(data)  # prime
        stats = get_index(data).stats
        assert stats.reach_builds == 1
        nodes = list(data.nodes())
        inserted = 0
        for source in nodes:
            for target in nodes:
                if not data.has_edge(source, target) and source != target:
                    data.add_edge(source, target)
                    inserted += 1
                    break
            if inserted >= 4:
                break
        ri = get_reach_index(data)  # syncs the deltas
        stats = get_index(data).stats
        assert stats.reach_builds == 1, "insertions must not rebuild"
        assert stats.reach_drops == 0
        assert stats.reach_patches == inserted
        gi = ri.gi
        for u in nodes:
            for w in nodes:
                assert ri.dist(
                    gi.index_of[u], gi.index_of[w]
                ) == _bfs_dist(data, u, w)

    def test_deletion_drops_and_rebuilds(self):
        data = random_digraph(5, max_nodes=10, edge_prob=0.3)
        edges = list(data.edges())
        assert edges, "fixture needs at least one edge"
        get_reach_index(data)
        data.remove_edge(*edges[0])
        ri = get_reach_index(data)
        stats = get_index(data).stats
        assert stats.reach_drops == 1, "deletions must drop the labeling"
        assert stats.reach_builds == 2, "next probe must rebuild lazily"
        gi = ri.gi
        for u in data.nodes():
            for w in data.nodes():
                assert ri.dist(
                    gi.index_of[u], gi.index_of[w]
                ) == _bfs_dist(data, u, w)


# ----------------------------------------------------------------------
# Engine equivalence: fixtures, hypothesis, constraints
# ----------------------------------------------------------------------
class TestPathEquivalence:
    def test_paper_figures(self, q1, g1):
        assert_paths_identical(q1, g1, bounds=mixed_bounds(q1))

    def test_small_synthetic(self, small_synthetic):
        from repro.datasets.patterns import sample_pattern_from_data

        pattern = sample_pattern_from_data(small_synthetic, 4, seed=17)
        assert pattern is not None
        assert_paths_identical(pattern, small_synthetic)

    @settings(max_examples=30, deadline=None)
    @given(graph_with_sampled_pattern())
    def test_hop_bounds_property(self, pair):
        data, pattern = pair
        assert_paths_identical(pattern, data, bounds=mixed_bounds(pattern))

    @settings(max_examples=20, deadline=None)
    @given(graph_with_sampled_pattern())
    def test_regex_constraints_property(self, pair):
        data, pattern = pair
        assert_paths_identical(
            pattern,
            data,
            bounds=mixed_bounds(pattern),
            constraints=_constraints(pattern),
        )

    @settings(max_examples=20, deadline=None)
    @given(graph_with_sampled_pattern())
    def test_containment_chain(self, pair):
        data, pattern = pair
        assert_paths_containment(pattern, data)


# ----------------------------------------------------------------------
# Mutation streams: warm patched index vs reference vs fresh compile
# ----------------------------------------------------------------------
class TestUpdateWorkloads:
    @settings(max_examples=8, deadline=None)
    @given(graph_seeds, pattern_seeds)
    def test_mixed_mutations(self, gseed, pseed):
        data = random_digraph(gseed, max_nodes=12, edge_prob=0.3)
        from tests.conftest import random_connected_pattern

        pattern = random_connected_pattern(pseed, max_nodes=3)
        assert_paths_update_workload_identical(
            pattern, data, num_ops=8, op_seed=gseed * 31 + pseed,
            check_every=2,
        )

    def test_regex_constraints_under_mutation(self):
        data = random_digraph(11, max_nodes=12, edge_prob=0.3)
        from tests.conftest import random_connected_pattern

        pattern = random_connected_pattern(23, max_nodes=3)
        assert_paths_update_workload_identical(
            pattern, data, num_ops=6, op_seed=47,
            constraints=_constraints(pattern), check_every=2,
        )

    def test_pure_insertions_never_rebuild(self):
        from repro.datasets.patterns import sample_pattern_from_data
        from repro.datasets.synthetic import generate_graph
        from repro.experiments.performance import random_insertion_stream

        data = generate_graph(120, alpha=1.15, num_labels=5, seed=41)
        pattern = sample_pattern_from_data(data, 3, seed=43)
        assert pattern is not None
        bp = BoundedPattern(pattern, mixed_bounds(pattern))
        bounded_simulation(bp, data, engine="kernel")  # prime
        stream = random_insertion_stream(data, 12, seed=5)
        for source, target in stream:
            data.add_edge(source, target)
            warm = bounded_simulation(bp, data, engine="kernel")
            assert warm.pair_set() == bounded_simulation(
                bp, data, engine="python"
            ).pair_set()
        stats = get_index(data).stats
        assert stats.reach_builds == 1
        assert stats.reach_drops == 0
        assert stats.reach_patches == len(stream)
