"""Smoke tests: the example scripts must run and print their key claims.

Heavier examples (surrogate networks of thousands of nodes) are exercised
in a reduced form by importing their building blocks; the light ones run
end to end in a subprocess, as a user would run them.
"""

import subprocess
import sys
from pathlib import Path

import pytest

EXAMPLES_DIR = Path(__file__).resolve().parent.parent / "examples"

LIGHT_EXAMPLES = {
    "quickstart.py": ["Bio4", "strong simulation"],
    "regex_paths.py": ["regex constraint", "en1"],
    "streaming_updates.py": ["initial matches", "balls recomputed"],
    "concurrent_service.py": [
        "structurally identical: True",
        "entry retained",
        "entry invalidated, recomputed",
    ],
    "multiprocess_matching.py": [
        "result identical to centralized: True",
        "observation identical to in-process backend: True",
        "site indexes compiled once per worker process: True",
        "still compiled once after live updates: True",
    ],
    "scenario_run.py": [
        "digest matches the committed pin: True",
        "clean diff findings: 0",
        "injected regressions flagged: ['digest', 'slo']",
    ],
    "traced_query.py": [
        "merged per-site phase breakdown:",
        "distributed.run",
        "site.evaluate",
        "site spans merged into one trace: [0, 1, 2]",
        "trace bus log identical to protocol log: True",
        "bus units by kind (metrics registry):",
    ],
}


@pytest.mark.parametrize("script,expected", sorted(LIGHT_EXAMPLES.items()))
def test_light_example_runs(script, expected):
    if script == "multiprocess_matching.py":
        from repro.distributed import process_backend_available

        if not process_backend_available():
            pytest.skip("platform cannot host the process runtime")
    completed = subprocess.run(
        [sys.executable, str(EXAMPLES_DIR / script)],
        capture_output=True,
        text=True,
        timeout=240,
    )
    assert completed.returncode == 0, completed.stderr
    for fragment in expected:
        assert fragment in completed.stdout


def test_distributed_example_runs():
    completed = subprocess.run(
        [sys.executable, str(EXAMPLES_DIR / "distributed_matching.py")],
        capture_output=True,
        text=True,
        timeout=420,
    )
    assert completed.returncode == 0, completed.stderr
    assert "result identical to centralized: True" in completed.stdout


def test_heavy_examples_importable_building_blocks():
    """The two surrogate case studies at reduced scale."""
    from repro.core.matchplus import match_plus
    from repro.datasets import generate_amazon, generate_youtube
    from repro.datasets.paper_figures import pattern_qa, pattern_qy

    amazon = generate_amazon(400, num_labels=20, seed=2024)
    assert match_plus(pattern_qa(), amazon) is not None
    youtube = generate_youtube(400, num_labels=15, seed=77)
    assert match_plus(pattern_qy(), youtube) is not None
