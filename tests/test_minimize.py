"""Unit + property tests for query minimization (minQ, Theorem 6)."""

from hypothesis import given, settings

from repro.core.digraph import DiGraph
from repro.core.minimize import (
    dual_equivalence_classes,
    minimize_pattern,
    patterns_dual_equivalent,
)
from repro.core.pattern import Pattern
from repro.core.strong import match
from repro.core.dualsim import dual_simulation
from tests.conftest import graph_seeds, pattern_seeds, random_connected_pattern, random_digraph


class TestEquivalenceClasses:
    def test_identity_pattern_has_singleton_classes(self):
        p = Pattern.build({"a": "A", "b": "B"}, [("a", "b")])
        classes = dual_equivalence_classes(p)
        assert sorted(sorted(c) for c in classes) == [["a"], ["b"]]

    def test_twin_branches_collapse(self):
        p = Pattern.build(
            {"r": "R", "x": "B", "y": "B"},
            [("r", "x"), ("r", "y")],
        )
        classes = dual_equivalence_classes(p)
        assert sorted(sorted(c) for c in classes) == [["r"], ["x", "y"]]

    def test_label_twins_with_different_structure_stay_apart(self):
        # x has a child, y does not: not dual-equivalent despite labels.
        p = Pattern.build(
            {"r": "R", "x": "B", "y": "B", "z": "C"},
            [("r", "x"), ("r", "y"), ("x", "z")],
        )
        classes = dual_equivalence_classes(p)
        assert {frozenset(c) for c in classes} == {
            frozenset({"r"}), frozenset({"x"}), frozenset({"y"}), frozenset({"z"})
        }


class TestMinimizePattern:
    def test_q5_example(self):
        from repro.datasets.paper_figures import pattern_q5

        minimized = minimize_pattern(pattern_q5())
        assert minimized.pattern.num_nodes == 5
        assert minimized.pattern.num_edges == 4
        assert minimized.radius == pattern_q5().diameter

    def test_radius_is_original_diameter(self):
        p = Pattern.build(
            {"r": "R", "x": "B", "y": "B"},
            [("r", "x"), ("r", "y")],
        )
        minimized = minimize_pattern(p)
        assert minimized.radius == p.diameter == 2
        # The quotient itself has diameter 1; the radius must not shrink.
        assert minimized.pattern.diameter == 1

    def test_already_minimal_is_isomorphic_identity(self):
        p = Pattern.build({"a": "A", "b": "B"}, [("a", "b")])
        minimized = minimize_pattern(p)
        assert minimized.pattern.num_nodes == 2
        assert minimized.pattern.num_edges == 1

    def test_expand_match_roundtrip(self):
        from repro.datasets.paper_figures import pattern_q5

        minimized = minimize_pattern(pattern_q5())
        all_members = set()
        for class_id in range(len(minimized.classes)):
            all_members |= set(minimized.expand_match(class_id))
        assert all_members == set(pattern_q5().nodes())

    def test_self_loop_quotient(self):
        # A 2-cycle of equal labels collapses to one node with a self-loop.
        p = Pattern.build({"a": "X", "b": "X"}, [("a", "b"), ("b", "a")])
        minimized = minimize_pattern(p)
        assert minimized.pattern.num_nodes == 1
        quotient_node = next(iter(minimized.pattern.nodes()))
        assert minimized.pattern.graph.has_edge(quotient_node, quotient_node)


class TestTheorem6Equivalence:
    @given(pattern_seeds)
    @settings(max_examples=40, deadline=None)
    def test_minimized_never_larger(self, seed):
        pattern = random_connected_pattern(seed)
        minimized = minimize_pattern(pattern)
        assert minimized.pattern.size <= pattern.size

    @given(pattern_seeds, graph_seeds)
    @settings(max_examples=40, deadline=None)
    def test_same_dual_match_graph_on_any_data(self, pseed, gseed):
        """Lemma 2(1): Q and Qm have the same match graph via dual
        simulation on any data graph — hence the same matched node set."""
        pattern = random_connected_pattern(pseed)
        data = random_digraph(gseed)
        minimized = minimize_pattern(pattern)
        original = dual_simulation(pattern, data)
        quotient = dual_simulation(minimized.pattern, data)
        assert original.data_nodes() == quotient.data_nodes()

    @given(pattern_seeds, graph_seeds)
    @settings(max_examples=25, deadline=None)
    def test_same_strong_simulation_results(self, pseed, gseed):
        """Lemma 3: with the original diameter as radius, Q and Qm give
        the same strong-simulation output on any data graph."""
        pattern = random_connected_pattern(pseed, max_nodes=4)
        data = random_digraph(gseed, max_nodes=10)
        minimized = minimize_pattern(pattern)
        original = {
            sg.signature() for sg in match(pattern, data)
        }
        quotient = {
            sg.signature()
            for sg in match(
                minimized.pattern, data, radius=minimized.radius
            )
        }
        assert original == quotient

    @given(pattern_seeds)
    @settings(max_examples=40, deadline=None)
    def test_minimized_is_dual_equivalent_to_original(self, seed):
        pattern = random_connected_pattern(seed)
        minimized = minimize_pattern(pattern)
        assert patterns_dual_equivalent(pattern, minimized.pattern)

    @given(pattern_seeds)
    @settings(max_examples=40, deadline=None)
    def test_minimization_is_idempotent(self, seed):
        pattern = random_connected_pattern(seed)
        once = minimize_pattern(pattern)
        twice = minimize_pattern(once.pattern)
        assert twice.pattern.num_nodes == once.pattern.num_nodes
        assert twice.pattern.num_edges == once.pattern.num_edges
