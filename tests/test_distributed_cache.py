"""Distributed query caching: version vectors, shared stores, replays.

The contract under test: a :class:`~repro.distributed.coordinator.Cluster`
stamps every routed update into a per-site **version vector**, the
:class:`~repro.service.cache.ResultCache` gates distributed entries on
the exact vector, and a warm hit replays the *full*
``DistributedRunReport`` observation — result set, per-site partial
counts, and the complete per-query bus log — byte-identically to a
fresh ``cluster.run``, across engines, backends, isomorphic pattern
twins and interleaved ``apply_update`` streams.  Retention is stricter
than for centralized entries (edge deltas always drop; only
label-disjoint node deltas survive), because a distributed entry
replays traffic, not just results.  The shared coordinator-hosted
store lets several ``MatchService`` front-ends over one cluster share
warm entries and coalesce concurrent misses on one single-flight
leader.
"""

from __future__ import annotations

import random
import threading

import pytest
from hypothesis import HealthCheck, given, settings

from repro.core.digraph import DiGraph
from repro.core.pattern import Pattern
from repro.datasets.paper_figures import data_g1, pattern_q1
from repro.datasets.patterns import sample_pattern_from_data
from repro.distributed import (
    Cluster,
    bfs_partition,
    hash_partition,
    process_backend_available,
)
from repro.service import MatchService
from repro.service.cache import ResultCache

from tests.conftest import (
    graph_seeds,
    pattern_seeds,
    random_connected_pattern,
    random_digraph,
)
from tests.engines import (
    available_backends,
    assert_distributed_service_identical,
    distributed_observation,
    permuted_pattern,
)

needs_processes = pytest.mark.skipif(
    not process_backend_available(),
    reason="platform has no fork/forkserver/spawn support",
)


def two_site_cluster(**kwargs) -> Cluster:
    """A tiny two-site cluster with a hand-pinned assignment.

    Site 0 owns ``a`` (label A) and ``b`` (B); site 1 owns ``c`` (A) and
    ``d`` (B); the edge ``b -> c`` crosses the cut.  Two spare nodes
    ``s0``/``s1`` (labels Z/W, one per site, no edges) exist so tests
    can mutate label-disjoint regions.
    """
    graph = DiGraph()
    for node, label in [
        ("a", "A"), ("b", "B"), ("c", "A"), ("d", "B"),
        ("s0", "Z"), ("s1", "W"),
    ]:
        graph.add_node(node, label)
    graph.add_edge("a", "b")
    graph.add_edge("c", "d")
    graph.add_edge("b", "c")
    assignment = {"a": 0, "b": 0, "s0": 0, "c": 1, "d": 1, "s1": 1}
    return Cluster(graph, assignment, 2, **kwargs)


def pattern_ab() -> Pattern:
    """The pattern ``A -> B`` (labels A and B only)."""
    graph = DiGraph()
    graph.add_node("x", "A")
    graph.add_node("y", "B")
    graph.add_edge("x", "y")
    return Pattern(graph)


class TestVersionVector:
    def test_fresh_cluster_is_all_zeros(self):
        with two_site_cluster() as cluster:
            assert cluster.version_vector() == (0, 0)

    def test_intra_site_edge_bumps_owner_only(self):
        with two_site_cluster() as cluster:
            cluster.remove_edge("a", "b")
            assert cluster.version_vector() == (1, 0)
            cluster.add_edge("a", "b")
            assert cluster.version_vector() == (2, 0)

    def test_cross_site_edge_bumps_both_endpoints(self):
        with two_site_cluster() as cluster:
            cluster.add_edge("a", "d")
            assert cluster.version_vector() == (1, 1)
            cluster.remove_edge("b", "c")
            assert cluster.version_vector() == (2, 2)

    def test_node_lifecycle_bumps_owner(self):
        with two_site_cluster() as cluster:
            cluster.relabel_node("d", "X")
            assert cluster.version_vector() == (0, 1)
            cluster.add_node("e", "A", site=1)
            assert cluster.version_vector() == (0, 2)
            cluster.remove_node("s0")  # isolated: one delta, site 0
            assert cluster.version_vector() == (1, 2)

    def test_remove_node_counts_incident_edge_deltas(self):
        with two_site_cluster() as cluster:
            # b has edges a->b (intra site 0) and b->c (crossing): the
            # removal stream is two edge deltas plus the node delta.
            cluster.remove_node("b")
            assert cluster.version_vector() == (3, 1)

    def test_run_report_stamps_current_vector(self):
        with two_site_cluster() as cluster:
            report = cluster.run(pattern_ab())
            assert report.version_vector == (0, 0)
            cluster.relabel_node("s1", "V")
            report = cluster.run(pattern_ab())
            assert report.version_vector == (0, 1)
            assert report.version_vector == cluster.version_vector()

    def test_query_log_is_exactly_this_querys_messages(self):
        with two_site_cluster() as cluster:
            report = cluster.run(pattern_ab())
            logged = [
                (m.sender, m.receiver, m.kind, m.units)
                for m in cluster.bus.messages
            ]
            assert list(report.query_log) == logged  # fresh cluster
            # A second run's log is only the new slice, not cumulative.
            second = cluster.run(pattern_ab())
            assert list(second.query_log) == logged == list(report.query_log)


class TestServiceReplay:
    """Warm hits through ``MatchService.query_distributed`` (inproc)."""

    def test_warm_hit_replays_byte_identically(self):
        with two_site_cluster() as cluster, MatchService() as service:
            direct = distributed_observation(cluster.run(pattern_ab()))
            first = service.query_distributed(pattern_ab(), cluster)
            second = service.query_distributed(pattern_ab(), cluster)
            assert service.stats.computed == 1
            assert service.stats.replayed == 1
            assert distributed_observation(first) == direct
            assert distributed_observation(second) == direct
            # The replay carries a *fresh* bus holding exactly the one
            # query's messages — the cluster's live bus is not advanced.
            assert second.bus is not cluster.bus
            assert len(second.bus.messages) == len(second.query_log)

    def test_isomorphic_twin_replays(self):
        pattern = pattern_q1()
        twin = permuted_pattern(pattern, seed=7)
        data = data_g1()
        assignment = hash_partition(data, 2)
        with Cluster(data, assignment, 2) as cluster, MatchService() as service:
            direct = distributed_observation(cluster.run(twin))
            service.query_distributed(pattern, cluster)
            replayed = service.query_distributed(twin, cluster)
            assert service.stats.computed == 1
            assert service.stats.replayed == 1
            assert distributed_observation(replayed) == direct

    def test_entry_is_engine_independent(self):
        with two_site_cluster() as cluster, MatchService() as service:
            first = service.query_distributed(
                pattern_ab(), cluster, engine="python"
            )
            second = service.query_distributed(
                pattern_ab(), cluster, engine="kernel"
            )
            assert service.stats.computed == 1
            assert service.stats.replayed == 1
            assert distributed_observation(first) == distributed_observation(
                second
            )

    def test_radius_is_part_of_the_key(self):
        with two_site_cluster() as cluster, MatchService() as service:
            service.query_distributed(pattern_ab(), cluster, radius=1)
            service.query_distributed(pattern_ab(), cluster, radius=2)
            assert service.stats.computed == 2
            service.query_distributed(pattern_ab(), cluster, radius=1)
            assert service.stats.replayed == 1

    def test_label_touching_mutation_misses_and_recomputes(self):
        with two_site_cluster() as cluster, MatchService() as service:
            service.query_distributed(pattern_ab(), cluster)
            cluster.relabel_node("c", "Q")  # A is a pattern label
            fresh = distributed_observation(cluster.run(pattern_ab()))
            again = service.query_distributed(pattern_ab(), cluster)
            assert service.stats.computed == 2
            assert service.stats.replayed == 0
            assert distributed_observation(again) == fresh

    def test_edge_delta_invalidates_even_when_label_disjoint(self):
        # s0 -> s1 touches only labels Z/W, far from every candidate:
        # the centralized d_Q rule would retain, but a distributed entry
        # replays fetch traffic, and this new crossing edge changes it.
        with two_site_cluster() as cluster, MatchService() as service:
            service.query_distributed(pattern_ab(), cluster)
            cluster.add_edge("s0", "s1")
            fresh = distributed_observation(cluster.run(pattern_ab()))
            again = service.query_distributed(pattern_ab(), cluster)
            assert service.stats.computed == 2
            assert service.cache.stats.invalidations == 1
            assert distributed_observation(again) == fresh

    def test_label_disjoint_node_deltas_retain(self):
        with two_site_cluster() as cluster, MatchService() as service:
            service.query_distributed(pattern_ab(), cluster)
            cluster.add_node("zz", "Z")
            cluster.relabel_node("zz", "W")
            cluster.remove_node("s1")  # isolated, label W
            assert cluster.version_vector() != (0, 0)
            fresh = distributed_observation(cluster.run(pattern_ab()))
            again = service.query_distributed(pattern_ab(), cluster)
            assert service.stats.computed == 1
            assert service.stats.replayed == 1
            assert service.cache.stats.retained >= 3
            assert service.cache.stats.invalidations == 0
            assert distributed_observation(again) == fresh

    def test_store_refuses_stale_computed_vector(self):
        cache = ResultCache()
        with two_site_cluster() as cluster:
            stale = cluster.version_vector()
            cluster.relabel_node("d", "X")
            cache.store_distributed(
                cluster, ("key",), 1, frozenset({"A"}),
                payload=("payload",), computed_vector=stale,
            )
            assert len(cache) == 0
            assert cache.lookup_distributed(cluster, ("key",), 1) is None
            current = cluster.version_vector()
            cache.store_distributed(
                cluster, ("key",), 1, frozenset({"A"}),
                payload=("payload",), computed_vector=current,
            )
            assert cache.lookup_distributed(
                cluster, ("key",), 1
            ) == ("payload",)


class TestSharedStore:
    def test_two_services_share_one_cluster_store(self):
        with two_site_cluster() as cluster:
            store = cluster.enable_result_store()
            assert cluster.result_store is store
            assert cluster.enable_result_store() is store  # idempotent
            with MatchService() as one, MatchService() as two:
                first = one.query_distributed(pattern_ab(), cluster)
                second = two.query_distributed(pattern_ab(), cluster)
                assert one.stats.computed == 1
                assert two.stats.computed == 0
                assert two.stats.replayed == 1
                assert one.cache.stats.stores == 0  # bypassed entirely
                assert store.stats.stores == 1
                assert distributed_observation(
                    first
                ) == distributed_observation(second)

    def test_cached_false_bypasses_the_store(self):
        with two_site_cluster() as cluster, MatchService() as service:
            store = cluster.enable_result_store()
            service.query_distributed(pattern_ab(), cluster, cached=False)
            service.query_distributed(pattern_ab(), cluster, cached=False)
            assert service.stats.computed == 2
            assert store.stats.stores == 0
            assert len(store) == 0

    def test_cross_service_single_flight(self):
        """Two services, one store: a miss storm elects one leader."""
        with two_site_cluster() as cluster:
            cluster.enable_result_store()
            started = threading.Event()
            release = threading.Event()
            original_run = cluster.run

            def slow_run(*args, **kwargs):
                started.set()
                assert release.wait(timeout=30)
                return original_run(*args, **kwargs)

            cluster.run = slow_run
            try:
                with MatchService() as one, MatchService() as two:
                    leader = one.submit_distributed(pattern_ab(), cluster)
                    assert started.wait(timeout=30)
                    follower = two.submit_distributed(pattern_ab(), cluster)
                    release.set()
                    first = leader.result(timeout=60)
                    second = follower.result(timeout=60)
                    assert one.stats.computed == 1
                    assert two.stats.computed == 0
                    assert two.stats.coalesced == 1
                    assert two.stats.replayed == 1
                    assert distributed_observation(
                        first
                    ) == distributed_observation(second)
            finally:
                del cluster.run  # restore the bound method


class TestFailedSubmitAccounting:
    """A raising distributed run must not count as computed."""

    def test_bad_engine_counts_query_not_computed(self):
        with two_site_cluster() as cluster, MatchService() as service:
            future = service.submit_distributed(
                pattern_ab(), cluster, engine="no-such-engine"
            )
            with pytest.raises(ValueError):
                future.result(timeout=60)
            assert service.stats.queries == 1
            assert service.stats.computed == 0
            assert service.stats.replayed == 0
            # The flight was released: the next submit computes fine.
            report = service.query_distributed(pattern_ab(), cluster)
            assert service.stats.computed == 1
            assert distributed_observation(report) == distributed_observation(
                cluster.run(pattern_ab())
            )

    def test_bad_engine_uncached_path(self):
        with two_site_cluster() as cluster, MatchService() as service:
            future = service.submit_distributed(
                pattern_ab(), cluster, engine="no-such-engine", cached=False
            )
            with pytest.raises(ValueError):
                future.result(timeout=60)
            assert service.stats.queries == 1
            assert service.stats.computed == 0


class TestDifferential:
    """The full harness: cached vs uncached vs direct, per checkpoint."""

    def test_paper_figures_every_backend(self):
        data = data_g1()
        assert_distributed_service_identical(
            pattern_q1(), data, hash_partition(data, 2), 2,
            backends=available_backends(),
        )

    def test_update_stream_inproc(self):
        data = data_g1()
        assert_distributed_service_identical(
            pattern_q1(), data, hash_partition(data, 2), 2,
            num_ops=8, op_seed=3,
        )

    def test_update_stream_threads_synthetic(self, small_synthetic):
        pattern = sample_pattern_from_data(small_synthetic, 3, seed=5)
        assert pattern is not None
        assert_distributed_service_identical(
            pattern, small_synthetic, bfs_partition(small_synthetic, 3), 3,
            backends=("threads",), num_ops=5, op_seed=1,
        )

    @needs_processes
    def test_update_stream_processes(self):
        data = data_g1()
        assert_distributed_service_identical(
            pattern_q1(), data, hash_partition(data, 2), 2,
            engines=("python", "kernel"), backends=("processes",),
            num_ops=3, op_seed=2,
        )

    @settings(
        max_examples=8,
        deadline=None,
        suppress_health_check=[HealthCheck.too_slow],
    )
    @given(graph_seed=graph_seeds, pattern_seed=pattern_seeds)
    def test_randomized_update_streams(self, graph_seed, pattern_seed):
        graph = random_digraph(graph_seed)
        pattern = random_connected_pattern(pattern_seed)
        rng = random.Random(graph_seed)
        assignment = {node: rng.randrange(2) for node in graph.nodes()}
        assert_distributed_service_identical(
            pattern, graph, assignment, 2, num_ops=3,
            op_seed=pattern_seed,
        )
