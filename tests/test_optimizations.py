"""Tests for dualFilter, connectivity pruning and Match+ composition.

The load-bearing invariant: every optimized configuration returns exactly
the plain ``Match`` output (the paper's optimizations are pure speedups).
"""

import itertools

import pytest
from hypothesis import given, settings

from repro.core.ball import extract_ball
from repro.core.dualfilter import dual_filter
from repro.core.dualsim import dual_simulation
from repro.core.matchplus import MatchPlusOptions, match_plus
from repro.core.pattern import Pattern
from repro.core.pruning import (
    candidate_component_of_center,
    prune_candidates_by_connectivity,
)
from repro.core.strong import match
from repro.core.digraph import DiGraph
from tests.conftest import graph_with_sampled_pattern, random_digraph, random_connected_pattern


class TestDualFilter:
    def test_matches_per_ball_dual_simulation(self):
        """dualFilter's refinement of the projected global relation must
        equal running DualSim from scratch on the ball."""
        from repro.core.strong import extract_max_perfect_subgraph

        data = random_digraph(42, max_nodes=14, edge_prob=0.3)
        pattern = random_connected_pattern(7, max_nodes=3)
        global_rel = dual_simulation(pattern, data)
        if global_rel.is_empty():
            pytest.skip("no global match for this seed")
        for center in sorted(global_rel.data_nodes(), key=repr):
            ball = extract_ball(data, center, pattern.diameter)
            filtered = dual_filter(pattern, global_rel, ball)
            direct_rel = dual_simulation(pattern, ball.graph)
            direct = (
                extract_max_perfect_subgraph(pattern, ball, direct_rel)
                if not direct_rel.is_empty()
                else None
            )
            if direct is None:
                assert filtered is None
            else:
                assert filtered is not None
                assert filtered.signature() == direct.signature()

    def test_none_when_projection_empty(self):
        pattern = Pattern.build({"a": "A", "b": "B"}, [("a", "b")])
        data = DiGraph.from_parts(
            {"a1": "A", "b1": "B", "x": "A"},
            [("a1", "b1")],
        )
        global_rel = dual_simulation(pattern, data)
        # Ball around the isolated "x" has no B candidate at all.
        ball = extract_ball(data, "x", pattern.diameter)
        assert dual_filter(pattern, global_rel, ball) is None

    def test_extra_removals_propagate(self):
        pattern = Pattern.build({"a": "A", "b": "B"}, [("a", "b")])
        data = DiGraph.from_parts(
            {"a1": "A", "b1": "B"},
            [("a1", "b1")],
        )
        global_rel = dual_simulation(pattern, data)
        ball = extract_ball(data, "a1", pattern.diameter)
        # Forcibly remove the only match of b: the cascade must empty a too.
        assert (
            dual_filter(
                pattern, global_rel, ball, extra_removals={("b", "b1")}
            )
            is None
        )


class TestPruning:
    def test_prunes_disconnected_candidates(self):
        from repro.datasets.paper_figures import data_g7, pattern_q7

        q7, g7 = pattern_q7(), data_g7()
        ball = extract_ball(g7, "A1", q7.diameter)
        seeds = {
            u: set(ball.graph.nodes_with_label(q7.label(u)))
            for u in q7.nodes()
        }
        union = set().union(*seeds.values())
        component = candidate_component_of_center(ball, union)
        assert component == {"A1", "B1"}

    def test_returns_none_when_center_not_candidate(self):
        pattern = Pattern.build({"a": "A"}, [])
        data = DiGraph.from_parts({"x": "B", "a1": "A"}, [("x", "a1")])
        ball = extract_ball(data, "x", 1)
        seeds = {"a": {"a1"}}
        assert prune_candidates_by_connectivity(pattern, ball, seeds) is None

    def test_empty_union_component(self):
        data = DiGraph.from_parts({"x": "B"}, [])
        ball = extract_ball(data, "x", 1)
        assert candidate_component_of_center(ball, set()) == set()


class TestMatchPlusEquivalence:
    ALL_OPTION_COMBOS = [
        MatchPlusOptions(
            use_minimization=mi,
            use_dual_filter=df,
            use_pruning=pr,
            restrict_centers_by_label=rc,
        )
        for mi, df, pr, rc in itertools.product([False, True], repeat=4)
    ]

    @pytest.mark.parametrize(
        "options",
        ALL_OPTION_COMBOS,
        ids=[
            f"min={o.use_minimization}-filter={o.use_dual_filter}"
            f"-prune={o.use_pruning}-centers={o.restrict_centers_by_label}"
            for o in ALL_OPTION_COMBOS
        ],
    )
    def test_every_option_combo_matches_plain_match(self, options):
        data = random_digraph(99, max_nodes=16, edge_prob=0.28)
        pattern = random_connected_pattern(5, max_nodes=4)
        plain = {sg.signature() for sg in match(pattern, data)}
        optimized = {
            sg.signature() for sg in match_plus(pattern, data, options)
        }
        assert plain == optimized

    @given(graph_with_sampled_pattern())
    @settings(max_examples=40, deadline=None)
    def test_default_match_plus_equals_match(self, pair):
        data, pattern = pair
        plain = {sg.signature() for sg in match(pattern, data)}
        optimized = {sg.signature() for sg in match_plus(pattern, data)}
        assert plain == optimized

    def test_match_plus_on_paper_g1(self):
        from repro.datasets.paper_figures import data_g1, pattern_q1

        pattern, data = pattern_q1(), data_g1(cycle_length=5)
        plain = {sg.signature() for sg in match(pattern, data)}
        optimized = {sg.signature() for sg in match_plus(pattern, data)}
        assert plain == optimized
        result = match_plus(pattern, data)
        # The minimized pattern's class node for Bio still maps to Bio4.
        assert any(
            "Bio4" in sg.graph.nodes_with_label("Bio") for sg in result
        )

    def test_empty_global_relation_short_circuits(self):
        pattern = Pattern.build({"a": "ZZZ"}, [])
        data = DiGraph.from_parts({"x": "A"}, [])
        assert len(match_plus(pattern, data)) == 0
