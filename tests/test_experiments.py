"""Tests for the experiment harnesses (metrics, quality, performance, tables)."""

import pytest

from repro.core.matchrel import MatchRelation
from repro.core.pattern import Pattern
from repro.core.strong import match
from repro.datasets import generate_amazon, generate_graph
from repro.datasets.paper_figures import data_g2, pattern_q2
from repro.experiments import (
    AlgorithmOutcome,
    closeness,
    outcome_from_match_result,
    outcome_from_relation,
    render_closeness_figure,
    render_subgraph_count_figure,
    render_table,
    render_table3,
    render_timing_figure,
    run_quality,
    size_histogram,
    sweep_data_sizes,
    sweep_pattern_sizes,
    sweep_timing,
    time_algorithms,
)
from repro.datasets.patterns import sample_pattern_from_data


class TestMetrics:
    def test_closeness_definition(self):
        outcome = AlgorithmOutcome("X", frozenset({1, 2, 3, 4}), 1, (4,))
        assert closeness({1, 2}, outcome) == pytest.approx(0.5)

    def test_closeness_perfect(self):
        outcome = AlgorithmOutcome("X", frozenset({1, 2}), 1, (2,))
        assert closeness({1, 2}, outcome) == pytest.approx(1.0)

    def test_closeness_empty_both(self):
        outcome = AlgorithmOutcome("X", frozenset(), 0, ())
        assert closeness(set(), outcome) == 1.0

    def test_closeness_algorithm_found_nothing(self):
        outcome = AlgorithmOutcome("X", frozenset(), 0, ())
        assert closeness({1}, outcome) == 0.0

    def test_closeness_clamped_to_one(self):
        # Approximate algorithms can report fewer nodes than VF2.
        outcome = AlgorithmOutcome("X", frozenset({1}), 1, (1,))
        assert closeness({1, 2, 3}, outcome) == 1.0

    def test_outcome_from_match_result(self):
        result = match(pattern_q2(), data_g2())
        outcome = outcome_from_match_result(result)
        assert outcome.num_matched_subgraphs == len(result)
        assert "book2" in outcome.matched_nodes

    def test_outcome_from_relation(self):
        pattern = pattern_q2()
        rel = MatchRelation.from_pairs(pattern, [("B", "book1"), ("ST", "s")])
        outcome = outcome_from_relation(rel)
        assert outcome.num_matched_subgraphs is None
        assert outcome.subgraph_sizes == (2,)

    def test_size_histogram_bins(self):
        hist = size_histogram((3, 12, 12, 55), bin_width=10, num_bins=5)
        assert hist["[0, 9]"] == 1
        assert hist["[10, 19]"] == 2
        assert hist[">= 50"] == 1
        assert hist["[20, 29]"] == 0


class TestQualityHarness:
    @pytest.fixture(scope="class")
    def small_amazon(self):
        return generate_amazon(250, num_labels=10, seed=1)

    def test_run_quality_outcome_names(self, small_amazon):
        pattern = sample_pattern_from_data(small_amazon, 4, seed=0)
        run = run_quality(pattern, small_amazon)
        assert set(run.outcomes) == {"VF2", "Match", "Sim", "TALE", "MCS"}
        assert run.closeness_of("VF2") == 1.0

    def test_match_contains_vf2_nodes(self, small_amazon):
        """Proposition 1 surfaced in the harness: VF2 nodes ⊆ Match nodes."""
        pattern = sample_pattern_from_data(small_amazon, 5, seed=1)
        run = run_quality(pattern, small_amazon)
        assert run.reference_nodes <= run.outcomes["Match"].matched_nodes
        assert run.outcomes["Match"].matched_nodes <= run.outcomes[
            "Sim"
        ].matched_nodes

    def test_sweep_pattern_sizes(self, small_amazon):
        sweep = sweep_pattern_sizes(small_amazon, [2, 4], seed=0)
        assert sweep.axis_values == [2, 4]
        series = sweep.closeness_series()
        assert all(len(v) == 2 for v in series.values())
        counts = sweep.subgraph_count_series()
        assert "Sim" not in counts

    def test_sweep_data_sizes(self):
        sweep = sweep_data_sizes(
            lambda n: generate_amazon(n, num_labels=8, seed=2),
            [100, 200],
            pattern_size=4,
            seed=0,
        )
        assert sweep.axis_values == [100, 200]
        assert len(sweep.runs) == 2

    def test_mean_closeness_ordering(self, small_amazon):
        """The headline Exp-1 shape: Match beats the approximate matchers,
        which beat Sim, on average."""
        sweep = sweep_pattern_sizes(small_amazon, [3, 4, 5, 6], seed=5)
        means = sweep.mean_closeness()
        assert means["Match"] >= means["Sim"]
        assert means["Match"] >= means["TALE"]


class TestReferenceReliability:
    def test_embedding_cap_marks_run_unreliable(self):
        data = generate_graph(40, alpha=1.3, num_labels=2, seed=6)
        pattern = sample_pattern_from_data(data, 3, seed=0)
        assert pattern is not None
        run = run_quality(pattern, data, vf2_max_matches=1)
        assert run.vf2_exhausted

    def test_reliable_only_mean_skips_truncated_runs(self):
        from repro.experiments.quality import QualitySweep

        data = generate_graph(40, alpha=1.3, num_labels=2, seed=6)
        pattern = sample_pattern_from_data(data, 3, seed=0)
        good = run_quality(pattern, data)
        bad = run_quality(pattern, data, vf2_max_matches=1)
        sweep = QualitySweep(axis_name="|Vq|")
        sweep.add(3, good)
        sweep.add(3, bad)
        assert sweep.reliable_run_count() == 1
        reliable = sweep.mean_closeness(reliable_only=True)
        assert reliable["Match"] == pytest.approx(good.closeness_of("Match"))

    def test_state_budget_marks_run_unreliable(self):
        data = generate_graph(60, alpha=1.3, num_labels=2, seed=7)
        pattern = sample_pattern_from_data(data, 5, seed=1)
        assert pattern is not None
        run = run_quality(pattern, data, vf2_max_states=3)
        assert run.vf2_exhausted


class TestPerformanceHarness:
    def test_time_algorithms_keys(self):
        data = generate_graph(60, alpha=1.1, num_labels=5, seed=1)
        pattern = sample_pattern_from_data(data, 3, seed=0)
        run = time_algorithms(pattern, data, include_vf2=True)
        assert set(run.seconds) == {"Sim", "Match", "Match+", "VF2"}
        assert all(
            sec is None or sec >= 0 for sec in run.seconds.values()
        )

    def test_vf2_skipped_when_disabled(self):
        data = generate_graph(60, alpha=1.1, num_labels=5, seed=1)
        pattern = sample_pattern_from_data(data, 3, seed=0)
        run = time_algorithms(pattern, data, include_vf2=False)
        assert run.seconds["VF2"] is None

    def test_sweep_timing(self):
        def pair_for(value, repeat):
            data = generate_graph(
                int(value), alpha=1.1, num_labels=5, seed=repeat
            )
            pattern = sample_pattern_from_data(data, 3, seed=repeat)
            if pattern is None:
                return None
            return pattern, data

        sweep = sweep_timing("|V|", [40, 80], pair_for, repeats=2)
        assert sweep.axis_values == [40, 80]
        series = sweep.series()
        assert len(series["Match"]) == 2
        assert all(sec is not None for sec in series["Match"])

    def test_speedup_ratios(self):
        def pair_for(value, repeat):
            data = generate_graph(
                int(value), alpha=1.15, num_labels=4, seed=3
            )
            pattern = sample_pattern_from_data(data, 4, seed=3)
            return (pattern, data) if pattern else None

        sweep = sweep_timing("|V|", [120], pair_for)
        ratios = sweep.speedup_match_plus()
        assert all(r > 0 for r in ratios)


class TestTables:
    def test_render_table_alignment(self):
        text = render_table(
            "demo", "x", [1, 2], {"col": [0.5, 1.0], "other": [3, None]}
        )
        lines = text.splitlines()
        assert lines[0] == "demo"
        assert "x" in lines[1] and "col" in lines[1]
        assert "-" in lines[2]
        assert "0.500" in lines[3]
        assert lines[4].rstrip().endswith("-")

    def test_render_closeness_figure(self):
        g = generate_amazon(150, num_labels=8, seed=0)
        sweep = sweep_pattern_sizes(g, [3], seed=0)
        text = render_closeness_figure("fig", sweep)
        assert "VF2" in text and "Match" in text and "Sim" in text

    def test_render_subgraph_count_figure(self):
        g = generate_amazon(150, num_labels=8, seed=0)
        sweep = sweep_pattern_sizes(g, [3], seed=0)
        text = render_subgraph_count_figure("fig", sweep)
        assert "Sim" not in text.splitlines()[1]

    def test_render_timing_figure(self):
        def pair_for(value, repeat):
            data = generate_graph(40, alpha=1.1, num_labels=4, seed=0)
            pattern = sample_pattern_from_data(data, 3, seed=0)
            return (pattern, data) if pattern else None

        sweep = sweep_timing("|V|", [40], pair_for)
        text = render_timing_figure("fig8", sweep)
        assert "Match+" in text

    def test_render_table3(self):
        text = render_table3(
            "Table 3", {"Amazon": (5, 15, 25), "YouTube": (12,)}
        )
        assert "[0, 9]" in text
        assert "Amazon" in text and "YouTube" in text
