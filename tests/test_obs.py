"""The unified observability layer: spans, metrics, merged traces.

Four concerns:

* unit behavior of :mod:`repro.obs.trace` (no-op when disabled, nesting,
  capture/adopt grafting, JSON export) and :mod:`repro.obs.metrics`
  (instruments, collectors, snapshot merge, Prometheus rendering);
* wire round-trips for the span / metrics frames the process-backend
  workers ship back;
* the merged-trace contract across engines x backends: ONE
  ``distributed.run`` trace whose ``site.evaluate`` children cover every
  site and whose ``bus.log`` attribute reproduces the per-query bus log
  byte-identically — and tracing must never perturb results;
* stats-object thread-safety under concurrent ``MatchService.submit``
  storms (the counters now feed the metrics registry, so lost
  increments would surface as wrong metrics).
"""

import json
import os
import threading

import pytest

from repro.core.digraph import DiGraph
from repro.core.matchplus import match_plus
from repro.datasets import generate_graph
from repro.datasets.patterns import sample_pattern_from_data
from repro.distributed import Cluster, bfs_partition, process_backend_available
from repro.obs.metrics import (
    HISTOGRAM_BUCKETS,
    MetricsRegistry,
    get_registry,
    merge_snapshots,
    render_prometheus,
)
from repro.obs.report import QueryReport
from repro.obs.trace import (
    NOOP_SPAN,
    capture,
    collector,
    current_span,
    export_traces_json,
    set_tracing,
    span,
    span_from_dict,
    span_to_dict,
    tracing_enabled,
)


@pytest.fixture
def traced():
    """Tracing on, collector clean; restores the previous state."""
    collector().clear()
    previous = set_tracing(True)
    yield
    set_tracing(previous)
    collector().clear()


def small_graph(n=120, seed=7):
    return generate_graph(n, alpha=1.2, num_labels=6, seed=seed)


def pattern_for(data, size=4, seed=11):
    pattern = sample_pattern_from_data(data, size, seed=seed)
    assert pattern is not None
    return pattern


# ----------------------------------------------------------------------
# Tracing unit behavior
# ----------------------------------------------------------------------
#: The CI "differential suite under tracing" job runs with REPRO_TRACE=1,
#: where the disabled-default tests do not apply.
_TRACED_PROCESS = pytest.mark.skipif(
    bool(os.environ.get("REPRO_TRACE")),
    reason="REPRO_TRACE forces tracing on for the whole process",
)


class TestTrace:
    @_TRACED_PROCESS
    def test_disabled_spans_are_the_shared_noop(self):
        assert not tracing_enabled()
        s = span("anything")
        assert s is NOOP_SPAN
        with s as inner:
            assert inner is NOOP_SPAN
            assert inner.set(k=1) is NOOP_SPAN
            assert not inner.enabled
        assert collector().roots() == []
        assert current_span() is NOOP_SPAN

    def test_nesting_attrs_and_timing(self, traced):
        with span("outer") as outer:
            outer.set(a=1)
            with span("inner") as inner:
                inner.set(b="x")
                assert current_span() is inner
            assert current_span() is outer
        roots = collector().roots()
        assert [r.name for r in roots] == ["outer"]
        (root,) = roots
        assert root.attrs == {"a": 1}
        assert [c.name for c in root.children] == ["inner"]
        assert root.children[0].attrs == {"b": "x"}
        assert root.duration >= root.children[0].duration >= 0.0
        assert root.span_count() == 2
        assert [s.name for s in root.find("inner")] == ["inner"]

    @_TRACED_PROCESS
    def test_set_tracing_returns_previous(self):
        assert set_tracing(True) is False
        try:
            assert tracing_enabled()
            assert set_tracing(True) is True
        finally:
            set_tracing(False)

    def test_capture_detaches_and_adopt_grafts(self, traced):
        with capture("shipped") as shipped:
            shipped.set(site=3)
        # A captured span does not land in the collector by itself...
        assert collector().roots() == []
        with span("root") as root:
            root.adopt(shipped)
        (trace_root,) = collector().roots()
        assert [c.name for c in trace_root.children] == ["shipped"]
        assert trace_root.children[0].attrs == {"site": 3}

    def test_span_dict_roundtrip(self, traced):
        with span("a") as a:
            a.set(n=2)
            with span("b"):
                pass
        (root,) = collector().roots()
        clone = span_from_dict(span_to_dict(root))
        assert clone.name == root.name
        assert clone.attrs == root.attrs
        assert [c.name for c in clone.children] == ["b"]
        assert clone.start == root.start and clone.end == root.end

    def test_export_traces_json(self, traced, tmp_path):
        with span("q") as q:
            q.set(engine="kernel")
        path = tmp_path / "trace.json"
        text = export_traces_json(path=str(path))
        document = json.loads(path.read_text())
        assert document == json.loads(text)
        assert document["schema_version"] == 1
        assert document["traces"][0]["name"] == "q"
        assert document["traces"][0]["attrs"] == {"engine": "kernel"}

    def test_non_jsonable_attrs_degrade_to_repr(self, traced):
        marker = object()
        with span("q") as q:
            q.set(weird=marker)
        document = json.loads(export_traces_json())
        assert document["traces"][0]["attrs"]["weird"] == repr(marker)

    def test_collector_is_bounded(self):
        from repro.obs.trace import Span, TraceCollector

        bounded = TraceCollector(capacity=3)
        for i in range(5):
            bounded.add(Span(f"s{i}"))
        assert [s.name for s in bounded.roots()] == ["s2", "s3", "s4"]
        assert bounded.dropped == 2
        assert [s.name for s in bounded.drain()] == ["s2", "s3", "s4"]
        assert bounded.roots() == []


# ----------------------------------------------------------------------
# Metrics registry
# ----------------------------------------------------------------------
class TestMetrics:
    def test_counter_gauge_histogram(self):
        registry = MetricsRegistry()
        registry.counter("c").inc()
        registry.counter("c").inc(2)
        registry.counter("c", kind="x").inc()
        registry.gauge("g").set(4.5)
        for value in (1e-6, 1e-3, 1.0):
            registry.histogram("h").observe(value)
        snap = registry.snapshot()
        assert snap["counters"]["c"] == 3
        assert snap["counters"]["c{kind=x}"] == 1
        assert snap["gauges"]["g"] == 4.5
        hist = snap["histograms"]["h"]
        assert hist["count"] == 3
        assert hist["sum"] == pytest.approx(1.001001)
        assert sum(hist["counts"]) == 3
        assert len(hist["counts"]) == len(HISTOGRAM_BUCKETS) + 1

    def test_labels_are_order_insensitive(self):
        registry = MetricsRegistry()
        registry.counter("m", a=1, b=2).inc()
        registry.counter("m", b=2, a=1).inc()
        assert registry.snapshot()["counters"]["m{a=1,b=2}"] == 2

    def test_collector_lifetime_follows_owner(self):
        import gc

        registry = MetricsRegistry()

        class Stats:
            value = 7

        stats = Stats()
        registry.register_collector(
            stats, lambda: [("s.value", {}, 7)]
        )
        assert registry.snapshot()["counters"]["s.value"] == 7
        # Collector samples sum into live counters on key collision.
        registry.counter("s.value").inc(3)
        assert registry.snapshot()["counters"]["s.value"] == 10
        del stats
        gc.collect()
        # The registration died with its owner; only the live counter
        # remains.
        assert registry.snapshot()["counters"]["s.value"] == 3

    def test_merge_snapshots(self):
        a = MetricsRegistry()
        b = MetricsRegistry()
        a.counter("c").inc(1)
        b.counter("c").inc(2)
        a.histogram("h").observe(0.5)
        b.histogram("h").observe(0.5)
        merged = merge_snapshots(a.snapshot(), b.snapshot())
        assert merged["counters"]["c"] == 3
        assert merged["histograms"]["h"]["count"] == 2

    def test_render_prometheus(self):
        registry = MetricsRegistry()
        registry.counter("cache.hits").inc(5)
        registry.counter("bus.units", kind="fetch").inc(9)
        registry.histogram("service.query_seconds", algorithm="match").observe(0.01)
        text = render_prometheus(registry.snapshot())
        assert "# TYPE repro_cache_hits counter" in text
        assert "repro_cache_hits 5" in text
        assert 'repro_bus_units{kind="fetch"} 9' in text
        assert 'repro_service_query_seconds_count{algorithm="match"} 1' in text
        assert "_bucket{" in text and 'le="+Inf"' in text

    def test_global_registry_absorbs_kernel_stats(self):
        data = small_graph(seed=23)
        pattern = pattern_for(data, seed=29)
        before = (
            get_registry().snapshot()["counters"].get("index.full_compiles", 0)
        )
        match_plus(pattern, data, engine="kernel")
        after = get_registry().snapshot()["counters"]["index.full_compiles"]
        assert after == before + 1


# ----------------------------------------------------------------------
# Wire frames for spans and metric snapshots
# ----------------------------------------------------------------------
class TestWire:
    def test_span_roundtrip(self, traced):
        from repro.distributed.runtime.wire import decode_span, encode_span

        with capture("site.evaluate") as shipped:
            shipped.set(site=1, partial=4)
            with span("kernel.match_plus"):
                pass
        clone = decode_span(encode_span(shipped))
        assert clone.name == "site.evaluate"
        assert clone.attrs == {"site": 1, "partial": 4}
        assert [c.name for c in clone.children] == ["kernel.match_plus"]

    def test_span_none_roundtrip(self):
        from repro.distributed.runtime.wire import decode_span, encode_span

        assert decode_span(encode_span(None)) is None

    def test_metrics_roundtrip(self):
        from repro.distributed.runtime.wire import (
            decode_metrics,
            encode_metrics,
        )

        registry = MetricsRegistry()
        registry.counter("c", kind="x").inc(3)
        registry.gauge("g").set(1.5)
        registry.histogram("h").observe(0.02)
        snap = registry.snapshot()
        clone = decode_metrics(encode_metrics(snap))
        assert clone == snap

    def test_malformed_span_rejected(self):
        from repro.distributed.runtime.wire import _stamp, decode_span
        from repro.exceptions import WireFormatError

        with pytest.raises(WireFormatError):
            decode_span(_stamp("span", ("not", "a", "span")))


# ----------------------------------------------------------------------
# The merged-trace contract (engines x backends)
# ----------------------------------------------------------------------
BACKENDS = ["inproc", "threads"] + (
    ["processes"] if process_backend_available() else []
)


class TestMergedTrace:
    @pytest.fixture(scope="class")
    def workload(self):
        data = generate_graph(220, alpha=1.15, num_labels=8, seed=37)
        pattern = sample_pattern_from_data(data, 5, seed=41)
        assert pattern is not None
        return data, pattern, bfs_partition(data, 3)

    @pytest.mark.parametrize("backend", BACKENDS)
    @pytest.mark.parametrize("engine", ["python", "kernel", "numpy"])
    def test_one_merged_trace_with_byte_identical_bus_log(
        self, workload, engine, backend
    ):
        data, pattern, assignment = workload
        with Cluster(
            data, assignment, 3, engine=engine, backend=backend
        ) as cluster:
            plain = cluster.run(pattern)
            collector().clear()
            previous = set_tracing(True)
            try:
                traced_report = cluster.run(pattern)
            finally:
                set_tracing(previous)

        # Tracing must not perturb the protocol observation.  (On the
        # threads backend the per-site logs interleave differently run
        # to run, so cross-run identity is up to ordering; the charges
        # themselves must match exactly.)
        assert {sg.signature() for sg in traced_report.result} == {
            sg.signature() for sg in plain.result
        }
        assert sorted(traced_report.query_log) == sorted(plain.query_log)

        (root,) = collector().roots()
        assert root.name == "distributed.run"
        site_spans = [c for c in root.children if c.name == "site.evaluate"]
        assert sorted(s.attrs["site"] for s in site_spans) == [0, 1, 2]
        # ONE merged trace: the root's bus.log attribute IS the
        # per-query protocol log, byte for byte.
        assert root.attrs["bus.log"] == traced_report.query_log
        assert root.attrs["bus.messages"] == len(traced_report.query_log)
        for site_span in site_spans:
            assert site_span.attrs["engine"] in ("python", "kernel", "numpy")
            assert site_span.attrs["fetch.records"] >= 0
        report = QueryReport.from_span(root)
        assert report.bus_log == traced_report.query_log
        text = report.format()
        assert "distributed.run" in text and "bus traffic:" in text

    @pytest.mark.parametrize("backend", BACKENDS)
    def test_worker_stats_report_reach_counters(self, workload, backend):
        data, pattern, assignment = workload
        with Cluster(
            data, assignment, 3, engine="kernel", backend=backend
        ) as cluster:
            cluster.run(pattern)
            stats = cluster.worker_stats()
        assert sorted(stats) == [0, 1, 2]
        for site_stats in stats.values():
            for key in (
                "reach_builds",
                "reach_patches",
                "reach_drops",
                "reach_probes",
            ):
                assert key in site_stats, f"missing {key}"
                assert site_stats[key] >= 0

    def test_cluster_metrics_snapshot_merges_sites(self, workload):
        if "processes" not in BACKENDS:
            pytest.skip("platform cannot host the process runtime")
        data, pattern, assignment = workload
        with Cluster(
            data, assignment, 3, engine="kernel", backend="processes"
        ) as cluster:
            cluster.run(pattern)
            snapshot = cluster.metrics_snapshot()
        counters = snapshot["counters"]
        # One pattern decode per worker process: only the shipped
        # per-site snapshots can contribute these.
        assert counters.get("wire.frames{kind=pattern,op=decode}") == 3
        assert any(key.startswith("bus.units{kind=") for key in counters)


# ----------------------------------------------------------------------
# Service stats thread-safety under submit storms (satellite 3)
# ----------------------------------------------------------------------
class TestServiceStatsThreadSafety:
    def _storm(self, service, patterns, data, threads=8, per_thread=25):
        barrier = threading.Barrier(threads)
        futures = []
        lock = threading.Lock()

        def submitter(seed):
            barrier.wait()
            local = []
            for i in range(per_thread):
                pattern = patterns[(seed + i) % len(patterns)]
                local.append(service.submit(pattern, data))
            with lock:
                futures.extend(local)

        workers = [
            threading.Thread(target=submitter, args=(t,))
            for t in range(threads)
        ]
        for worker in workers:
            worker.start()
        for worker in workers:
            worker.join()
        for future in futures:
            future.result()
        return len(futures)

    def test_no_lost_increments_under_concurrent_submits(self):
        from repro.service import MatchService

        data = small_graph(n=150, seed=51)
        patterns = [
            pattern_for(data, size=4, seed=seed) for seed in (61, 67, 71, 73)
        ]
        with MatchService(max_workers=6) as service:
            total = self._storm(service, patterns, data)
            stats = service.stats
            assert stats.queries == total
            assert (
                stats.computed + stats.replayed == total
            ), "computed + replayed must account for every query"
            cache = stats.cache
            assert cache.hits + cache.misses >= total - stats.coalesced
            # The registry view folds the same counters; it must agree.
            counters = get_registry().snapshot()["counters"]
            assert counters["service.queries"] >= total
            assert counters["cache.hits"] >= cache.hits

    def test_storm_with_cache_disabled_computes_everything(self):
        from repro.service import MatchService

        data = small_graph(n=150, seed=51)
        patterns = [pattern_for(data, size=4, seed=seed) for seed in (61, 67)]
        with MatchService(max_workers=6, cache_size=0) as service:
            total = self._storm(
                service, patterns, data, threads=6, per_thread=10
            )
            assert service.stats.queries == total
            assert service.stats.computed == total
            assert service.stats.replayed == 0


# ----------------------------------------------------------------------
# Instrumented engines stay observation-identical under tracing
# ----------------------------------------------------------------------
class TestTracingDoesNotPerturb:
    @pytest.mark.parametrize("engine", ["python", "kernel", "numpy"])
    def test_match_plus_identical_traced(self, engine, traced):
        data = small_graph(seed=81)
        pattern = pattern_for(data, seed=83)
        traced_result = {
            sg.signature() for sg in match_plus(pattern, data, engine=engine)
        }
        set_tracing(False)
        plain_result = {
            sg.signature() for sg in match_plus(pattern, data, engine=engine)
        }
        assert traced_result == plain_result
        if engine in ("kernel", "numpy"):
            roots = collector().roots()
            assert roots and roots[-1].name == f"{engine}.match_plus"
