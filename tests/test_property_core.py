"""Property-based tests on the core data structures and invariants.

Complements the per-module unit tests with hypothesis-driven checks on
the structures everything else builds on: graph mutation sequences, ball
semantics, serialization round-trips, and the simulation-family lattice.
"""

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.ball import extract_ball
from repro.core.digraph import DiGraph
from repro.core.dualsim import dual_simulation
from repro.core.pattern import Pattern
from repro.core.simulation import graph_simulation
from repro.core.traversal import undirected_distances
from repro.io.edgelist import read_edgelist, write_edgelist
from repro.io.jsonio import graph_from_dict, graph_to_dict
from tests.conftest import graph_seeds, random_digraph


class TestGraphMutationInvariants:
    @given(graph_seeds, st.lists(st.integers(0, 400), min_size=1, max_size=25))
    @settings(max_examples=40, deadline=None)
    def test_mutation_sequences_keep_counters_consistent(self, seed, ops):
        """After arbitrary add/remove sequences, num_edges equals the
        actual adjacency size and the label index is exact."""
        graph = random_digraph(seed, max_nodes=8)
        rng = random.Random(seed)
        nodes = list(graph.nodes())
        for op in ops:
            if not nodes:
                break
            u = nodes[op % len(nodes)]
            v = nodes[(op // 7) % len(nodes)]
            if op % 3 == 0 and u != v:
                graph.add_edge(u, v)
            elif op % 3 == 1 and graph.has_edge(u, v):
                graph.remove_edge(u, v)
            else:
                graph.relabel_node(u, f"l{op % 5}")
        # Counter consistency.
        assert graph.num_edges == sum(
            1 for _ in graph.edges()
        )
        # succ/pred symmetry.
        for source, target in graph.edges():
            assert source in graph.predecessors(target)
            assert target in graph.successors(source)
        # Label index exactness.
        for label in graph.label_set():
            for node in graph.nodes_with_label(label):
                assert graph.label(node) == label
        for node in graph.nodes():
            assert node in graph.nodes_with_label(graph.label(node))

    @given(graph_seeds)
    @settings(max_examples=40, deadline=None)
    def test_reverse_is_involution(self, seed):
        graph = random_digraph(seed)
        double = graph.reverse().reverse()
        assert graph.same_as(double)

    @given(graph_seeds)
    @settings(max_examples=40, deadline=None)
    def test_subgraph_of_all_nodes_is_identity(self, seed):
        graph = random_digraph(seed)
        assert graph.same_as(graph.subgraph(set(graph.nodes())))


class TestBallProperties:
    @given(graph_seeds, st.integers(0, 4))
    @settings(max_examples=40, deadline=None)
    def test_ball_contents_match_distances(self, seed, radius):
        graph = random_digraph(seed)
        center = next(iter(graph.nodes()))
        ball = extract_ball(graph, center, radius)
        distances = undirected_distances(graph, center)
        expected = {n for n, d in distances.items() if d <= radius}
        assert set(ball.graph.nodes()) == expected

    @given(graph_seeds, st.integers(0, 4))
    @settings(max_examples=40, deadline=None)
    def test_ball_is_induced(self, seed, radius):
        graph = random_digraph(seed)
        center = next(iter(graph.nodes()))
        ball = extract_ball(graph, center, radius)
        members = set(ball.graph.nodes())
        for source in members:
            for target in graph.successors_raw(source):
                if target in members:
                    assert ball.graph.has_edge(source, target)

    @given(graph_seeds, st.integers(1, 4))
    @settings(max_examples=40, deadline=None)
    def test_balls_grow_monotonically(self, seed, radius):
        graph = random_digraph(seed)
        center = next(iter(graph.nodes()))
        smaller = set(extract_ball(graph, center, radius - 1).graph.nodes())
        larger = set(extract_ball(graph, center, radius).graph.nodes())
        assert smaller <= larger


class TestSerializationRoundTrips:
    @given(graph_seeds)
    @settings(max_examples=30, deadline=None)
    def test_json_dict_roundtrip(self, seed):
        graph = random_digraph(seed)
        assert graph_from_dict(graph_to_dict(graph)).same_as(graph)

    @given(graph_seeds)
    @settings(max_examples=20, deadline=None)
    def test_edgelist_roundtrip(self, seed):
        import tempfile
        from pathlib import Path

        graph = random_digraph(seed)
        # Edge-list node ids come back as strings: compare canonically.
        with tempfile.TemporaryDirectory() as tmp:
            path = Path(tmp) / "g.txt"
            write_edgelist(graph, path)
            loaded = read_edgelist(path)
        assert loaded.num_nodes == graph.num_nodes
        assert loaded.num_edges == graph.num_edges
        original_edges = {(str(s), str(t)) for s, t in graph.edges()}
        assert set(loaded.edges()) == original_edges
        for node in graph.nodes():
            assert loaded.label(str(node)) == graph.label(node)


class TestSimulationLattice:
    @given(graph_seeds, graph_seeds)
    @settings(max_examples=30, deadline=None)
    def test_adding_edges_to_data_grows_simulation(self, seed, extra_seed):
        """Simulation is monotone in the data graph: adding data edges
        never removes pairs from the maximum relation."""
        data = random_digraph(seed, max_nodes=8)
        pattern_graph = random_digraph(extra_seed, max_nodes=3)
        try:
            pattern = Pattern(pattern_graph)
        except Exception:
            return
        before = graph_simulation(pattern, data)
        rng = random.Random(extra_seed)
        nodes = list(data.nodes())
        grown = data.copy()
        for _ in range(3):
            u, v = rng.choice(nodes), rng.choice(nodes)
            if u != v:
                grown.add_edge(u, v)
        after = graph_simulation(pattern, grown)
        if before.is_total():
            assert after.contains_relation(before)

    @given(graph_seeds, graph_seeds)
    @settings(max_examples=30, deadline=None)
    def test_dual_monotone_in_data_edges(self, seed, extra_seed):
        data = random_digraph(seed, max_nodes=8)
        pattern_graph = random_digraph(extra_seed, max_nodes=3)
        try:
            pattern = Pattern(pattern_graph)
        except Exception:
            return
        before = dual_simulation(pattern, data)
        rng = random.Random(seed + 1)
        nodes = list(data.nodes())
        grown = data.copy()
        for _ in range(3):
            u, v = rng.choice(nodes), rng.choice(nodes)
            if u != v:
                grown.add_edge(u, v)
        after = dual_simulation(pattern, grown)
        if before.is_total():
            assert after.contains_relation(before)
