"""Property tests: incremental dual simulation vs from-scratch fixpoints.

:class:`~repro.core.incremental.IncrementalDualSimulation` maintains the
maximum dual-simulation relation under edge updates — deletions by exact
cascade, insertions by a warm full fixpoint.  The invariant under test:
after *every* update in an arbitrary insert/delete sequence, the
maintained relation equals a from-scratch
:func:`~repro.core.dualsim.dual_simulation` on the mutated graph — on
both execution engines (the reference set-based fixpoint and the kernel's
counter fixpoint), which must themselves agree.  The *maintainer* itself
is parametrized over the same engines: the reference cascade and the
kernel's persistent-counter cascade must both track the scratch runs.
"""

from __future__ import annotations

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.dualsim import dual_simulation
from repro.core.incremental import IncrementalDualSimulation
from repro.core.kernel import dual_simulation_kernel

from tests.conftest import (
    graph_seeds,
    pattern_seeds,
    random_connected_pattern,
    random_digraph,
)


def assert_matches_scratch(inc) -> None:
    """The maintained relation equals a fresh fixpoint on both engines."""
    maintained = inc.relation.pair_set()
    assert maintained == dual_simulation(inc.pattern, inc.data).pair_set()
    assert maintained == dual_simulation_kernel(
        inc.pattern, inc.data
    ).pair_set()


@pytest.mark.parametrize("engine", ["python", "kernel"])
class TestIncrementalDualSimulationProperties:
    @settings(max_examples=25, deadline=None)
    @given(
        seed=graph_seeds,
        pattern_seed=pattern_seeds,
        op_seed=st.integers(min_value=0, max_value=10_000),
        num_ops=st.integers(min_value=1, max_value=12),
    )
    def test_random_update_sequences(
        self, engine, seed, pattern_seed, op_seed, num_ops
    ):
        data = random_digraph(seed, max_nodes=10, edge_prob=0.3)
        pattern = random_connected_pattern(pattern_seed, max_nodes=4)
        inc = IncrementalDualSimulation(pattern, data, engine=engine)
        assert_matches_scratch(inc)
        rng = random.Random(op_seed)
        nodes = list(data.nodes())
        for _ in range(num_ops):
            edges = list(data.edges())
            if edges and rng.random() < 0.5:
                source, target = rng.choice(edges)
                inc.remove_edge(source, target)
            else:
                inc.add_edge(rng.choice(nodes), rng.choice(nodes))
            assert_matches_scratch(inc)

    @settings(max_examples=15, deadline=None)
    @given(seed=graph_seeds, pattern_seed=pattern_seeds)
    def test_delete_everything_then_empty(self, engine, seed, pattern_seed):
        """Deleting every edge drives the cascade to the bare-graph
        relation (exactly what a fresh run on the edgeless graph says)."""
        data = random_digraph(seed, max_nodes=8, edge_prob=0.35)
        pattern = random_connected_pattern(pattern_seed, max_nodes=3)
        inc = IncrementalDualSimulation(pattern, data, engine=engine)
        for source, target in list(data.edges()):
            inc.remove_edge(source, target)
            assert_matches_scratch(inc)

    @settings(max_examples=15, deadline=None)
    @given(
        seed=graph_seeds,
        pattern_seed=pattern_seeds,
        op_seed=st.integers(min_value=0, max_value=10_000),
    )
    def test_delete_then_reinsert_roundtrip(
        self, engine, seed, pattern_seed, op_seed
    ):
        """Removing an edge and adding it back restores the original
        relation (gfp is a function of the graph, not of the history)."""
        data = random_digraph(seed, max_nodes=9, edge_prob=0.3)
        pattern = random_connected_pattern(pattern_seed, max_nodes=3)
        inc = IncrementalDualSimulation(pattern, data, engine=engine)
        before = inc.relation.pair_set()
        edges = list(data.edges())
        if not edges:
            return
        source, target = random.Random(op_seed).choice(edges)
        inc.remove_edge(source, target)
        assert_matches_scratch(inc)
        inc.add_edge(source, target)
        assert inc.relation.pair_set() == before
        assert_matches_scratch(inc)
