"""Unit + property tests for strong simulation (algorithm Match)."""

from hypothesis import given, settings

from repro.core.ball import extract_ball
from repro.core.digraph import DiGraph
from repro.core.dualsim import dual_simulation
from repro.core.pattern import Pattern
from repro.core.strong import (
    candidate_centers,
    extract_max_perfect_subgraph,
    match,
    matches_via_strong_simulation,
)
from repro.core.traversal import is_connected_undirected, undirected_distances
from tests.conftest import graph_and_pattern, graph_with_sampled_pattern


def mutual_pair():
    pattern = Pattern.build({"p": "P", "q": "P"}, [("p", "q"), ("q", "p")])
    data = DiGraph.from_parts(
        {"x": "P", "y": "P", "z": "P"},
        [("x", "y"), ("y", "x"), ("y", "z")],
    )
    return pattern, data


class TestExtractMaxPG:
    def test_nil_when_center_unmatched(self):
        pattern, data = mutual_pair()
        ball = extract_ball(data, "z", 1)
        relation = dual_simulation(pattern, ball.graph)
        assert extract_max_perfect_subgraph(pattern, ball, relation) is None

    def test_component_of_center(self):
        pattern, data = mutual_pair()
        ball = extract_ball(data, "x", 1)
        relation = dual_simulation(pattern, ball.graph)
        subgraph = extract_max_perfect_subgraph(pattern, ball, relation)
        assert subgraph is not None
        assert set(subgraph.graph.nodes()) == {"x", "y"}
        assert subgraph.center == "x"


class TestMatch:
    def test_basic_match(self):
        pattern, data = mutual_pair()
        result = match(pattern, data)
        assert len(result) == 1
        assert result.matched_data_nodes() == {"x", "y"}
        assert matches_via_strong_simulation(pattern, data)

    def test_no_match(self):
        pattern = Pattern.build({"a": "A", "b": "B"}, [("a", "b")])
        data = DiGraph.from_parts({"a1": "A"}, [])
        result = match(pattern, data)
        assert len(result) == 0
        assert not result
        assert not matches_via_strong_simulation(pattern, data)

    def test_deduplication_across_centers(self):
        # Both x and y discover the same {x, y} subgraph.
        pattern, data = mutual_pair()
        result = match(pattern, data, centers=["x", "y"])
        assert len(result) == 1

    def test_explicit_radius(self):
        pattern, data = mutual_pair()
        # Radius 0 balls contain single nodes: the 2-cycle can't fit.
        result = match(pattern, data, radius=0)
        assert len(result) == 0

    def test_centers_restriction_sound(self):
        pattern, data = mutual_pair()
        full = {sg.signature() for sg in match(pattern, data)}
        restricted = {
            sg.signature()
            for sg in match(pattern, data, centers=candidate_centers(pattern, data))
        }
        assert full == restricted

    def test_candidate_centers_only_pattern_labels(self):
        pattern = Pattern.build({"a": "A"}, [])
        data = DiGraph.from_parts({"x": "A", "y": "B"}, [])
        assert candidate_centers(pattern, data) == {"x"}


class TestStrongSimulationProperties:
    @given(graph_with_sampled_pattern())
    @settings(max_examples=40, deadline=None)
    def test_perfect_subgraphs_connected(self, pair):
        """Every perfect subgraph is connected (it is one component)."""
        data, pattern = pair
        for subgraph in match(pattern, data):
            assert is_connected_undirected(subgraph.graph)

    @given(graph_with_sampled_pattern())
    @settings(max_examples=40, deadline=None)
    def test_diameter_bound(self, pair):
        """Proposition 3: perfect subgraph diameter <= 2 * d_Q.

        The bound is over data-graph distance (the subgraph lives inside
        a ball of radius d_Q around its center): every pair of its nodes
        is within 2 * d_Q undirected hops in G, and every node is within
        d_Q of the discovery center.
        """
        data, pattern = pair
        for subgraph in match(pattern, data):
            center_distances = undirected_distances(data, subgraph.center)
            for node in subgraph.graph.nodes():
                assert center_distances[node] <= pattern.diameter
            nodes = list(subgraph.graph.nodes())
            for node in nodes:
                distances = undirected_distances(data, node)
                for other in nodes:
                    assert distances[other] <= 2 * pattern.diameter

    @given(graph_with_sampled_pattern())
    @settings(max_examples=40, deadline=None)
    def test_bounded_match_count(self, pair):
        """Proposition 4: |Θ| <= |V|."""
        data, pattern = pair
        assert len(match(pattern, data)) <= data.num_nodes

    @given(graph_with_sampled_pattern())
    @settings(max_examples=40, deadline=None)
    def test_relations_are_dual_simulations_on_their_subgraph(self, pair):
        """Condition (1) of the definition: Q ≺_D Gs on each perfect
        subgraph, with the relation total on the pattern side."""
        from repro.core.dualsim import is_dual_simulation_relation

        data, pattern = pair
        for subgraph in match(pattern, data):
            assert subgraph.relation.is_total()
            assert is_dual_simulation_relation(
                pattern, subgraph.graph, subgraph.relation
            )

    @given(graph_with_sampled_pattern())
    @settings(max_examples=40, deadline=None)
    def test_matched_nodes_within_dual_relation(self, pair):
        """Strong-simulation matches never exceed whole-graph dual
        simulation (projection property used by Match+)."""
        data, pattern = pair
        global_dual = dual_simulation(pattern, data)
        result = match(pattern, data)
        assert result.matched_data_nodes() <= global_dual.data_nodes() or (
            global_dual.is_empty() and not result
        )
