"""The scenario harness: digests, SLO math, the diff dashboard, the CLI.

Four layers under test:

* **Percentile math** (property-based) — the log-bucket interpolation in
  :meth:`HistogramSnapshot.percentile` must stay within one bucket
  boundary of the exact order statistic on arbitrary samples, and honor
  its documented edge cases (empty → 0.0, +Inf overflow → last finite
  bound, monotone in ``q``).
* **Digest determinism** — the seeded smoke matrix must produce one
  digest per (scenario, scale) across every engine and backend, twice
  in a row, matching the pinned ``EXPECTED_DIGESTS``.
* **The diff dashboard** — :func:`diff_payloads` must flag injected
  digest mismatches, injected p99 regressions, and vanished cases, and
  must *not* flag bucket-noise, ``queue_wait`` rows, or scales the new
  report never ran.
* **The service path seam** — ``bounded``/``regular`` through
  :class:`MatchService` must equal the direct algorithm calls.
"""

from __future__ import annotations

import json
import math
from bisect import bisect_left

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cli import main
from repro.obs.metrics import (
    HISTOGRAM_BUCKETS,
    Histogram,
    HistogramSnapshot,
    subtract_snapshots,
)
from repro.scenarios import (
    EXPECTED_DIGESTS,
    ScenarioRunner,
    canonical_observation,
    diff_payloads,
    digest_observations,
    get_scenario,
    matrix_payload,
    run_matrix,
    scenario_names,
)

# ----------------------------------------------------------------------
# Percentile math (satellite: property tests)
# ----------------------------------------------------------------------

# Samples inside the finite bucket range (1µs .. 2^26 µs ≈ 67s).
_sample_values = st.floats(
    min_value=2e-6, max_value=HISTOGRAM_BUCKETS[-1] * 0.99,
    allow_nan=False, allow_infinity=False,
)


def _bucket_index(value: float) -> int:
    return bisect_left(HISTOGRAM_BUCKETS, value)


def _exact_percentile(samples, q: float) -> float:
    ordered = sorted(samples)
    rank = max(int(math.ceil(q * len(ordered))) - 1, 0)
    return ordered[rank]


class TestPercentileProperties:
    @given(st.lists(_sample_values, min_size=1, max_size=120))
    @settings(max_examples=80, deadline=None)
    def test_within_one_bucket_of_exact(self, samples):
        """Interpolated p50/p99 land in the exact statistic's bucket or
        an adjacent one — the documented log-bucket error bound."""
        histogram = Histogram()
        for value in samples:
            histogram.observe(value)
        for q in (0.5, 0.99):
            interpolated = histogram.percentile(q)
            exact = _exact_percentile(samples, q)
            assert (
                abs(_bucket_index(interpolated) - _bucket_index(exact)) <= 1
            ), (
                f"q={q}: interpolated {interpolated} vs exact {exact} "
                f"differ by more than one bucket"
            )

    @given(
        st.lists(_sample_values, min_size=1, max_size=60),
        st.floats(min_value=0.0, max_value=1.0),
        st.floats(min_value=0.0, max_value=1.0),
    )
    @settings(max_examples=60, deadline=None)
    def test_monotone_in_q(self, samples, q1, q2):
        histogram = Histogram()
        for value in samples:
            histogram.observe(value)
        low, high = sorted((q1, q2))
        assert histogram.percentile(low) <= histogram.percentile(high)

    @given(st.lists(_sample_values, min_size=1, max_size=60))
    @settings(max_examples=40, deadline=None)
    def test_bounded_by_bucket_edges(self, samples):
        """Any quantile lies between the lowest occupied bucket's lower
        edge and the highest occupied bucket's upper edge."""
        histogram = Histogram()
        for value in samples:
            histogram.observe(value)
        snapshot = histogram.snapshot_view()
        occupied = [i for i, c in enumerate(snapshot.counts) if c]
        lower_edge = (
            HISTOGRAM_BUCKETS[occupied[0] - 1] if occupied[0] else 0.0
        )
        upper_edge = HISTOGRAM_BUCKETS[min(occupied[-1],
                                           len(HISTOGRAM_BUCKETS) - 1)]
        for q in (0.0, 0.25, 0.5, 0.9, 0.99, 1.0):
            value = snapshot.percentile(q)
            assert lower_edge <= value <= upper_edge

    def test_empty_snapshot_is_zero(self):
        assert HistogramSnapshot([0] * 28).percentile(0.99) == 0.0
        assert Histogram().percentile(0.5) == 0.0

    def test_overflow_bucket_reports_last_finite_bound(self):
        histogram = Histogram()
        histogram.observe(HISTOGRAM_BUCKETS[-1] * 10)
        assert histogram.percentile(0.99) == HISTOGRAM_BUCKETS[-1]

    def test_single_bucket_interpolates_to_its_edges(self):
        histogram = Histogram()
        for _ in range(100):
            histogram.observe(3e-6)  # bucket (2µs, 4µs]
        assert histogram.percentile(1.0) == pytest.approx(4e-6)
        # q -> 0 approaches the lower edge geometrically.
        assert 2e-6 <= histogram.percentile(0.01) <= 4e-6

    def test_registry_window_subtraction(self):
        """subtract_snapshots yields the exact per-window histogram."""
        from repro.obs.metrics import MetricsRegistry

        registry = MetricsRegistry()
        registry.histogram("lat").observe(1e-3)
        registry.counter("hits").inc(3)
        before = registry.snapshot()
        registry.histogram("lat").observe(4e-3)
        registry.histogram("lat").observe(4e-3)
        registry.counter("hits").inc(2)
        after = registry.snapshot()
        window = subtract_snapshots(after, before)
        assert window["counters"]["hits"] == 2
        snap = HistogramSnapshot.from_dict(window["histograms"]["lat"])
        assert snap.count == 2
        assert snap.sum == pytest.approx(8e-3)
        # The pre-window 1ms observation is gone from every bucket.
        assert sum(snap.counts) == 2


# ----------------------------------------------------------------------
# Digest determinism (satellite: cross-engine determinism test)
# ----------------------------------------------------------------------
class TestDigestDeterminism:
    def test_smoke_matrix_engine_and_backend_independent(self):
        """One digest per (scenario, scale) across the full smoke
        matrix, and every pinned digest reproduced."""
        cases = run_matrix(None, "smoke")
        ran = [case for case in cases if case.skipped is None]
        assert ran
        by_scenario = {}
        for case in ran:
            by_scenario.setdefault(case.scenario, set()).add(case.digest)
        divergent = {k: v for k, v in by_scenario.items() if len(v) > 1}
        assert not divergent, f"engine-dependent digests: {divergent}"
        mismatched = [case.case_key for case in ran
                      if case.digest_ok is False]
        assert not mismatched, f"pinned digest mismatches: {mismatched}"
        # Every scenario contributed at least one runnable case.
        assert set(by_scenario) == set(scenario_names())

    def test_two_runs_identical_digest(self):
        runner = ScenarioRunner(get_scenario("tenancy-mixed"))
        first = runner.run_case("smoke", "kernel")
        second = runner.run_case("smoke", "kernel")
        assert first.digest == second.digest
        assert first.digest == EXPECTED_DIGESTS[("tenancy-mixed", "smoke")]

    def test_distributed_case_cross_checks_hold(self):
        report = ScenarioRunner(get_scenario("distributed-4site")).run_case(
            "smoke", "kernel", "inproc"
        )
        assert report.skipped is None
        assert report.digest_ok is True
        assert report.bus_log_matches_trace is True
        # Exact bus accounting: per-kind units fold back to the total.
        assert report.bus["units"] == sum(report.bus["by_kind"].values())
        assert report.bus["messages"] > 0
        # Every pattern queried twice per round: half replayed from the
        # shared result store.
        assert report.executed["replayed"] == report.executed["computed"]

    def test_unknown_scale_reports_skips_not_silence(self):
        cases = run_matrix(["distributed-4site"], "M")
        assert cases and all(case.skipped for case in cases)


# ----------------------------------------------------------------------
# Diff dashboard
# ----------------------------------------------------------------------
def _payload_from(cases, scale="smoke"):
    return matrix_payload(list(cases), scale)


@pytest.fixture(scope="module")
def baseline_case():
    """One real smoke case, shared by the diff tests."""
    return ScenarioRunner(get_scenario("match-plus-single")).run_case(
        "smoke", "kernel"
    )


class TestDiffDashboard:
    def test_clean_diff_is_empty(self, baseline_case):
        payload = _payload_from([baseline_case])
        assert diff_payloads(payload, payload) == []

    def test_injected_digest_mismatch_flagged(self, baseline_case):
        before = _payload_from([baseline_case])
        after = json.loads(json.dumps(before))
        after["cases"][0]["digest"] = "0" * 16
        findings = diff_payloads(before, after)
        assert [f["kind"] for f in findings] == ["digest"]
        assert baseline_case.case_key == findings[0]["case"]

    def test_injected_p99_regression_flagged(self, baseline_case):
        before = _payload_from([baseline_case])
        after = json.loads(json.dumps(before))
        for row in after["cases"][0]["latency"].values():
            row["p99_ms"] = row.get("p99_ms", 0.0) * 10 + 50.0
        findings = diff_payloads(before, after)
        slo = [f for f in findings if f["kind"] == "slo"]
        assert slo, "a 10x+50ms p99 regression must be flagged"
        assert all("queue_wait" != f.get("algorithm") for f in slo)

    def test_bucket_noise_not_flagged(self, baseline_case):
        """A single log-2 bucket flip (exactly 2x) stays silent under
        the default threshold."""
        before = _payload_from([baseline_case])
        after = json.loads(json.dumps(before))
        for row in after["cases"][0]["latency"].values():
            row["p99_ms"] = row.get("p99_ms", 0.0) * 2.0
        assert diff_payloads(before, after) == []

    def test_queue_wait_never_compared(self, baseline_case):
        before = _payload_from([baseline_case])
        after = json.loads(json.dumps(before))
        after["cases"][0]["latency"]["queue_wait"] = {
            "count": 1, "mean_ms": 1e6, "p50_ms": 1e6, "p99_ms": 1e6,
        }
        before["cases"][0]["latency"]["queue_wait"] = {
            "count": 1, "mean_ms": 0.001, "p50_ms": 0.001, "p99_ms": 0.001,
        }
        assert diff_payloads(before, after) == []

    def test_missing_case_flagged_within_scale(self, baseline_case):
        before = _payload_from([baseline_case])
        after = json.loads(json.dumps(before))
        after["cases"][0]["skipped"] = "injected"
        # Another case at the same scale keeps the scale in scope.
        survivor = dict(before["cases"][0])
        survivor["engine"] = "python"
        after["cases"].append(survivor)
        findings = diff_payloads(before, after)
        assert [f["kind"] for f in findings] == ["missing"]

    def test_unran_scale_out_of_scope(self, baseline_case):
        """A smoke-only report diffed against a smoke+S baseline does
        not flag the S cases as missing."""
        s_case = dict(_payload_from([baseline_case])["cases"][0])
        s_case["scale"] = "S"
        before = _payload_from([baseline_case])
        before["cases"].append(s_case)
        after = _payload_from([baseline_case])
        assert diff_payloads(before, after) == []


# ----------------------------------------------------------------------
# CLI exit codes
# ----------------------------------------------------------------------
class TestScenarioCli:
    def test_list_exits_zero(self, capsys):
        assert main(["scenarios", "list"]) == 0
        out = capsys.readouterr().out
        for name in scenario_names():
            assert name in out

    def test_run_writes_report_and_exits_zero(self, tmp_path, capsys):
        out_path = tmp_path / "scen.json"
        code = main([
            "scenarios", "run", "--scenario", "match-plus-single",
            "--smoke", "--out", str(out_path),
        ])
        assert code == 0
        payload = json.loads(out_path.read_text())
        assert payload["schema_version"] == 1
        assert payload["benchmark"] == "scenarios"
        assert payload["ok"] is True
        assert "ok" in capsys.readouterr().out

    def test_run_digest_mismatch_exits_one(self, monkeypatch, capsys):
        monkeypatch.setitem(
            EXPECTED_DIGESTS, ("match-plus-single", "smoke"), "f" * 16
        )
        code = main([
            "scenarios", "run", "--scenario", "match-plus-single", "--smoke",
        ])
        assert code == 1
        assert "DIGEST MISMATCH" in capsys.readouterr().out

    def test_run_unknown_scenario_exits_two(self, capsys):
        assert main(["scenarios", "run", "--scenario", "nope"]) == 2

    def test_diff_exit_codes(self, tmp_path, baseline_case, capsys):
        before = _payload_from([baseline_case])
        after = json.loads(json.dumps(before))
        after["cases"][0]["digest"] = "0" * 16
        before_path = tmp_path / "before.json"
        after_path = tmp_path / "after.json"
        before_path.write_text(json.dumps(before))
        after_path.write_text(json.dumps(after))
        # Regression found -> 1; clean -> 0; missing baseline -> 2.
        assert main([
            "scenarios", "diff", str(after_path), str(before_path)
        ]) == 1
        assert "digest" in capsys.readouterr().out
        assert main([
            "scenarios", "diff", str(before_path), str(before_path)
        ]) == 0
        assert main([
            "scenarios", "diff", str(after_path),
            str(tmp_path / "absent.json"),
        ]) == 2


# ----------------------------------------------------------------------
# Service path seam: bounded/regular through MatchService
# ----------------------------------------------------------------------
class TestServicePathAlgorithms:
    @pytest.fixture(scope="class")
    def fixtures(self):
        runner = ScenarioRunner(get_scenario("paths-bounded"))
        data = runner.build_graph("smoke")
        return data, runner.build_patterns(data)

    def test_bounded_matches_direct_call(self, fixtures):
        from repro.core.bounded import bounded_simulation
        from repro.service import MatchService

        data, bounded_patterns = fixtures
        with MatchService(max_workers=2) as service:
            for bp in bounded_patterns:
                via_service = service.submit(
                    bp, data, algorithm="bounded", engine="kernel"
                ).result()
                direct = bounded_simulation(bp, data, engine="kernel")
                assert canonical_observation(via_service) == (
                    canonical_observation(direct)
                )

    def test_regular_matches_direct_call(self):
        from repro.core.regular import regular_strong_match
        from repro.service import MatchService

        runner = ScenarioRunner(get_scenario("paths-regular"))
        data = runner.build_graph("smoke")
        patterns = runner.build_patterns(data)
        with MatchService(max_workers=2) as service:
            for rp in patterns:
                via_service = service.submit(
                    rp, data, algorithm="regular", engine="python"
                ).result()
                direct = regular_strong_match(rp, data, engine="python")
                assert canonical_observation(via_service) == (
                    canonical_observation(direct)
                )

    def test_path_algorithms_bypass_the_cache(self):
        from repro.service import MatchService

        runner = ScenarioRunner(get_scenario("paths-bounded"))
        data = runner.build_graph("smoke")
        bp = runner.build_patterns(data)[0]
        with MatchService(max_workers=1) as service:
            first = service.submit(bp, data, algorithm="bounded").result()
            second = service.submit(bp, data, algorithm="bounded").result()
            stats = service.stats
        assert canonical_observation(first) == canonical_observation(second)
        assert stats.computed == 2 and stats.replayed == 0
        assert stats.cache.stores == 0

    def test_numpy_engine_rejected_for_paths(self):
        from repro.service import MatchService

        runner = ScenarioRunner(get_scenario("paths-bounded"))
        data = runner.build_graph("smoke")
        bp = runner.build_patterns(data)[0]
        with MatchService(max_workers=1) as service:
            with pytest.raises(ValueError):
                service.submit(bp, data, algorithm="bounded", engine="numpy")

    def test_digest_results_only(self):
        """Two observations with equal results digest equal regardless
        of object identity; order matters (a workload is a sequence)."""
        runner = ScenarioRunner(get_scenario("paths-bounded"))
        data = runner.build_graph("smoke")
        patterns = runner.build_patterns(data)[:2]
        from repro.core.bounded import bounded_simulation

        first = [bounded_simulation(p, data) for p in patterns]
        second = [bounded_simulation(p, data) for p in patterns]
        assert digest_observations(first) == digest_observations(second)
        if len(patterns) == 2 and (
            canonical_observation(first[0]) != canonical_observation(first[1])
        ):
            assert digest_observations(first) != (
                digest_observations(list(reversed(first)))
            )
