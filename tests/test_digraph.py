"""Unit tests for the DiGraph data model."""

import pytest

from repro.core.digraph import DiGraph
from repro.exceptions import (
    DuplicateNode,
    EdgeNotFound,
    GraphError,
    NodeNotFound,
)


def build_triangle() -> DiGraph:
    g = DiGraph()
    g.add_node("a", "A")
    g.add_node("b", "B")
    g.add_node("c", "C")
    g.add_edge("a", "b")
    g.add_edge("b", "c")
    g.add_edge("c", "a")
    return g


class TestConstruction:
    def test_empty_graph(self):
        g = DiGraph()
        assert g.num_nodes == 0
        assert g.num_edges == 0
        assert g.size == 0
        assert list(g.nodes()) == []
        assert list(g.edges()) == []

    def test_add_node_and_label(self):
        g = DiGraph()
        g.add_node(1, "X")
        assert 1 in g
        assert g.label(1) == "X"
        assert g.nodes_with_label("X") == frozenset({1})

    def test_duplicate_node_rejected(self):
        g = DiGraph()
        g.add_node(1, "X")
        with pytest.raises(DuplicateNode):
            g.add_node(1, "Y")

    def test_add_edge_requires_endpoints(self):
        g = DiGraph()
        g.add_node(1, "X")
        with pytest.raises(NodeNotFound):
            g.add_edge(1, 2)
        with pytest.raises(NodeNotFound):
            g.add_edge(2, 1)

    def test_edges_are_a_set(self):
        g = DiGraph()
        g.add_node(1, "X")
        g.add_node(2, "X")
        g.add_edge(1, 2)
        g.add_edge(1, 2)
        assert g.num_edges == 1

    def test_self_loop_allowed(self):
        g = DiGraph()
        g.add_node(1, "X")
        g.add_edge(1, 1)
        assert g.has_edge(1, 1)
        assert g.degree(1) == 2

    def test_from_parts(self):
        g = DiGraph.from_parts({"x": "A", "y": "B"}, [("x", "y")])
        assert g.num_nodes == 2
        assert g.has_edge("x", "y")
        assert not g.has_edge("y", "x")

    def test_from_edge_label_pairs(self):
        g = DiGraph.from_edge_label_pairs([("x", "A"), ("y", "B")], [("x", "y")])
        assert g.label("y") == "B"
        assert g.num_edges == 1


class TestMutation:
    def test_remove_edge(self):
        g = build_triangle()
        g.remove_edge("a", "b")
        assert not g.has_edge("a", "b")
        assert g.num_edges == 2

    def test_remove_missing_edge_raises(self):
        g = build_triangle()
        with pytest.raises(EdgeNotFound):
            g.remove_edge("a", "c")

    def test_remove_node_removes_incident_edges(self):
        g = build_triangle()
        g.remove_node("b")
        assert "b" not in g
        assert g.num_edges == 1  # only c -> a remains
        assert g.nodes_with_label("B") == frozenset()

    def test_remove_missing_node_raises(self):
        g = build_triangle()
        with pytest.raises(NodeNotFound):
            g.remove_node("zzz")

    def test_relabel_node_updates_index(self):
        g = build_triangle()
        g.relabel_node("a", "Z")
        assert g.label("a") == "Z"
        assert g.nodes_with_label("A") == frozenset()
        assert g.nodes_with_label("Z") == frozenset({"a"})

    def test_relabel_to_same_label_is_noop(self):
        g = build_triangle()
        g.relabel_node("a", "A")
        assert g.nodes_with_label("A") == frozenset({"a"})


class TestInspection:
    def test_successors_predecessors(self):
        g = build_triangle()
        assert g.successors("a") == frozenset({"b"})
        assert g.predecessors("a") == frozenset({"c"})
        assert g.neighbors("a") == frozenset({"b", "c"})

    def test_degrees(self):
        g = build_triangle()
        assert g.out_degree("a") == 1
        assert g.in_degree("a") == 1
        assert g.degree("a") == 2

    def test_missing_node_queries_raise(self):
        g = build_triangle()
        with pytest.raises(NodeNotFound):
            g.successors("zzz")
        with pytest.raises(NodeNotFound):
            g.predecessors("zzz")
        with pytest.raises(NodeNotFound):
            g.label("zzz")
        with pytest.raises(NodeNotFound):
            g.out_degree("zzz")

    def test_label_set(self):
        g = build_triangle()
        assert g.label_set() == frozenset({"A", "B", "C"})

    def test_size_measure(self):
        g = build_triangle()
        assert g.size == 6  # 3 nodes + 3 edges

    def test_degree_histogram(self):
        g = build_triangle()
        assert g.degree_histogram() == {2: 3}

    def test_iteration_and_len(self):
        g = build_triangle()
        assert len(g) == 3
        assert set(iter(g)) == {"a", "b", "c"}


class TestDerivedGraphs:
    def test_induced_subgraph(self):
        g = build_triangle()
        sub = g.subgraph({"a", "b"})
        assert sub.num_nodes == 2
        assert sub.has_edge("a", "b")
        assert not sub.has_edge("b", "a")

    def test_explicit_edge_subgraph(self):
        g = build_triangle()
        sub = g.subgraph({"a", "b", "c"}, edges=[("a", "b")])
        assert sub.num_edges == 1

    def test_subgraph_rejects_foreign_edges(self):
        g = build_triangle()
        with pytest.raises(EdgeNotFound):
            g.subgraph({"a", "b", "c"}, edges=[("a", "c")])
        with pytest.raises(GraphError):
            g.subgraph({"a"}, edges=[("a", "b")])

    def test_copy_is_independent(self):
        g = build_triangle()
        clone = g.copy()
        clone.remove_node("a")
        assert "a" in g
        assert g.num_edges == 3

    def test_reverse(self):
        g = build_triangle()
        rev = g.reverse()
        assert rev.has_edge("b", "a")
        assert not rev.has_edge("a", "b")
        assert rev.num_edges == g.num_edges

    def test_same_as(self):
        g = build_triangle()
        assert g.same_as(g.copy())
        other = g.copy()
        other.remove_edge("a", "b")
        assert not g.same_as(other)

    def test_node_edge_signature_distinguishes_edges(self):
        g = build_triangle()
        other = g.copy()
        other.remove_edge("a", "b")
        assert g.node_edge_signature() != other.node_edge_signature()

    def test_repr_mentions_counts(self):
        g = build_triangle()
        assert "|V|=3" in repr(g)
        assert "|E|=3" in repr(g)
