"""Unit tests for traversal primitives (BFS, distances, diameter, cycles)."""

import pytest

from repro.core.digraph import DiGraph
from repro.core.traversal import (
    bfs_directed,
    bfs_layers_undirected,
    diameter_undirected,
    eccentricity_undirected,
    has_directed_cycle,
    has_undirected_cycle,
    is_connected_undirected,
    reachable_from,
    shortest_undirected_path,
    undirected_distances,
)
from repro.exceptions import GraphError, NodeNotFound


def chain(n: int) -> DiGraph:
    """A directed chain 0 -> 1 -> ... -> n-1."""
    g = DiGraph()
    for i in range(n):
        g.add_node(i, "x")
    for i in range(n - 1):
        g.add_edge(i, i + 1)
    return g


class TestUndirectedBfs:
    def test_layers_from_chain_end(self):
        g = chain(4)
        layers = dict(bfs_layers_undirected(g, 0))
        assert layers[0] == [0]
        assert layers[3] == [3]

    def test_distances_ignore_direction(self):
        g = chain(4)
        # Node 3 reaches node 0 undirected even though edges point away.
        assert undirected_distances(g, 3)[0] == 3

    def test_radius_bounds_exploration(self):
        g = chain(10)
        distances = undirected_distances(g, 0, radius=2)
        assert set(distances) == {0, 1, 2}

    def test_missing_source_raises(self):
        g = chain(2)
        with pytest.raises(NodeNotFound):
            undirected_distances(g, 99)

    def test_radius_zero_is_singleton(self):
        g = chain(5)
        assert undirected_distances(g, 2, radius=0) == {2: 0}


class TestDirectedBfs:
    def test_directed_respects_direction(self):
        g = chain(4)
        assert bfs_directed(g, 0) == {0: 0, 1: 1, 2: 2, 3: 3}
        assert bfs_directed(g, 3) == {3: 0}

    def test_reachable_from(self):
        g = chain(4)
        assert reachable_from(g, 1) == {1, 2, 3}


class TestDiameter:
    def test_chain_diameter(self):
        assert diameter_undirected(chain(5)) == 4

    def test_single_node(self):
        assert diameter_undirected(chain(1)) == 0

    def test_empty_graph_raises(self):
        with pytest.raises(GraphError):
            diameter_undirected(DiGraph())

    def test_disconnected_eccentricity_raises(self):
        g = DiGraph()
        g.add_node(1, "x")
        g.add_node(2, "x")
        with pytest.raises(GraphError):
            eccentricity_undirected(g, 1)

    def test_cycle_diameter(self):
        g = DiGraph()
        for i in range(6):
            g.add_node(i, "x")
        for i in range(6):
            g.add_edge(i, (i + 1) % 6)
        assert diameter_undirected(g) == 3


class TestConnectivity:
    def test_connected_chain(self):
        assert is_connected_undirected(chain(5))

    def test_disconnected(self):
        g = DiGraph()
        g.add_node(1, "x")
        g.add_node(2, "x")
        assert not is_connected_undirected(g)

    def test_empty_graph_is_connected(self):
        assert is_connected_undirected(DiGraph())

    def test_shortest_path_found(self):
        g = chain(4)
        assert shortest_undirected_path(g, 3, 0) == [3, 2, 1, 0]

    def test_shortest_path_self(self):
        g = chain(2)
        assert shortest_undirected_path(g, 0, 0) == [0]

    def test_shortest_path_none_when_disconnected(self):
        g = DiGraph()
        g.add_node(1, "x")
        g.add_node(2, "x")
        assert shortest_undirected_path(g, 1, 2) is None


class TestCycles:
    def test_chain_has_no_cycles(self):
        g = chain(4)
        assert not has_directed_cycle(g)
        assert not has_undirected_cycle(g)

    def test_directed_cycle_detected(self):
        g = chain(3)
        g.add_edge(2, 0)
        assert has_directed_cycle(g)
        assert has_undirected_cycle(g)

    def test_self_loop_is_a_cycle(self):
        g = chain(1)
        g.add_edge(0, 0)
        assert has_directed_cycle(g)
        assert has_undirected_cycle(g)

    def test_two_cycle(self):
        g = DiGraph()
        g.add_node(1, "x")
        g.add_node(2, "x")
        g.add_edge(1, 2)
        g.add_edge(2, 1)
        assert has_directed_cycle(g)
        assert has_undirected_cycle(g)

    def test_undirected_cycle_without_directed(self):
        # a -> b, a -> c, b -> d, c -> d: diamond, no directed cycle but an
        # undirected one.
        g = DiGraph()
        for n in "abcd":
            g.add_node(n, "x")
        g.add_edge("a", "b")
        g.add_edge("a", "c")
        g.add_edge("b", "d")
        g.add_edge("c", "d")
        assert not has_directed_cycle(g)
        assert has_undirected_cycle(g)

    def test_tree_has_no_undirected_cycle(self):
        g = DiGraph()
        for n in "abc":
            g.add_node(n, "x")
        g.add_edge("a", "b")
        g.add_edge("a", "c")
        assert not has_undirected_cycle(g)

    def test_forest_across_components(self):
        g = DiGraph()
        for n in "abcd":
            g.add_node(n, "x")
        g.add_edge("a", "b")
        g.add_edge("c", "d")
        assert not has_undirected_cycle(g)
