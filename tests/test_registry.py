"""Tests for the experiment registry and the reproduce CLI subcommand."""

import pytest

from repro.cli import main
from repro.experiments.registry import EXPERIMENTS, run_experiment


class TestRegistry:
    def test_unknown_experiment(self):
        with pytest.raises(KeyError):
            run_experiment("nope")

    def test_all_experiments_have_docstrings(self):
        for renderer in EXPERIMENTS.values():
            assert renderer.__doc__

    @pytest.mark.parametrize("name", ["table3", "distributed"])
    def test_light_experiments_render(self, name):
        text = run_experiment(name, scale=200)
        assert text.strip()
        assert "\n" in text

    def test_quality_experiment_renders_all_datasets(self):
        text = run_experiment("fig7-closeness-vq", scale=200)
        for dataset in ("Amazon", "YouTube", "Synthetic"):
            assert dataset in text


class TestReproduceCli:
    def test_listing(self, capsys):
        assert main(["reproduce"]) == 0
        out = capsys.readouterr().out
        assert "table3" in out
        assert "distributed" in out

    def test_unknown_name_exit_code(self, capsys):
        assert main(["reproduce", "nope"]) == 2
        assert "unknown experiment" in capsys.readouterr().out

    def test_render_via_cli(self, capsys):
        assert main(["reproduce", "table3", "--scale", "200"]) == 0
        assert "Table 3" in capsys.readouterr().out
