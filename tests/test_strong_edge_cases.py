"""Edge-case behaviors of strong simulation and the distributed runtime."""

import pytest

from repro.core.digraph import DiGraph
from repro.core.matchplus import match_plus
from repro.core.pattern import Pattern
from repro.core.strong import match
from repro.distributed import distributed_match
from repro.distributed.fragment import fragment_graph
from repro.distributed.network import MessageBus
from repro.distributed.worker import SiteWorker
from repro.exceptions import DistributedError


class TestDegeneratePatterns:
    def test_single_node_pattern(self):
        """d_Q = 0: every node with the label is its own perfect subgraph."""
        pattern = Pattern.build({"a": "X"}, [])
        data = DiGraph.from_parts({"n1": "X", "n2": "X", "n3": "Y"}, [("n1", "n2")])
        result = match(pattern, data)
        assert len(result) == 2
        assert result.matched_data_nodes() == {"n1", "n2"}
        for subgraph in result:
            assert subgraph.num_nodes == 1
            assert subgraph.num_edges == 0

    def test_self_loop_pattern_needs_self_loop_witnesses(self):
        pattern = Pattern.build({"a": "X"}, [("a", "a")])
        looped = DiGraph.from_parts({"n": "X"}, [("n", "n")])
        assert len(match(pattern, looped)) == 1
        # A 2-cycle also dual-simulates a self-loop pattern: each node
        # has an X parent and X child (within a radius-0 ball it does
        # not, so strong simulation rejects it — locality at work).
        two_cycle = DiGraph.from_parts(
            {"p": "X", "q": "X"}, [("p", "q"), ("q", "p")]
        )
        assert len(match(pattern, two_cycle)) == 0

    def test_pattern_identical_to_data(self):
        graph = DiGraph.from_parts(
            {"a": "A", "b": "B", "c": "C"},
            [("a", "b"), ("b", "c"), ("c", "a")],
        )
        pattern = Pattern(graph.copy())
        result = match(pattern, graph)
        assert len(result) == 1
        subgraph = next(iter(result))
        assert subgraph.graph.same_as(graph)

    def test_pattern_larger_than_data(self):
        pattern = Pattern.build(
            {"a": "A", "b": "B", "c": "C"},
            [("a", "b"), ("b", "c")],
        )
        data = DiGraph.from_parts({"x": "A", "y": "B"}, [("x", "y")])
        assert len(match(pattern, data)) == 0

    def test_empty_data_graph(self):
        pattern = Pattern.build({"a": "A"}, [])
        assert len(match(pattern, DiGraph())) == 0
        assert len(match_plus(pattern, DiGraph())) == 0

    def test_all_same_label(self):
        """Uniform labels: candidates are everything; structure decides."""
        pattern = Pattern.build({"a": "X", "b": "X"}, [("a", "b")])
        data = DiGraph.from_parts(
            {i: "X" for i in range(4)},
            [(0, 1), (1, 2), (2, 3)],
        )
        result = match(pattern, data)
        # Interior nodes have both parent and child; the dual relation
        # keeps the chain; each ball contributes its local component.
        assert result.matched_data_nodes() == {0, 1, 2, 3}

    def test_duplicate_label_pattern_nodes(self):
        """Two pattern nodes with the same label can map to one data node."""
        pattern = Pattern.build(
            {"p": "P", "q": "P"}, [("p", "q"), ("q", "p")]
        )
        data = DiGraph.from_parts({"n": "P"}, [("n", "n")])
        result = match(pattern, data)
        assert len(result) == 1
        subgraph = next(iter(result))
        assert subgraph.matches_of("p") == frozenset({"n"})
        assert subgraph.matches_of("q") == frozenset({"n"})


class TestDistributedEdgeCases:
    def test_ball_spanning_three_fragments(self):
        """A chain split across three sites: ball BFS must hop through a
        remote node to reach a remote-of-remote node (_locate_owner)."""
        data = DiGraph.from_parts(
            {f"n{i}": "X" for i in range(6)},
            [(f"n{i}", f"n{i+1}") for i in range(5)],
        )
        pattern = Pattern.build(
            {"a": "X", "b": "X", "c": "X"},
            [("a", "b"), ("b", "c")],
        )
        # One node per site round-robin: maximally fragmented.
        assignment = {f"n{i}": i % 3 for i in range(6)}
        report = distributed_match(pattern, data, assignment, 3)
        central = {sg.signature() for sg in match(pattern, data)}
        assert {sg.signature() for sg in report.result} == central
        assert report.data_shipment_units > 0

    def test_worker_refuses_to_serve_foreign_nodes(self):
        data = DiGraph.from_parts({"a": "X", "b": "X"}, [("a", "b")])
        fragments = fragment_graph(data, {"a": 0, "b": 1}, 2)
        bus = MessageBus()
        worker = SiteWorker(fragments[0], bus)
        with pytest.raises(DistributedError):
            worker.serve_node("b")

    def test_empty_fragment_site(self):
        """A site that owns nothing must not break the protocol."""
        data = DiGraph.from_parts({"a": "X", "b": "X"}, [("a", "b")])
        pattern = Pattern.build({"p": "X", "q": "X"}, [("p", "q")])
        assignment = {"a": 0, "b": 0}  # site 1 gets nothing
        report = distributed_match(pattern, data, assignment, 2)
        central = {sg.signature() for sg in match(pattern, data)}
        assert {sg.signature() for sg in report.result} == central
        assert report.per_site_subgraphs[1] == 0


class TestMatchPlusEdgeCases:
    def test_single_node_pattern_match_plus(self):
        pattern = Pattern.build({"a": "X"}, [])
        data = DiGraph.from_parts({"n1": "X", "n2": "Y"}, [("n1", "n2")])
        plain = {sg.signature() for sg in match(pattern, data)}
        plus = {sg.signature() for sg in match_plus(pattern, data)}
        assert plain == plus

    def test_pattern_with_no_matching_labels(self):
        pattern = Pattern.build({"a": "ZZZ", "b": "ZZZ"}, [("a", "b")])
        data = DiGraph.from_parts({"n": "X"}, [])
        assert len(match_plus(pattern, data)) == 0
