"""Unit tests for Pattern validation and cached diameter."""

import pytest

from repro.core.digraph import DiGraph
from repro.core.pattern import Pattern
from repro.exceptions import PatternError


class TestValidation:
    def test_empty_pattern_rejected(self):
        with pytest.raises(PatternError):
            Pattern(DiGraph())

    def test_disconnected_pattern_rejected(self):
        g = DiGraph()
        g.add_node(1, "A")
        g.add_node(2, "B")
        with pytest.raises(PatternError):
            Pattern(g)

    def test_single_node_pattern_ok(self):
        p = Pattern.build({1: "A"}, [])
        assert p.diameter == 0
        assert p.num_nodes == 1
        assert p.num_edges == 0

    def test_undirected_connectivity_suffices(self):
        # 1 -> 2 <- 3 is weakly but not strongly connected: still valid.
        p = Pattern.build({1: "A", 2: "B", 3: "C"}, [(1, 2), (3, 2)])
        assert p.diameter == 2


class TestAccessors:
    def test_delegation(self):
        p = Pattern.build({1: "A", 2: "B"}, [(1, 2)])
        assert p.label(1) == "A"
        assert p.label_set() == frozenset({"A", "B"})
        assert p.successors(1) == frozenset({2})
        assert p.predecessors(2) == frozenset({1})
        assert list(p.edges()) == [(1, 2)]
        assert len(p) == 2
        assert p.size == 3

    def test_diameter_of_paper_q1(self):
        from repro.datasets.paper_figures import pattern_q1

        assert pattern_q1().diameter == 3  # stated in Example 3

    def test_repr(self):
        p = Pattern.build({1: "A", 2: "B"}, [(1, 2)])
        assert "d_Q=1" in repr(p)
