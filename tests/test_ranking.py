"""Tests for match ranking (top-k future-work feature)."""

import pytest

from repro.core.digraph import DiGraph
from repro.core.pattern import Pattern
from repro.core.ranking import (
    RankingWeights,
    compactness,
    coverage_density,
    rank_matches,
    score_breakdown,
    score_match,
    specificity,
    top_k_matches,
)
from repro.core.strong import match


def two_quality_matches():
    """One exact-size match and one bloated match of the same pattern."""
    pattern = Pattern.build({"a": "A", "b": "B"}, [("a", "b")])
    data = DiGraph.from_parts(
        # tight community: one a -> one b
        {"a1": "A", "b1": "B",
         # loose community: two a's, two b's fully connected
         "a2": "A", "a3": "A", "b2": "B", "b3": "B",
         # insulation so the two communities are separate balls
         "x": "X"},
        [("a1", "b1"),
         ("a2", "b2"), ("a2", "b3"), ("a3", "b2"), ("a3", "b3"),
         ("b1", "x"), ("x", "a2")],
    )
    return pattern, match(pattern, data)


class TestMetrics:
    def test_compactness(self):
        pattern, result = two_quality_matches()
        by_size = sorted(result, key=lambda sg: sg.num_nodes)
        tight, loose = by_size[0], by_size[-1]
        assert compactness(pattern, tight) == 1.0
        assert compactness(pattern, loose) < 1.0

    def test_specificity(self):
        pattern, result = two_quality_matches()
        by_size = sorted(result, key=lambda sg: sg.num_nodes)
        tight, loose = by_size[0], by_size[-1]
        assert specificity(pattern, tight) == 1.0
        assert specificity(pattern, loose) < 1.0

    def test_density(self):
        pattern, result = two_quality_matches()
        by_size = sorted(result, key=lambda sg: sg.num_nodes)
        tight, loose = by_size[0], by_size[-1]
        assert coverage_density(pattern, tight) == 1.0
        assert coverage_density(pattern, loose) < 1.0

    def test_scores_in_unit_interval(self):
        pattern, result = two_quality_matches()
        for subgraph in result:
            score = score_match(pattern, subgraph)
            assert 0.0 < score <= 1.0

    def test_breakdown_keys(self):
        pattern, result = two_quality_matches()
        breakdown = score_breakdown(pattern, next(iter(result)))
        assert set(breakdown) == {
            "compactness", "specificity", "density", "combined"
        }


class TestRanking:
    def test_tight_match_ranks_first(self):
        pattern, result = two_quality_matches()
        ranked = rank_matches(result)
        assert ranked[0].num_nodes == pattern.num_nodes

    def test_top_k_truncates(self):
        _, result = two_quality_matches()
        assert len(top_k_matches(result, 1)) == 1
        assert len(top_k_matches(result, 100)) == len(result)
        assert top_k_matches(result, 0) == []

    def test_negative_k_rejected(self):
        _, result = two_quality_matches()
        with pytest.raises(ValueError):
            top_k_matches(result, -1)

    def test_weights_normalization(self):
        weights = RankingWeights(2.0, 0.0, 0.0).normalized()
        assert weights.compactness == pytest.approx(1.0)
        zero = RankingWeights(0, 0, 0).normalized()
        assert zero.compactness == pytest.approx(1 / 3)

    def test_weight_sensitivity(self):
        """Putting all weight on one metric equals that metric."""
        pattern, result = two_quality_matches()
        subgraph = next(iter(result))
        only_compact = RankingWeights(1.0, 0.0, 0.0)
        assert score_match(pattern, subgraph, only_compact) == pytest.approx(
            compactness(pattern, subgraph)
        )

    def test_deterministic_order(self):
        _, result = two_quality_matches()
        assert [sg.center for sg in rank_matches(result)] == [
            sg.center for sg in rank_matches(result)
        ]
