"""Shared fixtures and hypothesis strategies for the test suite."""

from __future__ import annotations

import random
from typing import List, Optional, Tuple

import pytest
from hypothesis import strategies as st

from repro.core.digraph import DiGraph
from repro.core.pattern import Pattern
from repro.datasets import paper_figures
from repro.datasets.synthetic import generate_graph


# ----------------------------------------------------------------------
# Paper-figure fixtures
# ----------------------------------------------------------------------
@pytest.fixture
def q1() -> Pattern:
    return paper_figures.pattern_q1()


@pytest.fixture
def g1() -> DiGraph:
    return paper_figures.data_g1()


@pytest.fixture
def small_synthetic() -> DiGraph:
    """A tiny synthetic data graph (fast for exhaustive checks)."""
    return generate_graph(60, alpha=1.15, num_labels=6, seed=7)


@pytest.fixture
def medium_synthetic() -> DiGraph:
    """A mid-sized synthetic data graph for integration tests."""
    return generate_graph(300, alpha=1.15, num_labels=12, seed=11)


# ----------------------------------------------------------------------
# Random graph/pattern builders (deterministic, seed-driven)
# ----------------------------------------------------------------------
def random_digraph(
    seed: int,
    max_nodes: int = 12,
    num_labels: int = 3,
    edge_prob: float = 0.25,
) -> DiGraph:
    """A small random labeled digraph derived from ``seed``."""
    rng = random.Random(seed)
    n = rng.randint(1, max_nodes)
    labels = [f"l{i}" for i in range(num_labels)]
    graph = DiGraph()
    for node in range(n):
        graph.add_node(node, rng.choice(labels))
    for source in range(n):
        for target in range(n):
            if source != target and rng.random() < edge_prob:
                graph.add_edge(source, target)
    return graph


def random_connected_pattern(
    seed: int,
    max_nodes: int = 5,
    num_labels: int = 3,
    extra_edge_prob: float = 0.3,
) -> Pattern:
    """A small random connected pattern derived from ``seed``."""
    rng = random.Random(seed)
    n = rng.randint(1, max_nodes)
    labels = [f"l{i}" for i in range(num_labels)]
    graph = DiGraph()
    for node in range(n):
        graph.add_node(node, rng.choice(labels))
    for node in range(1, n):
        anchor = rng.randrange(node)
        if rng.random() < 0.5:
            graph.add_edge(anchor, node)
        else:
            graph.add_edge(node, anchor)
    for source in range(n):
        for target in range(n):
            if source != target and rng.random() < extra_edge_prob:
                graph.add_edge(source, target)
    return Pattern(graph)


def pattern_from_subgraph(data: DiGraph, seed: int, size: int) -> Optional[Pattern]:
    """A pattern sampled as a connected induced subgraph of ``data``."""
    from repro.datasets.patterns import sample_pattern_from_data

    return sample_pattern_from_data(data, size, seed=seed)


# ----------------------------------------------------------------------
# Hypothesis strategies (seed-based, so shrinking works on one integer)
# ----------------------------------------------------------------------
graph_seeds = st.integers(min_value=0, max_value=10_000)
pattern_seeds = st.integers(min_value=0, max_value=10_000)


@st.composite
def graph_and_pattern(draw) -> Tuple[DiGraph, Pattern]:
    """A random (data graph, connected pattern) pair."""
    graph = random_digraph(draw(graph_seeds))
    pattern = random_connected_pattern(draw(pattern_seeds))
    return graph, pattern


@st.composite
def graph_with_sampled_pattern(draw) -> Tuple[DiGraph, Pattern]:
    """A random data graph plus a pattern sampled from it (match exists)."""
    graph = random_digraph(draw(graph_seeds), max_nodes=14, edge_prob=0.3)
    size = draw(st.integers(min_value=1, max_value=min(4, graph.num_nodes)))
    pattern = pattern_from_subgraph(graph, draw(pattern_seeds), size)
    if pattern is None:
        pattern = random_connected_pattern(draw(pattern_seeds), max_nodes=3)
    return graph, pattern
