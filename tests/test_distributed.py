"""Integration tests for the distributed runtime (Section 4.3)."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.strong import match
from repro.distributed import (
    Cluster,
    bfs_partition,
    crossing_ball_bound,
    cut_edges,
    distributed_match,
    fragment_graph,
    greedy_edge_cut_partition,
    hash_partition,
)
from repro.distributed.network import MessageBus
from repro.exceptions import DistributedError
from repro.datasets.paper_figures import data_g1, pattern_q1
from repro.datasets.synthetic import generate_graph
from repro.datasets.patterns import sample_pattern_from_data
from tests.conftest import graph_seeds, random_digraph, random_connected_pattern


class TestPartitioners:
    def test_hash_partition_covers_all_nodes(self):
        g = data_g1()
        part = hash_partition(g, 4)
        assert set(part) == set(g.nodes())
        assert all(0 <= site < 4 for site in part.values())

    def test_hash_partition_deterministic(self):
        g = data_g1()
        assert hash_partition(g, 4) == hash_partition(g, 4)

    def test_bfs_partition_balanced(self):
        g = generate_graph(100, alpha=1.1, num_labels=5, seed=2)
        part = bfs_partition(g, 4)
        from collections import Counter

        sizes = Counter(part.values())
        assert max(sizes.values()) - min(sizes.values()) <= 26

    def test_greedy_cut_no_worse_than_hash_usually(self):
        g = generate_graph(200, alpha=1.15, num_labels=5, seed=4)
        hash_cut = cut_edges(g, hash_partition(g, 4))
        greedy_cut = cut_edges(g, greedy_edge_cut_partition(g, 4))
        assert greedy_cut <= hash_cut

    def test_invalid_site_count(self):
        with pytest.raises(DistributedError):
            hash_partition(data_g1(), 0)


class TestFragments:
    def test_fragments_partition_nodes(self):
        g = data_g1()
        part = hash_partition(g, 3)
        fragments = fragment_graph(g, part, 3)
        all_nodes = set()
        for fragment in fragments:
            assert all_nodes.isdisjoint(fragment.labels)
            all_nodes |= set(fragment.labels)
        assert all_nodes == set(g.nodes())

    def test_remote_owner_table(self):
        g = data_g1()
        part = hash_partition(g, 3)
        fragments = fragment_graph(g, part, 3)
        for fragment in fragments:
            for remote, owner in fragment.remote_owner.items():
                assert part[remote] == owner
                assert not fragment.owns(remote)

    def test_border_nodes_have_remote_neighbors(self):
        g = data_g1()
        part = hash_partition(g, 3)
        for fragment in fragment_graph(g, part, 3):
            for node in fragment.border_nodes():
                neighbors = fragment.succ[node] | fragment.pred[node]
                assert any(not fragment.owns(n) for n in neighbors)

    def test_missing_assignment_rejected(self):
        g = data_g1()
        part = hash_partition(g, 2)
        del part["Bio4"]
        with pytest.raises(DistributedError):
            fragment_graph(g, part, 2)


class TestProtocolEquivalence:
    @pytest.mark.parametrize("num_sites", [1, 2, 3, 5])
    def test_fig1_all_site_counts(self, num_sites):
        pattern, data = pattern_q1(), data_g1(4)
        central = {sg.signature() for sg in match(pattern, data)}
        part = hash_partition(data, num_sites)
        report = distributed_match(pattern, data, part, num_sites)
        distributed = {sg.signature() for sg in report.result}
        assert central == distributed

    @pytest.mark.parametrize(
        "partitioner", [hash_partition, bfs_partition, greedy_edge_cut_partition]
    )
    def test_partitioner_independence(self, partitioner):
        """Section 4.3: 'applicable to any G regardless of how G is
        partitioned and distributed.'"""
        data = generate_graph(80, alpha=1.15, num_labels=5, seed=9)
        pattern = sample_pattern_from_data(data, 4, seed=2)
        assert pattern is not None
        central = {sg.signature() for sg in match(pattern, data)}
        part = partitioner(data, 3)
        report = distributed_match(pattern, data, part, 3)
        assert central == {sg.signature() for sg in report.result}

    @given(graph_seeds, st.integers(min_value=1, max_value=4))
    @settings(max_examples=15, deadline=None)
    def test_random_graphs_equivalence(self, seed, num_sites):
        data = random_digraph(seed, max_nodes=12, edge_prob=0.3)
        pattern = random_connected_pattern(seed + 1, max_nodes=3)
        central = {sg.signature() for sg in match(pattern, data)}
        part = hash_partition(data, num_sites)
        report = distributed_match(pattern, data, part, num_sites)
        assert central == {sg.signature() for sg in report.result}


class TestTrafficAccounting:
    def test_single_site_ships_no_data(self):
        pattern, data = pattern_q1(), data_g1()
        report = distributed_match(pattern, data, hash_partition(data, 1), 1)
        assert report.data_shipment_units == 0

    def test_data_shipment_within_bound(self):
        """The measured fetch traffic stays under the Section 4.3 bound
        (total size of boundary-crossing balls)."""
        pattern, data = pattern_q1(), data_g1(5)
        for num_sites in (2, 3, 4):
            part = hash_partition(data, num_sites)
            report = distributed_match(pattern, data, part, num_sites)
            bound = crossing_ball_bound(data, part, pattern.diameter)
            assert report.data_shipment_units <= bound

    def test_locality_aware_partition_ships_less(self):
        data = generate_graph(150, alpha=1.1, num_labels=6, seed=3)
        pattern = sample_pattern_from_data(data, 4, seed=5)
        assert pattern is not None
        hash_report = distributed_match(
            pattern, data, hash_partition(data, 4), 4
        )
        bfs_report = distributed_match(
            pattern, data, bfs_partition(data, 4), 4
        )
        assert bfs_report.data_shipment_units <= hash_report.data_shipment_units

    def test_message_kinds(self):
        pattern, data = pattern_q1(), data_g1()
        report = distributed_match(pattern, data, hash_partition(data, 3), 3)
        kinds = report.bus.units_by_kind()
        assert "query" in kinds
        assert "result" in kinds

    def test_bus_counters(self):
        bus = MessageBus()
        bus.send(0, 1, "fetch", 5)
        bus.send(1, 0, "fetch", 3)
        bus.send(-1, 0, "query", 2)
        assert bus.total_messages == 3
        assert bus.total_units == 10
        assert bus.data_units() == 8
        assert bus.units_between(0, 1) == 5


class TestCluster:
    def test_per_site_counts(self):
        pattern, data = pattern_q1(), data_g1()
        part = hash_partition(data, 2)
        cluster = Cluster(data, part, 2)
        report = cluster.evaluate(pattern)
        assert set(report.per_site_subgraphs) == {0, 1}
        assert sum(report.per_site_subgraphs.values()) >= len(report.result)

    def test_cluster_reusable_across_queries(self):
        data = data_g1()
        part = hash_partition(data, 2)
        cluster = Cluster(data, part, 2)
        first = cluster.evaluate(pattern_q1())
        second = cluster.evaluate(pattern_q1())
        assert {sg.signature() for sg in first.result} == {
            sg.signature() for sg in second.result
        }
