"""Unit tests for ball extraction (Section 2.2 semantics)."""

import pytest

from repro.core.ball import Ball, ball_node_sets, extract_ball, extract_ball_restricted, iter_balls
from repro.core.digraph import DiGraph
from repro.exceptions import GraphError


def chain(n: int) -> DiGraph:
    g = DiGraph()
    for i in range(n):
        g.add_node(i, "x")
    for i in range(n - 1):
        g.add_edge(i, i + 1)
    return g


class TestExtractBall:
    def test_radius_bounds_membership(self):
        g = chain(10)
        ball = extract_ball(g, 5, 2)
        assert set(ball.graph.nodes()) == {3, 4, 5, 6, 7}

    def test_ball_keeps_all_internal_edges(self):
        # The ball is the *induced* subgraph: every G-edge among ball
        # nodes must be present, including edges between two border nodes.
        g = chain(5)
        g.add_edge(0, 4)  # chord between the two future border nodes
        ball = extract_ball(g, 2, 2)
        assert ball.graph.has_edge(0, 4)

    def test_ball_is_undirected_distance(self):
        g = chain(4)  # edges point 0->1->2->3
        ball = extract_ball(g, 3, 1)
        assert set(ball.graph.nodes()) == {2, 3}

    def test_border_nodes(self):
        g = chain(10)
        ball = extract_ball(g, 5, 2)
        assert ball.border_nodes == frozenset({3, 7})

    def test_radius_zero(self):
        g = chain(3)
        ball = extract_ball(g, 1, 0)
        assert set(ball.graph.nodes()) == {1}
        assert ball.border_nodes == frozenset({1})

    def test_negative_radius_rejected(self):
        with pytest.raises(GraphError):
            extract_ball(chain(2), 0, -1)

    def test_contains_and_len(self):
        ball = extract_ball(chain(5), 2, 1)
        assert 2 in ball
        assert 0 not in ball
        assert len(ball) == 3

    def test_ball_larger_than_graph(self):
        g = chain(3)
        ball = extract_ball(g, 0, 99)
        assert set(ball.graph.nodes()) == {0, 1, 2}
        assert ball.border_nodes == frozenset()


class TestRestrictedBall:
    def test_restriction_drops_nodes_but_keeps_distances_over_g(self):
        g = chain(5)
        # Node 2 is disallowed, but distances are measured over full G, so
        # nodes 3, 4 still enter the radius-3 ball around 1 via node 2.
        ball = extract_ball_restricted(g, 1, 3, allowed={0, 1, 3, 4})
        assert set(ball.graph.nodes()) == {0, 1, 3, 4}
        # Edge 2->3 is gone with node 2; no edges between 1 and 3 remain.
        assert not ball.graph.has_edge(1, 3)

    def test_center_must_be_allowed(self):
        with pytest.raises(GraphError):
            extract_ball_restricted(chain(3), 1, 1, allowed={0, 2})


class TestBulkHelpers:
    def test_iter_balls_default_centers(self):
        g = chain(3)
        balls = list(iter_balls(g, 1))
        assert len(balls) == 3
        assert {b.center for b in balls} == {0, 1, 2}

    def test_iter_balls_restricted_centers(self):
        g = chain(3)
        balls = list(iter_balls(g, 1, centers=[1]))
        assert len(balls) == 1
        assert balls[0].center == 1

    def test_ball_node_sets(self):
        g = chain(4)
        sets = ball_node_sets(g, 1)
        assert sets[0] == {0, 1}
        assert sets[1] == {0, 1, 2}
