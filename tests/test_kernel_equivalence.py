"""Engine equivalence: the compiled engines must mirror the reference path.

The contract of :mod:`repro.core.kernel` and :mod:`repro.core.npkernel`
is *output identity*: for every input, ``engine="kernel"``,
``engine="numpy"`` and ``engine="python"`` produce the same set of
maximum perfect subgraphs with the same match relations (the recorded
discovering center may legitimately differ — see ``kernel_match_plus``).
These tests enforce the contract over the paper-figure fixtures, the
synthetic fixture corpus, and randomized graph/pattern pairs, plus the
kernel-specific machinery (index caching, version invalidation, engine
validation, and the numpy-missing graceful fallback).
"""

from __future__ import annotations

import subprocess
import sys

import pytest
from hypothesis import given, settings

from repro.core.digraph import DiGraph
from repro.core.dualsim import dual_simulation
from repro.core.kernel import (
    NUMPY_AUTO_THRESHOLD,
    GraphIndex,
    dual_simulation_kernel,
    get_index,
    kernel_matches_via_strong_simulation,
    resolve_engine,
)
from repro.core.npkernel import dual_simulation_numpy
from repro.core.matchplus import MatchPlusOptions, match_plus
from repro.core.pattern import Pattern
from repro.core.strong import match, matches_via_strong_simulation

from tests.conftest import (
    graph_and_pattern,
    graph_with_sampled_pattern,
    pattern_from_subgraph,
    random_connected_pattern,
    random_digraph,
)

ALL_OPTION_COMBOS = [
    MatchPlusOptions(),
    MatchPlusOptions(use_minimization=False),
    MatchPlusOptions(use_dual_filter=False),
    MatchPlusOptions(use_pruning=False),
    MatchPlusOptions(use_dual_filter=False, use_pruning=False),
    MatchPlusOptions(
        use_minimization=False,
        use_dual_filter=False,
        use_pruning=False,
        restrict_centers_by_label=False,
    ),
]


def canonical(result):
    """Engine-independent form of a MatchResult: subgraphs + relations."""
    return {
        (sg.signature(), sg.relation.pair_set()) for sg in result
    }


def assert_engines_agree(pattern, data):
    """Both entry points agree between engines on (pattern, data)."""
    plain_python = canonical(match(pattern, data, engine="python"))
    assert canonical(match(pattern, data, engine="kernel")) == plain_python
    assert canonical(match(pattern, data, engine="numpy")) == plain_python
    for options in ALL_OPTION_COMBOS:
        reference = canonical(
            match_plus(pattern, data, options, engine="python")
        )
        for engine in ("kernel", "numpy"):
            assert (
                canonical(match_plus(pattern, data, options, engine=engine))
                == reference
            )


# ----------------------------------------------------------------------
# Fixture corpus
# ----------------------------------------------------------------------
class TestFixtureCorpus:
    def test_paper_figure(self, q1, g1):
        assert_engines_agree(q1, g1)

    def test_trailing_empty_ball_segments(self):
        """Balls after the last candidate-bearing one must not truncate it.

        Regression: the batched numpy validity check clamped segment
        boundaries of empty trailing balls (here, isolated node 6 with a
        non-pattern label) into the last member position, which cut the
        final member — center 4 itself, the only ``l0`` candidate — out
        of ball(4)'s reduction and silently dropped its 3-node result.
        """
        data = DiGraph()
        for node, label in [
            (0, "l1"), (1, "l2"), (2, "l1"), (4, "l0"), (6, "l2"),
        ]:
            data.add_node(node, label)
        for source, target in [(1, 4), (4, 1), (4, 2), (4, 0)]:
            data.add_edge(source, target)
        pgraph = DiGraph()
        pgraph.add_node(1, "l0")
        pgraph.add_node(0, "l1")
        pgraph.add_edge(1, 0)
        pattern = Pattern(pgraph)
        assert_engines_agree(pattern, data)
        assert sorted(
            len(sg.graph) for sg in match(pattern, data, engine="numpy")
        ) == [2, 2, 3]

    def test_small_synthetic_sampled_patterns(self, small_synthetic):
        for seed in range(6):
            pattern = pattern_from_subgraph(small_synthetic, seed, 4)
            if pattern is None:
                continue
            assert_engines_agree(pattern, small_synthetic)

    def test_medium_synthetic_sampled_pattern(self, medium_synthetic):
        pattern = pattern_from_subgraph(medium_synthetic, 5, 6)
        assert pattern is not None
        assert canonical(
            match_plus(pattern, medium_synthetic, engine="kernel")
        ) == canonical(match_plus(pattern, medium_synthetic, engine="python"))

    def test_dual_simulation_on_fixtures(self, q1, g1, small_synthetic):
        assert dual_simulation_kernel(q1, g1) == dual_simulation(q1, g1)
        assert dual_simulation_numpy(q1, g1) == dual_simulation(q1, g1)
        pattern = pattern_from_subgraph(small_synthetic, 2, 3)
        assert pattern is not None
        assert dual_simulation_kernel(pattern, small_synthetic) == (
            dual_simulation(pattern, small_synthetic)
        )
        assert dual_simulation_numpy(pattern, small_synthetic) == (
            dual_simulation(pattern, small_synthetic)
        )

    def test_non_default_radius(self, small_synthetic):
        pattern = pattern_from_subgraph(small_synthetic, 1, 3)
        assert pattern is not None
        for radius in (0, 1, pattern.diameter + 2):
            assert canonical(
                match(pattern, small_synthetic, radius=radius, engine="kernel")
            ) == canonical(
                match(pattern, small_synthetic, radius=radius, engine="python")
            )

    def test_restricted_centers(self, small_synthetic):
        pattern = pattern_from_subgraph(small_synthetic, 3, 3)
        assert pattern is not None
        centers = list(small_synthetic.nodes())[::3]
        assert canonical(
            match(pattern, small_synthetic, centers=centers, engine="kernel")
        ) == canonical(
            match(pattern, small_synthetic, centers=centers, engine="python")
        )

    def test_decision_procedure(self, small_synthetic):
        pattern = pattern_from_subgraph(small_synthetic, 4, 3)
        assert pattern is not None
        assert kernel_matches_via_strong_simulation(
            pattern, small_synthetic
        ) == matches_via_strong_simulation(
            pattern, small_synthetic, engine="python"
        )


# ----------------------------------------------------------------------
# Randomized equivalence (hypothesis shrinks over the seeds)
# ----------------------------------------------------------------------
class TestRandomizedEquivalence:
    @settings(max_examples=60, deadline=None)
    @given(graph_and_pattern())
    def test_match_agrees(self, pair):
        data, pattern = pair
        assert canonical(match(pattern, data, engine="kernel")) == canonical(
            match(pattern, data, engine="python")
        )

    @settings(max_examples=60, deadline=None)
    @given(graph_with_sampled_pattern())
    def test_match_plus_agrees_all_options(self, pair):
        data, pattern = pair
        for options in ALL_OPTION_COMBOS:
            assert (
                canonical(match_plus(pattern, data, options, engine="kernel"))
                == canonical(
                    match_plus(pattern, data, options, engine="python")
                )
            )

    @settings(max_examples=60, deadline=None)
    @given(graph_and_pattern())
    def test_dual_simulation_agrees(self, pair):
        data, pattern = pair
        reference = dual_simulation(pattern, data)
        assert dual_simulation_kernel(pattern, data) == reference
        assert dual_simulation_numpy(pattern, data) == reference

    def test_seeded_sweep(self):
        """A deterministic seed sweep, independent of hypothesis."""
        for seed in range(40):
            data = random_digraph(seed, max_nodes=10)
            pattern = random_connected_pattern(seed + 900, max_nodes=4)
            assert_engines_agree(pattern, data)


# ----------------------------------------------------------------------
# Kernel machinery
# ----------------------------------------------------------------------
class TestGraphIndex:
    def test_index_is_cached_and_maintained_across_mutation(self):
        graph = DiGraph.from_parts({1: "A", 2: "B"}, [(1, 2)])
        first = get_index(graph)
        assert get_index(graph) is first
        graph.add_node(3, "A")
        second = get_index(graph)
        # The mutation pipeline keeps ONE warm index per graph: the
        # cached object syncs itself from the delta stream instead of
        # being replaced by a fresh compile.
        assert second is first
        assert second.n == 3
        assert second.graph_version == graph.version
        assert second.stats.full_compiles == 1
        assert second.stats.deltas_applied == 1

    def test_version_bumps_on_every_mutator(self):
        graph = DiGraph()
        observed = {graph.version}

        def record():
            assert graph.version not in observed, "mutator did not bump"
            observed.add(graph.version)

        graph.add_node(1, "A"); record()
        graph.add_node(2, "B"); record()
        graph.add_edge(1, 2); record()
        graph.relabel_node(2, "C"); record()
        graph.remove_edge(1, 2); record()
        graph.remove_node(2); record()

    def test_stale_index_never_served_after_edge_change(self):
        pattern = Pattern.build({"a": "X", "b": "Y"}, [("a", "b")])
        graph = DiGraph.from_parts(
            {1: "X", 2: "Y", 3: "Y"}, [(1, 2)]
        )
        before = canonical(match(pattern, graph, engine="kernel"))
        graph.add_edge(1, 3)
        after_kernel = canonical(match(pattern, graph, engine="kernel"))
        after_python = canonical(match(pattern, graph, engine="python"))
        assert after_kernel == after_python
        assert after_kernel != before

    def test_csr_shape(self):
        graph = DiGraph.from_parts(
            {1: "A", 2: "A", 3: "B"}, [(1, 2), (1, 3), (2, 1)]
        )
        index = GraphIndex(graph)
        assert index.n == 3
        assert sum(map(len, index.fwd_rows)) == graph.num_edges
        assert sum(map(len, index.rev_rows)) == graph.num_edges
        # Undirected rows contain each neighbor exactly once.
        node_1 = index.index_of[1]
        assert sorted(index.und_rows[node_1]) == sorted(
            index.index_of[x] for x in (2, 3)
        )

    def test_empty_data_graph(self):
        pattern = Pattern.build({"a": "A"}, [])
        assert len(match(pattern, DiGraph(), engine="kernel")) == 0
        assert len(match_plus(pattern, DiGraph(), engine="kernel")) == 0


class TestEngineSelection:
    def test_unknown_engine_rejected(self):
        with pytest.raises(ValueError):
            resolve_engine("fortran")
        pattern = Pattern.build({"a": "A"}, [])
        data = DiGraph.from_parts({1: "A"}, [])
        with pytest.raises(ValueError):
            match(pattern, data, engine="fortran")
        with pytest.raises(ValueError):
            match_plus(pattern, data, engine="fortran")

    def test_numpy_is_a_valid_engine(self):
        assert resolve_engine("numpy") == "numpy"
        pattern = Pattern.build({"a": "A"}, [])
        data = DiGraph.from_parts({1: "A"}, [])
        assert len(match(pattern, data, engine="numpy")) == 1

    def test_auto_matches_reference(self):
        data = random_digraph(17, max_nodes=10)
        pattern = random_connected_pattern(23, max_nodes=4)
        assert canonical(match(pattern, data)) == canonical(
            match(pattern, data, engine="python")
        )
        assert canonical(match_plus(pattern, data)) == canonical(
            match_plus(pattern, data, engine="python")
        )

    def test_auto_prefers_numpy_above_size_threshold(self):
        nodes = {i: "A" for i in range(NUMPY_AUTO_THRESHOLD + 1)}
        data = DiGraph.from_parts(nodes, [])
        assert resolve_engine("auto", data) == "numpy"


class TestNumpyFallback:
    """Importing repro without numpy keeps python/kernel functional."""

    _SCRIPT = r"""
import sys


class _BlockNumpy:
    def find_spec(self, name, path=None, target=None):
        if name == "numpy" or name.startswith("numpy."):
            raise ImportError("numpy is blocked for this test")
        return None


sys.meta_path.insert(0, _BlockNumpy())

from repro.core.digraph import DiGraph
from repro.core.kernel import NUMPY_AVAILABLE, resolve_engine
from repro.core.pattern import Pattern
from repro.core.strong import match
from repro.exceptions import MatchingError

assert not NUMPY_AVAILABLE

pattern = Pattern.build({"a": "A", "b": "B"}, [("a", "b")])
data = DiGraph.from_parts({1: "A", 2: "B"}, [(1, 2)])
assert len(match(pattern, data, engine="python")) == 1
assert len(match(pattern, data, engine="kernel")) == 1

# Explicitly asking for numpy fails loud, as a MatchingError (not a
# ValueError: the name is known, the dependency is missing).
try:
    resolve_engine("numpy")
except MatchingError as exc:
    assert "numpy" in str(exc)
else:
    raise AssertionError("resolve_engine('numpy') should have raised")

# Auto never selects the unavailable engine, at any size.
big = DiGraph.from_parts({i: "A" for i in range(3000)}, [])
assert resolve_engine("auto", big) == "kernel"
assert len(match(pattern, big, engine="auto")) == 0
print("fallback-ok")
"""

    def test_numpy_blocked_import_keeps_other_engines_working(self):
        proc = subprocess.run(
            [sys.executable, "-c", self._SCRIPT],
            capture_output=True,
            text=True,
            timeout=120,
        )
        assert proc.returncode == 0, proc.stderr
        assert "fallback-ok" in proc.stdout
