"""Tests for the neighborhood-label index and indexed matching."""

import pytest
from hypothesis import given, settings

from repro.core.digraph import DiGraph
from repro.core.indexing import IndexedMatcher, NeighborhoodLabelIndex
from repro.core.pattern import Pattern
from repro.core.strong import match
from repro.core.matchplus import match_plus
from repro.exceptions import MatchingError
from tests.conftest import graph_with_sampled_pattern


def chain(labels):
    g = DiGraph()
    for i, label in enumerate(labels):
        g.add_node(i, label)
    for i in range(len(labels) - 1):
        g.add_edge(i, i + 1)
    return g


class TestNeighborhoodLabelIndex:
    def test_level_zero_is_own_label(self):
        g = chain("ABC")
        index = NeighborhoodLabelIndex(g, 2)
        assert index.labels_within(0, 0) == frozenset("A")

    def test_levels_accumulate(self):
        g = chain("ABC")
        index = NeighborhoodLabelIndex(g, 2)
        assert index.labels_within(0, 1) == frozenset("AB")
        assert index.labels_within(0, 2) == frozenset("ABC")
        assert index.labels_within(1, 1) == frozenset("ABC")

    def test_undirected_semantics(self):
        g = chain("ABC")  # edges point 0 -> 1 -> 2
        index = NeighborhoodLabelIndex(g, 2)
        # Node 2 sees label A at distance 2 against edge direction.
        assert "A" in index.labels_within(2, 2)

    def test_radius_clamped(self):
        g = chain("AB")
        index = NeighborhoodLabelIndex(g, 1)
        assert index.labels_within(0, 99) == index.labels_within(0, 1)

    def test_invalid_arguments(self):
        g = chain("AB")
        with pytest.raises(MatchingError):
            NeighborhoodLabelIndex(g, -1)
        index = NeighborhoodLabelIndex(g, 1)
        with pytest.raises(MatchingError):
            index.labels_within("zzz", 1)
        with pytest.raises(MatchingError):
            index.labels_within(0, -1)

    def test_candidate_centers_sound(self):
        g = chain("ABCAB")
        index = NeighborhoodLabelIndex(g, 3)
        pattern = Pattern.build({"x": "A", "y": "B"}, [("x", "y")])
        centers = index.candidate_centers(pattern)
        # Every actual ball center of a perfect subgraph must survive.
        for subgraph in match(pattern, g):
            assert subgraph.center in centers

    def test_candidate_centers_filters(self):
        # Label C nodes can never host the A/B pattern as centers.
        g = chain("ABC")
        index = NeighborhoodLabelIndex(g, 2)
        pattern = Pattern.build({"x": "A", "y": "B"}, [("x", "y")])
        centers = index.candidate_centers(pattern)
        assert 2 not in centers

    def test_radius_exceeding_cap_rejected(self):
        g = chain("ABCD")
        index = NeighborhoodLabelIndex(g, 1)
        pattern = Pattern.build(
            {"w": "A", "x": "B", "y": "C", "z": "D"},
            [("w", "x"), ("x", "y"), ("y", "z")],
        )
        with pytest.raises(MatchingError):
            index.candidate_centers(pattern)

    def test_pruning_ratio(self):
        g = chain("ABZZZZZZ")
        index = NeighborhoodLabelIndex(g, 2)
        pattern = Pattern.build({"x": "A", "y": "B"}, [("x", "y")])
        assert index.pruning_ratio(pattern) >= 0.5


class TestIndexedMatcher:
    @given(graph_with_sampled_pattern())
    @settings(max_examples=30, deadline=None)
    def test_indexed_match_equals_plain(self, pair):
        data, pattern = pair
        matcher = IndexedMatcher(data, max_radius=6)
        if pattern.diameter > 6:
            return
        plain = {sg.signature() for sg in match(pattern, data)}
        indexed = {sg.signature() for sg in matcher.match(pattern)}
        assert plain == indexed

    def test_indexed_match_plus_equals_plain(self):
        g = chain("ABCAB")
        matcher = IndexedMatcher(g, max_radius=4)
        pattern = Pattern.build({"x": "A", "y": "B"}, [("x", "y")])
        plain = {sg.signature() for sg in match_plus(pattern, g)}
        indexed = {sg.signature() for sg in matcher.match_plus(pattern)}
        assert plain == indexed

    def test_index_reused_across_queries(self):
        g = chain("ABCAB")
        matcher = IndexedMatcher(g, max_radius=4)
        p1 = Pattern.build({"x": "A", "y": "B"}, [("x", "y")])
        p2 = Pattern.build({"x": "B", "y": "C"}, [("x", "y")])
        assert len(matcher.match(p1)) >= 1
        assert len(matcher.match(p2)) >= 1

    def test_no_centers_short_circuit(self):
        g = chain("AB")
        matcher = IndexedMatcher(g, max_radius=2)
        pattern = Pattern.build({"x": "Z", "y": "Z"}, [("x", "y")])
        assert len(matcher.match_plus(pattern)) == 0


class TestIndexStaleness:
    """The index is a snapshot: probes after any mutation must raise."""

    def _pattern(self) -> Pattern:
        return Pattern.build({"x": "A", "y": "B"}, [("x", "y")])

    def test_fresh_index_answers(self):
        g = chain("AB")
        index = NeighborhoodLabelIndex(g, 2)
        assert index.candidate_centers(self._pattern())

    @pytest.mark.parametrize("mutate", [
        lambda g: g.add_node(99, "Z"),
        lambda g: g.add_edge(1, 0),
        lambda g: g.remove_edge(0, 1),
        lambda g: g.remove_node(1),
        lambda g: g.relabel_node(0, "Z"),
    ])
    def test_stale_probe_raises(self, mutate):
        g = chain("AB")
        index = NeighborhoodLabelIndex(g, 2)
        mutate(g)
        with pytest.raises(MatchingError, match="stale"):
            index.labels_within(0, 1)
        with pytest.raises(MatchingError, match="stale"):
            index.candidate_centers(self._pattern())
        with pytest.raises(MatchingError, match="stale"):
            index.pruning_ratio(self._pattern())

    def test_rebuild_clears_staleness(self):
        g = chain("AB")
        index = NeighborhoodLabelIndex(g, 2)
        g.add_node(99, "Z")
        rebuilt = NeighborhoodLabelIndex(g, 2)
        assert rebuilt.labels_within(99, 0) == frozenset("Z")
