"""Tests for regular-expression pattern matching (the [18] extension)."""

import pytest
from hypothesis import given, settings

from repro.core.digraph import DiGraph
from repro.core.dualsim import dual_simulation
from repro.core.pattern import Pattern
from repro.core.regular import (
    RegularPattern,
    regular_dual_simulation,
    regular_strong_match,
)
from repro.core.strong import match
from repro.exceptions import PatternError
from tests.conftest import graph_with_sampled_pattern


def hop_pattern():
    """A -> B via intermediaries labeled M."""
    return Pattern.build({"a": "A", "b": "B"}, [("a", "b")])


def hop_data() -> DiGraph:
    return DiGraph.from_parts(
        {
            "a1": "A", "b1": "B",            # direct edge
            "a2": "A", "m": "M", "b2": "B",  # one M between
            "a3": "A", "x": "X", "b3": "B",  # wrong intermediary
        },
        [
            ("a1", "b1"),
            ("a2", "m"), ("m", "b2"),
            ("a3", "x"), ("x", "b3"),
        ],
    )


class TestRegularPattern:
    def test_defaults_to_direct_edges(self):
        rp = RegularPattern(hop_pattern())
        assert rp.sources[("a", "b")] == ""
        assert rp.bounds[("a", "b")] == 1

    def test_constraint_for_non_edge_rejected(self):
        with pytest.raises(PatternError):
            RegularPattern(hop_pattern(), {("b", "a"): "M*"})

    def test_invalid_bound_rejected(self):
        with pytest.raises(PatternError):
            RegularPattern(hop_pattern(), bounds={("a", "b"): 0})

    def test_default_radius_scales_with_bounds(self):
        rp_plain = RegularPattern(hop_pattern())
        assert rp_plain.default_radius() == hop_pattern().diameter
        rp_bounded = RegularPattern(
            hop_pattern(), {("a", "b"): "M*"}, {("a", "b"): 3}
        )
        assert rp_bounded.default_radius() == 3 * hop_pattern().diameter


class TestRegularDualSimulation:
    def test_direct_edges_equal_plain_dual(self):
        pattern, data = hop_pattern(), hop_data()
        plain = dual_simulation(pattern, data)
        regular = regular_dual_simulation(RegularPattern(pattern), data)
        assert plain == regular

    def test_regex_extends_reach(self):
        pattern, data = hop_pattern(), hop_data()
        rp = RegularPattern(pattern, {("a", "b"): "M?"})
        rel = regular_dual_simulation(rp, data)
        # Direct edge (empty word) and one M hop both qualify; X does not.
        assert rel.matches_of("a") == frozenset({"a1", "a2"})
        assert rel.matches_of("b") == frozenset({"b1", "b2"})

    def test_regex_requires_intermediate(self):
        pattern, data = hop_pattern(), hop_data()
        rp = RegularPattern(pattern, {("a", "b"): "M"})
        rel = regular_dual_simulation(rp, data)
        assert rel.matches_of("a") == frozenset({"a2"})

    def test_wildcard_regex(self):
        pattern, data = hop_pattern(), hop_data()
        rp = RegularPattern(pattern, {("a", "b"): ".?"})
        rel = regular_dual_simulation(rp, data)
        assert rel.matches_of("a") == frozenset({"a1", "a2", "a3"})

    def test_failure_collapses(self):
        pattern = hop_pattern()
        data = DiGraph.from_parts({"a1": "A"}, [])
        rp = RegularPattern(pattern, {("a", "b"): "M*"})
        assert regular_dual_simulation(rp, data).is_empty()

    def test_duality_enforced_through_paths(self):
        # b must have an A regex-parent; b_orphan's only path source is X.
        pattern = hop_pattern()
        data = DiGraph.from_parts(
            {"a1": "A", "m": "M", "b1": "B", "x": "X", "b2": "B"},
            [("a1", "m"), ("m", "b1"), ("x", "b2")],
        )
        rp = RegularPattern(pattern, {("a", "b"): "M*"})
        rel = regular_dual_simulation(rp, data)
        assert rel.matches_of("b") == frozenset({"b1"})

    @given(graph_with_sampled_pattern())
    @settings(max_examples=30, deadline=None)
    def test_empty_constraints_always_equal_plain_dual(self, pair):
        data, pattern = pair
        plain = dual_simulation(pattern, data)
        regular = regular_dual_simulation(RegularPattern(pattern), data)
        assert plain == regular


class TestHopBoundedPatterns:
    def test_wildcard_bounds_behave_like_bounded_reachability(self):
        from repro.core.regular import hop_bounded_pattern

        pattern = hop_pattern()
        data = DiGraph.from_parts(
            {"a1": "A", "x1": "X", "x2": "X", "b1": "B"},
            [("a1", "x1"), ("x1", "x2"), ("x2", "b1")],
        )
        two_hops = hop_bounded_pattern(pattern, {("a", "b"): 2})
        assert regular_dual_simulation(two_hops, data).is_empty()
        three_hops = hop_bounded_pattern(pattern, {("a", "b"): 3})
        rel = regular_dual_simulation(three_hops, data)
        assert rel.matches_of("a") == frozenset({"a1"})

    @given(graph_with_sampled_pattern())
    @settings(max_examples=20, deadline=None)
    def test_regular_dual_contained_in_bounded_simulation(self, pair):
        """Duality only removes pairs: the regex-dual relation with
        wildcard 2-hop bounds is contained in child-only bounded
        simulation with the same bounds."""
        from repro.core.bounded import BoundedPattern, bounded_simulation
        from repro.core.regular import hop_bounded_pattern

        data, pattern = pair
        bounds = {edge: 2 for edge in pattern.edges()}
        regular_rel = regular_dual_simulation(
            hop_bounded_pattern(pattern, bounds), data
        )
        bounded_rel = bounded_simulation(
            BoundedPattern(pattern, bounds), data
        )
        if regular_rel.is_total():
            assert bounded_rel.contains_relation(regular_rel)


class TestRegularStrongMatch:
    def test_direct_edges_equal_plain_strong(self):
        pattern, data = hop_pattern(), hop_data()
        plain = {sg.signature() for sg in match(pattern, data)}
        regular = {
            sg.signature()
            for sg in regular_strong_match(RegularPattern(pattern), data)
        }
        assert plain == regular

    @given(graph_with_sampled_pattern())
    @settings(max_examples=20, deadline=None)
    def test_plain_equivalence_property(self, pair):
        data, pattern = pair
        plain = {sg.signature() for sg in match(pattern, data)}
        regular = {
            sg.signature()
            for sg in regular_strong_match(
                RegularPattern(pattern), data, radius=pattern.diameter
            )
        }
        assert plain == regular

    def test_path_matches_found_and_localized(self):
        pattern, data = hop_pattern(), hop_data()
        rp = RegularPattern(pattern, {("a", "b"): "M?"}, {("a", "b"): 2})
        result = regular_strong_match(rp, data)
        matched = result.matched_data_nodes()
        assert "a2" in matched and "b2" in matched
        assert "a3" not in matched
        # Match graphs connect endpoints directly (path interiors are
        # witnesses, not members).
        for sg in result:
            assert "x" not in sg.graph

    def test_locality_radius_restricts(self):
        # With radius 0 the ball is a single node: no 2-node match fits.
        pattern, data = hop_pattern(), hop_data()
        rp = RegularPattern(pattern)
        assert len(regular_strong_match(rp, data, radius=0)) == 0
