"""Tests for bisimulation and the Section 3.2 tractability boundary."""

from repro.core.bisim import (
    are_bisimilar,
    maximum_bisimulation,
    subgraph_bisimulation_exists,
)
from repro.core.digraph import DiGraph
from repro.core.pattern import Pattern


def two_cycle(labels=("X", "X")) -> DiGraph:
    g = DiGraph()
    g.add_node("a", labels[0])
    g.add_node("b", labels[1])
    g.add_edge("a", "b")
    g.add_edge("b", "a")
    return g


class TestMaximumBisimulation:
    def test_identical_graphs_fully_bisimilar(self):
        g = two_cycle()
        rel = maximum_bisimulation(g, g)
        assert ("a", "a") in rel
        assert ("a", "b") in rel  # same label, same behavior

    def test_label_mismatch_blocks(self):
        g1 = two_cycle(("X", "X"))
        g2 = two_cycle(("X", "Y"))
        rel = maximum_bisimulation(g1, g2)
        assert ("a", "b") not in rel

    def test_behavior_mismatch_blocks(self):
        # A node with a child vs a node without: not bisimilar.
        g1 = DiGraph.from_parts({"p": "X", "c": "Y"}, [("p", "c")])
        g2 = DiGraph.from_parts({"p": "X"}, [])
        rel = maximum_bisimulation(g1, g2)
        assert ("p", "p") not in rel

    def test_cycle_lengths_bisimilar(self):
        """A 2-cycle and a 4-cycle of the same label are bisimilar — this
        is exactly why bisimulation still fails to bound cycles, while
        being stronger than simulation."""
        c2 = two_cycle()
        c4 = DiGraph()
        for i in range(4):
            c4.add_node(i, "X")
        for i in range(4):
            c4.add_edge(i, (i + 1) % 4)
        pattern = Pattern(c2)
        assert are_bisimilar(pattern, c4)


class TestAreBisimilar:
    def test_requires_totality_both_sides(self):
        pattern = Pattern.build({"a": "X"}, [])
        data = DiGraph.from_parts({"x": "X", "y": "Y"}, [])
        # y is never covered: not bisimilar as whole graphs.
        assert not are_bisimilar(pattern, data)

    def test_simple_positive(self):
        pattern = Pattern.build({"a": "X"}, [])
        data = DiGraph.from_parts({"x": "X"}, [])
        assert are_bisimilar(pattern, data)


class TestSubgraphBisimulation:
    def test_finds_embedded_witness(self):
        pattern = Pattern(two_cycle())
        data = DiGraph.from_parts(
            {"a": "X", "b": "X", "noise": "Z"},
            [("a", "b"), ("b", "a"), ("noise", "a")],
        )
        witness = subgraph_bisimulation_exists(pattern, data)
        assert witness == frozenset({"a", "b"})

    def test_returns_none_without_witness(self):
        pattern = Pattern(two_cycle())
        data = DiGraph.from_parts({"a": "X", "b": "X"}, [("a", "b")])
        assert subgraph_bisimulation_exists(pattern, data) is None

    def test_label_pruning_keeps_search_small(self):
        pattern = Pattern(two_cycle())
        data = DiGraph.from_parts(
            {"a": "X", "b": "X", **{f"z{i}": "Z" for i in range(10)}},
            [("a", "b"), ("b", "a")],
        )
        # 10 foreign-labeled nodes must not blow the enumeration up.
        assert subgraph_bisimulation_exists(pattern, data) == frozenset(
            {"a", "b"}
        )
