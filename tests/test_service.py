"""The query service layer, end to end.

Four layers under test, matching the subsystem's shape:

1. **Canonical fingerprints** — relabel-permuted (isomorphic) patterns
   get equal canonical keys; structurally different patterns do not
   share keys; the canonical order is an isomorphism witness.  The
   soundness half is the property the cache leans on: fingerprint-equal
   patterns must produce identical results, asserted differentially
   through the service (hypothesis + fixtures).
2. **Result cache** — LRU bounds, version-gated lookups (open batches
   read as misses), the delta-invalidation rule table (label-disjoint
   deltas keep entries live, everything else drops them), and lifecycle
   (dead graphs purge their entries).
3. **MatchService** — observation-identical to direct engine calls with
   the cache cold, warm, disabled, across engines, and under concurrent
   submission from a wide pool (the kernel read-path thread-safety
   contract).
4. **Mutation soundness** — random mutation/query interleavings against
   a warm service: a wrongly retained cache entry would surface as a
   stale hit (:func:`tests.engines.assert_service_update_workload_identical`).

Plus the parallel-site half of the tentpole: ``Cluster.run(parallel=...)``
must produce the byte-identical protocol observation (results, per-site
counts, full bus accounting) as a serial run, on both engines.
"""

from __future__ import annotations

import gc
import random
import threading

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.digraph import DiGraph
from repro.core.matchplus import match_plus
from repro.core.pattern import Pattern
from repro.service import (
    CacheStats,
    MatchService,
    Query,
    ResultCache,
    ServiceStats,
    WorkloadReport,
    canonical_form,
    pattern_fingerprint,
    replay_workload,
    skewed_stream,
)
from repro.distributed import Cluster

from tests.conftest import (
    graph_seeds,
    pattern_seeds,
    random_connected_pattern,
    random_digraph,
)
from tests.engines import (
    ENGINES,
    assert_service_identical,
    assert_service_update_workload_identical,
    canonical_result,
    cluster_observation,
    permuted_pattern,
)


# ----------------------------------------------------------------------
# Layer 1: canonical fingerprints
# ----------------------------------------------------------------------
class TestFingerprint:
    @settings(max_examples=60, deadline=None)
    @given(
        pattern_seed=pattern_seeds,
        perm_seed=st.integers(min_value=0, max_value=10_000),
    )
    def test_isomorphic_patterns_fingerprint_equal(
        self, pattern_seed, perm_seed
    ):
        pattern = random_connected_pattern(pattern_seed, max_nodes=6)
        twin = permuted_pattern(pattern, perm_seed)
        assert canonical_form(pattern).key == canonical_form(twin).key
        assert pattern_fingerprint(pattern) == pattern_fingerprint(twin)

    @settings(max_examples=40, deadline=None)
    @given(pattern_seed=pattern_seeds, perm_seed=graph_seeds)
    def test_canonical_order_is_an_isomorphism_witness(
        self, pattern_seed, perm_seed
    ):
        """Matching canonical positions between fingerprint-equal
        patterns must map labels and edges exactly — the property that
        makes cross-pattern cache replay sound."""
        pattern = random_connected_pattern(pattern_seed, max_nodes=6)
        twin = permuted_pattern(pattern, perm_seed)
        order_p = canonical_form(pattern).order
        order_t = canonical_form(twin).order
        node_at = {position: node for node, position in order_t.items()}
        sigma = {u: node_at[order_p[u]] for u in pattern.nodes()}
        for u in pattern.nodes():
            assert pattern.label(u) == twin.label(sigma[u])
        mapped = {(sigma[a], sigma[b]) for a, b in pattern.edges()}
        assert mapped == set(twin.edges())

    def test_structural_differences_change_the_key(self):
        base = Pattern.build({"a": "A", "b": "B"}, [("a", "b")])
        flipped = Pattern.build({"a": "A", "b": "B"}, [("b", "a")])
        relabeled = Pattern.build({"a": "A", "b": "C"}, [("a", "b")])
        looped = Pattern.build({"a": "A", "b": "B"}, [("a", "b"), ("b", "b")])
        keys = {
            canonical_form(p).key for p in (base, flipped, relabeled, looped)
        }
        assert len(keys) == 4

    def test_symmetric_patterns_terminate(self):
        """Highly symmetric shapes (every leaf automorphic) must not
        explode: the orbit-skip keeps the search polynomial."""
        graph = DiGraph()
        graph.add_node("hub", "R")
        for i in range(16):
            graph.add_node(f"leaf{i}", "B")
            graph.add_edge("hub", f"leaf{i}")
        star = Pattern(graph)
        assert canonical_form(star).key == canonical_form(
            permuted_pattern(star, 3)
        ).key

    def test_canonical_form_is_memoized_on_the_pattern(self):
        pattern = random_connected_pattern(11, max_nodes=5)
        assert pattern.canonical() is pattern.canonical()
        assert pattern.fingerprint() == canonical_form(pattern).fingerprint

    @settings(max_examples=25, deadline=None)
    @given(
        seed=graph_seeds,
        pattern_seed=pattern_seeds,
        perm_seed=st.integers(min_value=0, max_value=10_000),
    )
    def test_fingerprint_sharing_is_sound(self, seed, pattern_seed, perm_seed):
        """The acceptance property: a cache entry warmed by one pattern
        and hit by a fingerprint-equal pattern must reproduce exactly
        what a direct computation for the *second* pattern returns."""
        data = random_digraph(seed, max_nodes=10, edge_prob=0.3)
        pattern = random_connected_pattern(pattern_seed, max_nodes=4)
        twin = permuted_pattern(pattern, perm_seed)
        with MatchService(max_workers=1) as service:
            service.query(pattern, data)  # warm
            replayed = service.query(twin, data)  # hit via fingerprint
            assert service.stats.cache.hits >= 1
            assert canonical_result(replayed) == canonical_result(
                match_plus(twin, data)
            )


# ----------------------------------------------------------------------
# Layer 2: the result cache
# ----------------------------------------------------------------------
def _label_pattern() -> Pattern:
    return Pattern.build({"a": "l0", "b": "l1"}, [("a", "b")])


def _graph_with_spare_labels() -> DiGraph:
    graph = random_digraph(5, max_nodes=10, num_labels=2, edge_prob=0.3)
    graph.add_node("s1", "spare")
    graph.add_node("s2", "spare")
    return graph


class TestResultCache:
    def test_lru_eviction(self):
        cache = ResultCache(max_entries=2)
        graph = DiGraph.from_parts({1: "A"}, [])
        for i in range(4):
            cache.store(graph, ("key", i), "dual", "kernel",
                        frozenset({"A"}), payload=(frozenset(),))
        assert len(cache) == 2
        assert cache.stats.evictions == 2
        assert cache.lookup(graph, ("key", 0), "dual", "kernel") is None
        assert cache.lookup(graph, ("key", 3), "dual", "kernel") is not None

    def test_open_batch_reads_as_miss(self):
        """Version-gated lookups: mutations buffered in an open batch
        have bumped the version but not delivered deltas yet — the cache
        must refuse to serve until delivery settles the entry."""
        graph = _graph_with_spare_labels()
        pattern = _label_pattern()
        with MatchService(max_workers=1) as service:
            service.query(pattern, graph, "dual")
            with graph.batch():
                graph.relabel_node("s1", "other")  # label-disjoint
                relation = service.query(pattern, graph, "dual")
                assert service.stats.cache.hits == 0  # mid-batch: miss
            assert relation.pair_set() == service.query(
                pattern, graph, "dual"
            ).pair_set()

    def test_label_disjoint_deltas_keep_entries_live(self):
        graph = _graph_with_spare_labels()
        pattern = _label_pattern()
        with MatchService(max_workers=1) as service:
            service.query(pattern, graph, "dual")
            service.query(pattern, graph, "match-plus")
            stats = service.stats.cache
            assert stats.misses == 2
            graph.relabel_node("s1", "other")      # node delta, disjoint
            graph.add_node("s3", "spare")          # node delta, disjoint
            service.query(pattern, graph, "dual")
            service.query(pattern, graph, "match-plus")
            assert stats.hits == 2 and stats.invalidations == 0

    def test_edge_deltas_respect_the_ball_distance_rule(self):
        """Edge deltas and ball-based entries: distance decides.

        The spare nodes are isolated, so an edge between them lies
        farther than ``d_Q`` from every candidate — the ``match-plus``
        entry provably survives (PR 5's finer retention rule).  An edge
        reaching within ``d_Q`` of a candidate must still invalidate.
        """
        graph = _graph_with_spare_labels()
        pattern = _label_pattern()  # labels {l0, l1}, d_Q = 1
        with MatchService(max_workers=1) as service:
            service.query(pattern, graph, "dual")
            service.query(pattern, graph, "match-plus")
            graph.add_edge("s1", "s2")  # spare component: beyond any ball
            stats = service.stats.cache
            service.query(pattern, graph, "dual")
            assert stats.hits == 1  # global relation provably unaffected
            service.query(pattern, graph, "match-plus")
            assert stats.hits == 2  # farther than d_Q from all candidates
            assert stats.invalidations == 0
            # Bridge the spare component to within d_Q of a candidate:
            # the l0 endpoint is a candidate at distance 0, so the ball
            # entry must drop.  The dual entry survives regardless — its
            # rule only needs one endpoint (here ``spare``) outside L.
            l0_node = next(
                node for node in graph.nodes() if graph.label(node) == "l0"
            )
            graph.add_edge("s2", l0_node)
            service.query(pattern, graph, "dual")
            service.query(pattern, graph, "match-plus")
            assert stats.invalidations == 1
            assert stats.misses == 3
            # Re-warm, then mutate one hop farther out: s1 is now at
            # distance 2 > d_Q of the candidate, s0 arrives isolated —
            # the ball entry survives again.
            graph.add_node("s0", "spare")
            service.query(pattern, graph, "match-plus")
            graph.add_edge("s0", "s1")
            service.query(pattern, graph, "match-plus")
            assert stats.invalidations == 1

    def test_overlapping_deltas_invalidate(self):
        graph = _graph_with_spare_labels()
        pattern = _label_pattern()
        with MatchService(max_workers=1) as service:
            service.query(pattern, graph, "dual")
            graph.relabel_node("s1", "l0")  # new label overlaps the pattern
            service.query(pattern, graph, "dual")
            stats = service.stats.cache
            assert stats.hits == 0 and stats.invalidations == 1

    def test_remove_node_group_recovers_labels(self):
        """A remove_node batch ships remove_edge deltas whose endpoint
        has already left the graph; the group's own remove_node delta
        supplies the label, so disjointness stays provable."""
        graph = _graph_with_spare_labels()
        graph.add_edge("s1", "s2")
        pattern = _label_pattern()
        with MatchService(max_workers=1) as service:
            service.query(pattern, graph, "dual")
            graph.remove_node("s1")  # edges + node in one batch, disjoint
            service.query(pattern, graph, "dual")
            assert service.stats.cache.hits == 1

    def test_store_refuses_payload_computed_before_a_mutation(self):
        """Regression: a mutation landing between compute and store used
        to plant an entry stamped with the *post*-mutation version —
        permanently stale, and invisible to later delta deliveries
        (which judge only future mutations).  store() must refuse."""
        cache = ResultCache()
        graph = DiGraph.from_parts({1: "l0", 2: "spare"}, [])
        computed_version = graph.version
        graph.relabel_node(2, "other")  # lands mid-"query"
        cache.store(
            graph, ("k",), "dual", "kernel", frozenset({"l0"}),
            payload=(frozenset(),), computed_version=computed_version,
        )
        assert len(cache) == 0
        # Even after a later harmless delta, nothing stale can resurface.
        graph.relabel_node(2, "spare")
        assert cache.lookup(graph, ("k",), "dual", "kernel") is None

    def test_dead_graph_purges_entries(self):
        cache = ResultCache(max_entries=8)
        graph = DiGraph.from_parts({1: "A"}, [])
        cache.store(graph, ("k",), "dual", "kernel",
                    frozenset({"A"}), payload=(frozenset(),))
        assert len(cache) == 1
        del graph
        gc.collect()
        assert len(cache) == 0

    def test_clear(self):
        cache = ResultCache()
        graph = DiGraph.from_parts({1: "A"}, [])
        cache.store(graph, ("k",), "dual", "kernel",
                    frozenset({"A"}), payload=(frozenset(),))
        cache.clear()
        assert len(cache) == 0
        assert cache.lookup(graph, ("k",), "dual", "kernel") is None


# ----------------------------------------------------------------------
# Layer 3: the service façade
# ----------------------------------------------------------------------
class TestMatchService:
    def test_paper_figure_fixture(self, q1, g1):
        with MatchService(max_workers=2) as service:
            assert_service_identical(service, q1, g1)
            # Second pass: every combination now replays from cache.
            assert_service_identical(service, q1, g1)
            assert service.stats.replayed > 0

    @settings(max_examples=15, deadline=None)
    @given(seed=graph_seeds, pattern_seed=pattern_seeds)
    def test_random_pairs_identical(self, seed, pattern_seed):
        data = random_digraph(seed, max_nodes=10, edge_prob=0.3)
        pattern = random_connected_pattern(pattern_seed, max_nodes=4)
        with MatchService(max_workers=2) as service:
            assert_service_identical(service, pattern, data)

    def test_cache_disabled_still_identical(self, q1, g1):
        with MatchService(max_workers=2, cache_size=0) as service:
            assert_service_identical(service, q1, g1)
            assert_service_identical(service, q1, g1)
            assert service.stats.replayed == 0
            assert service.stats.computed == service.stats.queries

    def test_submit_batch_preserves_order(self, q1, g1):
        with MatchService(max_workers=4) as service:
            queries = [Query(q1, g1) for _ in range(8)]
            report, results = replay_workload(service, queries)
            expected = canonical_result(match_plus(q1, g1))
            assert report.queries == 8
            assert all(canonical_result(r) == expected for r in results)
            assert report.stats.cache.hits >= 7

    def test_concurrent_queries_share_one_index(self):
        """The kernel read path under a wide pool: many threads querying
        one shared graph must all observe the reference answer (the
        per-thread visited buffers are what makes this race-free)."""
        data = random_digraph(31, max_nodes=14, edge_prob=0.35)
        patterns = [
            random_connected_pattern(seed, max_nodes=4)
            for seed in range(6)
        ]
        expected = [
            canonical_result(match_plus(p, data, engine="python"))
            for p in patterns
        ]
        with MatchService(max_workers=8, cache_size=0) as service:
            futures = [
                service.submit(p, data, engine="kernel")
                for p in patterns * 5
            ]
            for i, future in enumerate(futures):
                assert canonical_result(future.result()) == expected[
                    i % len(patterns)
                ]

    def test_direct_kernel_calls_are_thread_safe(self):
        """Same property without the service: raw match_plus calls from
        plain threads on one graph."""
        data = random_digraph(37, max_nodes=14, edge_prob=0.35)
        pattern = random_connected_pattern(41, max_nodes=4)
        expected = canonical_result(match_plus(pattern, data, engine="python"))
        failures = []

        def worker():
            try:
                for _ in range(5):
                    observed = canonical_result(
                        match_plus(pattern, data, engine="kernel")
                    )
                    if observed != expected:
                        failures.append("diverged")
            except Exception as exc:  # noqa: BLE001 - collected for assert
                failures.append(repr(exc))

        threads = [threading.Thread(target=worker) for _ in range(6)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert not failures, failures

    def test_unknown_algorithm_rejected(self, q1, g1):
        with MatchService(max_workers=1) as service:
            with pytest.raises(ValueError, match="unknown algorithm"):
                service.submit(q1, g1, algorithm="vf2")

    def test_shared_external_cache(self, q1, g1):
        cache = ResultCache(max_entries=16)
        with MatchService(max_workers=1, cache=cache) as first:
            first.query(q1, g1)
        with MatchService(max_workers=1, cache=cache) as second:
            second.query(q1, g1)
            assert second.stats.cache.hits == 1  # warmed by the first

    def test_stats_shapes(self, q1, g1):
        with MatchService(max_workers=1) as service:
            service.query(q1, g1)
            stats = service.stats
            assert stats.queries == stats.computed + stats.replayed == 1
            assert isinstance(stats.cache, CacheStats)
            assert 0.0 <= stats.cache.hit_rate <= 1.0


# ----------------------------------------------------------------------
# Layer 4: soundness under interleaved mutations
# ----------------------------------------------------------------------
class TestServiceUnderMutations:
    def test_paper_figure_fixture(self, q1, g1):
        with MatchService(max_workers=2) as service:
            assert_service_update_workload_identical(
                service, q1, g1, num_ops=10, op_seed=23
            )

    @settings(max_examples=10, deadline=None)
    @given(
        seed=graph_seeds,
        pattern_seed=pattern_seeds,
        op_seed=st.integers(min_value=0, max_value=10_000),
        num_ops=st.integers(min_value=1, max_value=8),
    )
    def test_random_interleavings(self, seed, pattern_seed, op_seed, num_ops):
        data = random_digraph(seed, max_nodes=10, edge_prob=0.3)
        pattern = random_connected_pattern(pattern_seed, max_nodes=3)
        with MatchService(max_workers=2) as service:
            assert_service_update_workload_identical(
                service, pattern, data, num_ops=num_ops, op_seed=op_seed,
                algorithms=("match-plus", "dual"),
            )


# ----------------------------------------------------------------------
# Parallel site evaluation
# ----------------------------------------------------------------------
class TestParallelClusterRun:
    def _assert_parallel_identical(self, pattern, data, assignment, sites):
        for engine in ENGINES:
            serial = cluster_observation(
                Cluster(data, assignment, sites, engine=engine).run(pattern)
            )
            parallel = cluster_observation(
                Cluster(
                    data, assignment, sites, engine=engine, parallel=True
                ).run(pattern)
            )
            assert parallel == serial, (
                f"parallel cluster diverged from serial on {engine!r}"
            )

    def test_paper_figure_fixture(self, q1, g1):
        nodes = list(g1.nodes())
        assignment = {node: i % 3 for i, node in enumerate(nodes)}
        self._assert_parallel_identical(q1, g1, assignment, 3)

    @settings(max_examples=10, deadline=None)
    @given(
        seed=graph_seeds,
        pattern_seed=pattern_seeds,
        num_sites=st.integers(min_value=2, max_value=4),
    )
    def test_random_graphs(self, seed, pattern_seed, num_sites):
        data = random_digraph(seed, max_nodes=12, edge_prob=0.3)
        pattern = random_connected_pattern(pattern_seed, max_nodes=3)
        rng = random.Random(seed + num_sites)
        assignment = {node: rng.randrange(num_sites) for node in data.nodes()}
        self._assert_parallel_identical(pattern, data, assignment, num_sites)

    def test_per_query_override(self, q1, g1):
        nodes = list(g1.nodes())
        assignment = {node: i % 2 for i, node in enumerate(nodes)}
        serial_cluster = Cluster(g1, assignment, 2)
        parallel_report = serial_cluster.run(q1, parallel=True)
        fresh = Cluster(g1, dict(assignment), 2)
        serial_report = fresh.run(q1)
        assert cluster_observation(parallel_report) == cluster_observation(
            serial_report
        )


# ----------------------------------------------------------------------
# Single-flight deduplication of concurrent identical misses
# ----------------------------------------------------------------------
class TestSingleFlight:
    def _blocking_compute(self, entered, release, calls):
        import repro.service.executor as executor_module

        real = executor_module._COMPUTE["dual"]

        def blocking(pattern, data, engine):
            calls.append(threading.current_thread().name)
            entered.set()
            assert release.wait(timeout=30), "test never released the leader"
            return real(pattern, data, engine)

        return blocking

    def _await_coalesced(self, service, expected):
        import time

        deadline = time.monotonic() + 30
        while (
            service.stats.coalesced < expected
            and time.monotonic() < deadline
        ):
            time.sleep(0.005)
        assert service.stats.coalesced == expected

    def test_concurrent_identical_misses_share_one_computation(
        self, monkeypatch
    ):
        """The barrier test of the single-flight contract: N concurrent
        submissions of isomorphic patterns — all missing, the leader
        parked mid-compute so every follower provably arrives *during*
        the flight — yield exactly 1 engine run and 1 store; the N-1
        followers wait and resolve as cache hits."""
        import repro.service.executor as executor_module

        graph = random_digraph(11, max_nodes=20, edge_prob=0.2)
        pattern = _label_pattern()
        n = 4
        entered, release = threading.Event(), threading.Event()
        calls = []
        monkeypatch.setitem(
            executor_module._COMPUTE,
            "dual",
            self._blocking_compute(entered, release, calls),
        )
        with MatchService(max_workers=n) as service:
            leader_future = service.submit(pattern, graph, "dual")
            assert entered.wait(timeout=30)  # the leader is computing
            followers = [
                (twin, service.submit(twin, graph, "dual"))
                for twin in (
                    permuted_pattern(pattern, i) for i in range(1, n)
                )
            ]
            self._await_coalesced(service, n - 1)  # all parked in-flight
            release.set()
            from repro.core.dualsim import dual_simulation

            expected = dual_simulation(pattern, graph).pair_set()
            assert leader_future.result(timeout=30).pair_set() == expected
            for twin, future in followers:
                # Replayed under the twin's own node names: equal to a
                # direct computation for that twin, not to the leader's.
                assert future.result(timeout=30).pair_set() == (
                    dual_simulation(twin, graph).pair_set()
                )
            assert len(calls) == 1, "duplicate engine runs raced"
            stats = service.stats
            assert stats.computed == 1 and stats.replayed == n - 1
            assert stats.coalesced == n - 1
            assert stats.cache.stores == 1
            assert stats.cache.hits == n - 1

    def test_leader_failure_elects_a_new_leader(self, monkeypatch):
        """A follower must not inherit the leader's exception: it wakes,
        misses, and runs the computation itself."""
        import repro.service.executor as executor_module

        graph = random_digraph(12, max_nodes=15, edge_prob=0.2)
        pattern = _label_pattern()
        real = executor_module._COMPUTE["dual"]
        entered, release = threading.Event(), threading.Event()
        attempts = []

        def flaky(pattern_, data, engine):
            attempts.append(1)
            if len(attempts) == 1:
                entered.set()
                assert release.wait(timeout=30)
                raise RuntimeError("injected leader failure")
            return real(pattern_, data, engine)

        monkeypatch.setitem(executor_module._COMPUTE, "dual", flaky)
        with MatchService(max_workers=2) as service:
            leader_future = service.submit(pattern, graph, "dual")
            assert entered.wait(timeout=30)
            follower_future = service.submit(
                permuted_pattern(pattern, 5), graph, "dual"
            )
            self._await_coalesced(service, 1)
            release.set()
            with pytest.raises(RuntimeError, match="injected"):
                leader_future.result(timeout=30)
            relation = follower_future.result(timeout=30)
        assert len(attempts) == 2
        twin = permuted_pattern(pattern, 5)
        assert relation.pair_set() == real(twin, graph, "auto").pair_set()


# ----------------------------------------------------------------------
# Ball-based edge-delta retention vs fresh recomputation
# ----------------------------------------------------------------------
class TestBallDistanceRetention:
    @settings(max_examples=12, deadline=None)
    @given(
        seed=graph_seeds,
        pattern_seed=pattern_seeds,
        op_seed=st.integers(min_value=0, max_value=400),
    )
    def test_edge_deltas_stay_exact_vs_fresh_recomputation(
        self, seed, pattern_seed, op_seed
    ):
        """Random edge insertions/removals — some far from every
        candidate (provably retained), some near (invalidated) — against
        warm ``match``/``match-plus`` entries: every post-delta answer
        must equal a fresh direct computation.  A single wrongly
        retained entry surfaces as a stale hit here."""
        from repro.core.strong import match as direct_match

        graph = random_digraph(seed, max_nodes=12, edge_prob=0.25)
        # A far satellite component in a label the pattern never uses:
        # edges inside it exercise the retention branch of the rule.
        for i in range(4):
            graph.add_node(f"far{i}", "spare")
        graph.add_edge("far0", "far1")
        pattern = random_connected_pattern(pattern_seed, max_nodes=3)
        rng = random.Random(op_seed)
        with MatchService(max_workers=1) as service:
            for _ in range(8):
                service.query(pattern, graph, "match")
                service.query(pattern, graph, "match-plus")
                nodes = list(graph.nodes())
                source, target = rng.choice(nodes), rng.choice(nodes)
                if graph.has_edge(source, target):
                    graph.remove_edge(source, target)
                else:
                    graph.add_edge(source, target)
                assert canonical_result(
                    service.query(pattern, graph, "match")
                ) == canonical_result(direct_match(pattern, graph))
                assert canonical_result(
                    service.query(pattern, graph, "match-plus")
                ) == canonical_result(match_plus(pattern, graph))
            assert service.stats.cache.retained >= 0  # counters coherent

    def test_far_edges_actually_retain(self):
        """The rule must not be vacuous: a mutation stream confined to a
        distant spare component keeps ball-based entries live through
        every delta (stores stay at the warm-up count)."""
        graph = random_digraph(7, max_nodes=10, num_labels=2, edge_prob=0.3)
        for i in range(5):
            graph.add_node(f"far{i}", "spare")
        pattern = _label_pattern()
        with MatchService(max_workers=1) as service:
            service.query(pattern, graph, "match")
            service.query(pattern, graph, "match-plus")
            stats = service.stats.cache
            assert stats.stores == 2
            hits = 0
            for i in range(4):
                graph.add_edge(f"far{i}", f"far{i + 1}")
                service.query(pattern, graph, "match")
                service.query(pattern, graph, "match-plus")
                hits += 2
            assert stats.hits == hits, "far edges must keep entries live"
            assert stats.stores == 2 and stats.invalidations == 0
            assert stats.retained >= 8

# ----------------------------------------------------------------------
# Workload helpers: report arithmetic and the shared stream builder
# ----------------------------------------------------------------------
class TestWorkloadHelpers:
    def test_throughput_is_zero_for_an_empty_stream(self):
        # Zero queries must not read as infinite throughput, whatever
        # the clock measured around the empty replay.
        assert WorkloadReport(0, 0.0, {}, ServiceStats()).throughput == 0.0
        assert WorkloadReport(0, 1.5, {}, ServiceStats()).throughput == 0.0

    def test_throughput_inf_only_when_work_completed_instantly(self):
        report = WorkloadReport(4, 0.0, {}, ServiceStats())
        assert report.throughput == float("inf")

    def test_throughput_normal_division(self):
        assert WorkloadReport(10, 2.0, {}, ServiceStats()).throughput == 5.0

    def test_empty_replay_end_to_end(self):
        with MatchService(max_workers=1) as service:
            report, results = replay_workload(service, [])
        assert results == []
        assert report.queries == 0
        assert report.by_algorithm == {}
        assert report.throughput == 0.0

    def test_skewed_stream_counts_and_order(self, q1, g1):
        twin = permuted_pattern(q1, seed=1)
        stream = skewed_stream([q1, twin], g1, rounds=1)
        # Rank 0 repeats 2 * 2 times, rank 1 repeats 2 * 1, in order.
        assert [q.pattern for q in stream] == [q1] * 4 + [twin] * 2
        assert all(q.data is g1 for q in stream)
        assert all(q.algorithm == "match-plus" for q in stream)
        two_rounds = skewed_stream(
            [q1, twin], g1, algorithm="match", rounds=2
        )
        assert [q.pattern for q in two_rounds] == ([q1] * 4 + [twin] * 2) * 2
        assert all(q.algorithm == "match" for q in two_rounds)


# ----------------------------------------------------------------------
# Engine-independent cache keys: the auto-resolution flip stays warm
# ----------------------------------------------------------------------
class TestEngineIndependentKeys:
    def test_auto_flip_replays_instead_of_refragmenting(self, q1, g1):
        # On a tiny graph with no cached index, "auto" resolves to the
        # reference engine; once an index exists it resolves to a
        # compiled one.  The cache key carries no engine slot, so the
        # same stream stays warm across the flip.
        from repro.core.kernel import TINY_AUTO_THRESHOLD, get_index

        assert g1.size < TINY_AUTO_THRESHOLD
        with MatchService(max_workers=1) as service:
            first = service.query(q1, g1, "match", engine="auto")
            assert service.stats.computed == 1
            get_index(g1)  # flips what "auto" resolves to
            second = service.query(q1, g1, "match", engine="auto")
            assert service.stats.computed == 1
            assert service.stats.replayed == 1
            assert canonical_result(first) == canonical_result(second)

    def test_explicit_engines_share_one_entry(self, q1, g1):
        with MatchService(max_workers=1) as service:
            first = service.query(q1, g1, "match", engine="python")
            second = service.query(q1, g1, "match", engine="kernel")
            assert service.stats.computed == 1
            assert service.stats.replayed == 1
            assert canonical_result(first) == canonical_result(second)
