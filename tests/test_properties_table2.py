"""Table 2: topology preservation and bounded matches, as property tests.

Each column of Table 2 becomes a check, run over random (graph, pattern)
pairs and over the paper's fixtures:

===============  ====  ====  ======  ====
criterion        ≺     ≺_D   ≺_LD    ⋞
===============  ====  ====  ======  ====
children         ✓     ✓     ✓       ✓
parents          ×     ✓     ✓       ✓
connectivity     ×     ✓     ✓       ✓
directed cycles  ✓     ✓     ✓       ✓
undirected cyc.  ×     ✓     ✓       ✓
locality         ×     ×     ✓       ✓
bounded matches  ×     ×     ✓       ×
===============  ====  ====  ======  ====
"""

from hypothesis import given, settings

from repro.baselines.vf2 import enumerate_embeddings
from repro.core.digraph import DiGraph
from repro.core.dualsim import dual_simulation
from repro.core.matchgraph import build_match_graph
from repro.core.pattern import Pattern
from repro.core.simulation import graph_simulation
from repro.core.strong import match
from repro.core.traversal import (
    has_directed_cycle,
    has_undirected_cycle,
    is_connected_undirected,
)
from repro.core.components import connected_components
from tests.conftest import graph_with_sampled_pattern


class TestProposition1Containment:
    """⋞ ⊆ ≺_LD ⊆ ≺_D ⊆ ≺ on matched node sets / decision level."""

    @given(graph_with_sampled_pattern())
    @settings(max_examples=50, deadline=None)
    def test_containment_chain(self, pair):
        data, pattern = pair
        iso = next(enumerate_embeddings(pattern, data, max_matches=1), None)
        strong = match(pattern, data)
        dual = dual_simulation(pattern, data)
        sim = graph_simulation(pattern, data)
        if iso is not None:
            assert len(strong) > 0, "iso match must imply strong match"
        if len(strong) > 0:
            assert dual.is_total(), "strong match must imply dual match"
        if dual.is_total():
            assert sim.is_total(), "dual match must imply simulation"

    @given(graph_with_sampled_pattern())
    @settings(max_examples=50, deadline=None)
    def test_node_set_containment(self, pair):
        data, pattern = pair
        strong_nodes = match(pattern, data).matched_data_nodes()
        dual_nodes = dual_simulation(pattern, data).data_nodes()
        sim_nodes = graph_simulation(pattern, data).data_nodes()
        assert strong_nodes <= dual_nodes <= sim_nodes


class TestChildrenAndParents:
    @given(graph_with_sampled_pattern())
    @settings(max_examples=40, deadline=None)
    def test_simulation_preserves_children(self, pair):
        """Every child of a matched pattern node is matched by a child of
        the data node — for every pair in the maximum relation."""
        data, pattern = pair
        rel = graph_simulation(pattern, data)
        for u, v in rel.pairs():
            for u_child in pattern.successors(u):
                children = rel.matches_of_raw(u_child)
                assert any(
                    w in children for w in data.successors_raw(v)
                )

    @given(graph_with_sampled_pattern())
    @settings(max_examples=40, deadline=None)
    def test_dual_simulation_preserves_parents(self, pair):
        data, pattern = pair
        rel = dual_simulation(pattern, data)
        for u, v in rel.pairs():
            for u_parent in pattern.predecessors(u):
                parents = rel.matches_of_raw(u_parent)
                assert any(
                    w in parents for w in data.predecessors_raw(v)
                )

    def test_simulation_does_not_preserve_parents(self):
        """The Fig. 1 counterexample: Bio1 matches via simulation with a
        single HR parent although Bio has three pattern parents."""
        from repro.datasets.paper_figures import data_g1, pattern_q1

        rel = graph_simulation(pattern_q1(), data_g1())
        assert "Bio1" in rel.matches_of("Bio")  # parents not enforced


class TestConnectivity:
    @given(graph_with_sampled_pattern())
    @settings(max_examples=40, deadline=None)
    def test_theorem2_components_are_dual_matches(self, pair):
        """Theorem 2: each connected component of the dual match graph is
        itself dual-matched by Q (relation restricted to it is total)."""
        data, pattern = pair
        rel = dual_simulation(pattern, data)
        if not rel.is_total():
            return
        mg = build_match_graph(pattern, data, rel)
        for component in connected_components(mg):
            restricted = rel.restricted_to(component)
            assert restricted.is_total()
            sub = mg.subgraph(component)
            component_rel = dual_simulation(pattern, sub)
            assert component_rel.is_total()

    def test_simulation_matches_disconnected_data(self):
        """Fig. 1: connected Q1 simulates into disconnected G1."""
        from repro.datasets.paper_figures import data_g1, pattern_q1

        q1, g1 = pattern_q1(), data_g1()
        assert not is_connected_undirected(g1)
        rel = graph_simulation(q1, g1)
        mg = build_match_graph(q1, g1, rel)
        assert len(connected_components(mg)) > 1

    @given(graph_with_sampled_pattern())
    @settings(max_examples=40, deadline=None)
    def test_strong_matches_are_connected(self, pair):
        data, pattern = pair
        for subgraph in match(pattern, data):
            assert is_connected_undirected(subgraph.graph)


class TestCycles:
    @given(graph_with_sampled_pattern())
    @settings(max_examples=40, deadline=None)
    def test_proposition2_directed_cycles(self, pair):
        """If Q has a directed cycle and Q ≺ G, the match graph has one."""
        data, pattern = pair
        if not has_directed_cycle(pattern.graph):
            return
        rel = graph_simulation(pattern, data)
        if not rel.is_total():
            return
        mg = build_match_graph(pattern, data, rel)
        assert has_directed_cycle(mg)

    @given(graph_with_sampled_pattern())
    @settings(max_examples=40, deadline=None)
    def test_theorem3_undirected_cycles(self, pair):
        """If Q has an undirected cycle and Q ≺_D G, the dual match graph
        has one."""
        data, pattern = pair
        if not has_undirected_cycle(pattern.graph):
            return
        rel = dual_simulation(pattern, data)
        if not rel.is_total():
            return
        mg = build_match_graph(pattern, data, rel)
        assert has_undirected_cycle(mg)

    def test_simulation_breaks_undirected_cycles(self):
        """Fig. 1: the undirected HR/SE/Bio cycle of Q1 simulates into
        the *tree* rooted at HR1 — simulation does not preserve
        undirected cycles."""
        from repro.datasets.paper_figures import data_g1, pattern_q1

        q1, g1 = pattern_q1(), data_g1()
        rel = graph_simulation(q1, g1)
        # The tree component's nodes are all in the simulation relation.
        assert {"HR1", "SE1", "Bio1", "Bio2"} <= rel.data_nodes()


class TestBoundedMatches:
    @given(graph_with_sampled_pattern())
    @settings(max_examples=40, deadline=None)
    def test_proposition4(self, pair):
        data, pattern = pair
        assert len(match(pattern, data)) <= data.num_nodes

    def test_vf2_can_exceed_strong_count(self):
        """Subgraph isomorphism has no |V| bound on distinct matched
        subgraphs in general; on Fig. 2's G4 it already returns 4 where
        strong simulation's largest ball returns the single union."""
        from repro.baselines.vf2 import vf2
        from repro.datasets.paper_figures import data_g4, pattern_q4

        iso = vf2(pattern_q4(), data_g4())
        strong = match(pattern_q4(), data_g4())
        assert iso.num_matched_subgraphs >= len(strong)
