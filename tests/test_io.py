"""Tests for edge-list and JSON serialization."""

import json

import pytest

from repro.core.digraph import DiGraph
from repro.core.pattern import Pattern
from repro.core.strong import match
from repro.exceptions import GraphError
from repro.io import (
    graph_from_dict,
    graph_to_dict,
    match_result_to_dict,
    pattern_from_dict,
    pattern_to_dict,
    read_edgelist,
    read_graph_json,
    write_edgelist,
    write_graph_json,
    write_match_result_json,
)


@pytest.fixture
def sample_graph() -> DiGraph:
    return DiGraph.from_parts(
        {"a": "HR", "b": "Bio", "c": "SE"},
        [("a", "b"), ("c", "b"), ("a", "c")],
    )


class TestEdgelist:
    def test_roundtrip(self, sample_graph, tmp_path):
        path = tmp_path / "graph.txt"
        write_edgelist(sample_graph, path)
        loaded = read_edgelist(path)
        assert loaded.same_as(sample_graph)

    def test_plain_snap_file(self, tmp_path):
        path = tmp_path / "snap.txt"
        path.write_text("# comment\n1\t2\n2\t3\n")
        loaded = read_edgelist(path, default_label="product")
        assert loaded.num_nodes == 3
        assert loaded.label("1") == "product"
        assert loaded.has_edge("1", "2")

    def test_whitespace_separated_edges(self, tmp_path):
        path = tmp_path / "ws.txt"
        path.write_text("1 2\n")
        loaded = read_edgelist(path)
        assert loaded.has_edge("1", "2")

    def test_malformed_edge_rejected(self, tmp_path):
        path = tmp_path / "bad.txt"
        path.write_text("1\t2\t3\n")
        with pytest.raises(GraphError):
            read_edgelist(path)

    def test_malformed_label_rejected(self, tmp_path):
        path = tmp_path / "bad2.txt"
        path.write_text("#L onlyone\n")
        with pytest.raises(GraphError):
            read_edgelist(path)

    def test_blank_lines_skipped(self, tmp_path):
        path = tmp_path / "blank.txt"
        path.write_text("\n1\t2\n\n")
        assert read_edgelist(path).num_edges == 1


class TestJson:
    def test_graph_roundtrip(self, sample_graph, tmp_path):
        path = tmp_path / "graph.json"
        write_graph_json(sample_graph, path)
        loaded = read_graph_json(path)
        assert loaded.same_as(sample_graph)

    def test_dict_roundtrip(self, sample_graph):
        assert graph_from_dict(graph_to_dict(sample_graph)).same_as(sample_graph)

    def test_unjsonable_node_rejected(self):
        g = DiGraph()
        g.add_node(("tuple", "id"), "L")
        with pytest.raises(GraphError):
            graph_to_dict(g)

    def test_pattern_roundtrip(self):
        pattern = Pattern.build({"a": "A", "b": "B"}, [("a", "b")])
        payload = pattern_to_dict(pattern)
        assert payload["diameter"] == 1
        loaded = pattern_from_dict(payload)
        assert loaded.diameter == 1

    def test_pattern_diameter_mismatch_detected(self):
        pattern = Pattern.build({"a": "A", "b": "B"}, [("a", "b")])
        payload = pattern_to_dict(pattern)
        payload["diameter"] = 99
        with pytest.raises(GraphError):
            pattern_from_dict(payload)

    def test_match_result_serialization(self, tmp_path):
        from repro.datasets.paper_figures import data_g2, pattern_q2

        result = match(pattern_q2(), data_g2())
        payload = match_result_to_dict(result)
        assert payload["num_subgraphs"] == len(result)
        path = tmp_path / "result.json"
        write_match_result_json(result, path)
        loaded = json.loads(path.read_text())
        assert loaded["num_subgraphs"] == len(result)
        first = loaded["subgraphs"][0]
        assert "book2" in {n["id"] for n in first["graph"]["nodes"]}
