"""Wire-format round-trips: every runtime payload survives bit-exactly.

The process runtime works only if its wire forms are lossless: a
fragment that decodes with a reordered node table would silently change
center iteration order (and with it per-site counts); a dropped stub id
would break routing; a mangled relation would corrupt results.  These
tests drive :mod:`repro.distributed.runtime.wire` with
hypothesis-generated graphs, partitions, patterns, mutation streams and
result sets — including tombstoned (in-group-removed) and stub (remote)
node ids, and adversarial node ids like ``None``, negative ints and
tuples — and assert exact reconstruction, plus loud rejection of
malformed or version-skewed frames.
"""

from __future__ import annotations

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.digraph import DiGraph
from repro.core.strong import match
from repro.distributed.fragment import fragment_graph
from repro.distributed.runtime import wire
from repro.exceptions import WireFormatError

from tests.conftest import (
    graph_seeds,
    pattern_seeds,
    random_connected_pattern,
    random_digraph,
)
from tests.engines import DeltaRecorder, canonical_result, random_mutation

#: Hashable-but-awkward node ids the wire layer must pass through
#: untouched: ``None`` (must not collide with any internal sentinel),
#: negative ints, empty string, a tuple, and a bool (hash-equal to 1).
ODD_IDS = [None, -3, "", ("composite", 0), True]


def _odd_graph() -> DiGraph:
    graph = DiGraph()
    for i, node in enumerate(ODD_IDS):
        graph.add_node(node, None if i % 2 else f"l{i}")
    graph.add_edge(None, -3)
    graph.add_edge(-3, ("composite", 0))
    graph.add_edge(("composite", 0), None)
    graph.add_edge("", True)
    return graph


def _random_assignment(data, num_sites, seed):
    rng = random.Random(seed)
    return {node: rng.randrange(num_sites) for node in data.nodes()}


def _assert_fragment_equal(observed, expected) -> None:
    assert observed.site_id == expected.site_id
    assert observed.labels == expected.labels
    assert list(observed.labels) == list(expected.labels), (
        "fragment node insertion order must survive the wire — it is the "
        "center iteration order of the protocol"
    )
    assert observed.succ == expected.succ
    assert observed.pred == expected.pred
    assert observed.remote_owner == expected.remote_owner


class TestFragmentRoundTrip:
    @settings(max_examples=30, deadline=None)
    @given(
        seed=graph_seeds,
        num_sites=st.integers(min_value=1, max_value=4),
        assign_seed=st.integers(min_value=0, max_value=100),
    )
    def test_random_partitions(self, seed, num_sites, assign_seed):
        data = random_digraph(seed, max_nodes=14, edge_prob=0.3)
        assignment = _random_assignment(data, num_sites, assign_seed)
        for fragment in fragment_graph(data, assignment, num_sites):
            decoded = wire.decode_fragment(wire.encode_fragment(fragment))
            _assert_fragment_equal(decoded, fragment)

    def test_odd_node_ids_and_stubs(self):
        """``None``/tuple/bool ids and cross-site stubs ride through."""
        data = _odd_graph()
        assignment = {node: i % 2 for i, node in enumerate(data.nodes())}
        for fragment in fragment_graph(data, assignment, 2):
            assert fragment.remote_owner, "partition must create stubs"
            decoded = wire.decode_fragment(wire.encode_fragment(fragment))
            _assert_fragment_equal(decoded, fragment)


class TestPatternRoundTrip:
    @settings(max_examples=30, deadline=None)
    @given(seed=pattern_seeds)
    def test_random_patterns(self, seed):
        pattern = random_connected_pattern(seed, max_nodes=6)
        decoded = wire.decode_pattern(wire.encode_pattern(pattern))
        assert decoded.graph.same_as(pattern.graph)
        assert list(decoded.nodes()) == list(pattern.nodes())
        assert decoded.diameter == pattern.diameter

    def test_disconnected_pattern_rejected_on_decode(self):
        pattern = random_connected_pattern(3, max_nodes=4)
        stamped = wire.encode_pattern(pattern)
        magic, version, kind, (nodes, labels, edges) = stamped
        tampered = (
            magic, version, kind,
            (nodes + ("lonely",), labels + ("l0",), edges),
        )
        from repro.exceptions import PatternError

        with pytest.raises(PatternError):
            wire.decode_pattern(tampered)


class TestDeltaRoundTrip:
    @settings(max_examples=30, deadline=None)
    @given(seed=graph_seeds, op_seed=st.integers(min_value=0, max_value=500))
    def test_random_mutation_streams(self, seed, op_seed):
        """A recorded stream — including remove_node batches whose edge
        deltas reference already-tombstoned nodes — decodes verbatim."""
        graph = random_digraph(seed, max_nodes=10, edge_prob=0.3)
        recorder = DeltaRecorder(graph)
        rng = random.Random(op_seed)
        fresh = 50_000
        for _ in range(12):
            if random_mutation(rng, graph, fresh) is not None:
                fresh += 1
        deltas = tuple(recorder.drain())
        decoded = wire.decode_deltas(wire.encode_deltas(deltas))
        assert decoded == deltas  # GraphDelta is a frozen dataclass

    def test_odd_ids_in_deltas(self):
        graph = _odd_graph()
        recorder = DeltaRecorder(graph)
        graph.relabel_node(None, None)
        graph.remove_node(-3)  # batch: edge tombstones + node removal
        graph.add_node(("fresh", None), "l9")
        deltas = tuple(recorder.drain())
        assert wire.decode_deltas(wire.encode_deltas(deltas)) == deltas


class TestPartialsRoundTrip:
    @settings(max_examples=20, deadline=None)
    @given(seed=graph_seeds, pattern_seed=pattern_seeds)
    def test_match_results_ride_through(self, seed, pattern_seed):
        data = random_digraph(seed, max_nodes=12, edge_prob=0.3)
        pattern = random_connected_pattern(pattern_seed, max_nodes=3)
        subgraphs = list(match(pattern, data))
        decoded = wire.decode_partials(wire.encode_partials(subgraphs))
        assert len(decoded) == len(subgraphs)
        for observed, expected in zip(decoded, subgraphs):
            assert observed.graph.same_as(expected.graph)
            assert list(observed.graph.nodes()) == list(
                expected.graph.nodes()
            )
            assert observed.center == expected.center
            assert (
                observed.relation.pair_set() == expected.relation.pair_set()
            )
        assert canonical_result(decoded) == canonical_result(subgraphs)


class TestBusLogRoundTrip:
    def test_log_rides_through_in_order(self):
        log = [(0, 1, "fetch", 7), (2, 0, "fetch", 1), (1, 2, "update", 1)]
        assert wire.decode_bus_log(wire.encode_bus_log(log)) == log


class TestRunReportRoundTrip:
    def test_report_rides_through(self):
        entries = (((0, "n0"), (1, ("odd", None))), ((0, -3),))
        per_site = {1: 4, 0: 2}
        log = [(-1, 0, "query", 3), (1, 0, "fetch", 5), (0, -1, "result", 2)]
        observed = wire.decode_run_report(
            wire.encode_run_report(entries, per_site, log)
        )
        assert observed[0] == entries
        assert observed[1] == per_site
        assert observed[2] == log

    def test_empty_report(self):
        assert wire.decode_run_report(
            wire.encode_run_report((), {}, [])
        ) == ((), {}, [])

    def test_truncated_body_rejected(self):
        magic, version, kind, body = wire.encode_run_report((), {0: 1}, [])
        with pytest.raises(WireFormatError, match="run-report body"):
            wire.decode_run_report((magic, version, kind, body[:-1]))

    def test_malformed_per_site_rejected(self):
        magic, version, kind, body = wire.encode_run_report((), {}, [])
        mangled = (body[0], ((0, 1, 2),), body[2])
        with pytest.raises(WireFormatError, match="per-site"):
            wire.decode_run_report((magic, version, kind, mangled))

    def test_malformed_log_entry_rejected(self):
        magic, version, kind, body = wire.encode_run_report((), {}, [])
        mangled = (body[0], body[1], ((0, 1, "fetch"),))
        with pytest.raises(WireFormatError, match="query-log"):
            wire.decode_run_report((magic, version, kind, mangled))


class TestEnvelopeValidation:
    def test_version_skew_rejected(self):
        stamped = wire.encode_bus_log([(0, 1, "fetch", 1)])
        magic, _, kind, body = stamped
        with pytest.raises(WireFormatError, match="version"):
            wire.decode_bus_log((magic, wire.WIRE_VERSION + 1, kind, body))

    def test_bad_magic_rejected(self):
        stamped = wire.encode_bus_log([])
        _, version, kind, body = stamped
        with pytest.raises(WireFormatError, match="magic"):
            wire.decode_bus_log(("weird", version, kind, body))

    def test_kind_confusion_rejected(self):
        """A frame of one kind must not decode as another."""
        pattern = random_connected_pattern(1, max_nodes=3)
        with pytest.raises(WireFormatError, match="expected"):
            wire.decode_fragment(wire.encode_pattern(pattern))

    @pytest.mark.parametrize(
        "frame", [None, 42, ("repro-wire",), ("repro-wire", 1, "bus-log", [])]
    )
    def test_malformed_frames_rejected(self, frame):
        with pytest.raises(WireFormatError):
            wire.decode_bus_log(frame)

    def test_truncated_fragment_body_rejected(self):
        graph = random_digraph(5, max_nodes=8)
        assignment = {node: 0 for node in graph.nodes()}
        fragment = fragment_graph(graph, assignment, 1)[0]
        magic, version, kind, body = wire.encode_fragment(fragment)
        with pytest.raises(WireFormatError):
            wire.decode_fragment((magic, version, kind, body[:-2]))
