"""Tests for the approximate matchers (TALE and MCS)."""

import pytest

from repro.baselines.mcs import (
    McsParameters,
    greedy_mcs_size,
    grow_candidate_subgraph,
    mcs_match,
)
from repro.baselines.tale import (
    NeighborhoodIndex,
    TaleParameters,
    tale,
)
from repro.baselines.vf2 import vf2
from repro.core.digraph import DiGraph
from repro.core.pattern import Pattern
from repro.datasets import generate_amazon
from repro.datasets.patterns import sample_pattern_from_data


def star_data() -> DiGraph:
    """A hub with three labeled spokes, plus a degraded copy."""
    return DiGraph.from_parts(
        {
            "hub": "H", "s1": "A", "s2": "B", "s3": "C",
            "hub2": "H", "t1": "A", "t2": "B",
        },
        [
            ("hub", "s1"), ("hub", "s2"), ("hub", "s3"),
            ("hub2", "t1"), ("hub2", "t2"),
        ],
    )


def star_pattern() -> Pattern:
    return Pattern.build(
        {"h": "H", "a": "A", "b": "B", "c": "C"},
        [("h", "a"), ("h", "b"), ("h", "c")],
    )


class TestNeighborhoodIndex:
    def test_unit_contents(self):
        data = star_data()
        index = NeighborhoodIndex(data)
        degree, labels = index.unit("hub")
        assert degree == 3
        assert labels == {"A": 1, "B": 1, "C": 1}

    def test_probe_exact(self):
        data = star_data()
        index = NeighborhoodIndex(data)
        hits = index.probe(star_pattern(), "h", rho=0.0, limit=10)
        assert hits == ["hub"]

    def test_probe_with_mismatch_budget(self):
        data = star_data()
        index = NeighborhoodIndex(data)
        # rho = 0.4 tolerates one missing neighbor label out of three,
        # letting the degraded hub2 through.
        hits = index.probe(star_pattern(), "h", rho=0.4, limit=10)
        assert set(hits) == {"hub", "hub2"}


class TestTale:
    def test_exact_match_found(self):
        result = tale(star_pattern(), star_data(), TaleParameters(rho=0.0))
        assert result.num_matched_subgraphs == 1
        assert {"hub", "s1", "s2", "s3"} in [
            set(sig) for sig in result.subgraph_signatures
        ]

    def test_approximate_match_included(self):
        result = tale(
            star_pattern(), star_data(), TaleParameters(rho=0.4)
        )
        matched_sets = [set(sig) for sig in result.subgraph_signatures]
        assert any("hub2" in nodes for nodes in matched_sets)

    def test_finds_at_least_exact_matches_on_real_workload(self):
        data = generate_amazon(300, num_labels=10, seed=5)
        pattern = sample_pattern_from_data(data, 5, seed=2)
        assert pattern is not None
        exact = vf2(pattern, data)
        approx = tale(pattern, data)
        # TALE is approximate: it should report at least one match when
        # exact matches exist.
        if exact.num_matched_subgraphs > 0:
            assert approx.num_matched_subgraphs > 0


class TestMcs:
    def test_grow_candidate_is_connected_and_sized(self):
        data = star_data()
        nodes = grow_candidate_subgraph(data, "hub", 4)
        assert len(nodes) == 4
        assert "hub" in nodes

    def test_greedy_mcs_full_on_identical(self):
        data = star_data()
        pattern = star_pattern()
        nodes = frozenset({"hub", "s1", "s2", "s3"})
        assert greedy_mcs_size(pattern, data, nodes) == 4

    def test_greedy_mcs_partial_on_degraded(self):
        data = star_data()
        pattern = star_pattern()
        nodes = frozenset({"hub2", "t1", "t2"})
        size = greedy_mcs_size(pattern, data, nodes)
        assert 2 <= size <= 3

    def test_threshold_applied(self):
        data = star_data()
        pattern = star_pattern()
        strict = mcs_match(pattern, data, McsParameters(threshold=1.0))
        loose = mcs_match(pattern, data, McsParameters(threshold=0.5))
        assert strict.num_matched_subgraphs <= loose.num_matched_subgraphs

    def test_max_candidates_cap(self):
        data = generate_amazon(200, num_labels=8, seed=3)
        pattern = sample_pattern_from_data(data, 4, seed=1)
        assert pattern is not None
        capped = mcs_match(pattern, data, McsParameters(max_candidates=3))
        assert capped.num_matched_subgraphs <= 3

    def test_matched_nodes_union(self):
        data = star_data()
        pattern = star_pattern()
        result = mcs_match(pattern, data, McsParameters(threshold=0.5))
        for node_set, _ in result.accepted:
            assert node_set <= result.matched_nodes()
