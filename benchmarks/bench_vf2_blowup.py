"""The exponential regime of subgraph isomorphism vs cubic strong simulation.

At the scales of this reproduction, label-rich workloads let VF2's
candidate pruning succeed quickly, so Figures 8(a)/(b)/(e)/(f) do not show
the paper's 100× VF2-vs-Match+ gap (see EXPERIMENTS.md).  This bench pins
down the regime where the paper's claim *does* manifest: few labels and
many overlapping embeddings.  VF2's work grows explosively with pattern
size while Match+ stays polynomial — the paper's core complexity claim.
"""

import pytest

from repro.baselines.vf2 import vf2
from repro.core.matchplus import match_plus
from repro.datasets import generate_graph
from repro.datasets.patterns import sample_pattern_from_data
from repro.experiments import render_table
from repro.utils.timer import timed
from benchmarks.conftest import emit


def test_vf2_exponential_blowup(benchmark):
    # Two labels only: nearly every node is a candidate for every pattern
    # node, the adversarial case for isomorphism enumeration.
    data = generate_graph(400, alpha=1.25, num_labels=2, seed=47)

    rows = {"VF2 states": [], "VF2 seconds": [], "Match+ seconds": []}
    sizes = [3, 5, 7, 9]
    for size in sizes:
        pattern = sample_pattern_from_data(data, size, seed=801 + size)
        assert pattern is not None
        iso_result, iso_seconds = timed(
            lambda: vf2(pattern, data, max_matches=200_000, max_states=3_000_000)
        )
        _, plus_seconds = timed(lambda: match_plus(pattern, data))
        rows["VF2 states"].append(iso_result.num_matched_subgraphs)
        rows["VF2 seconds"].append(iso_seconds)
        rows["Match+ seconds"].append(plus_seconds)

    emit(
        "vf2_blowup",
        render_table(
            "VF2 vs Match+ in the low-label-diversity (exponential) regime",
            "|Vq|",
            sizes,
            rows,
        ),
    )
    # The paper's shape: VF2's cost explodes with |Vq| while Match+ stays
    # flat — by the largest pattern VF2 must be well behind.
    assert rows["VF2 seconds"][-1] > rows["Match+ seconds"][-1]

    pattern = sample_pattern_from_data(data, 5, seed=806)
    benchmark(lambda: match_plus(pattern, data))
