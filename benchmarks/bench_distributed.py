"""Section 4.3: distributed evaluation — traffic vs site count and
partitioner, plus the locality bound.

No figure in the paper plots this (the distributed algorithm is presented
analytically), but DESIGN.md commits to measuring the claimed bound:
data shipment <= total size of boundary-crossing balls, for any
partitioning.
"""

import pytest

from repro.core.strong import match
from repro.datasets import generate_graph
from repro.datasets.patterns import sample_pattern_from_data
from repro.distributed import (
    bfs_partition,
    crossing_ball_bound,
    distributed_match,
    hash_partition,
)
from repro.experiments import render_table
from benchmarks.conftest import emit


def test_distributed_traffic(benchmark, scale):
    data = generate_graph(600, alpha=1.15, num_labels=scale["labels"], seed=37)
    pattern = sample_pattern_from_data(data, 6, seed=501)
    assert pattern is not None
    central = {sg.signature() for sg in match(pattern, data)}

    site_counts = [2, 4, 8]
    rows = {"hash": [], "bfs": [], "bound(hash)": [], "bound(bfs)": []}
    for k in site_counts:
        for name, partitioner in (("hash", hash_partition), ("bfs", bfs_partition)):
            assignment = partitioner(data, k)
            report = distributed_match(pattern, data, assignment, k)
            assert {sg.signature() for sg in report.result} == central
            bound = crossing_ball_bound(data, assignment, pattern.diameter)
            assert report.data_shipment_units <= bound
            rows[name].append(report.data_shipment_units)
            rows[f"bound({name})"].append(bound)

    emit(
        "distributed_traffic",
        render_table(
            "Distributed evaluation: shipped data units vs #sites "
            "(bound = total size of boundary-crossing balls)",
            "#sites",
            site_counts,
            rows,
        ),
    )
    # Locality-aware partitioning ships no more than hashing.
    assert sum(rows["bfs"]) <= sum(rows["hash"])

    assignment = bfs_partition(data, 4)
    benchmark(lambda: distributed_match(pattern, data, assignment, 4))
