"""Kernel vs reference engine: wall-clock comparison + equivalence gate.

Runs ``match_plus``, ``match``, ``dual_simulation`` and the distributed
``Cluster.run`` protocol with both execution engines over the Figure-8(g)
synthetic shapes (``generate_graph`` with ``alpha=1.2`` and patterns
sampled from the data), at the scale selected by ``REPRO_BENCH_SCALE``
(``small`` default / ``large``), plus an **incremental** section — an
update+requery workload comparing the delta-maintained warm index
(incremental-kernel) against recompile-per-query (recompile-kernel) and
the reference engine, gated at >= 2x over full recompilation at small
scale with zero full recompiles asserted — and emits

* a rendered table under ``benchmarks/results/bench_kernel.txt``;
* machine-readable ``benchmarks/results/BENCH_kernel.json`` — the seed of
  the repo's performance trajectory (one file per run; CI and future PRs
  diff the numbers).

Every timed pair is also an equivalence check: the kernel result set must
be byte-identical (canonical node/edge/relation form) to the reference
result set, and the run fails otherwise.  At small scale the aggregate
``match_plus`` speedup is asserted to stay above 2x — the bar the kernel
was built to clear.

Set ``REPRO_KERNEL_BENCH_SMOKE=1`` to shrink the sweep to one small size
(CI smoke mode; no speedup assertion, equivalence still enforced).
"""

from __future__ import annotations

import os
from typing import Dict, List

from repro.core.matchplus import match_plus
from repro.core.dualsim import dual_simulation
from repro.core.kernel import dual_simulation_kernel, get_index
from repro.core.npkernel import dual_simulation_numpy, get_array_view
from repro.core.strong import match
from repro.experiments.performance import (
    random_insertion_stream,
    time_update_workload,
)
from repro.datasets import generate_graph
from repro.datasets.patterns import sample_pattern_from_data
from repro.distributed import Cluster, bfs_partition
from benchmarks.conftest import best_of, emit, emit_result

PATTERN_SIZE = 10
PATTERN_REPEATS = 3
TIMING_REPS = 3
MATCH_PLUS_SMALL_SCALE_BAR = 2.0
NUMPY_MATCH_PLUS_SMALL_SCALE_BAR = 1.5
NUMPY_BENCH_PATTERN_SIZE = 6
NUMPY_BENCH_LABELS = 4
DISTRIBUTED_SMALL_SCALE_BAR = 1.5
DISTRIBUTED_SITES = 4
DISTRIBUTED_PATTERN_SIZE = 6
INCREMENTAL_SMALL_SCALE_BAR = 2.0
INCREMENTAL_PATTERN_SIZE = 6
#: Disabled-path tracing overhead budget: the no-op spans left on the
#: hot paths may cost at most this fraction of a match_plus query.
OBS_DISABLED_OVERHEAD_BAR = 0.02
OBS_NOOP_TIMING_CALLS = 200_000


def _canonical(result) -> frozenset:
    return frozenset(
        (sg.signature(), sg.relation.pair_set()) for sg in result
    )


def _relation_canonical(relation) -> frozenset:
    return relation.pair_set()


def test_kernel_vs_python_engines(scale):
    smoke = os.environ.get("REPRO_KERNEL_BENCH_SMOKE") == "1"
    sweep = [scale["perf_v_sweep"][0]] if smoke else scale["perf_v_sweep"]
    # Plain Match is cubic-ish per ball over every center; keep its timing
    # to the smaller sizes so the benchmark stays minutes, not hours.
    match_sizes = set(sweep[: 1 if smoke else 2])

    engines = ("python", "kernel", "numpy")
    rows: List[Dict] = []
    totals = {key: {engine: 0.0 for engine in engines}
              for key in ("match_plus", "match", "dual")}
    for n in sweep:
        data = generate_graph(
            int(n), alpha=1.2, num_labels=scale["labels"], seed=29
        )
        get_array_view(get_index(data))  # compile + array view once;
        # the row times show amortized cost for all three engines.
        row = {"n": int(n), "patterns": 0}
        times = {key: {engine: 0.0 for engine in engines} for key in totals}
        for repeat in range(PATTERN_REPEATS):
            pattern = sample_pattern_from_data(
                data, PATTERN_SIZE, seed=441 + repeat
            )
            if pattern is None:
                continue
            row["patterns"] += 1

            reference = _canonical(match_plus(pattern, data, engine="python"))
            for engine in ("kernel", "numpy"):
                assert _canonical(
                    match_plus(pattern, data, engine=engine)
                ) == reference, (
                    f"match_plus/{engine} diverged at |V|={n}, "
                    f"repeat={repeat}"
                )
            for engine in engines:
                times["match_plus"][engine] += best_of(
                    lambda engine=engine: match_plus(
                        pattern, data, engine=engine
                    ),
                    TIMING_REPS,
                )

            dual_reference = _relation_canonical(
                dual_simulation(pattern, data)
            )
            assert _relation_canonical(
                dual_simulation_kernel(pattern, data)
            ) == dual_reference
            assert _relation_canonical(
                dual_simulation_numpy(pattern, data)
            ) == dual_reference
            dual_fns = {
                "python": dual_simulation,
                "kernel": dual_simulation_kernel,
                "numpy": dual_simulation_numpy,
            }
            for engine in engines:
                times["dual"][engine] += best_of(
                    lambda engine=engine: dual_fns[engine](pattern, data),
                    TIMING_REPS,
                )

            if n in match_sizes:
                match_reference = _canonical(
                    match(pattern, data, engine="python")
                )
                for engine in ("kernel", "numpy"):
                    assert _canonical(
                        match(pattern, data, engine=engine)
                    ) == match_reference, (
                        f"match/{engine} diverged at |V|={n}, "
                        f"repeat={repeat}"
                    )
                for engine in engines:
                    times["match"][engine] += best_of(
                        lambda engine=engine: match(
                            pattern, data, engine=engine
                        ),
                        1,
                    )

        for key in totals:
            python_s = times[key]["python"]
            kernel_s = times[key]["kernel"]
            numpy_s = times[key]["numpy"]
            for engine in engines:
                totals[key][engine] += times[key][engine]
            row[key] = {
                "python_s": round(python_s, 6),
                "kernel_s": round(kernel_s, 6),
                "numpy_s": round(numpy_s, 6),
                "speedup": round(python_s / kernel_s, 3) if kernel_s else None,
                "numpy_speedup": (
                    round(python_s / numpy_s, 3) if numpy_s else None
                ),
            }
        rows.append(row)

    def speedup(key: str, engine: str = "kernel"):
        engine_s = totals[key][engine]
        return round(totals[key]["python"] / engine_s, 3) if engine_s else None

    # ------------------------------------------------------------------
    # Distributed protocol: python vs kernel cluster on one small
    # synthetic workload (the per-site CSR substrate of PR 2).  The
    # equivalence gate covers the full protocol observation: result set,
    # per-site partial counts and bus accounting.
    # ------------------------------------------------------------------
    dist_n = 300 if smoke else 600
    dist_data = generate_graph(
        dist_n, alpha=1.15, num_labels=scale["labels"], seed=37
    )
    dist_pattern = sample_pattern_from_data(
        dist_data, DISTRIBUTED_PATTERN_SIZE, seed=501
    )
    assert dist_pattern is not None
    assignment = bfs_partition(dist_data, DISTRIBUTED_SITES)
    clusters = {
        engine: Cluster(dist_data, assignment, DISTRIBUTED_SITES, engine=engine)
        for engine in ("python", "kernel")
    }
    reports = {
        engine: cluster.run(dist_pattern)
        for engine, cluster in clusters.items()
    }
    assert _canonical(reports["kernel"].result) == _canonical(
        reports["python"].result
    ), "distributed results diverged between engines"
    assert (
        reports["kernel"].per_site_subgraphs
        == reports["python"].per_site_subgraphs
    )
    assert (
        reports["kernel"].bus.units_by_kind()
        == reports["python"].bus.units_by_kind()
    )
    # Snapshot per-query accounting NOW: data_shipment_units is a live
    # view over the cluster's bus, which keeps accumulating across the
    # timing runs below.
    dist_data_units = reports["kernel"].data_shipment_units
    dist_per_site = dict(reports["kernel"].per_site_subgraphs)
    dist_times = {
        engine: best_of(
            lambda engine=engine: clusters[engine].run(dist_pattern),
            TIMING_REPS,
        )
        for engine in ("python", "kernel")
    }
    dist_speedup = (
        round(dist_times["python"] / dist_times["kernel"], 3)
        if dist_times["kernel"]
        else None
    )
    distributed_section = {
        "workload": (
            f"bfs-partitioned synthetic graph, |V|={dist_n}, "
            f"{DISTRIBUTED_SITES} sites, |Vq|={DISTRIBUTED_PATTERN_SIZE}"
        ),
        "n": dist_n,
        "sites": DISTRIBUTED_SITES,
        "pattern_size": DISTRIBUTED_PATTERN_SIZE,
        "python_s": round(dist_times["python"], 6),
        "kernel_s": round(dist_times["kernel"], 6),
        "speedup": dist_speedup,
        "data_units": dist_data_units,
        "per_site_subgraphs": {
            str(site): count for site, count in sorted(dist_per_site.items())
        },
    }

    # ------------------------------------------------------------------
    # Incremental index maintenance: update + requery workload.  One
    # stream of single-edge insertions, re-running match_plus after each:
    #   * incremental-kernel — maintenance on, ONE warm index maintained
    #     through the GraphDelta pipeline (zero full recompiles);
    #   * recompile-kernel  — maintenance off, every query recompiles the
    #     index from scratch (the pre-pipeline behavior);
    #   * reference         — engine="python", no index at all.
    # ------------------------------------------------------------------
    inc_n = 600 if smoke else 2500
    inc_updates = 10 if smoke else 40
    inc_master = generate_graph(
        inc_n, alpha=1.15, num_labels=scale["labels"], seed=71
    )
    inc_pattern = sample_pattern_from_data(
        inc_master, INCREMENTAL_PATTERN_SIZE, seed=611
    )
    assert inc_pattern is not None
    inc_run = time_update_workload(
        inc_pattern,
        inc_master,
        random_insertion_stream(inc_master, inc_updates, seed=5),
    )
    assert inc_run.results_identical(), (
        "update-workload results diverged between maintenance modes/engines"
    )
    assert inc_run.full_compiles == 0, (
        f"incremental maintenance recompiled {inc_run.full_compiles} "
        "time(s) on a pure-insertion workload"
    )
    inc_s = inc_run.seconds["incremental-kernel"]
    rec_s = inc_run.seconds["recompile-kernel"]
    ref_s = inc_run.seconds["reference"]
    inc_speedup = round(rec_s / inc_s, 3) if inc_s else None
    incremental_section = {
        "workload": (
            f"{inc_updates} single-edge insertions + match_plus requery "
            f"each, synthetic |V|={inc_n}, |Vq|={INCREMENTAL_PATTERN_SIZE}"
        ),
        "n": inc_n,
        "updates": inc_updates,
        "pattern_size": INCREMENTAL_PATTERN_SIZE,
        "incremental_kernel_s": round(inc_s, 6),
        "recompile_kernel_s": round(rec_s, 6),
        "reference_s": round(ref_s, 6),
        "speedup_vs_recompile": inc_speedup,
        "speedup_vs_reference": round(ref_s / inc_s, 3) if inc_s else None,
        "amortized_update_ms": {
            strategy: round(amortized * 1e3, 4)
            for strategy, amortized in inc_run.amortized_seconds.items()
        },
        "incremental_full_compiles_after_priming": inc_run.full_compiles,
    }

    # ------------------------------------------------------------------
    # numpy vs kernel head-to-head: the batched array engine against the
    # compiled-kernel engine on the ``Match+`` workload it was built
    # for — a moderately labeled synthetic graph where the dual filter
    # leaves real per-ball work.  (On the label-sparse sweep above the
    # per-query cost is ~1 ms and the kernel's low fixed overhead wins;
    # ROADMAP.md records the regime guidance.)
    # ------------------------------------------------------------------
    np_n = 600 if smoke else 2500
    np_data = generate_graph(
        np_n, alpha=1.2, num_labels=NUMPY_BENCH_LABELS, seed=29
    )
    np_pattern = sample_pattern_from_data(
        np_data, NUMPY_BENCH_PATTERN_SIZE, seed=441
    )
    assert np_pattern is not None
    get_array_view(get_index(np_data))
    assert _canonical(
        match_plus(np_pattern, np_data, engine="numpy")
    ) == _canonical(
        match_plus(np_pattern, np_data, engine="kernel")
    ), "numpy-vs-kernel section results diverged"
    np_times = {
        engine: best_of(
            lambda engine=engine: match_plus(
                np_pattern, np_data, engine=engine
            ),
            TIMING_REPS,
        )
        for engine in ("kernel", "numpy")
    }
    np_speedup = (
        round(np_times["kernel"] / np_times["numpy"], 3)
        if np_times["numpy"]
        else None
    )
    numpy_section = {
        "workload": (
            f"match_plus, synthetic |V|={np_n}, alpha=1.2, "
            f"{NUMPY_BENCH_LABELS} labels, |Vq|={NUMPY_BENCH_PATTERN_SIZE}"
        ),
        "n": np_n,
        "pattern_size": NUMPY_BENCH_PATTERN_SIZE,
        "num_labels": NUMPY_BENCH_LABELS,
        "kernel_s": round(np_times["kernel"], 6),
        "numpy_s": round(np_times["numpy"], 6),
        "speedup_vs_kernel": np_speedup,
        "note": (
            "smoke scale: |V|=600, no speedup gate (the batched engine's "
            "advantage needs the full |V|=2500 workload)"
            if smoke
            else f"gated at >= {NUMPY_MATCH_PLUS_SMALL_SCALE_BAR}x at "
            "small scale"
        ),
    }

    payload = {
        "benchmark": "bench_kernel",
        "workload": "fig8g synthetic shapes (alpha=1.2, sampled patterns)",
        "scale": os.environ.get("REPRO_BENCH_SCALE", "small"),
        "smoke": smoke,
        "pattern_size": PATTERN_SIZE,
        "timing": f"best of {TIMING_REPS}, summed over sampled patterns",
        "rows": rows,
        "totals": {
            key: {
                "python_s": round(totals[key]["python"], 6),
                "kernel_s": round(totals[key]["kernel"], 6),
                "numpy_s": round(totals[key]["numpy"], 6),
                "speedup": speedup(key),
                "numpy_speedup": speedup(key, "numpy"),
            }
            for key in totals
        },
        "distributed": distributed_section,
        "incremental": incremental_section,
        "numpy_vs_kernel": numpy_section,
        "equivalence": "all result sets identical across engines",
    }
    emit_result("BENCH_kernel", payload)

    lines = ["Compiled engines vs reference engine (seconds, lower is better)",
             f"{'|V|':>8} {'algorithm':>11} {'python':>10} {'kernel':>10} "
             f"{'numpy':>10} {'speedup':>8}"]
    for row in rows:
        for key in ("match_plus", "match", "dual"):
            if row[key]["kernel_s"]:
                lines.append(
                    f"{row['n']:>8} {key:>11} "
                    f"{row[key]['python_s']:>10.4f} "
                    f"{row[key]['kernel_s']:>10.4f} "
                    f"{row[key]['numpy_s']:>10.4f} "
                    f"{row[key]['speedup']:>8.2f}"
                )
    for key in ("match_plus", "match", "dual"):
        if totals[key]["kernel"]:
            lines.append(
                f"{'TOTAL':>8} {key:>11} "
                f"{totals[key]['python']:>10.4f} "
                f"{totals[key]['kernel']:>10.4f} "
                f"{totals[key]['numpy']:>10.4f} "
                f"{speedup(key):>8.2f}"
            )
    if dist_speedup is not None:
        lines.append(
            f"{dist_n:>8} {'distributed':>11} "
            f"{dist_times['python']:>10.4f} "
            f"{dist_times['kernel']:>10.4f} "
            f"{dist_speedup:>8.2f}"
        )
    lines.append(
        f"incremental ({inc_updates} updates + requery, |V|={inc_n}): "
        f"warm={inc_s:.4f}s recompile={rec_s:.4f}s reference={ref_s:.4f}s "
        f"-> {inc_speedup:.2f}x vs recompile, "
        f"{inc_run.full_compiles} full recompiles"
    )
    lines.append(
        f"numpy vs kernel (match_plus, |V|={np_n}, "
        f"{NUMPY_BENCH_LABELS} labels): kernel={np_times['kernel']:.4f}s "
        f"numpy={np_times['numpy']:.4f}s -> {np_speedup:.2f}x"
    )
    emit("bench_kernel", "\n".join(lines))

    if not smoke and payload["scale"] == "small":
        assert speedup("match_plus") >= MATCH_PLUS_SMALL_SCALE_BAR, (
            f"kernel match_plus speedup {speedup('match_plus')} fell below "
            f"{MATCH_PLUS_SMALL_SCALE_BAR}x on the small synthetic workload"
        )
        assert dist_speedup >= DISTRIBUTED_SMALL_SCALE_BAR, (
            f"kernel distributed speedup {dist_speedup} fell below "
            f"{DISTRIBUTED_SMALL_SCALE_BAR}x on the small synthetic workload"
        )
        assert inc_speedup >= INCREMENTAL_SMALL_SCALE_BAR, (
            f"incremental index maintenance speedup {inc_speedup} fell "
            f"below {INCREMENTAL_SMALL_SCALE_BAR}x over recompile-per-query "
            "on the update workload"
        )
        assert np_speedup >= NUMPY_MATCH_PLUS_SMALL_SCALE_BAR, (
            f"numpy match_plus speedup over kernel {np_speedup} fell "
            f"below {NUMPY_MATCH_PLUS_SMALL_SCALE_BAR}x on the "
            "numpy-vs-kernel workload"
        )


def test_observability_disabled_overhead(scale):
    """The tracing instrumentation must be free when tracing is off.

    The hot paths carry ``span()`` calls that compile to a shared no-op
    when tracing is disabled (the default).  This gate bounds what those
    call sites can cost: (spans per query, counted from a real traced
    run) x (measured per-call cost of a disabled span) must stay under
    ``OBS_DISABLED_OVERHEAD_BAR`` of the disabled-path query time.  The
    construction keeps the bound honest as instrumentation accretes —
    adding a span inside the per-ball loop would multiply the span count
    and trip it.  Also asserts tracing does not perturb results.
    """
    import time as _time

    from repro.obs import collector, set_tracing, tracing_enabled
    from repro.obs.trace import span as obs_span

    smoke = os.environ.get("REPRO_KERNEL_BENCH_SMOKE") == "1"
    n = 300 if smoke else 1000
    data = generate_graph(n, alpha=1.2, num_labels=scale["labels"], seed=53)
    pattern = sample_pattern_from_data(data, PATTERN_SIZE, seed=701)
    assert pattern is not None
    get_array_view(get_index(data))  # compile + array view once

    assert not tracing_enabled()
    baseline = _canonical(match_plus(pattern, data, engine="kernel"))
    disabled_s = best_of(
        lambda: match_plus(pattern, data, engine="kernel"), TIMING_REPS
    )

    collector().clear()
    previous = set_tracing(True)
    try:
        traced = _canonical(match_plus(pattern, data, engine="kernel"))
        root = collector().roots()[-1]
    finally:
        set_tracing(previous)
    assert traced == baseline, "tracing perturbed the match_plus result"
    assert root.name == "kernel.match_plus"
    spans_per_query = root.span_count()

    start = _time.perf_counter()
    for _ in range(OBS_NOOP_TIMING_CALLS):
        with obs_span("bench.noop"):
            pass
    noop_s = (_time.perf_counter() - start) / OBS_NOOP_TIMING_CALLS

    overhead_s = spans_per_query * noop_s
    ratio = overhead_s / disabled_s if disabled_s else 0.0
    emit_result("BENCH_obs", {
        "benchmark": "bench_obs",
        "workload": (
            f"match_plus, synthetic |V|={n}, alpha=1.2, "
            f"{scale['labels']} labels, |Vq|={PATTERN_SIZE}"
        ),
        "smoke": smoke,
        "disabled_query_s": round(disabled_s, 6),
        "spans_per_query": spans_per_query,
        "noop_span_ns": round(noop_s * 1e9, 2),
        "disabled_overhead_ratio": round(ratio, 6),
        "bar": OBS_DISABLED_OVERHEAD_BAR,
        "equivalence": "traced result identical to untraced",
    })
    print(
        f"\nobservability: {spans_per_query} spans/query, "
        f"noop span {noop_s * 1e9:.0f} ns -> disabled overhead "
        f"{ratio:.4%} of {disabled_s * 1e3:.2f} ms (bar "
        f"{OBS_DISABLED_OVERHEAD_BAR:.0%})"
    )
    assert ratio <= OBS_DISABLED_OVERHEAD_BAR, (
        f"disabled-path tracing overhead {ratio:.4%} exceeds "
        f"{OBS_DISABLED_OVERHEAD_BAR:.0%} of a match_plus query "
        f"({spans_per_query} spans x {noop_s * 1e9:.0f} ns)"
    )
