"""Figures 7(i)-(k): number of matched subgraphs vs |Vq|.

Paper shape: Match returns consistently fewer matched subgraphs than VF2
(~25-38% of VF2's count), while TALE and MCS return more than VF2; counts
fall as patterns grow.  Sim is omitted (it returns one relation).
"""

import pytest

from repro.experiments import render_subgraph_count_figure
from benchmarks.conftest import emit


@pytest.mark.parametrize("dataset", ["Amazon", "YouTube", "Synthetic"])
def test_fig7_subgraphs_vs_vq(benchmark, vq_sweeps, dataset):
    sweep = vq_sweeps[dataset]
    letter = {"Amazon": "i", "YouTube": "j", "Synthetic": "k"}[dataset]
    emit(
        f"fig7{letter}_subgraphs_vq_{dataset.lower()}",
        render_subgraph_count_figure(
            f"Figure 7({letter}): # matched subgraphs vs |Vq| ({dataset})",
            sweep,
        ),
    )
    counts = sweep.subgraph_count_series()
    total_match = sum(c for c in counts["Match"] if c is not None)
    total_vf2 = sum(c for c in counts["VF2"] if c is not None)
    assert total_match <= max(total_vf2, 1) or total_vf2 == 0, (
        "Match must not return more matched subgraphs than VF2 overall"
    )

    benchmark(lambda: sweep.subgraph_count_series())
