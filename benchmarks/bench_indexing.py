"""Future-work bench: neighborhood-label indexing.

Measures the index's center-pruning power and the end-to-end effect on
plain ``Match`` (the regime the paper's future work targets: one graph,
many queries).
"""

import pytest

from repro.core.indexing import IndexedMatcher, NeighborhoodLabelIndex
from repro.core.strong import match
from repro.datasets import generate_graph
from repro.datasets.patterns import sample_pattern_from_data
from repro.experiments import render_table
from repro.utils.timer import timed
from benchmarks.conftest import emit


def test_index_pruning_and_speedup(benchmark, scale):
    data = generate_graph(1200, alpha=1.15, num_labels=scale["labels"], seed=59)
    patterns = [
        sample_pattern_from_data(data, size, seed=911 + size)
        for size in (4, 6, 8)
    ]
    patterns = [p for p in patterns if p is not None and p.diameter <= 6]
    assert patterns

    index, build_seconds = timed(lambda: NeighborhoodLabelIndex(data, 6))
    matcher = IndexedMatcher(data, max_radius=6)
    matcher.index = index

    rows = {"pruning ratio": [], "Match (s)": [], "indexed Match (s)": []}
    sizes = []
    for pattern in patterns:
        sizes.append(pattern.num_nodes)
        rows["pruning ratio"].append(index.pruning_ratio(pattern))
        plain_result, plain_seconds = timed(lambda: match(pattern, data))
        indexed_result, indexed_seconds = timed(lambda: matcher.match(pattern))
        assert {sg.signature() for sg in plain_result} == {
            sg.signature() for sg in indexed_result
        }
        rows["Match (s)"].append(plain_seconds)
        rows["indexed Match (s)"].append(indexed_seconds)

    emit(
        "indexing",
        render_table(
            f"Neighborhood-label index (build {build_seconds:.3f}s, "
            "amortized over queries)",
            "|Vq|",
            sizes,
            rows,
        ),
    )
    # Indexing must never slow the query side down materially.
    assert sum(rows["indexed Match (s)"]) <= 1.5 * sum(rows["Match (s)"])

    pattern = patterns[0]
    benchmark(lambda: matcher.match(pattern))
