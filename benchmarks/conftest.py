"""Shared configuration for the benchmark harness.

Every table and figure of the paper's Section 5 maps to one module here
(see DESIGN.md §3).  Scales are controlled by ``REPRO_BENCH_SCALE``:

* ``small``  (default) — minutes on a laptop; all shapes hold;
* ``large``  — closer to the paper's regime; tens of minutes.

Each module renders its table/figure with the same rows/series the paper
reports, prints it, and appends it to ``benchmarks/results/<name>.txt``
so the rendered artifacts survive pytest's output capture.
"""

from __future__ import annotations

import os
from pathlib import Path
from typing import Callable, Dict, Optional, Sequence

import pytest

from repro.datasets import generate_amazon, generate_graph, generate_youtube
from repro.experiments import sweep_pattern_sizes, sweep_data_sizes
from repro.utils.results import RESULT_SCHEMA_VERSION, write_result

RESULTS_DIR = Path(__file__).parent / "results"

_SCALES = {
    "small": {
        "amazon_nodes": 1500,
        "youtube_nodes": 1200,
        "synthetic_nodes": 2500,
        "labels": 20,
        "vq_sweep": [2, 4, 6, 8, 10, 12],
        "amazon_v_sweep": [300, 600, 900, 1200, 1500],
        "youtube_v_sweep": [200, 400, 600, 800, 1000],
        "synthetic_v_sweep": [500, 1000, 1500, 2000, 2500],
        "perf_synthetic_nodes": 4000,
        "perf_v_sweep": [1000, 2000, 3000, 4000],
        "alpha_sweep": [1.05, 1.10, 1.15, 1.20, 1.25],
        "vf2_max_states": 400_000,
    },
    "large": {
        "amazon_nodes": 8000,
        "youtube_nodes": 5000,
        "synthetic_nodes": 20000,
        "labels": 50,
        "vq_sweep": [2, 4, 6, 8, 10, 12, 14, 16, 18, 20],
        "amazon_v_sweep": [1000, 2000, 4000, 6000, 8000],
        "youtube_v_sweep": [1000, 2000, 3000, 4000, 5000],
        "synthetic_v_sweep": [4000, 8000, 12000, 16000, 20000],
        "perf_synthetic_nodes": 20000,
        "perf_v_sweep": [5000, 10000, 15000, 20000],
        "alpha_sweep": [1.05, 1.10, 1.15, 1.20, 1.25, 1.30, 1.35],
        "vf2_max_states": 2_000_000,
    },
}


@pytest.fixture(scope="session")
def scale() -> Dict:
    """The active scale profile."""
    name = os.environ.get("REPRO_BENCH_SCALE", "small")
    if name not in _SCALES:
        raise ValueError(f"unknown REPRO_BENCH_SCALE {name!r}")
    return _SCALES[name]


def best_of(fn: Callable[[], object], reps: int = 3) -> float:
    """Minimum wall-clock seconds over ``reps`` runs of ``fn``.

    The one timing loop shared by every benchmark module, so a change
    to the measurement protocol (warm-up, clock source) lands once.
    """
    import time

    best = float("inf")
    for _ in range(reps):
        start = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - start)
    return best


def emit(name: str, text: str, payload: Optional[Dict] = None) -> None:
    """Print a rendered table and persist it under benchmarks/results/.

    Persists twice: the rendered text as ``<name>.txt`` (the historical
    artifact) and a machine-readable ``BENCH_<name>.json`` in the shared
    :func:`repro.utils.results.result_envelope` — so every legacy
    ``bench_fig*`` / ``bench_table*`` table is diffable by the scenario
    dashboard without per-file parsing rules.  ``payload`` adds
    structured fields next to the rendered text when a module has them.
    """
    print()
    print(text)
    RESULTS_DIR.mkdir(exist_ok=True)
    (RESULTS_DIR / f"{name}.txt").write_text(text + "\n", encoding="utf-8")
    data: Dict = {"benchmark": name, "rendered": text}
    if payload:
        data.update(payload)
    write_result(RESULTS_DIR / f"BENCH_{name}.json", data)


def emit_result(name: str, payload: Dict) -> Path:
    """Write one ``BENCH_*.json`` result with the shared envelope.

    Thin wrapper over :func:`repro.utils.results.write_result` (where
    the envelope — ``schema_version``, ``host`` block, ``generated_at``
    — now lives, shared with ``repro scenarios run``); kept so the
    benchmark modules keep their one-name emission call.
    """
    return write_result(RESULTS_DIR / f"{name}.json", payload)


# ----------------------------------------------------------------------
# Session-scoped datasets (generated once per benchmark session)
# ----------------------------------------------------------------------
@pytest.fixture(scope="session")
def amazon_graph(scale):
    return generate_amazon(scale["amazon_nodes"], num_labels=scale["labels"], seed=11)


@pytest.fixture(scope="session")
def youtube_graph(scale):
    return generate_youtube(scale["youtube_nodes"], num_labels=15, seed=13)


@pytest.fixture(scope="session")
def synthetic_graph(scale):
    return generate_graph(
        scale["synthetic_nodes"], alpha=1.2, num_labels=scale["labels"], seed=17
    )


# ----------------------------------------------------------------------
# Session-scoped quality sweeps, shared by the closeness / subgraph-count
# / Table 3 modules so each sweep runs once.
# ----------------------------------------------------------------------
@pytest.fixture(scope="session")
def vq_sweeps(scale, amazon_graph, youtube_graph, synthetic_graph):
    """Vary |Vq| on the three datasets (Fig. 7(c)-(e) and 7(i)-(k))."""
    kwargs = {"vf2_max_states": scale["vf2_max_states"]}
    return {
        "Amazon": sweep_pattern_sizes(amazon_graph, scale["vq_sweep"], seed=101, **kwargs),
        "YouTube": sweep_pattern_sizes(youtube_graph, scale["vq_sweep"], seed=103, **kwargs),
        "Synthetic": sweep_pattern_sizes(synthetic_graph, scale["vq_sweep"], seed=107, **kwargs),
    }


@pytest.fixture(scope="session")
def v_sweeps(scale):
    """Vary |V| on the three datasets (Fig. 7(f)-(h) and 7(l)-(n))."""
    kwargs = {"vf2_max_states": scale["vf2_max_states"]}
    labels = scale["labels"]
    return {
        "Amazon": sweep_data_sizes(
            lambda n: generate_amazon(n, num_labels=labels, seed=11),
            scale["amazon_v_sweep"], pattern_size=10, seed=201, **kwargs,
        ),
        "YouTube": sweep_data_sizes(
            lambda n: generate_youtube(n, num_labels=15, seed=13),
            scale["youtube_v_sweep"], pattern_size=10, seed=203, **kwargs,
        ),
        "Synthetic": sweep_data_sizes(
            lambda n: generate_graph(n, alpha=1.2, num_labels=labels, seed=17),
            scale["synthetic_v_sweep"], pattern_size=10, seed=207, **kwargs,
        ),
    }
