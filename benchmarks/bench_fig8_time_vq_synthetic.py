"""Figure 8(c): running time vs |Vq| on the large synthetic graph (no VF2).

Paper shape: Sim < Match+ < Match; all three scale well with |Vq|.
"""

import pytest

from repro.datasets import generate_graph
from repro.datasets.patterns import sample_pattern_from_data
from repro.experiments import render_timing_figure, sweep_timing
from benchmarks.conftest import emit


def test_fig8c_time_vs_vq_synthetic(benchmark, scale):
    data = generate_graph(
        scale["perf_synthetic_nodes"], alpha=1.2, num_labels=scale["labels"], seed=19
    )

    def pair_for(vq, repeat):
        pattern = sample_pattern_from_data(data, int(vq), seed=411 + repeat)
        return (pattern, data) if pattern else None

    sweep = sweep_timing("|Vq|", scale["vq_sweep"], pair_for, include_vf2=False)
    emit(
        "fig8c_time_vq_synthetic",
        render_timing_figure("Figure 8(c): time (s) vs |Vq| (synthetic)", sweep),
    )
    series = sweep.series()
    sim_mean = sum(v for v in series["Sim"] if v is not None)
    match_mean = sum(v for v in series["Match"] if v is not None)
    assert sim_mean <= match_mean
    ratios = sweep.speedup_match_plus()
    if ratios:
        assert sum(ratios) / len(ratios) <= 1.0

    pattern, _ = pair_for(scale["vq_sweep"][2], 0)
    from repro.core.matchplus import match_plus

    benchmark(lambda: match_plus(pattern, data))
