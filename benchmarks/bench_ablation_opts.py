"""Ablation: each Match+ optimization toggled independently.

The paper reports Match+ at ~2/3 of Match overall; this bench attributes
the saving across query minimization, dual-simulation filtering and
connectivity pruning (DESIGN.md §5).
"""

import pytest

from repro.core.matchplus import MatchPlusOptions, match_plus
from repro.core.strong import match
from repro.datasets import generate_graph
from repro.datasets.patterns import sample_pattern_from_data
from repro.experiments import render_table
from repro.utils.timer import timed
from benchmarks.conftest import emit

CONFIGS = {
    "Match (none)": None,
    "minQ only": MatchPlusOptions(True, False, False, False),
    "centers only": MatchPlusOptions(False, False, False, True),
    "pruning only": MatchPlusOptions(False, False, True, True),
    "filter only": MatchPlusOptions(False, True, False, False),
    "Match+ (all)": MatchPlusOptions(True, True, True, True),
}


def test_ablation_optimizations(benchmark, scale):
    data = generate_graph(1200, alpha=1.2, num_labels=scale["labels"], seed=41)
    pattern = sample_pattern_from_data(data, 8, seed=601)
    assert pattern is not None

    reference = {sg.signature() for sg in match(pattern, data)}
    times = {}
    for name, options in CONFIGS.items():
        if options is None:
            result, seconds = timed(lambda: match(pattern, data))
            signatures = {sg.signature() for sg in result}
        else:
            result, seconds = timed(lambda: match_plus(pattern, data, options))
            signatures = {sg.signature() for sg in result}
        assert signatures == reference, f"{name} changed the result"
        times[name] = seconds

    emit(
        "ablation_optimizations",
        render_table(
            "Ablation: Match+ optimizations (same output, different cost)",
            "config",
            list(times),
            {"seconds": list(times.values())},
        ),
    )
    # The full Match+ must beat plain Match.
    assert times["Match+ (all)"] <= times["Match (none)"]

    benchmark(lambda: match_plus(pattern, data))
