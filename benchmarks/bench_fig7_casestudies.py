"""Figures 7(a)/(b): the real-life case studies QA (Amazon) and QY (YouTube).

The paper manually checks that Match finds sensible matches that VF2
misses and filters the nonsense Sim returns.  Here: run QA/QY against the
surrogate networks, report the per-algorithm matched-node counts for the
focal pattern node, and assert the Proposition 1 sandwich
(VF2 ⊆ Match ⊆ Sim on matched nodes of the focal node).
"""

import pytest

from repro.baselines.vf2 import vf2
from repro.core.matchplus import match_plus
from repro.core.minimize import minimize_pattern
from repro.core.simulation import graph_simulation
from repro.datasets.paper_figures import pattern_qa, pattern_qy
from repro.experiments import render_table
from benchmarks.conftest import emit


def _case_study(benchmark, data, pattern, focal, name, scale):
    sim_rel = graph_simulation(pattern, data)
    strong = match_plus(pattern, data)
    iso = vf2(pattern, data, max_states=scale["vf2_max_states"])

    sim_focal = sim_rel.matches_of(focal) if sim_rel.is_total() else frozenset()
    # Match+ works on the minimized pattern; map the focal node through
    # its equivalence class.
    minimized = minimize_pattern(pattern)
    focal_class = minimized.node_to_class[focal]
    strong_focal = strong.all_matches_of(focal_class)
    iso_focal = {emb[focal] for emb in iso.embeddings}

    emit(
        f"fig7ab_casestudy_{name.lower()}",
        render_table(
            f"Figure 7(a/b) case study {name}: matches for focal node {focal!r}",
            "algorithm",
            ["VF2", "Match", "Sim"],
            {"#focal matches": [len(iso_focal), len(strong_focal), len(sim_focal)],
             "#matched subgraphs": [iso.num_matched_subgraphs, len(strong), 1]},
        ),
    )
    # Proposition 1 sandwich on the focal node.
    assert iso_focal <= strong_focal <= sim_focal
    benchmark(lambda: match_plus(pattern, data))


def test_fig7a_amazon_case_study(benchmark, amazon_graph, scale):
    _case_study(benchmark, amazon_graph, pattern_qa(), "PF", "QA", scale)


def test_fig7b_youtube_case_study(benchmark, youtube_graph, scale):
    _case_study(benchmark, youtube_graph, pattern_qy(), "E", "QY", scale)
