"""Table 3: sizes of matched subgraphs (Match) vs the single Sim relation.

Paper: all Match subgraphs have < 50 nodes and over 80% have < 30 nodes,
while Sim returns one relation with hundreds of nodes.  We assert both
shapes on the largest quality datasets and print the same histogram rows.
"""

import pytest

from repro.core.matchplus import match_plus
from repro.core.simulation import graph_simulation
from repro.datasets.patterns import sample_pattern_from_data
from repro.experiments import render_table, render_table3, size_histogram
from benchmarks.conftest import emit


def test_table3_match_subgraph_sizes(benchmark, amazon_graph, youtube_graph, synthetic_graph):
    sizes_by_dataset = {}
    sim_sizes = {}
    for name, data in (
        ("Amazon", amazon_graph),
        ("YouTube", youtube_graph),
        ("Synthetic", synthetic_graph),
    ):
        pattern = sample_pattern_from_data(data, 10, seed=301)
        assert pattern is not None
        result = match_plus(pattern, data)
        sizes_by_dataset[name] = tuple(sg.num_nodes for sg in result)
        relation = graph_simulation(pattern, data)
        sim_sizes[name] = len(relation.data_nodes())

    emit(
        "table3_sizes",
        render_table3("Table 3: sizes of matched subgraphs (Match)", sizes_by_dataset)
        + "\n\n"
        + render_table(
            "Sim single-relation sizes (for contrast)",
            "dataset",
            list(sim_sizes),
            {"#nodes": list(sim_sizes.values())},
        ),
    )

    for name, sizes in sizes_by_dataset.items():
        if not sizes:
            continue
        # Paper shape: matched subgraphs are small; Sim's relation is
        # far larger than the typical Match subgraph.
        hist = size_histogram(sizes)
        small = sum(v for k, v in hist.items() if not k.startswith(">="))
        assert small >= 0.8 * len(sizes), f"{name}: most matches must be small"
        if sim_sizes[name]:
            assert max(sizes) <= max(sim_sizes[name], max(sizes))

    data, pattern = amazon_graph, sample_pattern_from_data(amazon_graph, 10, seed=301)
    benchmark(lambda: match_plus(pattern, data))
