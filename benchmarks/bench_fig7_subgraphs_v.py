"""Figures 7(l)-(n): number of matched subgraphs vs |V| (|Vq| = 10).

Paper shape: counts grow with the data graph; Match stays below VF2.
"""

import pytest

from repro.experiments import render_subgraph_count_figure
from benchmarks.conftest import emit


@pytest.mark.parametrize("dataset", ["Amazon", "YouTube", "Synthetic"])
def test_fig7_subgraphs_vs_v(benchmark, v_sweeps, dataset):
    sweep = v_sweeps[dataset]
    letter = {"Amazon": "l", "YouTube": "m", "Synthetic": "n"}[dataset]
    emit(
        f"fig7{letter}_subgraphs_v_{dataset.lower()}",
        render_subgraph_count_figure(
            f"Figure 7({letter}): # matched subgraphs vs |V| ({dataset})",
            sweep,
        ),
    )
    counts = sweep.subgraph_count_series()
    total_match = sum(c for c in counts["Match"] if c is not None)
    total_vf2 = sum(c for c in counts["VF2"] if c is not None)
    assert total_match <= max(total_vf2, 1) or total_vf2 == 0

    benchmark(lambda: sweep.subgraph_count_series())
