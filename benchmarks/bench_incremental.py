"""Future-work bench: incremental maintenance vs full recomputation.

Section 6 motivates incremental methods by "(frequent) changes to
real-life graphs".  This bench streams edge updates into an
:class:`IncrementalMatcher` and compares against re-running ``Match+``
from scratch after every update — the baseline a system without
incremental support would pay.
"""

import random

import pytest

from repro.core.incremental import IncrementalDualSimulation, IncrementalMatcher
from repro.core.dualsim import dual_simulation
from repro.core.matchplus import match_plus
from repro.datasets import generate_amazon
from repro.datasets.patterns import sample_pattern_from_data
from repro.experiments import render_table
from repro.utils.timer import timed
from benchmarks.conftest import emit


def test_incremental_vs_recompute(benchmark, scale):
    data = generate_amazon(800, num_labels=scale["labels"], seed=53)
    pattern = sample_pattern_from_data(data, 5, seed=901)
    assert pattern is not None
    rng = random.Random(99)
    nodes = list(data.nodes())
    updates = []
    for _ in range(20):
        u, v = rng.choice(nodes), rng.choice(nodes)
        if u != v:
            updates.append((u, v))

    # Incremental path.
    inc_data = data.copy()
    matcher = IncrementalMatcher(pattern, inc_data)
    _, inc_seconds = timed(lambda: _apply_updates_incremental(matcher, updates))

    # Recompute path.
    batch_data = data.copy()
    _, batch_seconds = timed(
        lambda: _apply_updates_recompute(pattern, batch_data, updates)
    )

    # Same final answer.
    final_batch = {sg.signature() for sg in match_plus(pattern, batch_data)}
    final_inc = {sg.signature() for sg in matcher.result()}
    assert final_inc == final_batch

    emit(
        "incremental_updates",
        render_table(
            "Incremental strong simulation vs recompute "
            f"(20 edge updates, Amazon surrogate {data.num_nodes} nodes)",
            "strategy",
            ["incremental (affected balls)", "recompute (Match+ per update)"],
            {"seconds": [inc_seconds, batch_seconds],
             "balls recomputed": [matcher.balls_recomputed - data.num_nodes, "-"]},
        ),
    )

    # Dual-simulation deletions are the paper's 'easy direction': measure
    # the cascade alone as the benchmarked unit.
    def deletion_cascade():
        inc = IncrementalDualSimulation(pattern, data.copy())
        for u, v in list(data.edges())[:5]:
            inc.remove_edge(u, v)
        return inc.relation

    benchmark(deletion_cascade)


def _apply_updates_incremental(matcher, updates):
    for u, v in updates:
        if matcher.data.has_edge(u, v):
            matcher.remove_edge(u, v)
        else:
            matcher.add_edge(u, v)


def _apply_updates_recompute(pattern, data, updates):
    results = []
    for u, v in updates:
        if data.has_edge(u, v):
            data.remove_edge(u, v)
        else:
            data.add_edge(u, v)
        results.append(match_plus(pattern, data))
    return results
