"""Figure 8(d): running time vs pattern density αq (synthetic, no VF2).

Paper shape: times rise gently with αq; Sim < Match+ < Match throughout.
"""

import pytest

from repro.datasets import generate_graph, generate_pattern, label_alphabet
from repro.experiments import render_timing_figure, sweep_timing
from benchmarks.conftest import emit


def test_fig8d_time_vs_alphaq(benchmark, scale):
    data = generate_graph(
        scale["perf_synthetic_nodes"], alpha=1.2, num_labels=scale["labels"], seed=23
    )
    labels = list(data.label_set())

    def pair_for(alpha_q, repeat):
        pattern = generate_pattern(
            10, alpha=float(alpha_q), labels=labels, seed=421 + repeat
        )
        return pattern, data

    sweep = sweep_timing("alpha_q", scale["alpha_sweep"], pair_for, include_vf2=False)
    emit(
        "fig8d_time_alphaq_synthetic",
        render_timing_figure("Figure 8(d): time (s) vs pattern density αq", sweep),
    )
    ratios = sweep.speedup_match_plus()
    if ratios:
        assert sum(ratios) / len(ratios) <= 1.05

    pattern, _ = pair_for(scale["alpha_sweep"][0], 0)
    from repro.core.matchplus import match_plus

    benchmark(lambda: match_plus(pattern, data))
