"""Figure 8(h): running time vs data density α (synthetic, no VF2).

Paper shape: denser graphs cost more across the family; Sim < Match+ <
Match at every density.
"""

import pytest

from repro.datasets import generate_graph
from repro.datasets.patterns import sample_pattern_from_data
from repro.experiments import render_timing_figure, sweep_timing
from benchmarks.conftest import emit


def test_fig8h_time_vs_alpha(benchmark, scale):
    n = max(1000, scale["perf_synthetic_nodes"] // 4)

    def pair_for(alpha, repeat):
        data = generate_graph(
            n, alpha=float(alpha), num_labels=scale["labels"], seed=31
        )
        pattern = sample_pattern_from_data(data, 10, seed=451 + repeat)
        return (pattern, data) if pattern else None

    sweep = sweep_timing("alpha", scale["alpha_sweep"], pair_for, include_vf2=False)
    emit(
        "fig8h_time_alpha_synthetic",
        render_timing_figure("Figure 8(h): time (s) vs data density α", sweep),
    )
    series = sweep.series()
    sim_total = sum(v for v in series["Sim"] if v is not None)
    match_total = sum(v for v in series["Match"] if v is not None)
    assert sim_total <= match_total

    pattern, data = pair_for(scale["alpha_sweep"][0], 0)
    from repro.core.matchplus import match_plus

    benchmark(lambda: match_plus(pattern, data))
