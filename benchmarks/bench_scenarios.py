"""The scenario-matrix baseline: deterministic digests + SLO rows.

Runs the seeded scenario matrix (``repro.scenarios``) and commits the
observation to ``benchmarks/results/BENCH_scenarios.json`` — the
baseline ``repro scenarios diff`` compares against.  Digest gating is
enforced here exactly as in ``repro scenarios run``: every non-skipped
case must reproduce its pinned ``EXPECTED_DIGESTS`` entry, on every
engine and backend.

``REPRO_KERNEL_BENCH_SMOKE=1`` restricts the matrix to the smoke scale
(what CI runs); a full run covers smoke + S, the scales with pinned
digests and committed baselines.
"""

from __future__ import annotations

import os
from typing import Dict, List

from repro.scenarios import matrix_payload, render_cases, run_matrix

from benchmarks.conftest import emit, emit_result


def test_scenario_matrix() -> None:
    smoke = os.environ.get("REPRO_KERNEL_BENCH_SMOKE") == "1"
    scales = ["smoke"] if smoke else ["smoke", "S"]

    all_cases: List = []
    for matrix_scale in scales:
        all_cases.extend(run_matrix(None, matrix_scale))

    ran = [case for case in all_cases if case.skipped is None]
    assert ran, "the scenario matrix produced no runnable cases"

    # The digest gate: wrong results fail the benchmark, not just the
    # CLI.  (digest_ok is None only where no digest is pinned.)
    mismatches = [
        f"{case.case_key}: expected {case.expected_digest}, "
        f"observed {case.digest}"
        for case in ran
        if case.digest_ok is False
    ]
    assert not mismatches, "observation digest mismatches:\n" + "\n".join(
        mismatches
    )

    # Engine/backend independence, re-asserted across the whole matrix:
    # one digest per (scenario, scale), however many cells produced it.
    by_key: Dict = {}
    for case in ran:
        key = (case.scenario, case.scale)
        by_key.setdefault(key, set()).add(case.digest)
    divergent = {k: v for k, v in by_key.items() if len(v) > 1}
    assert not divergent, f"engine-dependent digests: {divergent}"

    payload = matrix_payload(all_cases, "+".join(scales))
    payload["benchmark"] = "bench_scenarios"
    payload["smoke"] = smoke
    emit_result("BENCH_scenarios", payload)
    emit("bench_scenarios", render_cases(all_cases))
