"""Table 2: the topology-preservation matrix, verified empirically.

The theory is proved in Section 3; here each cell is *demonstrated* on
the paper's own fixtures (a ✓ cell shows the property holding on the
positive fixture; a × cell shows the documented counterexample), and the
resulting matrix is printed in the paper's layout.
"""

import pytest

from repro.baselines.vf2 import has_subgraph_isomorphism
from repro.core.dualsim import dual_simulation
from repro.core.matchgraph import build_match_graph
from repro.core.simulation import graph_simulation
from repro.core.strong import match
from repro.core.traversal import has_undirected_cycle, is_connected_undirected
from repro.core.components import connected_components
from repro.datasets import paper_figures as fig
from repro.experiments import render_table
from benchmarks.conftest import emit


def test_table2_matrix(benchmark):
    q1, g1 = fig.pattern_q1(), fig.data_g1()

    # parents: simulation keeps Bio1 (single parent), duality drops it.
    sim_rel = graph_simulation(q1, g1)
    dual_rel = dual_simulation(q1, g1)
    sim_parents = "Bio1" not in sim_rel.matches_of("Bio")
    dual_parents = "Bio1" not in dual_rel.matches_of("Bio")

    # connectivity: sim match graph disconnected, dual components are
    # matches in their own right (Theorem 2).
    sim_mg = build_match_graph(q1, g1, sim_rel)
    sim_connectivity = len(connected_components(sim_mg)) == 1
    dual_mg = build_match_graph(q1, g1, dual_rel)
    dual_connectivity = len(connected_components(dual_mg)) == 1

    # undirected cycles: Q1 has one; sim matches the HR1 *tree*, dual's
    # match graph contains a cycle.
    dual_cycles = has_undirected_cycle(dual_mg)
    sim_cycles = not ({"HR1", "SE1", "Bio1", "Bio2"} <= sim_rel.data_nodes())

    # locality / bounded matches: strong matches stay within balls; sim
    # returns the entire graph as one relation.
    strong = match(q1, g1)
    strong_local = all(
        sg.num_nodes <= len(fig.g1_good_component_nodes()) for sg in strong
    )
    strong_bounded = len(strong) <= g1.num_nodes

    rows = {
        "simulation": ["yes", "no" if not sim_parents else "yes",
                       "yes" if sim_connectivity else "no",
                       "no" if sim_cycles else "yes", "no", "no"],
        "dual": ["yes", "yes" if dual_parents else "no",
                 "yes" if dual_connectivity else "no",
                 "yes" if dual_cycles else "no", "no", "no"],
        "strong": ["yes", "yes", "yes", "yes",
                   "yes" if strong_local else "no",
                   "yes" if strong_bounded else "no"],
        "isomorphism": ["yes", "yes", "yes", "yes", "yes", "no"],
    }
    emit(
        "table2_matrix",
        render_table(
            "Table 2: topology preservation (empirical on Fig. 1)",
            "notion",
            list(rows),
            {
                "children": [r[0] for r in rows.values()],
                "parents": [r[1] for r in rows.values()],
                "connectivity": [r[2] for r in rows.values()],
                "cycles": [r[3] for r in rows.values()],
                "locality": [r[4] for r in rows.values()],
                "bounded": [r[5] for r in rows.values()],
            },
        ),
    )
    # The cells the paper proves:
    assert not sim_parents      # ≺ does not preserve parents
    assert dual_parents         # ≺_D does
    assert not sim_connectivity # ≺ matches disconnected graphs
    assert dual_connectivity    # the dual match graph here is Gc only
    assert dual_cycles          # ≺_D preserves undirected cycles
    assert strong_local and strong_bounded
    assert not has_subgraph_isomorphism(q1, g1)  # ⋞ strictly strongest

    benchmark(lambda: dual_simulation(q1, g1))
