"""Figures 8(e)/(f): running time vs |V| on Amazon / YouTube (with VF2).

Paper shape: VF2's cost explodes with |V| while the simulation family
grows smoothly; Sim < Match+ < Match.
"""

import pytest

from repro.datasets import generate_amazon, generate_youtube
from repro.datasets.patterns import sample_pattern_from_data
from repro.experiments import render_timing_figure, sweep_timing
from benchmarks.conftest import emit


@pytest.mark.parametrize("dataset", ["Amazon", "YouTube"])
def test_fig8ef_time_vs_v(benchmark, scale, dataset):
    letter = "e" if dataset == "Amazon" else "f"
    sweep_sizes = (
        scale["amazon_v_sweep"] if dataset == "Amazon" else scale["youtube_v_sweep"]
    )

    def data_for(n):
        if dataset == "Amazon":
            return generate_amazon(int(n), num_labels=scale["labels"], seed=11)
        return generate_youtube(int(n), num_labels=15, seed=13)

    def pair_for(n, repeat):
        data = data_for(n)
        pattern = sample_pattern_from_data(data, 10, seed=431 + repeat)
        return (pattern, data) if pattern else None

    sweep = sweep_timing(
        "|V|",
        sweep_sizes,
        pair_for,
        include_vf2=True,
        vf2_max_states=scale["vf2_max_states"],
    )
    emit(
        f"fig8{letter}_time_v_{dataset.lower()}",
        render_timing_figure(
            f"Figure 8({letter}): time (s) vs |V| ({dataset}, |Vq|=10)", sweep
        ),
    )
    series = sweep.series()
    sim_total = sum(v for v in series["Sim"] if v is not None)
    match_total = sum(v for v in series["Match"] if v is not None)
    assert sim_total <= match_total

    data = data_for(sweep_sizes[0])
    pattern = sample_pattern_from_data(data, 10, seed=431)
    from repro.core.matchplus import match_plus

    benchmark(lambda: match_plus(pattern, data))
