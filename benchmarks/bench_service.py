"""Query service: cache-hit speedup, invalidation precision, parallel sites.

Three sections, every timed pair also an equivalence check:

* **cache** — one pattern served cold (a full ``match_plus``) vs warm
  (the fingerprint hit replaying the cached canonical encoding), plus a
  relabel-permuted twin that must hit the same entry.  Gated: the warm
  hit path must be >= 10x faster than a cold ``match_plus`` at small
  scale.
* **invalidation** — a mutation stream against a warm cache: label-
  disjoint deltas must retain entries (hits keep flowing), overlapping
  deltas must recompute, and every answer is asserted against a direct
  engine call.
* **parallel** — ``Cluster.run`` serial vs ``parallel=True`` on a
  4-site kernel cluster, full protocol observation asserted identical.
  The serial/parallel ratio is *recorded, not gated*: site evaluation
  is pure-Python CPU-bound bytecode, so under CPython's GIL threads
  serialize and the ratio sits near 1.0x on any core count — the
  parallel path buys architecture (self-contained per-site state, a
  locked bus, deterministic union order) that pays off once workers
  release the GIL or move to processes (ROADMAP follow-up), and this
  section pins down that it is *observation-identical* meanwhile.
* **distributed_cache** — a warm hit in the cluster's shared result
  store (version-vector gated, replaying the full run observation)
  vs a cold protocol run.  Gated *including smoke mode*: the replay
  must be >= 5x faster than ``Cluster.run`` — it only decodes the
  stored encoding and re-plays the query's bus log, no site ever
  evaluates a ball.

Emits ``benchmarks/results/bench_service.txt`` and machine-readable
``benchmarks/results/BENCH_service.json``.  Set
``REPRO_KERNEL_BENCH_SMOKE=1`` for the CI smoke mode (small sizes, no
timing gates, equivalence still enforced).
"""

from __future__ import annotations

import os
from typing import Dict, List

from repro.core.matchplus import match_plus
from repro.datasets import generate_graph
from repro.datasets.patterns import sample_pattern_from_data
from repro.distributed import Cluster, bfs_partition
from repro.service import MatchService, replay_workload, skewed_stream

from benchmarks.conftest import best_of, emit, emit_result
from tests.engines import canonical_result as _canonical
from tests.engines import distributed_observation, permuted_pattern

WARM_HIT_SMALL_SCALE_BAR = 10.0
DISTRIBUTED_WARM_HIT_BAR = 5.0
PARALLEL_SITES = 4
TIMING_REPS = 5


def test_service_cache_and_parallel_sites(scale):
    smoke = os.environ.get("REPRO_KERNEL_BENCH_SMOKE") == "1"
    lines: List[str] = ["Query service benchmark"]

    # ------------------------------------------------------------------
    # Section 1: warm cache-hit path vs cold match_plus
    # ------------------------------------------------------------------
    n = 600 if smoke else 2500
    data = generate_graph(n, alpha=1.2, num_labels=scale["labels"], seed=61)
    pattern = sample_pattern_from_data(data, 8, seed=811)
    assert pattern is not None
    twin = permuted_pattern(pattern, 17)

    service = MatchService(max_workers=2)
    direct = match_plus(pattern, data)
    served_cold = service.query(pattern, data)
    assert _canonical(served_cold) == _canonical(direct)
    served_warm = service.query(pattern, data)
    assert service.stats.cache.hits >= 1, "second submission must hit"
    assert _canonical(served_warm) == _canonical(direct)
    served_twin = service.query(twin, data)
    assert service.stats.cache.hits >= 2, "isomorphic twin must hit"
    assert _canonical(served_twin) == _canonical(match_plus(twin, data))

    cold_s = best_of(lambda: match_plus(pattern, data), TIMING_REPS)
    warm_s = best_of(lambda: service.query(pattern, data), TIMING_REPS)
    hit_speedup = round(cold_s / warm_s, 3) if warm_s else None
    cache_section = {
        "workload": f"match_plus on synthetic |V|={n}, |Vq|=8",
        "n": n,
        "cold_match_plus_s": round(cold_s, 6),
        "warm_hit_s": round(warm_s, 6),
        "speedup": hit_speedup,
        "fingerprint_shared_with_permuted_twin": True,
    }
    lines.append(
        f"cache: cold match_plus {cold_s:.5f}s vs warm hit {warm_s:.5f}s "
        f"-> {hit_speedup:.1f}x (|V|={n})"
    )

    # ------------------------------------------------------------------
    # Section 2: delta-invalidation precision under a mutation stream
    # ------------------------------------------------------------------
    service.close()
    pattern_labels = set(pattern.label_set())
    spare_label = "bench-spare"
    for i in range(10):
        data.add_node(f"spare{i}", spare_label)
    inval_service = MatchService(max_workers=2)
    stats = inval_service.stats.cache
    inval_service.query(pattern, data, "dual")
    retained_mutations = 0
    for i in range(9):  # label-disjoint edges: the dual entry survives
        data.add_edge(f"spare{i}", f"spare{i + 1}")
        inval_service.query(pattern, data, "dual")
        retained_mutations += 1
    assert stats.hits == retained_mutations, (
        "label-disjoint mutations must keep the dual entry live"
    )
    assert stats.invalidations == 0
    # An overlapping mutation must recompute; the answer stays exact.
    # (add_node with a pattern label is deterministically overlapping —
    # relabeling an existing node could no-op if it already carries the
    # chosen label, which depends on hash order.)
    overlap_label = min(pattern_labels, key=repr)
    data.add_node("bench-overlap", overlap_label)
    inval_service.query(pattern, data, "dual")
    assert stats.invalidations == 1 and stats.misses == 2
    assert _canonical(inval_service.query(pattern, data)) == _canonical(
        match_plus(pattern, data)
    )
    invalidation_section = {
        "label_disjoint_mutations_retained": retained_mutations,
        "invalidations_on_overlap": 1,
        "hits": stats.hits,
        "misses": stats.misses,
    }
    inval_service.close()
    lines.append(
        f"invalidation: {retained_mutations} label-disjoint mutations kept "
        f"the entry live; overlap invalidated "
        f"{invalidation_section['invalidations_on_overlap']} entr(y/ies)"
    )

    # ------------------------------------------------------------------
    # Section 3: throughput on a skewed stream, cache on vs off
    # ------------------------------------------------------------------
    patterns = [
        p
        for p in (
            sample_pattern_from_data(data, vq, seed=821 + vq)
            for vq in (4, 6, 8)
        )
        if p is not None
    ]
    stream = skewed_stream(patterns, data, rounds=2 if smoke else 4)
    throughput = {}
    for mode, cache_size in (("cache_off", 0), ("cache_on", 256)):
        with MatchService(max_workers=4, cache_size=cache_size) as svc:
            report, results = replay_workload(svc, stream)
        throughput[mode] = {
            "queries": report.queries,
            "seconds": round(report.seconds, 6),
            "qps": round(report.throughput, 1),
            "hit_rate": round(report.stats.cache.hit_rate, 4),
        }
        if mode == "cache_off":
            baseline = [_canonical(r) for r in results]
        else:
            assert [_canonical(r) for r in results] == baseline, (
                "cached stream diverged from the uncached stream"
            )
    lines.append(
        f"throughput: {throughput['cache_off']['qps']} q/s uncached vs "
        f"{throughput['cache_on']['qps']} q/s cached "
        f"(hit rate {throughput['cache_on']['hit_rate']:.0%}, "
        f"{len(stream)} queries)"
    )

    # ------------------------------------------------------------------
    # Section 4: parallel site evaluation
    # ------------------------------------------------------------------
    dist_n = 300 if smoke else 600
    dist_data = generate_graph(
        dist_n, alpha=1.15, num_labels=scale["labels"], seed=37
    )
    dist_pattern = sample_pattern_from_data(dist_data, 6, seed=501)
    assert dist_pattern is not None
    assignment = bfs_partition(dist_data, PARALLEL_SITES)
    serial_cluster = Cluster(dist_data, assignment, PARALLEL_SITES)
    parallel_cluster = Cluster(
        dist_data, assignment, PARALLEL_SITES, parallel=True
    )
    serial_report = serial_cluster.run(dist_pattern)
    parallel_report = parallel_cluster.run(dist_pattern)
    assert _canonical(parallel_report.result) == _canonical(
        serial_report.result
    ), "parallel cluster result diverged from serial"
    assert (
        parallel_report.per_site_subgraphs == serial_report.per_site_subgraphs
    )
    assert (
        parallel_report.bus.units_by_kind() == serial_report.bus.units_by_kind()
    )
    serial_s = best_of(lambda: serial_cluster.run(dist_pattern), 3)
    parallel_s = best_of(lambda: parallel_cluster.run(dist_pattern), 3)
    parallel_speedup = round(serial_s / parallel_s, 3) if parallel_s else None
    cpus = os.cpu_count() or 1
    parallel_section = {
        "workload": (
            f"bfs-partitioned synthetic |V|={dist_n}, "
            f"{PARALLEL_SITES} sites, |Vq|=6"
        ),
        "n": dist_n,
        "sites": PARALLEL_SITES,
        "serial_s": round(serial_s, 6),
        "parallel_s": round(parallel_s, 6),
        "speedup": parallel_speedup,
        "cpu_count": cpus,
        "gate": (
            "observation-identity asserted; timing recorded, not gated "
            "(GIL-bound pure-Python site evaluation serializes on any "
            "core count — see the module docstring)"
        ),
    }
    lines.append(
        f"parallel sites: serial {serial_s:.4f}s vs parallel "
        f"{parallel_s:.4f}s -> {parallel_speedup:.2f}x on {cpus} CPU(s) "
        f"(recorded, not gated: GIL-bound site evaluation)"
    )

    # ------------------------------------------------------------------
    # Section 5: distributed result cache — warm replay vs protocol run
    # ------------------------------------------------------------------
    cache_cluster = Cluster(dist_data, assignment, PARALLEL_SITES)
    cache_cluster.enable_result_store()
    dist_service = MatchService(max_workers=2)
    fresh = distributed_observation(cache_cluster.run(dist_pattern))
    first = dist_service.query_distributed(dist_pattern, cache_cluster)
    warm = dist_service.query_distributed(dist_pattern, cache_cluster)
    assert dist_service.stats.computed == 1
    assert dist_service.stats.replayed >= 1
    assert distributed_observation(first) == fresh, (
        "cached distributed run diverged from Cluster.run"
    )
    assert distributed_observation(warm) == fresh, (
        "warm replay diverged from Cluster.run"
    )
    cold_dist_s = best_of(lambda: cache_cluster.run(dist_pattern), 3)
    warm_dist_s = best_of(
        lambda: dist_service.query_distributed(dist_pattern, cache_cluster),
        TIMING_REPS,
    )
    dist_speedup = round(cold_dist_s / warm_dist_s, 3) if warm_dist_s else None
    distributed_cache_section = {
        "workload": (
            f"distributed match on bfs-partitioned synthetic "
            f"|V|={dist_n}, {PARALLEL_SITES} sites, |Vq|=6"
        ),
        "n": dist_n,
        "sites": PARALLEL_SITES,
        "store": "coordinator-hosted shared ResultCache",
        "cold_run_s": round(cold_dist_s, 6),
        "warm_replay_s": round(warm_dist_s, 6),
        "speedup": dist_speedup,
        "version_vector": list(cache_cluster.version_vector()),
        "gate": (
            f"warm replay >= {DISTRIBUTED_WARM_HIT_BAR}x over a cold "
            f"protocol run, enforced in smoke mode too"
        ),
    }
    dist_service.close()
    lines.append(
        f"distributed cache: cold run {cold_dist_s:.5f}s vs warm replay "
        f"{warm_dist_s:.5f}s -> {dist_speedup:.1f}x "
        f"({PARALLEL_SITES} sites, |V|={dist_n})"
    )
    assert dist_speedup >= DISTRIBUTED_WARM_HIT_BAR, (
        f"warm distributed replay speedup {dist_speedup} fell below "
        f"{DISTRIBUTED_WARM_HIT_BAR}x over a cold Cluster.run"
    )

    payload: Dict = {
        "benchmark": "bench_service",
        "scale": os.environ.get("REPRO_BENCH_SCALE", "small"),
        "smoke": smoke,
        "timing": f"best of {TIMING_REPS}",
        "cache": cache_section,
        "invalidation": invalidation_section,
        "throughput": throughput,
        "parallel": parallel_section,
        "distributed_cache": distributed_cache_section,
        "equivalence": (
            "service results identical to direct engine calls; parallel "
            "cluster observation identical to serial; warm distributed "
            "replays identical to fresh Cluster.run observations"
        ),
    }
    emit_result("BENCH_service", payload)
    emit("bench_service", "\n".join(lines))

    if not smoke and payload["scale"] == "small":
        assert hit_speedup >= WARM_HIT_SMALL_SCALE_BAR, (
            f"warm cache-hit speedup {hit_speedup} fell below "
            f"{WARM_HIT_SMALL_SCALE_BAR}x over a cold match_plus"
        )
