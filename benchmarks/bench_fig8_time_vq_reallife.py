"""Figures 8(a)/(b): running time vs |Vq| on Amazon / YouTube (with VF2).

Paper shape: VF2 is far slower than the simulation family once |Vq| > 2;
Sim < Match+ < Match; everything except VF2 scales smoothly with |Vq|.
"""

import pytest

from repro.datasets.patterns import sample_pattern_from_data
from repro.experiments import render_timing_figure, sweep_timing
from benchmarks.conftest import emit


def _mean(values):
    values = [v for v in values if v is not None]
    return sum(values) / len(values) if values else 0.0


@pytest.mark.parametrize("dataset", ["Amazon", "YouTube"])
def test_fig8ab_time_vs_vq(benchmark, amazon_graph, youtube_graph, scale, dataset):
    data = amazon_graph if dataset == "Amazon" else youtube_graph
    letter = "a" if dataset == "Amazon" else "b"

    def pair_for(vq, repeat):
        pattern = sample_pattern_from_data(data, int(vq), seed=401 + repeat)
        return (pattern, data) if pattern else None

    sweep = sweep_timing(
        "|Vq|",
        scale["vq_sweep"],
        pair_for,
        include_vf2=True,
        vf2_max_states=scale["vf2_max_states"],
    )
    emit(
        f"fig8{letter}_time_vq_{dataset.lower()}",
        render_timing_figure(
            f"Figure 8({letter}): time (s) vs |Vq| ({dataset})", sweep
        ),
    )
    series = sweep.series()
    # Sim is the cheapest of the simulation family.
    assert _mean(series["Sim"]) <= _mean(series["Match"])
    # Match+ beats Match on average (the paper reports ~2/3).
    ratios = sweep.speedup_match_plus()
    if ratios:
        assert sum(ratios) / len(ratios) <= 1.0

    point = sweep.axis_values[len(sweep.axis_values) // 2]
    pattern, _ = pair_for(point, 0)
    from repro.core.matchplus import match_plus

    benchmark(lambda: match_plus(pattern, data))
