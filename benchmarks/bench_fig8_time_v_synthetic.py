"""Figure 8(g): running time vs |V| on synthetic data (no VF2).

Paper shape: near-linear growth for the whole simulation family
(the paper reports Match+ going from ~100s to ~600s over a 10× size
increase); Match+ consistently below Match.
"""

import pytest

from repro.datasets import generate_graph
from repro.datasets.patterns import sample_pattern_from_data
from repro.experiments import render_timing_figure, sweep_timing
from benchmarks.conftest import emit


def test_fig8g_time_vs_v_synthetic(benchmark, scale):
    def pair_for(n, repeat):
        data = generate_graph(
            int(n), alpha=1.2, num_labels=scale["labels"], seed=29
        )
        pattern = sample_pattern_from_data(data, 10, seed=441 + repeat)
        return (pattern, data) if pattern else None

    sweep = sweep_timing("|V|", scale["perf_v_sweep"], pair_for, include_vf2=False)
    emit(
        "fig8g_time_v_synthetic",
        render_timing_figure("Figure 8(g): time (s) vs |V| (synthetic)", sweep),
    )
    series = sweep.series()
    match_series = [v for v in series["Match"] if v is not None]
    # Growth must be polynomial-smooth, not explosive: the largest input
    # should cost less than (size ratio)^3 times the smallest.
    if len(match_series) >= 2 and match_series[0] > 0:
        size_ratio = scale["perf_v_sweep"][-1] / scale["perf_v_sweep"][0]
        assert match_series[-1] / match_series[0] <= size_ratio ** 3

    pattern, data = pair_for(scale["perf_v_sweep"][0], 0)
    from repro.core.matchplus import match_plus

    benchmark(lambda: match_plus(pattern, data))
