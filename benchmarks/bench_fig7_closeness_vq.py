"""Figures 7(c)-(e): closeness vs pattern size |Vq| on the three datasets.

Paper series: VF2 = 1.0 by construction; Match in [0.70, 0.80]; MCS in
[0.46, 0.57]; TALE in [0.35, 0.42]; Sim in [0.25, 0.38].  We assert the
*shape*: Match dominates the approximate matchers and Sim, which is the
weakest; the measured ranges are recorded in EXPERIMENTS.md.
"""

import pytest

from repro.experiments import render_closeness_figure
from benchmarks.conftest import emit


@pytest.mark.parametrize("dataset", ["Amazon", "YouTube", "Synthetic"])
def test_fig7_closeness_vs_vq(benchmark, vq_sweeps, dataset):
    sweep = vq_sweeps[dataset]
    letter = {"Amazon": "c", "YouTube": "d", "Synthetic": "e"}[dataset]
    emit(
        f"fig7{letter}_closeness_vq_{dataset.lower()}",
        render_closeness_figure(
            f"Figure 7({letter}): closeness vs |Vq| ({dataset})", sweep
        ),
    )
    means = sweep.mean_closeness(reliable_only=True)
    assert means["VF2"] == pytest.approx(1.0)
    assert means["Match"] >= means["Sim"], "Match must beat Sim"
    assert means["Match"] >= means["TALE"], "Match must beat TALE"
    assert means["Match"] >= 0.5, "Match closeness must stay high"

    # The benchmarked unit: one quality point (the |Vq|=middle pattern).
    mid_run = sweep.runs[len(sweep.runs) // 2]
    benchmark(lambda: mid_run.closeness_of("Match"))
