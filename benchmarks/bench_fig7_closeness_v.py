"""Figures 7(f)-(h): closeness vs data size |V| with fixed |Vq| = 10.

Paper claim: closeness is *insensitive* to graph size — each algorithm's
series stays within its band across the sweep.
"""

import pytest

from repro.experiments import render_closeness_figure
from benchmarks.conftest import emit


@pytest.mark.parametrize("dataset", ["Amazon", "YouTube", "Synthetic"])
def test_fig7_closeness_vs_v(benchmark, v_sweeps, dataset):
    sweep = v_sweeps[dataset]
    letter = {"Amazon": "f", "YouTube": "g", "Synthetic": "h"}[dataset]
    emit(
        f"fig7{letter}_closeness_v_{dataset.lower()}",
        render_closeness_figure(
            f"Figure 7({letter}): closeness vs |V| ({dataset}, |Vq|=10)", sweep
        ),
    )
    means = sweep.mean_closeness(reliable_only=True)
    assert means["Match"] >= means["Sim"]
    assert means["Match"] >= 0.5

    benchmark(lambda: sweep.mean_closeness())
