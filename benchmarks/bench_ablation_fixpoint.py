"""Ablation: worklist vs naive fixpoint for (dual) simulation.

DESIGN.md §5: the library defaults to the worklist refinement; this bench
quantifies what that buys over the literal Fig. 3 pseudocode, and
demonstrates the Section 3.2 tractability boundary by timing cubic strong
simulation against exponential subgraph bisimulation on a tiny input.
"""

import pytest

from repro.core.bisim import subgraph_bisimulation_exists
from repro.core.dualsim import dual_simulation, dual_simulation_naive
from repro.core.pattern import Pattern
from repro.core.strong import match
from repro.core.digraph import DiGraph
from repro.datasets import generate_graph
from repro.datasets.patterns import sample_pattern_from_data
from repro.experiments import render_table
from repro.utils.timer import timed
from benchmarks.conftest import emit


def test_worklist_vs_naive_dualsim(benchmark, scale):
    data = generate_graph(1500, alpha=1.2, num_labels=scale["labels"], seed=43)
    pattern = sample_pattern_from_data(data, 10, seed=701)
    assert pattern is not None

    worklist_rel, worklist_s = timed(lambda: dual_simulation(pattern, data))
    naive_rel, naive_s = timed(lambda: dual_simulation_naive(pattern, data))
    assert worklist_rel == naive_rel

    emit(
        "ablation_fixpoint",
        render_table(
            "Ablation: dual-simulation fixpoint strategy",
            "strategy",
            ["worklist", "naive (Fig. 3 literal)"],
            {"seconds": [worklist_s, naive_s]},
        ),
    )
    benchmark(lambda: dual_simulation(pattern, data))


def test_tractability_boundary(benchmark):
    """Strong simulation (ptime) vs subgraph bisimulation (np-hard) on a
    tiny instance: the exponential search already visibly lags."""
    pattern = Pattern.build(
        {"a": "X", "b": "X"}, [("a", "b"), ("b", "a")]
    )
    data = DiGraph()
    for i in range(12):
        data.add_node(i, "X")
    for i in range(12):
        data.add_edge(i, (i + 1) % 12)
    data.add_edge(0, 6)

    _, strong_s = timed(lambda: match(pattern, data))
    _, bisim_s = timed(
        lambda: subgraph_bisimulation_exists(pattern, data, max_extra_nodes=2)
    )
    emit(
        "tractability_boundary",
        render_table(
            "Section 3.2 boundary: cubic strong simulation vs exponential "
            "subgraph bisimulation (12-node data graph)",
            "approach",
            ["strong simulation", "subgraph bisimulation"],
            {"seconds": [strong_s, bisim_s]},
        ),
    )
    benchmark(lambda: match(pattern, data))
