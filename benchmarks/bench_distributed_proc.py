"""Distributed runtime backends: thread-per-site vs process-per-site.

PR 4 measured ``Cluster(parallel=True)`` at 0.99x over serial and had to
record rather than gate it: pure-Python site evaluation serializes on
the GIL at any core count.  The process backend is the payoff of that
architecture — one OS process per site evaluates off-GIL on real cores.
This benchmark times one warm cluster per backend (``inproc`` |
``threads`` | ``processes``) on the same bfs-partitioned graph, for all
three engines, asserting first that the full protocol observation is
**byte-identical** across backends (the runtime contract), then timing
repeated queries.  The numpy engine is the interesting ``threads`` case:
its heavy passes run inside ufuncs that release the GIL, so the thread
backend can genuinely scale with cores — the thread-over-inproc ratio is
recorded per engine to capture that.

Gate: on a full (non-smoke) small-scale run with at least as many CPUs
as sites, the process backend must beat the thread backend by ≥ 1.5x
wall-clock on both engines at |V|≈2500 / 4 sites.  On a host with fewer
cores than sites the 4-way multi-core claim is not measurable — on one
CPU, processes pay IPC on top of the same serialized compute — so the
ratio is recorded with an explanatory note instead, exactly like PR 4's
thread-parallel section (equivalence is still enforced).
``REPRO_KERNEL_BENCH_SMOKE=1`` shrinks sizes and records without
gating.

Emits ``benchmarks/results/bench_distributed_proc.txt`` and
machine-readable ``benchmarks/results/BENCH_proc.json``.
"""

from __future__ import annotations

import os
from typing import Dict, List

import pytest

from repro.datasets import generate_graph
from repro.datasets.patterns import sample_pattern_from_data
from repro.distributed import Cluster, bfs_partition, process_backend_available

from benchmarks.conftest import best_of, emit, emit_result
from tests.engines import cluster_observation

SITES = 4
PROC_OVER_THREAD_SMALL_SCALE_BAR = 1.5
BACKENDS = ("inproc", "threads", "processes")


def test_process_backend_beats_threads(scale):
    if not process_backend_available():
        pytest.skip("platform cannot host the process backend")
    smoke = os.environ.get("REPRO_KERNEL_BENCH_SMOKE") == "1"
    reps = 2 if smoke else 3
    n = 600 if smoke else 2500
    cpus = os.cpu_count() or 1

    data = generate_graph(n, alpha=1.15, num_labels=scale["labels"], seed=37)
    pattern = sample_pattern_from_data(data, 6, seed=501)
    assert pattern is not None
    assignment = bfs_partition(data, SITES)

    lines: List[str] = [
        f"Distributed runtime backends (|V|={n}, {SITES} sites, "
        f"{cpus} CPU(s))"
    ]
    sections: Dict[str, Dict] = {}
    speedups: Dict[str, float] = {}
    for engine in ("python", "kernel", "numpy"):
        observations = {}
        seconds = {}
        clusters = {
            backend: Cluster(
                data, assignment, SITES, engine=engine, backend=backend
            )
            for backend in BACKENDS
        }
        try:
            for backend, cluster in clusters.items():
                # Warm-up run doubles as the observation under test:
                # worker (process) bootstrap and index compilation land
                # here, so the timed loop measures steady-state serving.
                observations[backend] = cluster_observation(
                    cluster.run(pattern)
                )
                seconds[backend] = best_of(
                    lambda c=cluster: c.run(pattern), reps
                )
        finally:
            for cluster in clusters.values():
                cluster.close()
        for backend in BACKENDS[1:]:
            assert observations[backend] == observations["inproc"], (
                f"backend {backend!r} observation diverged on {engine!r}"
            )
        speedup = round(
            seconds["threads"] / max(seconds["processes"], 1e-9), 3
        )
        thread_scaling = round(
            seconds["inproc"] / max(seconds["threads"], 1e-9), 3
        )
        speedups[engine] = speedup
        sections[engine] = {
            "inproc_s": round(seconds["inproc"], 6),
            "threads_s": round(seconds["threads"], 6),
            "processes_s": round(seconds["processes"], 6),
            "proc_over_thread_speedup": speedup,
            "threads_over_inproc_speedup": thread_scaling,
        }
        lines.append(
            f"{engine}: inproc {seconds['inproc']:.4f}s, threads "
            f"{seconds['threads']:.4f}s, processes "
            f"{seconds['processes']:.4f}s -> {speedup:.2f}x proc/thread, "
            f"{thread_scaling:.2f}x thread/inproc"
        )

    gated = not smoke and cpus >= SITES
    payload = {
        "benchmark": "bench_distributed_proc",
        "scale": os.environ.get("REPRO_BENCH_SCALE", "small"),
        "smoke": smoke,
        "workload": (
            f"bfs-partitioned synthetic |V|={n}, {SITES} sites, |Vq|=6, "
            f"warm clusters, best of {reps}"
        ),
        "n": n,
        "sites": SITES,
        "cpu_count": cpus,
        "engines": sections,
        "equivalence": (
            "full protocol observation (results, per-site partials, bus "
            "accounting) asserted byte-identical across "
            "inproc/threads/processes on both engines"
        ),
        "gate": (
            f">= {PROC_OVER_THREAD_SMALL_SCALE_BAR}x processes-over-"
            "threads on both engines"
            if gated
            else (
                "recorded, not gated: "
                + (
                    "smoke mode"
                    if smoke
                    else f"host has {cpus} CPU(s) for {SITES} sites — "
                    "thread and process backends both (partly) serialize "
                    "their compute and processes add IPC; the multi-core "
                    "claim needs cores >= sites (cf. PR 4's "
                    "thread-parallel section)"
                )
            )
        ),
    }
    emit_result("BENCH_proc", payload)
    emit("bench_distributed_proc", "\n".join(lines))

    if gated and payload["scale"] == "small":
        for engine, speedup in speedups.items():
            if engine == "numpy":
                # The numpy engine's GIL-releasing ufuncs let *threads*
                # scale too, so processes-over-threads is not the claim
                # there; its ratios are recorded, not gated.
                continue
            assert speedup >= PROC_OVER_THREAD_SMALL_SCALE_BAR, (
                f"process backend speedup {speedup}x on {engine!r} fell "
                f"below {PROC_OVER_THREAD_SMALL_SCALE_BAR}x over threads "
                f"at |V|={n} / {SITES} sites on {cpus} CPUs"
            )
