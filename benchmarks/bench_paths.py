"""Path matching: reach-index kernel vs reference + equivalence gate.

The PR-8 workload: bounded simulation and regular (regex-constrained)
matching answered through the :class:`~repro.core.reach.ReachIndex`
2-hop distance labeling versus the reference per-query BFS / NFA walks.
Three sections:

* **bounded** — ``bounded_simulation`` over Figure-8(g)-shaped synthetic
  graphs at |V|=2500 (smoke: 600) with mixed per-edge bounds
  ``{1, 2, 3, unbounded}``, python vs kernel, summed over sampled
  patterns.  Gated at >= 2x kernel-over-reference at small scale (the
  full ``large`` profile targets >= 5x — record, don't gate, since CI
  only runs small);
* **insertion stream** — a warm index carried through single-edge
  insertions with a kernel requery after each: the labeling must be
  patched in place, never rebuilt (``reach_builds == 1`` and
  ``reach_drops == 0`` asserted after priming), with the final relation
  checked against a cold reference run;
* **regular** — ``regular_dual_simulation`` and ``regular_strong_match``
  with wildcard + regex edge constraints, python vs kernel.

Every timed pair is an equivalence check first: the kernel result must
be identical (canonical pair-set / signature form) to the reference.
Emits ``benchmarks/results/bench_paths.txt`` and machine-readable
``benchmarks/results/BENCH_paths.json``.

Set ``REPRO_KERNEL_BENCH_SMOKE=1`` to shrink the sizes (CI smoke mode;
no speedup assertion, equivalence still enforced).
"""

from __future__ import annotations

import os
from typing import Dict, List

from benchmarks.conftest import best_of, emit, emit_result
from repro.core.bounded import BoundedPattern, bounded_simulation
from repro.core.kernel import get_index
from repro.core.reach import get_reach_index
from repro.core.regular import (
    RegularPattern,
    hop_bounded_pattern,
    regular_dual_simulation,
    regular_strong_match,
)
from repro.datasets import generate_graph
from repro.datasets.patterns import sample_pattern_from_data
from repro.experiments.performance import random_insertion_stream

PATTERN_SIZE = 6
PATTERN_REPEATS = 3
TIMING_REPS = 3
BOUND_CYCLE = (1, 2, 3, None)
#: Few labels -> large per-label candidate sets, the regime where the
#: reference path's per-candidate BFS dominates (same choice as the
#: numpy section of bench_kernel).
PATHS_BENCH_LABELS = 10
BOUNDED_SMALL_SCALE_BAR = 2.0
BOUNDED_LARGE_SCALE_TARGET = 5.0
STREAM_UPDATES_SMOKE = 8
STREAM_UPDATES = 30
REGULAR_CONSTRAINT_CYCLE = (".*", "l0*", "(l0|l1)*")


def _mixed_bounds(pattern) -> Dict:
    edges = sorted(pattern.edges(), key=repr)
    return {
        edge: BOUND_CYCLE[i % len(BOUND_CYCLE)]
        for i, edge in enumerate(edges)
    }


def _result_canonical(result) -> frozenset:
    return frozenset(
        (sg.signature(), sg.relation.pair_set()) for sg in result
    )


def test_paths_kernel_vs_reference(scale):
    smoke = os.environ.get("REPRO_KERNEL_BENCH_SMOKE") == "1"

    # ------------------------------------------------------------------
    # Bounded simulation: mixed bounds, python vs kernel.
    # ------------------------------------------------------------------
    bounded_n = 600 if smoke else 2500
    data = generate_graph(
        bounded_n, alpha=1.2, num_labels=PATHS_BENCH_LABELS, seed=83
    )
    times = {"python": 0.0, "kernel": 0.0}
    patterns_used = 0
    for repeat in range(PATTERN_REPEATS):
        pattern = sample_pattern_from_data(
            data, PATTERN_SIZE, seed=811 + repeat
        )
        if pattern is None:
            continue
        patterns_used += 1
        bp = BoundedPattern(pattern, _mixed_bounds(pattern))
        reference = bounded_simulation(bp, data, engine="python").pair_set()
        assert bounded_simulation(
            bp, data, engine="kernel"
        ).pair_set() == reference, (
            f"bounded kernel diverged at |V|={bounded_n}, repeat={repeat}"
        )
        for engine in times:
            times[engine] += best_of(
                lambda engine=engine: bounded_simulation(
                    bp, data, engine=engine
                ),
                TIMING_REPS,
            )
    assert patterns_used > 0
    bounded_speedup = (
        round(times["python"] / times["kernel"], 3)
        if times["kernel"]
        else None
    )
    ri = get_reach_index(data)
    label_entries = sum(len(d) for d in ri.out_labels) + sum(
        len(d) for d in ri.in_labels
    )
    bounded_section = {
        "workload": (
            f"bounded_simulation, synthetic |V|={bounded_n}, alpha=1.2, "
            f"{PATHS_BENCH_LABELS} labels, |Vq|={PATTERN_SIZE}, "
            f"bounds cycled over {[str(b) for b in BOUND_CYCLE]}"
        ),
        "n": bounded_n,
        "patterns": patterns_used,
        "python_s": round(times["python"], 6),
        "kernel_s": round(times["kernel"], 6),
        "speedup": bounded_speedup,
        "reach_label_entries": label_entries,
        "large_scale_target": (
            f">= {BOUNDED_LARGE_SCALE_TARGET}x (recorded, gated only at "
            f"small scale: >= {BOUNDED_SMALL_SCALE_BAR}x)"
        ),
    }

    # ------------------------------------------------------------------
    # Insertion stream: the labeling must be patched, never rebuilt.
    # ------------------------------------------------------------------
    stream_updates = STREAM_UPDATES_SMOKE if smoke else STREAM_UPDATES
    stream_n = 300 if smoke else 1000
    stream_data = generate_graph(
        stream_n, alpha=1.2, num_labels=PATHS_BENCH_LABELS, seed=89
    )
    stream_pattern = sample_pattern_from_data(stream_data, 4, seed=821)
    assert stream_pattern is not None
    stream_bp = BoundedPattern(stream_pattern, _mixed_bounds(stream_pattern))
    # Prime: compile the graph index and build the labeling once.
    bounded_simulation(stream_bp, stream_data, engine="kernel")
    stats = get_index(stream_data).stats
    builds_after_priming = stats.reach_builds
    assert builds_after_priming == 1, (
        f"expected exactly one reach build after priming, saw "
        f"{builds_after_priming}"
    )
    stream = random_insertion_stream(stream_data, stream_updates, seed=5)

    def run_stream():
        for source, target in stream:
            stream_data.add_edge(source, target)
            bounded_simulation(stream_bp, stream_data, engine="kernel")

    import time as _time

    start = _time.perf_counter()
    run_stream()
    stream_s = _time.perf_counter() - start
    stats = get_index(stream_data).stats
    assert stats.reach_builds == 1, (
        f"pure-insertion stream triggered {stats.reach_builds - 1} full "
        "reach rebuild(s); insertions must patch the labeling in place"
    )
    assert stats.reach_drops == 0, (
        f"pure-insertion stream dropped the labeling {stats.reach_drops} "
        "time(s)"
    )
    assert stats.reach_patches >= stream_updates
    # Final-state equivalence against a cold reference run.
    warm = bounded_simulation(stream_bp, stream_data, engine="kernel")
    cold = bounded_simulation(stream_bp, stream_data, engine="python")
    assert warm.pair_set() == cold.pair_set(), (
        "warm patched index diverged from the cold reference after the "
        "insertion stream"
    )
    stream_section = {
        "workload": (
            f"{stream_updates} single-edge insertions + kernel requery "
            f"each, synthetic |V|={stream_n}"
        ),
        "n": stream_n,
        "updates": stream_updates,
        "seconds": round(stream_s, 6),
        "amortized_update_ms": round(stream_s / stream_updates * 1e3, 4),
        "reach_builds": stats.reach_builds,
        "reach_drops": stats.reach_drops,
        "reach_patches": stats.reach_patches,
    }

    # ------------------------------------------------------------------
    # Regular matching: wildcard + regex constraints, python vs kernel.
    # ------------------------------------------------------------------
    regular_n = 300 if smoke else 800
    reg_data = generate_graph(
        regular_n, alpha=1.2, num_labels=PATHS_BENCH_LABELS, seed=97
    )
    reg_pattern = sample_pattern_from_data(reg_data, 4, seed=831)
    assert reg_pattern is not None
    reg_bounds = _mixed_bounds(reg_pattern)
    wild = hop_bounded_pattern(reg_pattern, reg_bounds)
    edges = sorted(reg_pattern.edges(), key=repr)
    constraints = {
        edge: REGULAR_CONSTRAINT_CYCLE[i % len(REGULAR_CONSTRAINT_CYCLE)]
        for i, edge in enumerate(edges)
    }
    regex = RegularPattern(reg_pattern, constraints, reg_bounds)

    regular_rows: List[Dict] = []
    for name, rpattern in (("wildcard", wild), ("regex", regex)):
        dual_ref = regular_dual_simulation(
            rpattern, reg_data, engine="python"
        ).pair_set()
        assert regular_dual_simulation(
            rpattern, reg_data, engine="kernel"
        ).pair_set() == dual_ref, f"regular dual/{name} diverged"
        strong_ref = _result_canonical(
            regular_strong_match(rpattern, reg_data, engine="python")
        )
        assert _result_canonical(
            regular_strong_match(rpattern, reg_data, engine="kernel")
        ) == strong_ref, f"regular strong/{name} diverged"
        row = {"constraints": name}
        for algo, fn in (
            ("dual", regular_dual_simulation),
            ("strong", regular_strong_match),
        ):
            algo_times = {
                engine: best_of(
                    lambda engine=engine, fn=fn: fn(
                        rpattern, reg_data, engine=engine
                    ),
                    1 if algo == "strong" else TIMING_REPS,
                )
                for engine in ("python", "kernel")
            }
            row[algo] = {
                "python_s": round(algo_times["python"], 6),
                "kernel_s": round(algo_times["kernel"], 6),
                "speedup": (
                    round(algo_times["python"] / algo_times["kernel"], 3)
                    if algo_times["kernel"]
                    else None
                ),
            }
        regular_rows.append(row)

    payload = {
        "benchmark": "bench_paths",
        "workload": "bounded + regular path matching over the reach index",
        "scale": os.environ.get("REPRO_BENCH_SCALE", "small"),
        "smoke": smoke,
        "timing": f"best of {TIMING_REPS}, summed over sampled patterns",
        "bounded": bounded_section,
        "insertion_stream": stream_section,
        "regular": {
            "workload": (
                f"synthetic |V|={regular_n}, {PATHS_BENCH_LABELS} labels, "
                f"|Vq|=4, constraint cycles {list(REGULAR_CONSTRAINT_CYCLE)}"
            ),
            "n": regular_n,
            "rows": regular_rows,
        },
        "equivalence": "all kernel results identical to the reference",
    }
    emit_result("BENCH_paths", payload)

    lines = [
        "Path matching: reach-index kernel vs reference (seconds, lower "
        "is better)",
        f"bounded (|V|={bounded_n}, {patterns_used} patterns, mixed "
        f"bounds): python={times['python']:.4f}s "
        f"kernel={times['kernel']:.4f}s -> {bounded_speedup:.2f}x "
        f"({label_entries} label entries)",
        f"insertion stream ({stream_updates} inserts + requery, "
        f"|V|={stream_n}): {stream_s:.4f}s total, "
        f"{stream_section['amortized_update_ms']:.2f} ms/update, "
        f"builds={stats.reach_builds} drops={stats.reach_drops} "
        f"patches={stats.reach_patches}",
    ]
    for row in regular_rows:
        for algo in ("dual", "strong"):
            lines.append(
                f"regular {algo}/{row['constraints']} (|V|={regular_n}): "
                f"python={row[algo]['python_s']:.4f}s "
                f"kernel={row[algo]['kernel_s']:.4f}s "
                f"-> {row[algo]['speedup']:.2f}x"
            )
    emit("bench_paths", "\n".join(lines))

    if not smoke and payload["scale"] == "small":
        assert bounded_speedup >= BOUNDED_SMALL_SCALE_BAR, (
            f"bounded kernel speedup {bounded_speedup} fell below "
            f"{BOUNDED_SMALL_SCALE_BAR}x on the small synthetic workload"
        )
