"""Query minimization ``minQ`` (Fig. 4, Theorem 6, Lemmas 2–3).

Two pattern graphs are equivalent iff they return the same result on every
data graph.  Lemma 3 reduces strong-simulation equivalence (at a fixed
ball radius) to dual-simulation equivalence, and Lemma 2 shows a unique
minimum equivalent pattern exists and is computable in quadratic time:

1. compute the maximum dual-simulation relation ``S`` of ``Q ≺_D Q``
   (the pattern matched against itself as a data graph);
2. group pattern nodes into equivalence classes — ``u ~ v`` iff both
   ``(u, v) ∈ S`` and ``(v, u) ∈ S``;
3. build the quotient graph: one node per class, an edge between classes
   iff some pair of members has an edge in ``Q``.

The caller is responsible for keeping the *original* diameter ``d_Q`` as
the ball radius (Lemma 3 only guarantees equivalence at a fixed radius;
minimization can change the quotient's own diameter).
:func:`minimize_pattern` therefore returns the quotient pattern together
with the radius to use.
"""

from __future__ import annotations

from typing import Dict, FrozenSet, List, Set

from repro.core.digraph import DiGraph, Node
from repro.core.dualsim import dual_simulation
from repro.core.pattern import Pattern


class MinimizedPattern:
    """Outcome of ``minQ``: the quotient pattern plus bookkeeping.

    Attributes
    ----------
    pattern:
        The minimized (quotient) pattern graph ``Qm``.
    radius:
        The ball radius to use with ``Qm`` — the diameter of the *original*
        pattern, per Lemma 3.
    classes:
        The node equivalence classes, as frozensets of original nodes, in
        the order their representative class-nodes were created.
    node_to_class:
        Mapping from each original pattern node to its class id (the node
        identifier used in ``Qm``).
    """

    __slots__ = ("pattern", "radius", "classes", "node_to_class")

    def __init__(
        self,
        pattern: Pattern,
        radius: int,
        classes: List[FrozenSet[Node]],
        node_to_class: Dict[Node, int],
    ) -> None:
        self.pattern = pattern
        self.radius = radius
        self.classes = classes
        self.node_to_class = node_to_class

    def expand_match(self, class_id: int) -> FrozenSet[Node]:
        """Original pattern nodes represented by a quotient node."""
        return self.classes[class_id]

    def __repr__(self) -> str:
        return (
            f"MinimizedPattern(|Vq|={self.pattern.num_nodes}, "
            f"radius={self.radius}, classes={len(self.classes)})"
        )


def dual_equivalence_classes(pattern: Pattern) -> List[Set[Node]]:
    """Equivalence classes of pattern nodes under mutual dual simulation.

    Line 1–2 of Fig. 4: compute the maximum match relation ``S`` of
    ``Q ≺_D Q`` and put ``u, v`` in the same class iff ``(u, v) ∈ S`` and
    ``(v, u) ∈ S``.  A pattern always dual-simulates itself via the
    identity relation, so ``S`` is total and the classes partition ``Vq``.
    """
    relation = dual_simulation(pattern, pattern.graph)
    classes: List[Set[Node]] = []
    assigned: Dict[Node, int] = {}
    for u in pattern.nodes():
        if u in assigned:
            continue
        matches_u = relation.matches_of_raw(u)
        new_class = {u}
        for v in matches_u:
            if v == u or v in assigned:
                continue
            if u in relation.matches_of_raw(v):
                new_class.add(v)
        class_id = len(classes)
        for member in new_class:
            assigned[member] = class_id
        classes.append(new_class)
    return classes


def minimize_pattern(pattern: Pattern) -> MinimizedPattern:
    """Algorithm ``minQ`` (Fig. 4): the minimum equivalent pattern.

    Runs in O((|Vq| + |Eq|)²) time, dominated by the self dual simulation.

    Example
    -------
    A pattern with two structurally identical branches collapses them:

    >>> q = Pattern.build(
    ...     {"r": "R", "b1": "B", "b2": "B"},
    ...     [("r", "b1"), ("r", "b2")],
    ... )
    >>> minimize_pattern(q).pattern.num_nodes
    2

    The result is memoized on the pattern (immutable after
    construction), so a serving workload re-submitting one pattern —
    or the query-service cache replaying a hit — pays for the self
    dual simulation once.
    """
    cached = pattern._quotient_cache
    if cached is not None:
        return cached
    classes = dual_equivalence_classes(pattern)
    node_to_class: Dict[Node, int] = {}
    frozen_classes: List[FrozenSet[Node]] = []
    for class_id, members in enumerate(classes):
        frozen_classes.append(frozenset(members))
        for member in members:
            node_to_class[member] = class_id

    quotient = DiGraph()
    for class_id, members in enumerate(classes):
        representative = next(iter(members))
        quotient.add_node(class_id, pattern.label(representative))
    for u, u_prime in pattern.edges():
        quotient.add_edge(node_to_class[u], node_to_class[u_prime])

    minimized = Pattern(quotient)
    result = MinimizedPattern(
        minimized,
        radius=pattern.diameter,
        classes=frozen_classes,
        node_to_class=node_to_class,
    )
    pattern._quotient_cache = result
    return result


def patterns_dual_equivalent(first: Pattern, second: Pattern) -> bool:
    """Decide dual-simulation equivalence of two patterns.

    ``Q ≡ Q′`` via dual simulation iff each dual-simulates the other *and*
    their quotients are isomorphic; for the library's purposes (testing
    Lemma 2) we check mutual total dual simulation between the two
    patterns, each treated as a data graph for the other, which is the
    standard simulation-equivalence test.
    """
    forward = dual_simulation(first, second.graph)
    if not forward.is_total():
        return False
    backward = dual_simulation(second, first.graph)
    return backward.is_total()
