"""Match relations ``S ⊆ Vq × V`` between pattern and data nodes.

All simulation variants in the paper compute a binary relation between
pattern nodes and data nodes.  :class:`MatchRelation` stores it in the
``sim(u)`` form used by the algorithms of Figures 3 and 5 — a mapping from
each pattern node ``u`` to the set of data nodes that (still) simulate it —
and offers the pair-set view for the theory-facing code.
"""

from __future__ import annotations

from typing import Dict, FrozenSet, Iterable, Iterator, Mapping, Set, Tuple

from repro.core.digraph import Node
from repro.core.pattern import Pattern
from repro.exceptions import MatchingError

Pair = Tuple[Node, Node]


class MatchRelation:
    """A relation between pattern nodes and data nodes.

    The relation is *total on the pattern side* exactly when it represents
    a successful simulation: :meth:`is_total` reports whether every pattern
    node has at least one match, which is the success criterion of every
    ``DualSim``-style fixpoint (line 10 of Fig. 3: if some ``sim(v)``
    empties, the whole relation collapses to ∅).
    """

    __slots__ = ("_sim",)

    def __init__(self, sim: Mapping[Node, Set[Node]]) -> None:
        self._sim: Dict[Node, Set[Node]] = {u: set(vs) for u, vs in sim.items()}

    # ------------------------------------------------------------------
    @classmethod
    def empty(cls, pattern: Pattern) -> "MatchRelation":
        """The empty relation over a pattern (every sim set empty)."""
        return cls({u: set() for u in pattern.nodes()})

    @classmethod
    def from_pairs(cls, pattern: Pattern, pairs: Iterable[Pair]) -> "MatchRelation":
        """Build from explicit ``(pattern_node, data_node)`` pairs."""
        sim: Dict[Node, Set[Node]] = {u: set() for u in pattern.nodes()}
        for u, v in pairs:
            if u not in sim:
                raise MatchingError(f"pair ({u!r}, {v!r}) uses unknown pattern node")
            sim[u].add(v)
        return cls(sim)

    # ------------------------------------------------------------------
    def matches_of(self, pattern_node: Node) -> FrozenSet[Node]:
        """``sim(u)`` — the data nodes matching ``pattern_node``."""
        try:
            return frozenset(self._sim[pattern_node])
        except KeyError:
            raise MatchingError(
                f"pattern node {pattern_node!r} not in relation"
            ) from None

    def matches_of_raw(self, pattern_node: Node) -> Set[Node]:
        """Internal ``sim(u)`` set without a defensive copy (do not mutate)."""
        return self._sim[pattern_node]

    def pattern_nodes(self) -> Iterator[Node]:
        """Iterate over the pattern nodes of the relation."""
        return iter(self._sim)

    def pairs(self) -> Iterator[Pair]:
        """Iterate over all ``(pattern_node, data_node)`` pairs."""
        for u, vs in self._sim.items():
            for v in vs:
                yield (u, v)

    def pair_set(self) -> FrozenSet[Pair]:
        """The relation as a frozenset of pairs."""
        return frozenset(self.pairs())

    def data_nodes(self) -> Set[Node]:
        """All data nodes mentioned anywhere in the relation."""
        result: Set[Node] = set()
        for vs in self._sim.values():
            result |= vs
        return result

    def is_total(self) -> bool:
        """True iff every pattern node has at least one match."""
        return all(self._sim.values()) and bool(self._sim)

    def is_empty(self) -> bool:
        """True iff no pair is in the relation."""
        return not any(self._sim.values())

    def __len__(self) -> int:
        return sum(len(vs) for vs in self._sim.values())

    def __contains__(self, pair: Pair) -> bool:
        u, v = pair
        return u in self._sim and v in self._sim[u]

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, MatchRelation):
            return NotImplemented
        return {u: vs for u, vs in self._sim.items()} == {
            u: vs for u, vs in other._sim.items()
        }

    def __hash__(self) -> int:  # pragma: no cover - relations are not hashed
        raise TypeError("MatchRelation is unhashable; use pair_set()")

    # ------------------------------------------------------------------
    def restricted_to(self, data_nodes: Set[Node]) -> "MatchRelation":
        """Project the relation onto a subset of data nodes.

        This is the projection step of ``dualFilter`` (line 1 of Fig. 5):
        the global dual-simulation relation is projected onto each ball.
        """
        return MatchRelation(
            {u: vs & data_nodes for u, vs in self._sim.items()}
        )

    def copy(self) -> "MatchRelation":
        """Independent deep copy."""
        return MatchRelation(self._sim)

    def contains_relation(self, other: "MatchRelation") -> bool:
        """True iff ``other ⊆ self`` as pair sets (maximality checks)."""
        return all(
            other._sim.get(u, set()) <= vs for u, vs in self._sim.items()
        ) and all(u in self._sim for u in other._sim)

    def clear(self) -> None:
        """Empty every sim set in place (relation collapse on failure)."""
        for vs in self._sim.values():
            vs.clear()

    def to_sim_dict(self) -> Dict[Node, Set[Node]]:
        """A fresh ``{pattern_node: set(data_nodes)}`` dictionary."""
        return {u: set(vs) for u, vs in self._sim.items()}

    def __repr__(self) -> str:
        total = len(self)
        return f"MatchRelation({len(self._sim)} pattern nodes, {total} pairs)"
