"""Match graphs — the result-graph representation of a match relation.

Section 2.2: given a relation ``S ⊆ Vq × V``, the *match graph* w.r.t. S is
the subgraph ``G[Vs, Es]`` of the data graph where ``Vs`` is the set of
data nodes appearing in S, and an edge ``(v, v′)`` is kept iff some pattern
edge ``(u, u′)`` has ``(u, v) ∈ S`` and ``(u′, v′) ∈ S``.

Note the edge condition is *existential over pattern edges*: a data edge
between two matched nodes is dropped unless it witnesses some pattern
edge.  This is what lets strong simulation exclude irrelevant structure
(e.g. the long AI/DM cycle of Fig. 1).
"""

from __future__ import annotations

from typing import Set, Tuple

from repro.core.digraph import DiGraph, Node
from repro.core.matchrel import MatchRelation
from repro.core.pattern import Pattern


def build_match_graph(
    pattern: Pattern,
    data: DiGraph,
    relation: MatchRelation,
) -> DiGraph:
    """Construct the match graph w.r.t. ``relation``.

    Runs in O(|Eq| · |E_matched|) in the worst case but is output-sensitive
    in practice: only edges between matched nodes are examined, and the
    smaller of the two candidate sets of each pattern edge drives the scan.
    """
    matched_nodes = relation.data_nodes()
    result = DiGraph()
    for node in matched_nodes:
        result.add_node(node, data.label(node))

    for u, u_prime in pattern.edges():
        sources = relation.matches_of_raw(u)
        targets = relation.matches_of_raw(u_prime)
        if not sources or not targets:
            continue
        # Scan from whichever side is cheaper: successors of the sources,
        # or predecessors of the targets.
        if len(sources) <= len(targets):
            for v in sources:
                for v_prime in data.successors_raw(v):
                    if v_prime in targets:
                        result.add_edge(v, v_prime)
        else:
            for v_prime in targets:
                for v in data.predecessors_raw(v_prime):
                    if v in sources:
                        result.add_edge(v, v_prime)
    return result


def match_graph_edge_set(
    pattern: Pattern,
    data: DiGraph,
    relation: MatchRelation,
) -> Set[Tuple[Node, Node]]:
    """The edge set of the match graph without materializing a DiGraph."""
    edges: Set[Tuple[Node, Node]] = set()
    for u, u_prime in pattern.edges():
        sources = relation.matches_of_raw(u)
        targets = relation.matches_of_raw(u_prime)
        if len(sources) <= len(targets):
            for v in sources:
                for v_prime in data.successors_raw(v):
                    if v_prime in targets:
                        edges.add((v, v_prime))
        else:
            for v_prime in targets:
                for v in data.predecessors_raw(v_prime):
                    if v in sources:
                        edges.add((v, v_prime))
    return edges


def relation_restricted_to_component(
    relation: MatchRelation,
    component: Set[Node],
) -> MatchRelation:
    """Project a relation onto one connected component of its match graph.

    Used by ``ExtractMaxPG``: the perfect subgraph is the component of the
    match graph containing the ball center, and the per-ball relation is
    correspondingly restricted (Theorem 2 guarantees the restriction is
    still a dual simulation).
    """
    return relation.restricted_to(component)
