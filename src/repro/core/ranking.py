"""Ranking perfect subgraphs (the paper's future work on top-k matches).

Section 6: "we are to find metrics to rank matches found by strong
simulation, to return top-ranked matches only."  This module provides
three complementary metrics and a combined scorer:

* **compactness** — how close the match's node count is to the pattern's
  (1.0 for a same-size match; a ball-sized blob scores low).  A compact
  match is closest to what isomorphism would have returned.
* **specificity** — the inverse of the average ``|sim(u)|``: a match
  where every pattern node has exactly one image is maximally specific.
* **coverage density** — the fraction of the match's edges that witness
  pattern edges *per pattern edge*: a match graph that realizes each
  pattern edge with few data edges is structurally tighter.

Scores are in (0, 1]; :func:`rank_matches` orders a
:class:`~repro.core.result.MatchResult` best-first and
:func:`top_k_matches` truncates it.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional

from repro.core.pattern import Pattern
from repro.core.result import MatchResult, PerfectSubgraph


@dataclass(frozen=True)
class RankingWeights:
    """Relative weights of the three metrics (normalized internally)."""

    compactness: float = 1.0
    specificity: float = 1.0
    density: float = 1.0

    def normalized(self) -> "RankingWeights":
        """Weights scaled to sum to 1 (uniform if all zero)."""
        total = self.compactness + self.specificity + self.density
        if total <= 0:
            return RankingWeights(1 / 3, 1 / 3, 1 / 3)
        return RankingWeights(
            self.compactness / total,
            self.specificity / total,
            self.density / total,
        )


def compactness(pattern: Pattern, subgraph: PerfectSubgraph) -> float:
    """``|Vq| / |Vs|`` — 1.0 when the match has exactly pattern size."""
    if subgraph.num_nodes == 0:
        return 0.0
    return min(1.0, pattern.num_nodes / subgraph.num_nodes)


def specificity(pattern: Pattern, subgraph: PerfectSubgraph) -> float:
    """Inverse mean sim-set size — 1.0 when every pattern node has one image."""
    sizes = [
        len(subgraph.relation.matches_of_raw(u)) for u in pattern.nodes()
    ]
    if not sizes or any(size == 0 for size in sizes):
        return 0.0
    return len(sizes) / sum(sizes)


def coverage_density(pattern: Pattern, subgraph: PerfectSubgraph) -> float:
    """``|Eq| / |Es|`` — 1.0 when each pattern edge has one witness edge."""
    if subgraph.num_edges == 0:
        return 1.0 if pattern.num_edges == 0 else 0.0
    return min(1.0, pattern.num_edges / subgraph.num_edges)


def score_match(
    pattern: Pattern,
    subgraph: PerfectSubgraph,
    weights: Optional[RankingWeights] = None,
) -> float:
    """The weighted combined score in (0, 1]."""
    w = (weights or RankingWeights()).normalized()
    return (
        w.compactness * compactness(pattern, subgraph)
        + w.specificity * specificity(pattern, subgraph)
        + w.density * coverage_density(pattern, subgraph)
    )


def rank_matches(
    result: MatchResult,
    weights: Optional[RankingWeights] = None,
) -> List[PerfectSubgraph]:
    """Perfect subgraphs ordered best-first by combined score.

    Ties break toward smaller matches (easier to inspect), then by the
    repr of the discovery center for determinism.
    """
    pattern = result.pattern

    def key(subgraph: PerfectSubgraph):
        return (
            -score_match(pattern, subgraph, weights),
            subgraph.num_nodes,
            repr(subgraph.center),
        )

    return sorted(result, key=key)


def top_k_matches(
    result: MatchResult,
    k: int,
    weights: Optional[RankingWeights] = None,
) -> List[PerfectSubgraph]:
    """The ``k`` best matches (fewer if the result is smaller)."""
    if k < 0:
        raise ValueError(f"k must be non-negative, got {k}")
    return rank_matches(result, weights)[:k]


def score_breakdown(
    pattern: Pattern,
    subgraph: PerfectSubgraph,
) -> Dict[str, float]:
    """All three metric values plus the default combined score."""
    return {
        "compactness": compactness(pattern, subgraph),
        "specificity": specificity(pattern, subgraph),
        "density": coverage_density(pattern, subgraph),
        "combined": score_match(pattern, subgraph),
    }
