"""Graph simulation ``Q ≺ G`` (Milner 1989; Henzinger et al. 1995).

A data graph ``G`` matches a pattern ``Q`` via graph simulation iff there
is a relation ``S ⊆ Vq × V`` such that matched nodes share labels and every
pattern edge ``(u, u′)`` is witnessed downward: for each ``(u, v) ∈ S``
there is an edge ``(v, v′)`` with ``(u′, v′) ∈ S``.  The *maximum* such
relation is unique and computable by fixpoint refinement; this module
provides both the naive fixpoint (a direct transcription of the pseudocode
in Fig. 3, restricted to the child direction) and an HHK-style worklist
algorithm that is the default because it avoids rescanning unchanged
pattern edges.

Both entry points return the maximum relation; if simulation fails (some
pattern node ends with no matches) the returned relation is empty, matching
line 10 of procedure ``DualSim`` in the paper.

Like the strong-simulation entry points, :func:`graph_simulation` takes an
``engine`` argument: ``"python"`` runs the reference worklist fixpoint
below, ``"kernel"`` runs the child-direction-only counter fixpoint of
:func:`repro.core.kernel.graph_simulation_kernel` over the compiled CSR
index, and ``"numpy"`` the vectorized variant
(:func:`repro.core.npkernel.graph_simulation_numpy`); ``"auto"``
(default) picks by graph size.  All compute the same unique maximum
relation.
"""

from __future__ import annotations

from collections import deque
from typing import Dict, Set

from repro.core.digraph import DiGraph, Node
from repro.core.kernel import graph_simulation_kernel, resolve_engine
from repro.core.npkernel import graph_simulation_numpy
from repro.core.matchrel import MatchRelation
from repro.core.pattern import Pattern


def initial_candidates(pattern: Pattern, data: DiGraph) -> Dict[Node, Set[Node]]:
    """``sim(u) = { v | l(v) = l(u) }`` — the label-compatible seeds.

    Lines 1–2 of procedure ``DualSim``.  Uses the data graph's label index,
    so the cost is proportional to the output, not to |V|·|Vq| — and the
    raw (copy-free) buckets, since ``set(...)`` copies anyway.
    """
    return {
        u: set(data.nodes_with_label_raw(pattern.label(u)))
        for u in pattern.nodes()
    }


def _collapse_if_failed(sim: Dict[Node, Set[Node]]) -> None:
    """If any sim set is empty, empty them all (simulation failed)."""
    if any(not candidates for candidates in sim.values()):
        for candidates in sim.values():
            candidates.clear()


def simulation_fixpoint_naive(
    pattern: Pattern,
    data: DiGraph,
    seeds: Dict[Node, Set[Node]] = None,
) -> MatchRelation:
    """Naive fixpoint: rescan every pattern edge until nothing changes.

    This is the literal pseudocode of Fig. 3 with only the child-direction
    checks (lines 4–6).  O(|Vq|·|Eq|·|V|·|E|) worst case; kept as the
    ablation baseline for the worklist variant.
    """
    sim = seeds if seeds is not None else initial_candidates(pattern, data)
    changed = True
    while changed:
        changed = False
        for u, u_prime in pattern.edges():
            targets = sim[u_prime]
            stale = [
                v
                for v in sim[u]
                if not any(v2 in targets for v2 in data.successors_raw(v))
            ]
            if stale:
                sim[u].difference_update(stale)
                changed = True
    _collapse_if_failed(sim)
    return MatchRelation(sim)


def simulation_fixpoint(
    pattern: Pattern,
    data: DiGraph,
    seeds: Dict[Node, Set[Node]] = None,
) -> MatchRelation:
    """Worklist refinement of graph simulation (the default algorithm).

    Each pattern node whose sim set shrank is queued; only the pattern
    edges incident to queued nodes are rescanned.  Equivalent output to
    :func:`simulation_fixpoint_naive`, with much better behavior on large
    patterns and data graphs — this matches the quadratic-time bound of
    Henzinger, Henzinger & Kopke (1995) up to the set-scan constant.
    """
    sim = seeds if seeds is not None else initial_candidates(pattern, data)
    queue = deque(pattern.nodes())
    queued: Set[Node] = set(queue)

    while queue:
        u_prime = queue.popleft()
        queued.discard(u_prime)
        targets = sim[u_prime]
        # Any parent u of u_prime in the pattern may now have stale matches.
        for u in pattern.predecessors(u_prime):
            candidates = sim[u]
            stale = [
                v
                for v in candidates
                if not any(v2 in targets for v2 in data.successors_raw(v))
            ]
            if not stale:
                continue
            candidates.difference_update(stale)
            if not candidates:
                _collapse_if_failed(sim)
                return MatchRelation(sim)
            if u not in queued:
                queue.append(u)
                queued.add(u)
    _collapse_if_failed(sim)
    return MatchRelation(sim)


def graph_simulation(
    pattern: Pattern, data: DiGraph, engine: str = "auto"
) -> MatchRelation:
    """The maximum match relation of ``Q ≺ G`` (empty if no match).

    ``engine`` selects the execution backend (``"auto"`` | ``"kernel"`` |
    ``"numpy"`` | ``"python"``); the relation is identical either way.
    """
    resolved = resolve_engine(engine, data)
    if resolved == "kernel":
        return graph_simulation_kernel(pattern, data)
    if resolved == "numpy":
        return graph_simulation_numpy(pattern, data)
    return simulation_fixpoint(pattern, data)


def matches_via_simulation(
    pattern: Pattern, data: DiGraph, engine: str = "auto"
) -> bool:
    """Decide ``Q ≺ G``."""
    return graph_simulation(pattern, data, engine=engine).is_total()


def is_simulation_relation(
    pattern: Pattern,
    data: DiGraph,
    relation: MatchRelation,
) -> bool:
    """Verify the simulation conditions for an arbitrary relation.

    A checker, independent of the fixpoint code, used by tests and by the
    bisimulation utilities: labels must agree on every pair, every pattern
    node must have a match, and every pattern edge must be witnessed
    downward from every pair.
    """
    for u in pattern.nodes():
        if not relation.matches_of_raw(u):
            return False
    for u, v in relation.pairs():
        if v not in data or pattern.label(u) != data.label(v):
            return False
        for u_prime in pattern.successors(u):
            targets = relation.matches_of_raw(u_prime)
            if not any(v2 in targets for v2 in data.successors_raw(v)):
                return False
    return True
