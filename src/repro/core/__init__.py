"""Core package: the paper's contribution and its graph substrate.

Re-exports the main entry points so that ``repro.core`` is usable without
knowing the module layout:

* data model — :class:`DiGraph`, :class:`Pattern`, :class:`Ball`;
* matching notions — :func:`graph_simulation`, :func:`dual_simulation`,
  :func:`match` (strong simulation), :func:`match_plus`;
* optimizations — :func:`minimize_pattern`, :func:`dual_filter`;
* extensions — :class:`BoundedPattern`, :func:`bounded_simulation`,
  :class:`RegularPattern`, :func:`regular_strong_match`, backed by the
  :class:`ReachIndex` distance labeling for the ``kernel`` engine.
"""

from repro.core.ball import Ball, extract_ball, extract_ball_restricted, iter_balls
from repro.core.bisim import (
    are_bisimilar,
    maximum_bisimulation,
    subgraph_bisimulation_exists,
)
from repro.core.bounded import (
    BoundedPattern,
    bounded_simulation,
    matches_via_bounded_simulation,
)
from repro.core.components import (
    connected_components,
    component_containing,
    strongly_connected_components,
)
from repro.core.digraph import DiGraph, GraphDelta
from repro.core.dualfilter import dual_filter
from repro.core.incremental import IncrementalDualSimulation, IncrementalMatcher
from repro.core.kernel import (
    NUMPY_AVAILABLE,
    GraphIndex,
    IndexStats,
    dual_simulation_kernel,
    get_index,
    index_maintenance,
    set_index_maintenance,
)
from repro.core.npkernel import dual_simulation_numpy, graph_simulation_numpy
from repro.core.indexing import IndexedMatcher, NeighborhoodLabelIndex
from repro.core.reach import (
    PATH_ENGINES,
    ReachIndex,
    get_reach_index,
    resolve_path_engine,
)
from repro.core.regex import (
    LabelNfa,
    LazyDfa,
    compile_regex,
    regex_predecessors,
    regex_successors,
    reversed_nfa,
)
from repro.core.regular import (
    RegularPattern,
    hop_bounded_pattern,
    regular_dual_simulation,
    regular_strong_match,
)
from repro.core.ranking import (
    RankingWeights,
    rank_matches,
    score_breakdown,
    score_match,
    top_k_matches,
)
from repro.core.dualsim import (
    dual_simulation,
    dual_simulation_naive,
    is_dual_simulation_relation,
    matches_via_dual_simulation,
)
from repro.core.matchgraph import build_match_graph
from repro.core.matchrel import MatchRelation
from repro.core.matchplus import MatchPlusOptions, match_plus
from repro.core.minimize import (
    MinimizedPattern,
    dual_equivalence_classes,
    minimize_pattern,
    patterns_dual_equivalent,
)
from repro.core.pattern import Pattern
from repro.core.result import MatchResult, PerfectSubgraph
from repro.core.simulation import (
    graph_simulation,
    is_simulation_relation,
    matches_via_simulation,
    simulation_fixpoint,
    simulation_fixpoint_naive,
)
from repro.core.strong import (
    candidate_centers,
    extract_max_perfect_subgraph,
    match,
    matches_via_strong_simulation,
)
from repro.core.traversal import (
    diameter_undirected,
    has_directed_cycle,
    has_undirected_cycle,
    is_connected_undirected,
    undirected_distances,
)

__all__ = [
    "Ball",
    "BoundedPattern",
    "DiGraph",
    "NUMPY_AVAILABLE",
    "GraphDelta",
    "GraphIndex",
    "IndexStats",
    "IncrementalDualSimulation",
    "IncrementalMatcher",
    "IndexedMatcher",
    "LabelNfa",
    "LazyDfa",
    "NeighborhoodLabelIndex",
    "PATH_ENGINES",
    "RankingWeights",
    "ReachIndex",
    "RegularPattern",
    "compile_regex",
    "get_reach_index",
    "hop_bounded_pattern",
    "regex_predecessors",
    "regex_successors",
    "resolve_path_engine",
    "reversed_nfa",
    "regular_dual_simulation",
    "regular_strong_match",
    "rank_matches",
    "score_breakdown",
    "score_match",
    "top_k_matches",
    "MatchPlusOptions",
    "MatchRelation",
    "MatchResult",
    "MinimizedPattern",
    "Pattern",
    "PerfectSubgraph",
    "are_bisimilar",
    "bounded_simulation",
    "build_match_graph",
    "candidate_centers",
    "component_containing",
    "connected_components",
    "diameter_undirected",
    "dual_equivalence_classes",
    "dual_filter",
    "dual_simulation",
    "dual_simulation_kernel",
    "dual_simulation_naive",
    "dual_simulation_numpy",
    "graph_simulation_numpy",
    "extract_ball",
    "extract_ball_restricted",
    "extract_max_perfect_subgraph",
    "get_index",
    "index_maintenance",
    "set_index_maintenance",
    "graph_simulation",
    "has_directed_cycle",
    "has_undirected_cycle",
    "is_connected_undirected",
    "is_dual_simulation_relation",
    "is_simulation_relation",
    "iter_balls",
    "match",
    "match_plus",
    "matches_via_bounded_simulation",
    "matches_via_dual_simulation",
    "matches_via_simulation",
    "matches_via_strong_simulation",
    "maximum_bisimulation",
    "minimize_pattern",
    "patterns_dual_equivalent",
    "simulation_fixpoint",
    "simulation_fixpoint_naive",
    "strongly_connected_components",
    "subgraph_bisimulation_exists",
    "undirected_distances",
]
