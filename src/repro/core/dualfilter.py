"""Dual-simulation filtering — algorithm ``dualFilter`` (Fig. 5).

The key observation (Section 4.2): compute the maximum dual-simulation
relation ``S_G`` over the *whole* data graph once, then for each ball
*project* ``S_G`` onto the ball and only *remove* matches invalidated by
the ball boundary.  Deletions are much cheaper to propagate than the full
per-ball fixpoint, and Proposition 5 localizes the work: every node at
distance < r from the center keeps all of its data-graph neighbors inside
the ball, so only *border nodes* (distance exactly r) can have lost a
witness — the removal process starts from them and touches only nodes
transitively affected.

The pseudocode of Fig. 5 contains a typo in its child-direction recheck
(line 14 repeats the border test instead of testing ``pred(v1) ∩ sim(u)``);
we implement the intended semantics — after removing ``(u, v)``, a child
pair ``(u1, v1)`` becomes invalid iff ``v1`` no longer has any parent in
``sim(u)`` — and verify equivalence with the unoptimized ``Match`` in the
test suite.

This is the *reference* implementation of the refinement.  The kernel
engine (:mod:`repro.core.kernel`) reaches the same unique fixpoint with
per-(pattern-edge, data-node) witness counters over CSR arrays — removals
cascade when a count hits zero instead of re-running the ``any(...)``
scans below — and is what ``match_plus(engine="kernel")`` executes.
"""

from __future__ import annotations

from collections import deque
from typing import Deque, Dict, FrozenSet, Optional, Set, Tuple

from repro.core.ball import Ball
from repro.core.digraph import DiGraph, Node
from repro.core.matchrel import MatchRelation
from repro.core.pattern import Pattern
from repro.core.result import PerfectSubgraph
from repro.core.strong import extract_max_perfect_subgraph

Pair = Tuple[Node, Node]


def _pair_is_valid(
    pattern_succ: Dict[Node, FrozenSet[Node]],
    pattern_pred: Dict[Node, FrozenSet[Node]],
    ball_graph: DiGraph,
    sim: Dict[Node, Set[Node]],
    u: Node,
    v: Node,
) -> bool:
    """Check the dual-simulation conditions for one pair inside the ball.

    Takes the pattern adjacency pre-materialized as dicts: this check runs
    once per border-node pair, and ``Pattern.successors``/``predecessors``
    would rebuild a frozenset on every call.
    """
    for u1 in pattern_succ[u]:
        targets = sim[u1]
        if not any(v1 in targets for v1 in ball_graph.successors_raw(v)):
            return False
    for u2 in pattern_pred[u]:
        sources = sim[u2]
        if not any(v2 in sources for v2 in ball_graph.predecessors_raw(v)):
            return False
    return True


def dual_filter(
    pattern: Pattern,
    global_relation: MatchRelation,
    ball: Ball,
    extra_removals: Optional[Set[Pair]] = None,
) -> Optional[PerfectSubgraph]:
    """Algorithm ``dualFilter``: per-ball refinement of the global relation.

    Parameters
    ----------
    pattern:
        The pattern ``Q`` (already minimized by the caller, if desired).
    global_relation:
        The maximum dual-simulation relation of ``Q`` on the full data
        graph ``G``.
    ball:
        The ball ``Ĝ[w, d_Q]`` under consideration, with border metadata.
    extra_removals:
        Additional pairs to remove and propagate before the border scan —
        used by ``Match+`` to feed connectivity-pruning removals through
        the same deletion cascade.

    Returns
    -------
    Optional[PerfectSubgraph]
        The maximum perfect subgraph of the ball, or ``None``.
    """
    ball_nodes = set(ball.graph.nodes())
    # Line 1: project S_G onto the ball.
    sim: Dict[Node, Set[Node]] = {
        u: global_relation.matches_of_raw(u) & ball_nodes
        for u in pattern.nodes()
    }
    if any(not candidates for candidates in sim.values()):
        return None

    ball_graph = ball.graph
    border = ball.border_nodes
    pattern_nodes = list(pattern.nodes())
    pattern_succ = {u: pattern.successors(u) for u in pattern_nodes}
    pattern_pred = {u: pattern.predecessors(u) for u in pattern_nodes}

    # Lines 2–5: seed the filter queue from border-node pairs that lost a
    # witness to the ball boundary (Proposition 5 — only these can start
    # the cascade).
    filter_queue: Deque[Pair] = deque()
    enqueued: Set[Pair] = set()
    if extra_removals:
        for pair in extra_removals:
            if pair not in enqueued:
                filter_queue.append(pair)
                enqueued.add(pair)
    for u in pattern_nodes:
        for v in sim[u]:
            if v not in border:
                continue
            if not _pair_is_valid(
                pattern_succ, pattern_pred, ball_graph, sim, u, v
            ):
                pair = (u, v)
                filter_queue.append(pair)
                enqueued.add(pair)

    # Lines 6–15: propagate removals.
    while filter_queue:
        u, v = filter_queue.popleft()
        if v not in sim[u]:
            continue
        sim[u].discard(v)
        if not sim[u]:
            return None  # line 16: some pattern node has no match left
        # Parent direction: pairs (u2, v2) with pattern edge (u2, u) and
        # data edge (v2, v) may have lost their only child witness.
        for u2 in pattern_pred[u]:
            candidates = sim[u2]
            targets = sim[u]
            for v2 in ball_graph.predecessors_raw(v):
                if v2 not in candidates or (u2, v2) in enqueued:
                    continue
                if not any(x in targets for x in ball_graph.successors_raw(v2)):
                    filter_queue.append((u2, v2))
                    enqueued.add((u2, v2))
        # Child direction: pairs (u1, v1) with pattern edge (u, u1) and
        # data edge (v, v1) may have lost their only parent witness.
        for u1 in pattern_succ[u]:
            candidates = sim[u1]
            sources = sim[u]
            for v1 in ball_graph.successors_raw(v):
                if v1 not in candidates or (u1, v1) in enqueued:
                    continue
                if not any(x in sources for x in ball_graph.predecessors_raw(v1)):
                    filter_queue.append((u1, v1))
                    enqueued.add((u1, v1))

    relation = MatchRelation(sim)
    if relation.is_empty():
        return None
    # Line 17: extract the perfect subgraph of this ball.
    return extract_max_perfect_subgraph(pattern, ball, relation)
