"""Dual simulation ``Q ≺_D G`` — simulation plus the duality condition.

Section 2.2: ``Q ≺_D G`` iff ``Q ≺ G`` with a relation ``S`` that is also
closed under the *parent* direction — for each ``(u, v) ∈ S`` and each
pattern edge ``(u₂, u)``, some data edge ``(v₂, v)`` exists with
``(u₂, v₂) ∈ S``.  Lemma 1: the maximum dual-simulation relation is unique,
which is what the fixpoints below compute.

Two equivalent implementations are provided:

* :func:`dual_simulation_naive` — the pseudocode of procedure ``DualSim``
  in Fig. 3, verbatim (repeat-until-no-change over all pattern edges, both
  directions);
* :func:`dual_simulation` — a worklist variant that only revisits pattern
  nodes whose candidate sets shrank, used everywhere by default.

Both run in O((|Vq| + |Eq|) (|V| + |E|)) per the paper's analysis.

These are the *reference* fixpoints: readable, set-based, and used as the
ground truth by the equivalence tests.  The production hot path lives in
:mod:`repro.core.kernel` (``dual_simulation_kernel``), which computes the
same unique maximum relation (Lemma 1) with a counter-based
deletion-propagation fixpoint over CSR integer arrays instead of the
repeated ``any(...)`` witness scans below.
"""

from __future__ import annotations

from collections import deque
from typing import Dict, Optional, Set

from repro.core.digraph import DiGraph, Node
from repro.core.matchrel import MatchRelation
from repro.core.pattern import Pattern
from repro.core.simulation import _collapse_if_failed, initial_candidates


def dual_simulation_naive(
    pattern: Pattern,
    data: DiGraph,
    seeds: Optional[Dict[Node, Set[Node]]] = None,
) -> MatchRelation:
    """Literal transcription of procedure ``DualSim`` (Fig. 3).

    Lines 3–10: while anything changes, drop ``v`` from ``sim(u)`` when a
    child edge ``(u, u′)`` has no witness ``(v, v′)`` with ``v′ ∈ sim(u′)``
    (lines 4–6), or a parent edge ``(u′, u)`` has no witness ``(v′, v)``
    with ``v′ ∈ sim(u′)`` (lines 7–9).
    """
    sim = seeds if seeds is not None else initial_candidates(pattern, data)
    changed = True
    while changed:
        changed = False
        for u, u_prime in pattern.edges():
            # Child direction: v in sim(u) needs a successor in sim(u').
            targets = sim[u_prime]
            stale = [
                v
                for v in sim[u]
                if not any(v2 in targets for v2 in data.successors_raw(v))
            ]
            if stale:
                sim[u].difference_update(stale)
                changed = True
            # Parent direction: v' in sim(u') needs a predecessor in sim(u).
            sources = sim[u]
            stale = [
                v_prime
                for v_prime in sim[u_prime]
                if not any(v2 in sources for v2 in data.predecessors_raw(v_prime))
            ]
            if stale:
                sim[u_prime].difference_update(stale)
                changed = True
        if any(not candidates for candidates in sim.values()):
            break
    _collapse_if_failed(sim)
    return MatchRelation(sim)


def dual_simulation(
    pattern: Pattern,
    data: DiGraph,
    seeds: Optional[Dict[Node, Set[Node]]] = None,
) -> MatchRelation:
    """Worklist dual simulation — the default implementation.

    A pattern node is queued when its candidate set shrinks; dequeuing it
    rechecks only the pattern edges incident to it (parents check their
    child-witness, children check their parent-witness).  The result is
    the unique maximum dual-simulation relation (Lemma 1), or the empty
    relation when ``Q ⊀_D G``.
    """
    sim = seeds if seeds is not None else initial_candidates(pattern, data)
    queue = deque(pattern.nodes())
    queued: Set[Node] = set(queue)
    # Hoist the pattern adjacency: Pattern.successors/predecessors build a
    # fresh frozenset per call, which the dequeue loop would otherwise pay
    # on every iteration.
    pattern_pred = {u: pattern.predecessors(u) for u in pattern.nodes()}
    pattern_succ = {u: pattern.successors(u) for u in pattern.nodes()}

    def shrink(u: Node, stale: list) -> bool:
        """Remove stale candidates from sim(u); return False on collapse."""
        sim[u].difference_update(stale)
        if not sim[u]:
            return False
        if u not in queued:
            queue.append(u)
            queued.add(u)
        return True

    while queue:
        w = queue.popleft()
        queued.discard(w)
        w_candidates = sim[w]
        # Parents u of w: every v in sim(u) needs a child in sim(w).
        for u in pattern_pred[w]:
            stale = [
                v
                for v in sim[u]
                if not any(v2 in w_candidates for v2 in data.successors_raw(v))
            ]
            if stale and not shrink(u, stale):
                _collapse_if_failed(sim)
                return MatchRelation(sim)
        # Children u of w: every v in sim(u) needs a parent in sim(w).
        for u in pattern_succ[w]:
            stale = [
                v
                for v in sim[u]
                if not any(v2 in w_candidates for v2 in data.predecessors_raw(v))
            ]
            if stale and not shrink(u, stale):
                _collapse_if_failed(sim)
                return MatchRelation(sim)
    _collapse_if_failed(sim)
    return MatchRelation(sim)


def matches_via_dual_simulation(pattern: Pattern, data: DiGraph) -> bool:
    """Decide ``Q ≺_D G``."""
    return dual_simulation(pattern, data).is_total()


def is_dual_simulation_relation(
    pattern: Pattern,
    data: DiGraph,
    relation: MatchRelation,
) -> bool:
    """Independent checker for the dual-simulation conditions.

    Verifies label agreement, totality on the pattern side, downward
    witnesses for every pattern edge and upward witnesses for every
    pattern edge — used by property tests to validate the fixpoints.
    """
    for u in pattern.nodes():
        if not relation.matches_of_raw(u):
            return False
    for u, v in relation.pairs():
        if v not in data or pattern.label(u) != data.label(v):
            return False
        for u_prime in pattern.successors(u):
            targets = relation.matches_of_raw(u_prime)
            if not any(v2 in targets for v2 in data.successors_raw(v)):
                return False
        for u2 in pattern.predecessors(u):
            sources = relation.matches_of_raw(u2)
            if not any(v2 in sources for v2 in data.predecessors_raw(v)):
                return False
    return True
