"""Connected components and strongly connected components.

``ExtractMaxPG`` (Fig. 3 of the paper) needs the connected component of the
match graph that contains the ball center; the pruning optimization of
Section 4.2 needs components restricted to candidate nodes.  Both are
undirected components.  Tarjan's strongly-connected-components algorithm is
also provided: the paper notes that finding pairwise disconnected
components is linear-time equivalent to finding SCCs, and the bisimulation
utilities use SCCs as well.
"""

from __future__ import annotations

from typing import Dict, Iterator, List, Set, Tuple

from repro.core.digraph import DiGraph, Node
from repro.core.traversal import undirected_distances
from repro.exceptions import NodeNotFound


def connected_components(graph: DiGraph) -> List[Set[Node]]:
    """All undirected connected components, each as a node set."""
    seen: Set[Node] = set()
    components: List[Set[Node]] = []
    for node in graph.nodes():
        if node in seen:
            continue
        component = set(undirected_distances(graph, node))
        seen.update(component)
        components.append(component)
    return components


def component_containing(graph: DiGraph, node: Node) -> Set[Node]:
    """The undirected connected component of ``node``."""
    if node not in graph:
        raise NodeNotFound(node)
    return set(undirected_distances(graph, node))


def component_containing_restricted(
    graph: DiGraph,
    node: Node,
    allowed: Set[Node],
) -> Set[Node]:
    """The component of ``node`` in the subgraph induced by ``allowed``.

    This is the primitive behind connectivity pruning (Section 4.2,
    Example 6): candidate nodes that are not undirected-reachable from the
    ball center *within the candidate set* can never join the perfect
    subgraph, so they are removed early.
    """
    if node not in allowed:
        return set()
    component: Set[Node] = {node}
    stack = [node]
    while stack:
        current = stack.pop()
        for neighbor in graph.successors_raw(current) | graph.predecessors_raw(current):
            if neighbor in allowed and neighbor not in component:
                component.add(neighbor)
                stack.append(neighbor)
    return component


def strongly_connected_components(graph: DiGraph) -> List[Set[Node]]:
    """Tarjan's algorithm, iterative formulation.

    Returns SCCs in reverse topological order of the condensation.
    """
    index_counter = 0
    indices: Dict[Node, int] = {}
    lowlinks: Dict[Node, int] = {}
    on_stack: Set[Node] = set()
    stack: List[Node] = []
    result: List[Set[Node]] = []

    for root in graph.nodes():
        if root in indices:
            continue
        work: List[Tuple[Node, Iterator[Node]]] = [(root, iter(graph.successors_raw(root)))]
        indices[root] = lowlinks[root] = index_counter
        index_counter += 1
        stack.append(root)
        on_stack.add(root)
        while work:
            node, children = work[-1]
            advanced = False
            for child in children:
                if child not in indices:
                    indices[child] = lowlinks[child] = index_counter
                    index_counter += 1
                    stack.append(child)
                    on_stack.add(child)
                    work.append((child, iter(graph.successors_raw(child))))
                    advanced = True
                    break
                if child in on_stack:
                    lowlinks[node] = min(lowlinks[node], indices[child])
            if advanced:
                continue
            work.pop()
            if work:
                parent = work[-1][0]
                lowlinks[parent] = min(lowlinks[parent], lowlinks[node])
            if lowlinks[node] == indices[node]:
                scc: Set[Node] = set()
                while True:
                    member = stack.pop()
                    on_stack.discard(member)
                    scc.add(member)
                    if member == node:
                        break
                result.append(scc)
    return result


def condensation(graph: DiGraph) -> Tuple[DiGraph, Dict[Node, int]]:
    """The condensation DAG of ``graph`` plus the node -> SCC-id mapping.

    SCC nodes in the condensation are labeled by the frozenset of labels of
    their members, which is enough for the structural uses in this library.
    """
    sccs = strongly_connected_components(graph)
    membership: Dict[Node, int] = {}
    for scc_id, scc in enumerate(sccs):
        for node in scc:
            membership[node] = scc_id
    dag = DiGraph()
    for scc_id, scc in enumerate(sccs):
        dag.add_node(scc_id, frozenset(graph.label(node) for node in scc))
    for source, target in graph.edges():
        src_id, dst_id = membership[source], membership[target]
        if src_id != dst_id:
            dag.add_edge(src_id, dst_id)
    return dag, membership
