"""Regular-expression pattern matching — the [18]-style extension.

The paper's Remark (Section 2.2) defers to the full report the extension
of strong simulation "by supporting bounds on the number of hops and
regular expressions as edge constraints"; reference [18] (Fan et al.,
ICDE 2011) defines the semantics this module follows, adapted to
node-labeled graphs:

* a :class:`RegularPattern` attaches to each pattern edge a regex over
  node labels constraining the *intermediate* nodes of the witnessing
  path (empty word = direct edge), plus an optional hop bound;
* :func:`regular_dual_simulation` computes the maximum relation
  preserving both directions (children *and* parents, the paper's
  duality) under those path semantics;
* :func:`regular_strong_match` adds the locality condition: matches are
  confined to balls of a caller-chosen radius (there is no single
  canonical radius once edges stretch into paths; the natural default —
  used here — is ``d_Q`` times the largest finite hop bound, falling
  back to ``d_Q`` when every bound is 1).

With every edge regex equal to the empty expression (direct edges only)
the functions coincide with :func:`~repro.core.dualsim.dual_simulation`
and strong simulation respectively — property-tested in the suite.

Two-path architecture
---------------------
Both matchers carry an ``engine`` seam.  The ``python`` reference path
in this module walks the product graph with fresh NFA state-sets per
query (kept verbatim as ground truth).  The ``kernel`` path
(:mod:`repro.core.reach`) compiles each regex once into an interned
lazy DFA, classifies every pattern edge — direct edges become CSR row
tests, the wildcard ``.*`` becomes distance probes against the
:class:`~repro.core.reach.ReachIndex` 2-hop labeling, general regexes
become memoized DFA product walks — and runs the same fixpoint over
integer candidate sets.  The index is shared with bounded simulation
and patched in place across edge insertions, so the kernel path
amortizes under the same conditions (repeat queries, non-tiny graphs,
update-heavy workloads); outputs are identical by the uniqueness of the
maximum relation, enforced differentially in
``tests/test_paths_equivalence.py``.
"""

from __future__ import annotations

from collections import deque
from typing import Dict, Mapping, Optional, Set, Tuple

from repro.core.ball import extract_ball
from repro.core.digraph import DiGraph, Node
from repro.core.matchrel import MatchRelation
from repro.core.pattern import Pattern
from repro.core.reach import (
    regular_dual_simulation_kernel,
    regular_strong_match_kernel,
    resolve_path_engine,
)
from repro.core.regex import LabelNfa, compile_regex, regex_successors
from repro.core.result import MatchResult, PerfectSubgraph
from repro.core.simulation import _collapse_if_failed, initial_candidates
from repro.core.traversal import undirected_distances
from repro.exceptions import PatternError

Edge = Tuple[Node, Node]


class RegularPattern:
    """A pattern whose edges carry label-regex constraints and hop bounds.

    ``constraints`` maps pattern edges to regex source strings (see
    :mod:`repro.core.regex` for the syntax); missing edges default to the
    empty regex (a direct edge).  ``bounds`` optionally caps the hop count
    per edge (``None`` = unbounded).
    """

    __slots__ = ("pattern", "nfas", "bounds", "sources")

    def __init__(
        self,
        pattern: Pattern,
        constraints: Optional[Mapping[Edge, str]] = None,
        bounds: Optional[Mapping[Edge, Optional[int]]] = None,
    ) -> None:
        self.pattern = pattern
        edges = set(pattern.edges())
        self.sources: Dict[Edge, str] = {}
        self.nfas: Dict[Edge, LabelNfa] = {}
        self.bounds: Dict[Edge, Optional[int]] = {}
        for edge, expression in (constraints or {}).items():
            if edge not in edges:
                raise PatternError(f"constraint given for non-edge {edge!r}")
            self.sources[edge] = expression
        for edge, bound in (bounds or {}).items():
            if edge not in edges:
                raise PatternError(f"bound given for non-edge {edge!r}")
            if bound is not None and bound < 1:
                raise PatternError(f"bound for {edge!r} must be >= 1 or None")
            self.bounds[edge] = bound
        for edge in edges:
            self.sources.setdefault(edge, "")
            self.nfas[edge] = compile_regex(self.sources[edge])
            # A plain (empty-regex) edge is a single hop by definition.
            self.bounds.setdefault(
                edge, 1 if self.sources[edge].strip() == "" else None
            )

    def default_radius(self) -> int:
        """``d_Q`` scaled by the largest finite hop bound (the natural
        locality radius once edges stretch into bounded paths)."""
        finite = [b for b in self.bounds.values() if b is not None]
        scale = max(finite) if finite else 1
        return self.pattern.diameter * scale

    def __repr__(self) -> str:
        constrained = sum(1 for s in self.sources.values() if s.strip())
        return (
            f"RegularPattern({self.pattern!r}, {constrained} regex edges)"
        )


def _witness_cache_successors(
    rpattern: RegularPattern,
    data: DiGraph,
) -> Dict[Edge, Dict[Node, Set[Node]]]:
    """Per pattern edge, memoized regex-successor sets by source node."""
    return {edge: {} for edge in rpattern.pattern.edges()}


def regular_dual_simulation(
    rpattern: RegularPattern,
    data: DiGraph,
    engine: str = "auto",
) -> MatchRelation:
    """The maximum dual-simulation relation under regex path semantics.

    Fixpoint refinement: ``v ∈ sim(u)`` needs, for each pattern edge
    ``(u, u′)``, some ``v′ ∈ sim(u′)`` with a regex-matching path
    ``v → v′`` (and symmetrically a regex-matching path into ``v`` for
    each pattern edge entering ``u``).  Regex reachability is memoized
    per (edge, node).

    ``engine`` selects the evaluation path (``"auto"``, ``"python"``,
    ``"kernel"`` — see the module docstring); every engine returns the
    same relation.
    """
    if resolve_path_engine(engine, data) == "kernel":
        return regular_dual_simulation_kernel(rpattern, data)
    pattern = rpattern.pattern
    sim = initial_candidates(pattern, data)
    succ_cache: Dict[Edge, Dict[Node, Set[Node]]] = _witness_cache_successors(
        rpattern, data
    )

    def reachable(edge: Edge, source: Node) -> Set[Node]:
        cache = succ_cache[edge]
        hit = cache.get(source)
        if hit is None:
            hit = regex_successors(
                data, source, rpattern.nfas[edge], rpattern.bounds[edge]
            )
            cache[source] = hit
        return hit

    queue = deque(pattern.nodes())
    queued: Set[Node] = set(queue)
    while queue:
        w = queue.popleft()
        queued.discard(w)
        w_candidates = sim[w]

        def requeue(u: Node) -> None:
            if u not in queued:
                queue.append(u)
                queued.add(u)

        # Parents u of w: v in sim(u) needs regex path into sim(w).
        for u in pattern.predecessors(w):
            edge = (u, w)
            stale = [
                v
                for v in sim[u]
                if not (reachable(edge, v) & w_candidates)
            ]
            if stale:
                sim[u].difference_update(stale)
                if not sim[u]:
                    _collapse_if_failed(sim)
                    return MatchRelation(sim)
                requeue(u)
        # Children u of w: v in sim(u) needs a regex path *from* sim(w).
        for u in pattern.successors(w):
            edge = (w, u)
            stale = [
                v
                for v in sim[u]
                if not any(
                    v in reachable(edge, v2) for v2 in w_candidates
                )
            ]
            if stale:
                sim[u].difference_update(stale)
                if not sim[u]:
                    _collapse_if_failed(sim)
                    return MatchRelation(sim)
                requeue(u)
    _collapse_if_failed(sim)
    return MatchRelation(sim)


def _regular_match_graph(
    rpattern: RegularPattern,
    data: DiGraph,
    relation: MatchRelation,
) -> DiGraph:
    """Match graph under path semantics: an edge per witnessed pattern
    edge, drawn between the endpoint matches (path interiors are not
    materialized — as in [18], the result graph is over matched nodes)."""
    result = DiGraph()
    for node in relation.data_nodes():
        result.add_node(node, data.label(node))
    for edge in rpattern.pattern.edges():
        u, u_prime = edge
        targets = relation.matches_of_raw(u_prime)
        for v in relation.matches_of_raw(u):
            witnesses = regex_successors(
                data, v, rpattern.nfas[edge], rpattern.bounds[edge]
            )
            for v_prime in witnesses & targets:
                result.add_edge(v, v_prime)
    return result


def hop_bounded_pattern(
    pattern: Pattern,
    bounds: Mapping[Edge, Optional[int]],
) -> RegularPattern:
    """The Remark's other extension: plain hop bounds on pattern edges.

    Equivalent to a :class:`RegularPattern` whose bounded edges carry the
    wildcard regex ``.*`` (any intermediate labels) with the given hop
    bound — i.e. bounded simulation semantics per edge, but with duality
    and locality still enforced by :func:`regular_strong_match`.
    """
    constraints = {
        edge: ".*" for edge, bound in bounds.items() if bound != 1
    }
    return RegularPattern(pattern, constraints, bounds)


def regular_strong_match(
    rpattern: RegularPattern,
    data: DiGraph,
    radius: Optional[int] = None,
    engine: str = "auto",
) -> MatchResult:
    """Strong simulation with regex edge constraints.

    Per ball: regular dual simulation, then the connected component of
    the (path-semantics) match graph containing the center.

    ``engine`` selects the evaluation path (``"auto"``, ``"python"``,
    ``"kernel"`` — see the module docstring); every engine returns the
    same result set.
    """
    if resolve_path_engine(engine, data) == "kernel":
        return regular_strong_match_kernel(rpattern, data, radius)
    pattern = rpattern.pattern
    if radius is None:
        radius = rpattern.default_radius()
    result = MatchResult(pattern)
    global_relation = regular_dual_simulation(rpattern, data)
    if global_relation.is_empty():
        return result
    for center in sorted(global_relation.data_nodes(), key=repr):
        ball = extract_ball(data, center, radius)
        relation = regular_dual_simulation(rpattern, ball.graph)
        if relation.is_empty():
            continue
        center_matched = any(
            center in relation.matches_of_raw(u) for u in pattern.nodes()
        )
        if not center_matched:
            continue
        match_graph = _regular_match_graph(rpattern, ball.graph, relation)
        component = set(undirected_distances(match_graph, center))
        subgraph = match_graph.subgraph(component)
        restricted = relation.restricted_to(component)
        result.add(PerfectSubgraph(subgraph, restricted, center))
    return result
