"""Vectorized NumPy execution engine over the flat CSR rows.

The kernel engine (:mod:`repro.core.kernel`) already compiles every data
graph into integer ids plus CSR adjacency rows, but walks them with
per-node Python loops — the dominant remaining constant factor at scale.
This module keeps the *same* compiled indexes (:class:`GraphIndex`,
and the per-site :class:`~repro.distributed.sitekernel.SiteGraphIndex`)
and re-implements the inner engines as whole-array passes:

* ball extraction is a frontier BFS over ``indptr``/``indices`` gathers
  with a boolean membership stamp per layer;
* every per-ball pass is *compacted* first: ball members are remapped to
  a dense ``0..m-1`` id space and their CSR rows re-pointed into a
  ball-local adjacency, so the per-ball fixpoint costs ``O(ball)``
  instead of ``O(|V|)`` (dropping edges to non-members is sound because
  candidates are always ball members, so a non-member can never be a
  witness);
* the HHK witness-counter fixpoint becomes ``np.add.at`` scatter
  decrements against per-edge count arrays, with boolean pending masks
  as the worklist;
* the label-seed mass extinction is a label-partition mask intersection
  instead of per-node set construction;
* intermediate id streams are deduplicated by sorted-array uniquing
  (``np.unique``) rather than hash sets.

The array view of an index (:class:`_ArrayView`) is built lazily from
the list-of-lists rows and cached on the index itself
(``index._np_view``); every row mutation — incremental sync, site
materialization, owned-fragment updates — drops the cache, so a stale
view can never be served.

Output identity with the other two engines is by construction: the
maximum (dual) simulation relation is the unique greatest fixpoint below
the label seeds (Lemma 1), so the round-based simultaneous removal
performed here converges to exactly the relation the kernel's
one-at-a-time worklist computes; ball membership, pruning and result
extraction reuse the kernel's own primitives and dedup keys.  Because
the heavy passes run inside NumPy ufuncs, they release the GIL for most
of their runtime — ``backend="threads"`` in the distributed runtime can
actually scale with cores under this engine.

This module imports cleanly *without* numpy installed (``np`` is then
``None``); :func:`repro.core.kernel.resolve_engine` refuses
``engine="numpy"`` up front in that case, and every entry point here
fails loud as a backstop.
"""

from __future__ import annotations

from typing import Dict, FrozenSet, Iterable, List, Optional, Set, Tuple

try:
    import numpy as np
except ImportError:  # pragma: no cover - exercised via a subprocess test
    np = None

from repro.core.digraph import DiGraph, Label, Node
from repro.core.kernel import (
    _DEAD,
    GraphIndex,
    GrowableCSRIndex,
    Pair,
    _CompiledPattern,
    _extract_perfect_subgraph,
    _resolve_centers,
    get_index,
)
from repro.core.matchrel import MatchRelation
from repro.core.pattern import Pattern
from repro.core.result import MatchResult
from repro.exceptions import GraphError, MatchingError
from repro.obs.trace import span as _obs_span

__all__ = [
    "np_match",
    "np_match_plus",
    "np_matches_via_strong_simulation",
    "dual_simulation_numpy",
    "graph_simulation_numpy",
    "np_dual_sim_ids",
    "np_evaluate_ball",
    "dual_fixpoint_id_sets",
    "get_array_view",
]


def _require_numpy() -> None:
    if np is None:  # pragma: no cover - resolve_engine blocks earlier
        raise MatchingError(
            "engine='numpy' requires numpy, which is not installed; "
            "use engine='kernel' or engine='python' instead"
        )


# ======================================================================
# Array view of a GrowableCSRIndex
# ======================================================================
class _ArrayView:
    """Immutable flat-array snapshot of an index's CSR rows.

    Three classic CSR pairs (forward, reverse, undirected) as int64
    arrays, plus a lazy cache of per-label boolean membership masks.
    The view is valid exactly as long as the owning index's rows are
    unmutated — the index drops its cached view on every mutation.
    """

    __slots__ = (
        "n",
        "fwd_indptr",
        "fwd_indices",
        "rev_indptr",
        "rev_indices",
        "und_indptr",
        "und_indices",
        "label_masks",
    )

    def __init__(self, index: GrowableCSRIndex) -> None:
        n = len(index.labels)
        self.n = n
        self.fwd_indptr, self.fwd_indices = _pack_rows(index.fwd_rows, n)
        self.rev_indptr, self.rev_indices = _pack_rows(index.rev_rows, n)
        self.und_indptr, self.und_indices = _pack_rows(index.und_rows, n)
        self.label_masks: Dict[Label, "np.ndarray"] = {}


def _pack_rows(
    rows: List[List[int]], n: int
) -> Tuple["np.ndarray", "np.ndarray"]:
    """Flatten list-of-lists adjacency into a CSR (indptr, indices) pair."""
    lens = np.fromiter(map(len, rows), dtype=np.int64, count=n)
    indptr = np.zeros(n + 1, dtype=np.int64)
    np.cumsum(lens, out=indptr[1:])
    total = int(indptr[-1])
    indices = np.fromiter(
        (w for row in rows for w in row), dtype=np.int64, count=total
    )
    return indptr, indices


def get_array_view(index: GrowableCSRIndex) -> _ArrayView:
    """The cached array view of ``index``, rebuilt after any mutation."""
    _require_numpy()
    view = index._np_view
    if view is None:
        view = _ArrayView(index)
        index._np_view = view
    return view


def _label_mask(
    view: _ArrayView, index: GrowableCSRIndex, label: Label
) -> "np.ndarray":
    """Boolean mask of the data nodes carrying ``label`` (cached)."""
    mask = view.label_masks.get(label)
    if mask is None:
        mask = np.zeros(view.n, dtype=bool)
        groups = getattr(index, "label_groups", None)
        if groups is not None:  # GraphIndex keeps a label partition
            ids: Iterable[int] = groups.get(label, ())
        else:  # SiteGraphIndex: scan the label column once
            labels = index.labels
            ids = [i for i in range(view.n) if labels[i] == label]
        ids = list(ids)
        if ids:
            mask[np.asarray(ids, dtype=np.int64)] = True
        view.label_masks[label] = mask
    return mask


# ======================================================================
# Gather primitives
# ======================================================================
def _gather_rows(
    indptr: "np.ndarray", indices: "np.ndarray", ids: "np.ndarray"
) -> "np.ndarray":
    """Concatenate the CSR rows of ``ids`` — one vectorized gather.

    Equivalent to ``np.concatenate([indices[indptr[i]:indptr[i+1]] for i
    in ids])`` without the per-row Python loop: positions are produced by
    a repeat-plus-arange offset trick over the row lengths.
    """
    starts = indptr[ids]
    lens = indptr[ids + 1] - starts
    total = int(lens.sum())
    if not total:
        return np.empty(0, dtype=np.int64)
    ends_cum = np.cumsum(lens)
    pos = np.repeat(starts + lens - ends_cum, lens) + np.arange(
        total, dtype=np.int64
    )
    return indices[pos]


def _masked_row_sums(
    indptr: "np.ndarray",
    indices: "np.ndarray",
    ids: "np.ndarray",
    mask: "np.ndarray",
) -> "np.ndarray":
    """Per-id count of row neighbors selected by ``mask``.

    The vectorized form of ``[sum(mask[w] for w in row(i)) for i in
    ids]``: gather all rows at once, prefix-sum the mask hits, and
    difference the prefix at each row boundary.
    """
    starts = indptr[ids]
    lens = indptr[ids + 1] - starts
    total = int(lens.sum())
    if not total:
        return np.zeros(len(ids), dtype=np.int64)
    ends_cum = np.cumsum(lens)
    pos = np.repeat(starts + lens - ends_cum, lens) + np.arange(
        total, dtype=np.int64
    )
    flags = mask[indices[pos]]
    prefix = np.concatenate(
        (np.zeros(1, dtype=np.int64), np.cumsum(flags, dtype=np.int64))
    )
    return prefix[ends_cum] - prefix[ends_cum - lens]


# ======================================================================
# Ball-local compaction
# ======================================================================
def _compact_rows(
    indptr: "np.ndarray", indices: "np.ndarray", member_ids: "np.ndarray"
) -> Tuple["np.ndarray", "np.ndarray", "np.ndarray"]:
    """Restrict the CSR rows of ``member_ids`` to in-member targets.

    ``member_ids`` must be sorted.  Returns ``(l_indptr, l_indices,
    l_sources)`` where targets are remapped to local ids (positions in
    ``member_ids``) and ``l_sources`` is the local source id of each kept
    edge — the COO companion used to transpose without a second gather.
    Membership is a binary search against the sorted id array, so the
    whole pass is ``O(E_ball log m)`` with no graph-width allocation.
    """
    m = int(member_ids.size)
    targets = _gather_rows(indptr, indices, member_ids)
    lens = indptr[member_ids + 1] - indptr[member_ids]
    pos = np.searchsorted(member_ids, targets)
    inside = member_ids[np.minimum(pos, m - 1)] == targets
    l_sources = np.repeat(np.arange(m, dtype=np.int64), lens)[inside]
    l_indices = pos[inside]
    l_indptr = np.zeros(m + 1, dtype=np.int64)
    np.cumsum(np.bincount(l_sources, minlength=m), out=l_indptr[1:])
    return l_indptr, l_indices, l_sources


class _LocalBall:
    """Ball-local CSR adjacency over a compact ``0..m-1`` id space.

    Duck-types the ``_ArrayView`` attributes the fixpoints read
    (``n``, ``fwd_*``, ``rev_*``, ``und_*``), so they run unchanged on
    arrays sized to the ball.  Reverse rows are the transpose of the
    compacted forward rows (identical edge set: an edge survives
    compaction iff both endpoints are members); undirected rows are
    compacted only when the caller needs pruning.
    """

    __slots__ = (
        "member_ids",
        "n",
        "fwd_indptr",
        "fwd_indices",
        "rev_indptr",
        "rev_indices",
        "und_indptr",
        "und_indices",
    )

    def __init__(
        self,
        view: _ArrayView,
        member_ids: "np.ndarray",
        need_und: bool = False,
    ) -> None:
        self.member_ids = member_ids
        m = int(member_ids.size)
        self.n = m
        self.fwd_indptr, self.fwd_indices, sources = _compact_rows(
            view.fwd_indptr, view.fwd_indices, member_ids
        )
        order = np.argsort(self.fwd_indices, kind="stable")
        self.rev_indices = sources[order]
        self.rev_indptr = np.zeros(m + 1, dtype=np.int64)
        np.cumsum(
            np.bincount(self.fwd_indices, minlength=m),
            out=self.rev_indptr[1:],
        )
        if need_und:
            self.und_indptr, self.und_indices, _ = _compact_rows(
                view.und_indptr, view.und_indices, member_ids
            )
        else:
            self.und_indptr = self.und_indices = None

    def to_global_sets(self, cand: "np.ndarray") -> List[Set[int]]:
        """Local candidate matrix → per-pattern-node *global* id sets."""
        member_ids = self.member_ids
        return [
            set(member_ids[np.nonzero(row)[0]].tolist()) for row in cand
        ]


# ======================================================================
# Ball primitives
# ======================================================================
def _np_ball(
    view: _ArrayView, center: int, radius: int
) -> Tuple["np.ndarray", "np.ndarray"]:
    """Bounded undirected BFS from ``center`` as layered array gathers.

    Returns ``(member, border)``: a boolean membership mask over all
    slots and the ids at distance exactly ``radius`` (matching the
    kernel's ``_ball_bfs`` border semantics — ``[center]`` when
    ``radius == 0``, empty when the ball exhausts its component early).
    """
    member = np.zeros(view.n, dtype=bool)
    member[center] = True
    frontier = np.asarray([center], dtype=np.int64)
    if radius == 0:
        return member, frontier
    indptr, indices = view.und_indptr, view.und_indices
    depth = 0
    while frontier.size and depth < radius:
        neigh = _gather_rows(indptr, indices, frontier)
        neigh = neigh[~member[neigh]]
        frontier = np.unique(neigh)  # sorted-array dedup of the layer
        member[frontier] = True
        depth += 1
    border = frontier if depth == radius else np.empty(0, dtype=np.int64)
    return member, border


def _np_component(
    view: _ArrayView, center: int, allowed: "np.ndarray"
) -> Optional["np.ndarray"]:
    """Connected component of ``center`` inside the ``allowed`` mask.

    The array form of the kernel's ``_center_component`` (undirected
    reachability restricted to surviving candidates); ``None`` when the
    center itself is not allowed.
    """
    if not allowed[center]:
        return None
    comp = np.zeros(view.n, dtype=bool)
    comp[center] = True
    frontier = np.asarray([center], dtype=np.int64)
    indptr, indices = view.und_indptr, view.und_indices
    while frontier.size:
        neigh = _gather_rows(indptr, indices, frontier)
        neigh = neigh[allowed[neigh] & ~comp[neigh]]
        frontier = np.unique(neigh)
        comp[frontier] = True
    return comp


# ======================================================================
# Vectorized fixpoints
# ======================================================================
def _np_dual_fixpoint(
    view: _ArrayView, cp: _CompiledPattern, cand: "np.ndarray"
) -> bool:
    """Dual-simulation greatest fixpoint by simultaneous array rounds.

    ``cand`` is the ``(pattern size, n)`` boolean candidate matrix,
    refined in place.  Witness counts per pattern edge are initialized
    with one masked row-sum pass, then maintained by ``np.add.at``
    scatter decrements as candidates drop; a decrement is applied at
    *every* row neighbor (candidate or not), which leaves garbage counts
    only at non-candidates — harmless, because zero-count detection
    always re-filters through the current candidate mask.  Each round
    removes all currently-pending candidates of one pattern node at
    once; simultaneous removal deletes only invalid pairs, so the
    greatest fixpoint (Lemma 1) — and hence the output — is identical to
    the kernel's one-at-a-time cascade.

    Returns ``False`` on collapse (some candidate row emptied).  Note
    that the batched multi-ball caller runs this over a *disjoint union*
    of ball blocks, where a row going empty means every ball died on
    that pattern node — so the early exit stays correct there too.
    """
    edges = cp.edges
    if not edges:
        return True
    p = cp.size
    num_edges = len(edges)
    in_edges = cp.in_edges
    out_edges = cp.out_edges
    n = view.n
    fwd_indptr, fwd_indices = view.fwd_indptr, view.fwd_indices
    rev_indptr, rev_indices = view.rev_indptr, view.rev_indices

    cnt_down: List["np.ndarray"] = [None] * num_edges  # type: ignore
    cnt_up: List["np.ndarray"] = [None] * num_edges  # type: ignore
    pending = np.zeros((p, n), dtype=bool)

    for e in range(num_edges):
        a, b = edges[e]
        down = np.zeros(n, dtype=np.int64)
        ids = np.nonzero(cand[a])[0]
        if ids.size:
            vals = _masked_row_sums(fwd_indptr, fwd_indices, ids, cand[b])
            down[ids] = vals
            pending[a][ids[vals == 0]] = True
        cnt_down[e] = down
        up = np.zeros(n, dtype=np.int64)
        ids = np.nonzero(cand[b])[0]
        if ids.size:
            vals = _masked_row_sums(rev_indptr, rev_indices, ids, cand[a])
            up[ids] = vals
            pending[b][ids[vals == 0]] = True
        cnt_up[e] = up

    progressed = True
    while progressed:
        progressed = False
        for u in range(p):
            rem = np.nonzero(pending[u] & cand[u])[0]
            pending[u][:] = False
            if not rem.size:
                continue
            progressed = True
            cand[u][rem] = False
            if not cand[u].any():
                return False
            preds = _gather_rows(rev_indptr, rev_indices, rem)
            succs = _gather_rows(fwd_indptr, fwd_indices, rem)
            # Pattern edges (a, u): predecessors lose a child witness.
            for e in in_edges[u]:
                a = edges[e][0]
                down = cnt_down[e]
                if preds.size:
                    np.add.at(down, preds, -1)
                    touched = np.unique(preds)
                    newly = touched[(down[touched] == 0) & cand[a][touched]]
                    pending[a][newly] = True
            # Pattern edges (u, b): successors lose a parent witness.
            for e in out_edges[u]:
                b = edges[e][1]
                up = cnt_up[e]
                if succs.size:
                    np.add.at(up, succs, -1)
                    touched = np.unique(succs)
                    newly = touched[(up[touched] == 0) & cand[b][touched]]
                    pending[b][newly] = True
    return True


def _np_sim_fixpoint(
    view: _ArrayView, cp: _CompiledPattern, cand: "np.ndarray"
) -> bool:
    """Graph-simulation fixpoint: the child-direction half only.

    Plain simulation (``Q ≺ G``) drops ``v`` from ``cand[u]`` only when
    a pattern edge ``(u, b)`` has no surviving child witness; removals
    cascade to predecessors exclusively.  The array mirror of the
    kernel's ``_sim_child_only``.
    """
    edges = cp.edges
    if not edges:
        return True
    p = cp.size
    num_edges = len(edges)
    in_edges = cp.in_edges
    n = view.n
    fwd_indptr, fwd_indices = view.fwd_indptr, view.fwd_indices
    rev_indptr, rev_indices = view.rev_indptr, view.rev_indices

    cnt_down: List["np.ndarray"] = [None] * num_edges  # type: ignore
    pending = np.zeros((p, n), dtype=bool)
    for e in range(num_edges):
        a, b = edges[e]
        down = np.zeros(n, dtype=np.int64)
        ids = np.nonzero(cand[a])[0]
        if ids.size:
            vals = _masked_row_sums(fwd_indptr, fwd_indices, ids, cand[b])
            down[ids] = vals
            pending[a][ids[vals == 0]] = True
        cnt_down[e] = down

    progressed = True
    while progressed:
        progressed = False
        for u in range(p):
            rem = np.nonzero(pending[u] & cand[u])[0]
            pending[u][:] = False
            if not rem.size:
                continue
            progressed = True
            cand[u][rem] = False
            if not cand[u].any():
                return False
            preds = _gather_rows(rev_indptr, rev_indices, rem)
            if not preds.size:
                continue
            for e in in_edges[u]:
                a = edges[e][0]
                down = cnt_down[e]
                np.add.at(down, preds, -1)
                touched = np.unique(preds)
                newly = touched[(down[touched] == 0) & cand[a][touched]]
                pending[a][newly] = True
    return True


# ======================================================================
# Seeding and relation conversion
# ======================================================================
def _seed_masks(
    view: _ArrayView, index: GrowableCSRIndex, cp: _CompiledPattern
) -> Optional["np.ndarray"]:
    """Label-compatible candidate matrix; ``None`` when any row is empty.

    The label-partition masks perform the seed-stage mass extinction in
    one vectorized intersection per pattern node.
    """
    cand = np.zeros((cp.size, view.n), dtype=bool)
    for u in range(cp.size):
        mask = _label_mask(view, index, cp.labels[u])
        if not mask.any():
            return None
        cand[u] = mask
    return cand


def _cand_to_sets(cand: "np.ndarray") -> List[Set[int]]:
    """Candidate matrix → per-pattern-node id sets (kernel's `sim` form)."""
    return [set(np.nonzero(row)[0].tolist()) for row in cand]


def np_dual_sim_ids(cp: _CompiledPattern, gi: GraphIndex) -> List[Set[int]]:
    """Maximum dual simulation as integer-id sets (collapse → all empty)."""
    _require_numpy()
    view = get_array_view(gi)
    cand = _seed_masks(view, gi, cp)
    if cand is None or not _np_dual_fixpoint(view, cp, cand):
        return [set() for _ in range(cp.size)]
    return _cand_to_sets(cand)


def dual_fixpoint_id_sets(
    index: GrowableCSRIndex, cp: _CompiledPattern, sim: List[Set[int]]
) -> Optional[List[Set[int]]]:
    """Run the vectorized dual fixpoint from arbitrary id-set seeds.

    The seam used by the distributed site worker: seeds come from the
    site's ball walk, the fixpoint runs as array rounds over the
    compacted seed-id space (candidates are always seeds, so edges out
    of the seed set can never witness), and the result comes back in
    the kernel's ``sim`` shape.  ``None`` on collapse.
    """
    _require_numpy()
    view = get_array_view(index)
    all_ids: Set[int] = set()
    for ids in sim:
        if not ids:
            return None
        all_ids.update(ids)
    member_ids = np.fromiter(all_ids, dtype=np.int64, count=len(all_ids))
    member_ids.sort()
    local = _LocalBall(view, member_ids)
    cand = np.zeros((cp.size, local.n), dtype=bool)
    for u, ids in enumerate(sim):
        seeds = np.fromiter(ids, dtype=np.int64, count=len(ids))
        cand[u][np.searchsorted(member_ids, seeds)] = True
    if not _np_dual_fixpoint(local, cp, cand):
        return None
    return local.to_global_sets(cand)


# ======================================================================
# Ball matching
# ======================================================================
def _np_finish_ball(
    cp: _CompiledPattern,
    gi: GraphIndex,
    view: _ArrayView,
    center: int,
    member_ids: "np.ndarray",
    cand: "np.ndarray",
    use_pruning: bool,
    seen: Optional[Set[Tuple[FrozenSet[int], FrozenSet[Pair]]]],
):
    """Prune, re-refine and extract one seeded ball on compact arrays.

    ``cand`` is a ``(pattern size, len(member_ids))`` matrix over ball
    members; every row is known non-empty.  Columns with no candidate
    are dropped before the local adjacency is built — they can never
    witness anything — so the fixpoint runs on arrays sized to the
    candidate-bearing part of the ball, not the graph.
    """
    keep = cand.any(axis=0)
    member_ids = member_ids[keep]
    cand = cand[:, keep]
    local = _LocalBall(view, member_ids, need_und=use_pruning)
    if use_pruning:
        # All remaining columns are candidates of some pattern node, so
        # the kernel's ``allowed`` set is exactly the local id space.
        c = int(np.searchsorted(member_ids, center))
        if c >= local.n or int(member_ids[c]) != center:
            return None  # center itself is not a candidate
        comp = _np_component(local, c, np.ones(local.n, dtype=bool))
        cand &= comp
        if (~cand.any(axis=1)).any():
            return None
    if not _np_dual_fixpoint(local, cp, cand):
        return None
    sim = local.to_global_sets(cand)
    return _extract_perfect_subgraph(cp, gi, center, sim, seen)


def _np_match_ball(
    cp: _CompiledPattern,
    gi: GraphIndex,
    view: _ArrayView,
    center: int,
    radius: int,
    use_pruning: bool = False,
    seen: Optional[Set[Tuple[FrozenSet[int], FrozenSet[Pair]]]] = None,
):
    """Match one ball from label seeds — the array mirror of `_match_ball`."""
    member, _border = _np_ball(view, center, radius)
    member_ids = np.nonzero(member)[0]
    cand = np.empty((cp.size, member_ids.size), dtype=bool)
    for u in range(cp.size):
        row = _label_mask(view, gi, cp.labels[u])[member_ids]
        if not row.any():
            return None
        cand[u] = row
    return _np_finish_ball(
        cp, gi, view, center, member_ids, cand, use_pruning, seen
    )


_MAX_PAIR_KEYS = 8_000_000


class _UnionView:
    """CSR adjacency of the disjoint union of many ball subgraphs.

    Block-diagonal by construction — no edge crosses two balls — so one
    fixpoint run over this view refines every ball simultaneously and
    independently, and a globally-empty candidate row means the row is
    empty in *every* block.
    """

    __slots__ = (
        "n",
        "fwd_indptr",
        "fwd_indices",
        "rev_indptr",
        "rev_indices",
        "und_indptr",
        "und_indices",
    )


def _union_block_csr(
    indptr: "np.ndarray",
    indices: "np.ndarray",
    member_keys: "np.ndarray",
    member_node: "np.ndarray",
    visited: "np.ndarray",
) -> Tuple["np.ndarray", "np.ndarray", "np.ndarray"]:
    """Restrict a global CSR to every ball's members, block-diagonally.

    ``member_keys`` are sorted flat ``ball * n + node`` keys; row ``j``
    of the result is the global row of ``member_node[j]`` filtered to
    targets inside the *same* ball and remapped to member positions.
    Also returns the per-edge source positions (for transposing).
    """
    m = member_keys.size
    lens = indptr[member_node + 1] - indptr[member_node]
    tgts = _gather_rows(indptr, indices, member_node)
    keys = np.repeat(member_keys - member_node, lens) + tgts
    keep = visited[keys]
    src = np.repeat(np.arange(m, dtype=np.int64), lens)[keep]
    dst = np.searchsorted(member_keys, keys[keep])
    l_indptr = np.zeros(m + 1, dtype=np.int64)
    np.cumsum(np.bincount(src, minlength=m), out=l_indptr[1:])
    return l_indptr, dst, src


def _np_refine_all_balls(
    cp: _CompiledPattern,
    gi: GraphIndex,
    view: _ArrayView,
    centers: "np.ndarray",
    radius: int,
    cand_global: "np.ndarray",
    use_pruning: bool,
    seen: Set[Tuple[FrozenSet[int], FrozenSet[Pair]]],
    result: MatchResult,
) -> None:
    """Project a global candidate relation onto every ball and re-refine.

    ``cand_global`` is either the global dual-filter fixpoint (the
    ``Match+`` fast path) or the plain label seeds (``Match`` and the
    filterless option combinations) — in both cases the per-ball
    greatest fixpoint below the ball-restricted projection is exactly
    what the kernel's per-center loop computes.  The batched mirror of
    that loop:
    instead of touching one ball at a time, whole chunks of balls are
    processed as a single array program —

    * a multi-ball BFS over flat ``ball * n + node`` keys grows every
      ball of the chunk at once (one boolean stamp of ``b * n`` pairs);
    * one block-diagonal *union* CSR holds all ball subgraphs, so a
      single fixpoint run refines every ball simultaneously;
    * per-ball validity (all pattern rows non-empty) is a segmented
      reduction, and extraction runs only for surviving balls.

    Blocks are disjoint, so the union fixpoint computes each ball's
    greatest fixpoint independently — identical, by uniqueness
    (Lemma 1), to the kernel's per-ball cascade; its collapse early-exit
    fires only when some pattern row empties in *every* ball, which
    correctly kills the whole chunk.  Centers are visited in ascending
    id order within and across chunks, so the cross-ball ``seen`` dedup
    observes the kernel's exact sequence.  Chunking bounds the stamp at
    ``_MAX_PAIR_KEYS`` pair keys.
    """
    if not centers.size:
        return
    matched = cand_global.any(axis=0)
    chunk = max(1, _MAX_PAIR_KEYS // max(view.n, 1))
    for lo in range(0, centers.size, chunk):
        _np_refine_chunk(
            cp,
            gi,
            view,
            centers[lo : lo + chunk],
            radius,
            cand_global,
            matched,
            use_pruning,
            seen,
            result,
        )


def _np_refine_chunk(
    cp: _CompiledPattern,
    gi: GraphIndex,
    view: _ArrayView,
    cc: "np.ndarray",
    radius: int,
    cand_global: "np.ndarray",
    matched: "np.ndarray",
    use_pruning: bool,
    seen: Set[Tuple[FrozenSet[int], FrozenSet[Pair]]],
    result: MatchResult,
) -> None:
    n = view.n
    b = cc.size
    center_keys = np.arange(b, dtype=np.int64) * n + cc

    # Multi-ball BFS: one undirected layer step grows every ball of the
    # chunk at once; ``visited`` stamps (ball, node) pair keys.
    visited = np.zeros(b * n, dtype=bool)
    visited[center_keys] = True
    frontier = center_keys
    und_indptr, und_indices = view.und_indptr, view.und_indices
    for _ in range(radius):
        if not frontier.size:
            break
        nodes = frontier % n
        lens = und_indptr[nodes + 1] - und_indptr[nodes]
        tgts = _gather_rows(und_indptr, und_indices, nodes)
        keys = np.repeat(frontier - nodes, lens) + tgts
        keys = keys[~visited[keys]]
        visited[keys] = True
        frontier = np.unique(keys)

    # Only candidate-bearing members matter downstream: a non-candidate
    # can never be a witness, never survives into a sim set, and the
    # kernel's own projection (which iterates the global candidate sets)
    # never sees it either.  Dropping them here shrinks the union CSR to
    # the candidate part of each ball — the dominant cost at density.
    # ``visited`` keeps the *full* ball stamp: ball membership is a
    # distance property of the whole graph, so the BFS above walks
    # non-candidates, and the filter below must not affect it.
    visited.reshape(b, n)[:] &= matched
    member_keys = np.nonzero(visited)[0]  # sorted: grouped by ball
    member_node = member_keys % n
    m = member_keys.size
    if not m:
        return  # no candidate-bearing member in any ball of the chunk
    seg_ptr = np.searchsorted(
        member_keys, np.arange(b + 1, dtype=np.int64) * n
    )
    cand = cand_global[:, member_node]  # advanced indexing copies

    union = _UnionView()
    union.n = m
    union.fwd_indptr, union.fwd_indices, fwd_src = _union_block_csr(
        view.fwd_indptr, view.fwd_indices, member_keys, member_node, visited
    )
    # Reverse union CSR = transpose of the forward one.
    order = np.argsort(union.fwd_indices, kind="stable")
    union.rev_indices = fwd_src[order]
    union.rev_indptr = np.zeros(m + 1, dtype=np.int64)
    np.cumsum(
        np.bincount(union.fwd_indices, minlength=m),
        out=union.rev_indptr[1:],
    )

    if use_pruning:
        # Batched ``_center_component``: one BFS seeded at every live
        # center, restricted to candidate-bearing members.  Blocks are
        # disjoint, so each ball gets exactly its own center component;
        # a ball whose center has no candidate contributes no seed and
        # its whole block prunes to empty.
        union.und_indptr, union.und_indices, _ = _union_block_csr(
            view.und_indptr, view.und_indices, member_keys, member_node,
            visited,
        )
        # A center that is not itself a candidate was dropped from the
        # members; its ball seeds nothing and prunes to empty, exactly
        # like the kernel's ``_center_component`` returning ``None``.
        center_pos = np.minimum(
            np.searchsorted(member_keys, center_keys), m - 1
        )
        present = member_keys[center_pos] == center_keys
        allowed = cand.any(axis=0)
        comp = np.zeros(m, dtype=bool)
        frontier = center_pos[present]
        frontier = frontier[allowed[frontier]]
        comp[frontier] = True
        while frontier.size:
            neigh = _gather_rows(
                union.und_indptr, union.und_indices, frontier
            )
            neigh = neigh[allowed[neigh] & ~comp[neigh]]
            frontier = np.unique(neigh)
            comp[frontier] = True
        cand &= comp

    if not _np_dual_fixpoint(union, cp, cand):
        return
    # Per-ball validity: every pattern row non-empty within the ball's
    # segment.  Empty segments (a ball with no candidate-bearing member
    # at all) are invalid outright and excluded from the reduceat — the
    # surviving starts are strictly increasing, so each reduction spans
    # exactly its own segment (an empty ball between two non-empty ones
    # has equal boundary offsets and contributes nothing in between; a
    # clamp-style workaround would instead truncate the last non-empty
    # segment whenever trailing balls are empty).
    seg_len = np.diff(seg_ptr)
    valid = seg_len > 0
    starts = seg_ptr[:-1][valid]
    if starts.size:
        ok = np.ones(starts.size, dtype=bool)
        for u in range(cp.size):
            ok &= np.maximum.reduceat(cand[u], starts)
        valid[valid] = ok
    for i in np.nonzero(valid)[0].tolist():
        s, e = int(seg_ptr[i]), int(seg_ptr[i + 1])
        nodes_seg = member_node[s:e]
        sub = cand[:, s:e]
        sim = [
            set(nodes_seg[np.nonzero(sub[u])[0]].tolist())
            for u in range(cp.size)
        ]
        subgraph = _extract_perfect_subgraph(cp, gi, int(cc[i]), sim, seen)
        if subgraph is not None:
            result.add(subgraph)


def np_evaluate_ball(
    cp: _CompiledPattern, gi: GraphIndex, center: int, radius: int
):
    """One ball from label seeds — the incremental matcher's primitive.

    Mirrors :func:`repro.core.kernel._match_ball` defaults (no pruning,
    no cross-center dedup; the caller caches per center).
    """
    _require_numpy()
    with gi.reading():
        view = get_array_view(gi)
        return _np_match_ball(cp, gi, view, center, radius)


# ======================================================================
# Public entry points — mirror the kernel signatures exactly
# ======================================================================
def np_match(
    pattern: Pattern,
    data: DiGraph,
    centers: Optional[Iterable[Node]] = None,
    radius: Optional[int] = None,
) -> MatchResult:
    """Algorithm ``Match`` on the numpy engine (output-identical)."""
    _require_numpy()
    if radius is None:
        radius = pattern.diameter
    with _obs_span("numpy.match") as _sp:
        gi = get_index(data)
        cp = _CompiledPattern(pattern)
        result = MatchResult(pattern)
        with gi.reading():
            view = get_array_view(gi)
            seen: Set[Tuple[FrozenSet[int], FrozenSet[Pair]]] = set()
            if centers is None:
                if radius < 0 and gi.num_live:
                    raise GraphError(
                        f"ball radius must be non-negative, got {radius}"
                    )
                # Full scan in ascending id order: run the batched path
                # with plain label seeds as the global candidate relation.
                labels = gi.labels
                live = np.fromiter(
                    (i for i in range(gi.n) if labels[i] is not _DEAD),
                    dtype=np.int64,
                )
                cand_global = _seed_masks(view, gi, cp)
                if cand_global is not None and live.size:
                    _np_refine_all_balls(
                        cp, gi, view, live, radius, cand_global,
                        False, seen, result,
                    )
                if _sp.enabled:
                    _sp.set(
                        engine="numpy",
                        pattern=pattern.size,
                        radius=radius,
                        **{
                            "balls.scanned": int(live.size),
                            "balls.matched": len(result),
                        },
                    )
                return result
            scanned = 0
            for center in _resolve_centers(gi, centers, radius):
                scanned += 1
                subgraph = _np_match_ball(
                    cp, gi, view, center, radius, seen=seen
                )
                if subgraph is not None:
                    result.add(subgraph)
            if _sp.enabled:
                _sp.set(
                    engine="numpy",
                    pattern=pattern.size,
                    radius=radius,
                    **{
                        "balls.scanned": scanned,
                        "balls.matched": len(result),
                    },
                )
        return result


def np_matches_via_strong_simulation(pattern: Pattern, data: DiGraph) -> bool:
    """Decide ``Q ≺_LD G`` on the numpy engine (early exit)."""
    _require_numpy()
    radius = pattern.diameter
    with _obs_span("numpy.matches") as _sp:
        gi = get_index(data)
        cp = _CompiledPattern(pattern)
        with gi.reading():
            view = get_array_view(gi)
            labels = gi.labels
            for center in range(gi.n):
                if labels[center] is _DEAD:
                    continue
                if _np_match_ball(cp, gi, view, center, radius) is not None:
                    if _sp.enabled:
                        _sp.set(engine="numpy", outcome=True)
                    return True
            if _sp.enabled:
                _sp.set(engine="numpy", outcome=False)
            return False


def np_match_plus(
    pattern: Pattern,
    data: DiGraph,
    radius: int,
    use_dual_filter: bool = True,
    use_pruning: bool = True,
    restrict_centers_by_label: bool = True,
) -> MatchResult:
    """The matching core of ``Match+`` on the numpy engine.

    Same contract as :func:`repro.core.kernel.kernel_match_plus`:
    output-identical for every option combination, with the centers on
    the dual-filter path visited in ascending id order (the kernel's
    order, so even the incidental center attribution matches it).
    """
    _require_numpy()
    with _obs_span("numpy.match_plus") as _sp:
        gi = get_index(data)
        if _sp.enabled:
            _sp.set(
                engine="numpy",
                pattern=pattern.size,
                radius=radius,
                nodes=gi.num_live,
            )
        cp = _CompiledPattern(pattern)
        result = MatchResult(pattern)

        with gi.reading():
            view = get_array_view(gi)
            if use_dual_filter:
                with _obs_span("numpy.global_dual_filter"):
                    cand_global = _seed_masks(view, gi, cp)
                    filtered = cand_global is not None and _np_dual_fixpoint(
                        view, cp, cand_global
                    )
                if not filtered:
                    _sp.set(**{"balls.scanned": 0, "balls.matched": 0})
                    return result
                matched = cand_global.any(axis=0)
                seen: Set[Tuple[FrozenSet[int], FrozenSet[Pair]]] = set()
                with _obs_span("numpy.ball_scan"):
                    _np_refine_all_balls(
                        cp, gi, view, np.nonzero(matched)[0], radius,
                        cand_global, use_pruning, seen, result,
                    )
                if _sp.enabled:
                    _sp.set(
                        **{
                            "balls.scanned": int(matched.sum()),
                            "balls.matched": len(result),
                        }
                    )
                return result

            # Dual filter off: per-ball dual simulation from label seeds,
            # still batched — the projected relation is just the seeds.
            labels = gi.labels
            if restrict_centers_by_label:
                pattern_labels = set(cp.labels)
                center_ids = (
                    i for i in range(gi.n) if labels[i] in pattern_labels
                )
            else:
                center_ids = (
                    i for i in range(gi.n) if labels[i] is not _DEAD
                )
            centers_arr = np.fromiter(center_ids, dtype=np.int64)
            seen = set()
            cand_global = _seed_masks(view, gi, cp)
            with _obs_span("numpy.ball_scan"):
                if cand_global is not None and centers_arr.size:
                    _np_refine_all_balls(
                        cp, gi, view, centers_arr, radius, cand_global,
                        use_pruning, seen, result,
                    )
            if _sp.enabled:
                _sp.set(
                    **{
                        "balls.scanned": int(centers_arr.size),
                        "balls.matched": len(result),
                    }
                )
            return result


def dual_simulation_numpy(pattern: Pattern, data: DiGraph) -> MatchRelation:
    """Maximum dual-simulation relation of ``Q`` on ``G`` — numpy engine."""
    _require_numpy()
    with _obs_span("numpy.dual_simulation") as _sp:
        gi = get_index(data)
        if _sp.enabled:
            _sp.set(engine="numpy", pattern=pattern.size, nodes=gi.num_live)
        cp = _CompiledPattern(pattern)
        with gi.reading():
            sim = np_dual_sim_ids(cp, gi)
            nodes = gi.nodes
            return MatchRelation(
                {
                    cp.nodes[u]: {nodes[v] for v in sim[u]}
                    for u in range(cp.size)
                }
            )


def graph_simulation_numpy(pattern: Pattern, data: DiGraph) -> MatchRelation:
    """Maximum graph-simulation relation of ``Q ≺ G`` — numpy engine."""
    _require_numpy()
    with _obs_span("numpy.graph_simulation") as _sp:
        gi = get_index(data)
        if _sp.enabled:
            _sp.set(engine="numpy", pattern=pattern.size, nodes=gi.num_live)
        cp = _CompiledPattern(pattern)
        with gi.reading():
            view = get_array_view(gi)
            cand = _seed_masks(view, gi, cp)
            if cand is None or not _np_sim_fixpoint(view, cp, cand):
                return MatchRelation({u: set() for u in cp.nodes})
            nodes = gi.nodes
            sim = _cand_to_sets(cand)
            return MatchRelation(
                {
                    cp.nodes[u]: {nodes[v] for v in sim[u]}
                    for u in range(cp.size)
                }
            )
