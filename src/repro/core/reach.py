"""Reachability/distance index over the CSR substrate — 2-hop labeling.

The bounded and regular matchers (:mod:`repro.core.bounded`,
:mod:`repro.core.regular`) spend almost all of their time answering two
kinds of question about the *data* graph:

* ``dist(v, T) <= k`` — is some member of a target set within ``k``
  directed hops of ``v``? (the bounded-edge witness test), and
* regex-constrained successor sets (the ``[18]``-style path semantics).

The reference implementations answer both with a fresh BFS per
``(node, edge)`` pair.  This module compiles the answers into an index:

``ReachIndex``
    A pruned landmark-ordered 2-hop labeling (Akiba-style pruned
    landmark labeling adapted to digraphs) over the CSR forward/reverse
    rows of a :class:`~repro.core.kernel.GraphIndex`.  Every live slot
    ``v`` carries two small hub dictionaries, ``out_labels[v]`` (hub ->
    ``dist(v, hub)``) and ``in_labels[v]`` (hub -> ``dist(hub, v)``);
    the cover property of pruned labeling makes

        ``dist(u, w) = min over common hubs h of out[u][h] + in[w][h]``

    *exact*.  Hubs are processed in descending total-degree order, which
    keeps the labels near-minimal on the scale-free synthetic graphs.

    A DFS spanning forest over the forward rows is kept alongside the
    labels: each live slot has a pre/post interval and a tree level, so
    "``u`` is a forest ancestor of ``w``" (a *sufficient* reachability
    certificate with tree-path length ``level[w] - level[u]``) is an
    O(1) comparison — the fast path for the acyclic reaches, consulted
    before any hub intersection.

``TargetProbe`` / ``SourceProbe``
    One-pass set probes built per fixpoint round: they collapse a whole
    target (source) set into a single hub->min-distance map so the
    witness test for every candidate ``v`` is one scan of ``v``'s
    adjacency row plus one scan of each neighbor's label dictionary —
    no BFS, no per-pair set materialization.  The one-hop shift through
    the adjacency row makes the "path of length >= 1" semantics (cycles
    back into the target set included) fall out without special cases.

Lifecycle: the index is compiled lazily on first use and cached on the
owning ``GraphIndex`` (the ``_np_view`` pattern), then maintained off
the ``GraphDelta`` stream — edge insertions are patched in place by
resuming the pruned label BFSs through the new edge (sound: entries are
always true path lengths; the resumed sweeps restore the cover
property), while any deletion drops the index for a versioned lazy
rebuild on the next probe (distances can only grow under deletion, and
stale-small labels would over-approximate).  ``IndexStats`` counts
builds, in-place patches, drops and probes.
"""

from __future__ import annotations

from bisect import bisect_left
from collections import deque
from typing import Dict, List, Optional, Set, Tuple

from repro.core.digraph import DiGraph, Node
from repro.core.kernel import (
    _DEAD,
    GraphIndex,
    _ball_bfs,
    get_index,
    resolve_engine,
)
from repro.core.matchrel import MatchRelation
from repro.core.regex import LazyDfa, reversed_nfa
from repro.core.result import MatchResult, PerfectSubgraph
from repro.obs.trace import span as _obs_span

Bound = Optional[int]

_INF = float("inf")

#: Engines understood by the path-matching entry points.  There is no
#: vectorized path kernel, so ``auto`` collapses the numpy tier onto the
#: index-backed kernel; explicit ``engine="numpy"`` is a caller error.
PATH_ENGINES = ("auto", "python", "kernel")


def resolve_path_engine(engine: str, data: Optional[DiGraph] = None) -> str:
    """Resolve the engine seam for bounded/regular path matching.

    Same contract as :func:`repro.core.kernel.resolve_engine` restricted
    to the engines that exist for path workloads: ``"auto"`` picks
    ``"python"`` for tiny cold graphs and the index-backed ``"kernel"``
    otherwise (the numpy tier maps onto the kernel — probe batching is
    future work, see ROADMAP).
    """
    if engine not in PATH_ENGINES:
        raise ValueError(
            f"unknown path engine {engine!r}; expected one of {PATH_ENGINES}"
        )
    resolved = resolve_engine(engine, data)
    return "kernel" if resolved == "numpy" else resolved


def _label_dist(out_d: Dict[int, int], in_d: Dict[int, int]) -> float:
    """``min over common hubs h of out_d[h] + in_d[h]`` (inf when disjoint)."""
    best = _INF
    if len(out_d) <= len(in_d):
        get = in_d.get
        for h, d1 in out_d.items():
            d2 = get(h)
            if d2 is not None and d1 + d2 < best:
                best = d1 + d2
    else:
        get = out_d.get
        for h, d2 in in_d.items():
            d1 = get(h)
            if d1 is not None and d1 + d2 < best:
                best = d1 + d2
    return best


class ReachIndex:
    """Pruned 2-hop distance labels + spanning-forest intervals.

    Built from (and indexed by) the integer slots of a
    :class:`~repro.core.kernel.GraphIndex`; all public methods take slot
    ids.  Construction, patching and probing must happen under the
    owner's read guard (the kernel entry points arrange this).
    """

    __slots__ = (
        "gi",
        "rank",
        "out_labels",
        "in_labels",
        "tree_pre",
        "tree_post",
        "tree_level",
        "_tree_counter",
        "_next_rank",
    )

    def __init__(self, gi: GraphIndex) -> None:
        self.gi = gi
        with _obs_span("reach.build") as _sp:
            self._build()
            if _sp.enabled:
                _sp.set(nodes=gi.num_live, edges=gi.num_edges)
        gi.stats.reach_builds += 1

    # ------------------------------------------------------------------
    # construction
    def _build(self) -> None:
        gi = self.gi
        fwd, rev, labels = gi.fwd_rows, gi.rev_rows, gi.labels
        n = len(labels)
        live = [v for v in range(n) if labels[v] is not _DEAD]
        # Landmark order: descending total degree, slot id as tie-break.
        order = sorted(live, key=lambda v: (-(len(fwd[v]) + len(rev[v])), v))
        rank = [n] * n
        for r, v in enumerate(order):
            rank[v] = r
        self.rank = rank
        self._next_rank = len(order)
        # Every live node is its own hub at distance 0 (makes queries
        # touching a node well-defined and strengthens pruning).
        self.out_labels = [
            {v: 0} if labels[v] is not _DEAD else {} for v in range(n)
        ]
        self.in_labels = [
            {v: 0} if labels[v] is not _DEAD else {} for v in range(n)
        ]
        self._build_forest(live, fwd, labels)
        for h in order:
            self._root_bfs(h, forward=True)
            self._root_bfs(h, forward=False)

    def _build_forest(self, live: List[int], fwd, labels) -> None:
        """DFS spanning forest over the forward rows (roots in id order)."""
        n = len(labels)
        pre = [-1] * n
        post = [-1] * n
        level = [0] * n
        counter = 0
        for root in live:
            if pre[root] >= 0:
                continue
            pre[root] = counter
            counter += 1
            level[root] = 0
            stack: List[Tuple[int, object]] = [(root, iter(fwd[root]))]
            while stack:
                v, children = stack[-1]
                advanced = False
                for w in children:
                    if pre[w] < 0 and labels[w] is not _DEAD:
                        pre[w] = counter
                        counter += 1
                        level[w] = level[v] + 1
                        stack.append((w, iter(fwd[w])))
                        advanced = True
                        break
                if not advanced:
                    post[v] = counter
                    stack.pop()
        self.tree_pre = pre
        self.tree_post = post
        self.tree_level = level
        self._tree_counter = counter

    def _root_bfs(self, h: int, forward: bool) -> None:
        """One pruned label BFS from hub ``h`` (forward or backward)."""
        out_l, in_l = self.out_labels, self.in_labels
        if forward:
            rows, hub_side, assign = self.gi.fwd_rows, out_l[h], in_l
        else:
            rows, hub_side, assign = self.gi.rev_rows, in_l[h], out_l
        dist: Dict[int, int] = {h: 0}
        queue = deque((h,))
        while queue:
            v = queue.popleft()
            nd = dist[v] + 1
            for w in rows[v]:
                if w in dist:
                    continue
                dist[w] = nd
                if forward:
                    covered = _label_dist(hub_side, in_l[w]) <= nd
                else:
                    covered = _label_dist(out_l[w], hub_side) <= nd
                if covered:
                    continue  # pruned: pair (h, w) already certified
                assign[w][h] = nd
                queue.append(w)

    # ------------------------------------------------------------------
    # maintenance (driven by GraphIndex._apply_delta)
    def add_slot(self) -> None:
        """Mirror a freshly appended live slot (ADD_NODE)."""
        v = len(self.out_labels)
        self.out_labels.append({v: 0})
        self.in_labels.append({v: 0})
        self.rank.append(self._next_rank)
        self._next_rank += 1
        pre = self._tree_counter
        self.tree_pre.append(pre)
        self.tree_post.append(pre + 1)
        self.tree_level.append(0)
        self._tree_counter = pre + 1

    def apply_add_edge(self, a: int, b: int) -> None:
        """Patch the labels in place for a new edge ``a -> b``.

        Resumes the pruned BFS of every hub that reaches ``a`` through
        the new edge (and symmetrically every hub reachable from ``b``,
        backwards through ``a``).  Entries only ever shrink toward the
        true distance, and the exactness argument of pruned labeling
        carries over: for any pair whose distance drops, the certificate
        hub of its old prefix is resumed with an exact seed.  The forest
        is untouched — tree edges persist, the new edge is a non-tree
        edge, so the interval fast path stays sound.
        """
        rank = self.rank
        for h, d in sorted(
            self.in_labels[a].items(), key=lambda kv: rank[kv[0]]
        ):
            self._resume(h, b, d + 1, forward=True)
        for h, d in sorted(
            self.out_labels[b].items(), key=lambda kv: rank[kv[0]]
        ):
            self._resume(h, a, d + 1, forward=False)
        self.gi.stats.reach_patches += 1

    def _resume(self, h: int, start: int, d0: int, forward: bool) -> None:
        out_l, in_l = self.out_labels, self.in_labels
        if forward:
            rows, hub_side, assign = self.gi.fwd_rows, out_l[h], in_l
        else:
            rows, hub_side, assign = self.gi.rev_rows, in_l[h], out_l
        queue = deque(((start, d0),))
        while queue:
            w, nd = queue.popleft()
            cur = assign[w].get(h)
            if cur is not None and cur <= nd:
                continue
            if forward:
                covered = _label_dist(hub_side, in_l[w]) <= nd
            else:
                covered = _label_dist(out_l[w], hub_side) <= nd
            if covered:
                continue
            assign[w][h] = nd
            nd += 1
            for x in rows[w]:
                queue.append((x, nd))
        return None

    # ------------------------------------------------------------------
    # queries (slot ids)
    def dist(self, u: int, w: int) -> Optional[int]:
        """Exact directed distance ``u -> w`` in hops, or None."""
        self.gi.stats.reach_probes += 1
        if u == w:
            return 0
        d = _label_dist(self.out_labels[u], self.in_labels[w])
        return None if d == _INF else int(d)

    def within(self, u: int, w: int, bound: Bound) -> bool:
        """Is ``w`` reachable from ``u`` in at most ``bound`` hops?

        ``bound=None`` means plain reachability; ``u == w`` counts as
        reachable in 0 hops (callers wanting "a real cycle" go through
        the probes, whose one-hop shift enforces length >= 1).
        """
        self.gi.stats.reach_probes += 1
        if u == w:
            return True
        pre_u = self.tree_pre[u]
        if pre_u >= 0 and pre_u <= self.tree_pre[w] < self.tree_post[u]:
            if (
                bound is None
                or self.tree_level[w] - self.tree_level[u] <= bound
            ):
                return True
        d = _label_dist(self.out_labels[u], self.in_labels[w])
        return d != _INF and (bound is None or d <= bound)

    def reaches(self, u: int, w: int) -> bool:
        """Plain reachability ``u ->* w`` (0 hops allowed)."""
        return self.within(u, w, None)


class TargetProbe:
    """``dist(v, T) <= k`` witness tests against a fixed target set.

    Collapses ``T`` into one hub -> min-inbound-distance map (and a
    sorted list of forest pre-numbers for the unbounded interval fast
    path); :meth:`witness_from` then answers "is there a directed path
    of length 1..bound from ``v`` into ``T``" by shifting one hop
    through ``v``'s forward row — which also makes cycles back into the
    target set come out right with no self-distance special case.
    """

    __slots__ = ("ri", "targets", "hub_dist", "target_pres")

    def __init__(self, ri: ReachIndex, targets: Set[int]) -> None:
        self.ri = ri
        self.targets = targets
        hub: Dict[int, int] = {}
        in_labels = ri.in_labels
        for t in targets:
            for h, d in in_labels[t].items():
                cur = hub.get(h)
                if cur is None or d < cur:
                    hub[h] = d
        self.hub_dist = hub
        tree_pre = ri.tree_pre
        self.target_pres = sorted(tree_pre[t] for t in targets)

    def witness_from(self, v: int, bound: Bound) -> bool:
        ri = self.ri
        ri.gi.stats.reach_probes += 1
        targets = self.targets
        residual = None if bound is None else bound - 1
        hub = self.hub_dist
        out_labels = ri.out_labels
        pres = self.target_pres
        tree_pre, tree_post = ri.tree_pre, ri.tree_post
        for s in ri.gi.fwd_rows[v]:
            if s in targets:
                return True
            if residual == 0:
                continue
            if residual is None:
                pre_s = tree_pre[s]
                if pre_s >= 0:
                    lo = bisect_left(pres, pre_s)
                    if lo < len(pres) and pres[lo] < tree_post[s]:
                        return True  # some target in s's forest subtree
                for h in out_labels[s]:
                    if h in hub:
                        return True
            else:
                for h, d in out_labels[s].items():
                    r = hub.get(h)
                    if r is not None and d + r <= residual:
                        return True
        return False


class SourceProbe:
    """``dist(S, v) <= k`` witness tests against a fixed source set.

    The mirror image of :class:`TargetProbe` for the child direction of
    dual fixpoints: "is there a directed path of length 1..bound from
    some member of ``S`` into ``v``", answered by shifting one hop back
    through ``v``'s reverse row.  (No interval fast path here — "is this
    point covered by any source interval" has no single-bisect answer.)
    """

    __slots__ = ("ri", "sources", "hub_dist")

    def __init__(self, ri: ReachIndex, sources: Set[int]) -> None:
        self.ri = ri
        self.sources = sources
        hub: Dict[int, int] = {}
        out_labels = ri.out_labels
        for s in sources:
            for h, d in out_labels[s].items():
                cur = hub.get(h)
                if cur is None or d < cur:
                    hub[h] = d
        self.hub_dist = hub

    def witness_into(self, v: int, bound: Bound) -> bool:
        ri = self.ri
        ri.gi.stats.reach_probes += 1
        sources = self.sources
        residual = None if bound is None else bound - 1
        hub = self.hub_dist
        in_labels = ri.in_labels
        for p in ri.gi.rev_rows[v]:
            if p in sources:
                return True
            if residual == 0:
                continue
            if residual is None:
                for h in in_labels[p]:
                    if h in hub:
                        return True
            else:
                for h, d in in_labels[p].items():
                    r = hub.get(h)
                    if r is not None and r + d <= residual:
                        return True
        return False


# ----------------------------------------------------------------------
# lifecycle
def reach_index_for(gi: GraphIndex) -> ReachIndex:
    """The cached ReachIndex of ``gi``, building it on first use.

    Must be called under ``gi.reading()``.  Concurrent first probes may
    race to build; both results are equivalent (built from the same
    guarded rows) and the attribute store is atomic, so the loser's work
    is merely wasted.
    """
    ri = gi._reach
    if ri is None:
        ri = ReachIndex(gi)
        gi._reach = ri
    return ri


def get_reach_index(data: DiGraph) -> ReachIndex:
    """Sync ``data``'s kernel index and return its ReachIndex."""
    gi = get_index(data)
    with gi.reading():
        return reach_index_for(gi)


# ----------------------------------------------------------------------
# Kernel engine: bounded simulation
# ----------------------------------------------------------------------
def _to_relation(gi: GraphIndex, sim: Dict[Node, Set[int]]) -> MatchRelation:
    nodes = gi.nodes
    return MatchRelation(
        {u: {nodes[v] for v in vs} for u, vs in sim.items()}
    )


def bounded_simulation_kernel(bounded_pattern, data: DiGraph) -> MatchRelation:
    """Index-backed bounded simulation, output-identical to the reference.

    Same fixpoint shape as :func:`repro.core.bounded.bounded_simulation`
    (whose result — the unique maximum bounded-simulation relation — it
    must and does reproduce), but every bounded-edge witness test is a
    :class:`TargetProbe` label probe instead of a cached BFS, and
    bound-1 edges are plain CSR row tests.
    """
    pattern = bounded_pattern.pattern
    gi = get_index(data)
    with gi.reading():
        ri = reach_index_for(gi)
        groups = gi.label_groups
        fwd = gi.fwd_rows
        sim: Dict[Node, Set[int]] = {
            u: set(groups.get(pattern.label(u), ())) for u in pattern.nodes()
        }
        queue = deque(pattern.nodes())
        queued: Set[Node] = set(queue)
        while queue:
            u_prime = queue.popleft()
            queued.discard(u_prime)
            targets = sim[u_prime]
            probe = None  # one bound-agnostic probe per pop, built lazily
            for u in pattern.predecessors(u_prime):
                bound = bounded_pattern.bound((u, u_prime))
                if bound == 1:
                    stale = [
                        v for v in sim[u] if targets.isdisjoint(fwd[v])
                    ]
                else:
                    if probe is None:
                        probe = TargetProbe(ri, targets)
                    stale = [
                        v
                        for v in sim[u]
                        if not probe.witness_from(v, bound)
                    ]
                if not stale:
                    continue
                sim[u].difference_update(stale)
                if not sim[u]:
                    for candidates in sim.values():
                        candidates.clear()
                    return _to_relation(gi, sim)
                if u not in queued:
                    queue.append(u)
                    queued.add(u)
        if any(not candidates for candidates in sim.values()):
            for candidates in sim.values():
                candidates.clear()
        return _to_relation(gi, sim)


# ----------------------------------------------------------------------
# Kernel engine: regular (regex-constrained) matching
# ----------------------------------------------------------------------
_DIRECT, _WILDCARD, _REGEX = 0, 1, 2


class _RegularProgram:
    """A :class:`RegularPattern` compiled for the int kernel.

    Classifies each pattern edge: empty regex -> direct CSR row test,
    the wildcard ``.*`` -> distance probes against the ReachIndex (in
    global scope), anything else -> memoized :class:`LazyDfa` product
    walks (a reversed machine serves the child direction).
    """

    __slots__ = ("pattern", "edges", "kinds", "bounds", "dfas", "rdfas")

    def __init__(self, rpattern) -> None:
        self.pattern = rpattern.pattern
        self.edges = list(self.pattern.edges())
        self.kinds: Dict[Tuple[Node, Node], int] = {}
        self.bounds: Dict[Tuple[Node, Node], Bound] = {}
        self.dfas: Dict[Tuple[Node, Node], LazyDfa] = {}
        self.rdfas: Dict[Tuple[Node, Node], LazyDfa] = {}
        for edge in self.edges:
            source = rpattern.sources[edge].strip()
            self.bounds[edge] = rpattern.bounds[edge]
            if source == "":
                # Empty regex = direct edge regardless of any hop bound
                # (the only path with no intermediates is one hop).
                self.kinds[edge] = _DIRECT
            else:
                self.kinds[edge] = (
                    _WILDCARD if source == ".*" else _REGEX
                )
                nfa = rpattern.nfas[edge]
                self.dfas[edge] = LazyDfa(nfa)
                self.rdfas[edge] = LazyDfa(reversed_nfa(nfa))


def _dfa_successors(
    gi: GraphIndex,
    source: int,
    dfa: LazyDfa,
    bound: Bound,
    members: Optional[Set[int]],
) -> Set[int]:
    """Int mirror of :func:`repro.core.regex.regex_successors`.

    Identical product-graph walk with DFA state ids standing in for the
    reference's frozensets of NFA states (the interning bijection makes
    the visited sets equivalent, and the pruning is depth-aware for the
    same completeness reason); ``members`` restricts the walk to a ball.
    """
    results: Set[int] = set()
    seen: Dict[int, Dict[int, int]] = {source: {dfa.start: 0}}
    stack = [(source, dfa.start, 0)]
    fwd = gi.fwd_rows
    labels = gi.labels
    while stack:
        node, state, depth = stack.pop()
        if bound is not None and depth >= bound:
            continue
        accepting = dfa.accepting(state)
        next_depth = depth + 1
        for child in fwd[node]:
            if members is not None and child not in members:
                continue
            if accepting:
                results.add(child)
            nxt = dfa.step(state, labels[child])
            if nxt < 0:
                continue
            visited = seen.setdefault(child, {})
            prev = visited.get(nxt)
            if prev is not None and prev <= next_depth:
                continue
            visited[nxt] = next_depth
            stack.append((child, nxt, next_depth))
    return results


def _dfa_predecessors(
    gi: GraphIndex,
    target: int,
    rdfa: LazyDfa,
    bound: Bound,
    members: Optional[Set[int]],
) -> Set[int]:
    """Nodes with a regex path into ``target`` (reversed-machine walk)."""
    results: Set[int] = set()
    seen: Dict[int, Dict[int, int]] = {target: {rdfa.start: 0}}
    stack = [(target, rdfa.start, 0)]
    rev = gi.rev_rows
    labels = gi.labels
    while stack:
        node, state, depth = stack.pop()
        if bound is not None and depth >= bound:
            continue
        accepting = rdfa.accepting(state)
        next_depth = depth + 1
        for parent in rev[node]:
            if members is not None and parent not in members:
                continue
            if accepting:
                results.add(parent)
            nxt = rdfa.step(state, labels[parent])
            if nxt < 0:
                continue
            visited = seen.setdefault(parent, {})
            prev = visited.get(nxt)
            if prev is not None and prev <= next_depth:
                continue
            visited[nxt] = next_depth
            stack.append((parent, nxt, next_depth))
    return results


def _regular_fixpoint(
    prog: _RegularProgram,
    gi: GraphIndex,
    ri: Optional[ReachIndex],
    members: Optional[Set[int]],
):
    """The regular dual-simulation fixpoint over integer candidate sets.

    ``members=None`` runs globally (wildcard edges answered by ``ri``
    probes); a member set runs ball-restricted (wildcard edges fall back
    to DFA walks — global distances cannot certify in-ball paths).

    Returns ``(sim, successors)``: the converged candidate sets (all
    cleared on collapse, like the reference) plus the memoized
    per-(edge, node) successor closure, which the strong matcher reuses
    to build match graphs without re-walking.
    """
    pattern = prog.pattern
    groups = gi.label_groups
    if members is None:
        sim: Dict[Node, Set[int]] = {
            u: set(groups.get(pattern.label(u), ())) for u in pattern.nodes()
        }
    else:
        sim = {
            u: set(groups.get(pattern.label(u), ())) & members
            for u in pattern.nodes()
        }
    use_probes = members is None and ri is not None
    fwd = gi.fwd_rows
    rev = gi.rev_rows
    succ_cache: Dict[Tuple[Node, Node], Dict[int, Set[int]]] = {
        edge: {} for edge in prog.edges
    }
    pred_cache: Dict[Tuple[Node, Node], Dict[int, Set[int]]] = {
        edge: {} for edge in prog.edges
    }

    def successors(edge: Tuple[Node, Node], v: int) -> Set[int]:
        cache = succ_cache[edge]
        hit = cache.get(v)
        if hit is None:
            hit = _dfa_successors(
                gi, v, prog.dfas[edge], prog.bounds[edge], members
            )
            cache[v] = hit
        return hit

    def predecessors(edge: Tuple[Node, Node], v: int) -> Set[int]:
        cache = pred_cache[edge]
        hit = cache.get(v)
        if hit is None:
            hit = _dfa_predecessors(
                gi, v, prog.rdfas[edge], prog.bounds[edge], members
            )
            cache[v] = hit
        return hit

    def collapse():
        for candidates in sim.values():
            candidates.clear()
        return sim, successors

    queue = deque(pattern.nodes())
    queued: Set[Node] = set(queue)
    while queue:
        w = queue.popleft()
        queued.discard(w)
        w_candidates = sim[w]
        t_probe = None  # shared per pop: probes are bound-agnostic
        s_probe = None
        # Parents u of w: v in sim(u) needs a regex path into sim(w).
        for u in pattern.predecessors(w):
            edge = (u, w)
            kind = prog.kinds[edge]
            if kind == _DIRECT:
                stale = [
                    v for v in sim[u] if w_candidates.isdisjoint(fwd[v])
                ]
            elif kind == _WILDCARD and use_probes:
                if t_probe is None:
                    t_probe = TargetProbe(ri, w_candidates)
                bound = prog.bounds[edge]
                stale = [
                    v
                    for v in sim[u]
                    if not t_probe.witness_from(v, bound)
                ]
            else:
                stale = [
                    v
                    for v in sim[u]
                    if w_candidates.isdisjoint(successors(edge, v))
                ]
            if stale:
                sim[u].difference_update(stale)
                if not sim[u]:
                    return collapse()
                if u not in queued:
                    queue.append(u)
                    queued.add(u)
        # Children u of w: v in sim(u) needs a regex path *from* sim(w).
        for u in pattern.successors(w):
            edge = (w, u)
            kind = prog.kinds[edge]
            if kind == _DIRECT:
                stale = [
                    v for v in sim[u] if w_candidates.isdisjoint(rev[v])
                ]
            elif kind == _WILDCARD and use_probes:
                if s_probe is None:
                    s_probe = SourceProbe(ri, w_candidates)
                bound = prog.bounds[edge]
                stale = [
                    v
                    for v in sim[u]
                    if not s_probe.witness_into(v, bound)
                ]
            else:
                stale = [
                    v
                    for v in sim[u]
                    if w_candidates.isdisjoint(predecessors(edge, v))
                ]
            if stale:
                sim[u].difference_update(stale)
                if not sim[u]:
                    return collapse()
                if u not in queued:
                    queue.append(u)
                    queued.add(u)
    if any(not candidates for candidates in sim.values()):
        return collapse()
    return sim, successors


def regular_dual_simulation_kernel(rpattern, data: DiGraph) -> MatchRelation:
    """Index-backed regular dual simulation (reference-identical)."""
    gi = get_index(data)
    prog = _RegularProgram(rpattern)
    with gi.reading():
        ri = reach_index_for(gi)
        sim, _ = _regular_fixpoint(prog, gi, ri, None)
        return _to_relation(gi, sim)


def regular_strong_match_kernel(
    rpattern, data: DiGraph, radius: Optional[int] = None
) -> MatchResult:
    """Index-backed regular strong matching (reference-identical).

    Global regular dual simulation via probes, then the reference's
    per-ball pipeline — ball-restricted fixpoint, path-semantics match
    graph, undirected component of the center — over integer ids,
    materializing object graphs only for successful balls.
    """
    pattern = rpattern.pattern
    if radius is None:
        radius = rpattern.default_radius()
    result = MatchResult(pattern)
    gi = get_index(data)
    prog = _RegularProgram(rpattern)
    with gi.reading():
        ri = reach_index_for(gi)
        global_sim, _ = _regular_fixpoint(prog, gi, ri, None)
        matched: Set[int] = set()
        for candidates in global_sim.values():
            matched |= candidates
        if not matched:
            return result
        nodes = gi.nodes
        labels = gi.labels
        fwd = gi.fwd_rows
        for center in sorted(matched, key=lambda i: repr(nodes[i])):
            order, _, _, _ = _ball_bfs(gi, center, radius)
            members = set(order)
            sim, successors = _regular_fixpoint(prog, gi, None, members)
            if not any(sim.values()):
                continue
            if not any(center in candidates for candidates in sim.values()):
                continue
            # Path-semantics match graph: one edge per witnessed pattern
            # edge between endpoint matches (interiors not materialized).
            match_edges: Set[Tuple[int, int]] = set()
            madj: Dict[int, List[int]] = {}
            for edge in prog.edges:
                u, u_prime = edge
                targets = sim[u_prime]
                direct = prog.kinds[edge] == _DIRECT
                for v in sim[u]:
                    if direct:
                        witnesses = targets.intersection(fwd[v])
                    else:
                        witnesses = successors(edge, v) & targets
                    for v_prime in witnesses:
                        if (v, v_prime) in match_edges:
                            continue
                        match_edges.add((v, v_prime))
                        madj.setdefault(v, []).append(v_prime)
                        if v_prime != v:
                            madj.setdefault(v_prime, []).append(v)
            component = {center}
            stack = [center]
            while stack:
                x = stack.pop()
                for y in madj.get(x, ()):
                    if y not in component:
                        component.add(y)
                        stack.append(y)
            subgraph = DiGraph._build_unchecked(
                ((nodes[i], labels[i]) for i in component),
                (
                    (nodes[a], nodes[b])
                    for a, b in match_edges
                    if a in component
                ),
            )
            restricted = MatchRelation(
                {
                    u: {nodes[v] for v in candidates & component}
                    for u, candidates in sim.items()
                }
            )
            result.add(PerfectSubgraph(subgraph, restricted, nodes[center]))
    return result
