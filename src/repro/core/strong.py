"""Strong simulation ``Q ≺_LD G`` — algorithm ``Match`` (Fig. 3).

For every ball ``Ĝ[w, d_Q]`` of the data graph:

1. compute the maximum dual-simulation relation ``Sw`` of ``Q`` on the
   ball (procedure ``DualSim``);
2. extract the maximum perfect subgraph via ``ExtractMaxPG``: if the
   center ``w`` appears in ``Sw``, the perfect subgraph is the connected
   component of the match graph w.r.t. ``Sw`` that contains ``w``
   (Theorems 1 and 2 justify this);
3. collect the subgraphs into Θ, deduplicating exact duplicates found from
   different centers.

Complexity: O(|V| (|V| + (|Vq| + |Eq|)(|V| + |E|))) — cubic, as Theorem 5
states.  The optimized variant lives in :mod:`repro.core.matchplus`.

Three execution engines implement this algorithm (``engine`` argument):

* ``"python"`` — the reference path below: per-ball ``DiGraph``
  construction + set-based fixpoints, kept as the readable ground truth;
* ``"kernel"`` — :mod:`repro.core.kernel`: the data graph is compiled once
  to integer-id CSR arrays and balls/fixpoints run over flat buffers.
  Output-identical, several times faster;
* ``"numpy"`` — :mod:`repro.core.npkernel`: the same compiled arrays
  walked by vectorized NumPy passes instead of per-node loops.
  Output-identical again; wins on large graphs;
* ``"auto"`` (default) — picks by graph size: reference for tiny
  one-shot graphs, numpy past :data:`repro.core.kernel.NUMPY_AUTO_THRESHOLD`
  (when numpy is installed), kernel otherwise.
"""

from __future__ import annotations

from typing import Iterable, Optional, Set

from repro.core.ball import Ball, extract_ball
from repro.core.digraph import DiGraph, Node
from repro.core.dualsim import dual_simulation
from repro.core.kernel import (
    kernel_match,
    kernel_matches_via_strong_simulation,
    resolve_engine,
)
from repro.core.npkernel import np_match, np_matches_via_strong_simulation
from repro.core.matchgraph import build_match_graph, relation_restricted_to_component
from repro.core.matchrel import MatchRelation
from repro.core.pattern import Pattern
from repro.core.result import MatchResult, PerfectSubgraph
from repro.core.traversal import undirected_distances


def extract_max_perfect_subgraph(
    pattern: Pattern,
    ball: Ball,
    relation: MatchRelation,
) -> Optional[PerfectSubgraph]:
    """Procedure ``ExtractMaxPG`` (Fig. 3).

    Returns ``None`` when the ball center does not appear in the relation
    (line 1); otherwise builds the match graph w.r.t. the relation and
    returns its connected component containing the center, together with
    the relation restricted to that component.
    """
    center = ball.center
    center_matched = any(
        center in relation.matches_of_raw(u) for u in pattern.nodes()
    )
    if not center_matched:
        return None
    match_graph = build_match_graph(pattern, ball.graph, relation)
    component = set(undirected_distances(match_graph, center))
    component_graph = match_graph.subgraph(component)
    component_relation = relation_restricted_to_component(relation, component)
    return PerfectSubgraph(component_graph, component_relation, center)


def match(
    pattern: Pattern,
    data: DiGraph,
    centers: Optional[Iterable[Node]] = None,
    radius: Optional[int] = None,
    engine: str = "auto",
) -> MatchResult:
    """Algorithm ``Match``: strong simulation over every ball of ``G``.

    Parameters
    ----------
    pattern:
        The connected pattern graph ``Q``.
    data:
        The data graph ``G``.
    centers:
        Ball centers to inspect; defaults to every node of ``G`` (the
        unoptimized algorithm of Fig. 3).  Optimized callers pass a
        restricted candidate set.
    radius:
        Ball radius; defaults to the pattern diameter ``d_Q``.  Exposed
        because Lemma 3 fixes the radius when comparing pattern
        equivalence, and tests exercise non-default radii.
    engine:
        ``"auto"`` (default), ``"kernel"``, ``"numpy"`` or ``"python"``
        — see the module docstring.  All engines are output-identical;
        use ``"python"`` to force the reference path.

    Returns
    -------
    MatchResult
        The deduplicated set Θ of maximum perfect subgraphs.
    """
    resolved = resolve_engine(engine, data)
    if resolved == "kernel":
        return kernel_match(pattern, data, centers=centers, radius=radius)
    if resolved == "numpy":
        return np_match(pattern, data, centers=centers, radius=radius)
    if radius is None:
        radius = pattern.diameter
    if centers is None:
        centers = list(data.nodes())
    result = MatchResult(pattern)
    for center in centers:
        ball = extract_ball(data, center, radius)
        relation = dual_simulation(pattern, ball.graph)
        if relation.is_empty():
            continue
        subgraph = extract_max_perfect_subgraph(pattern, ball, relation)
        if subgraph is not None:
            result.add(subgraph)
    return result


def matches_via_strong_simulation(
    pattern: Pattern, data: DiGraph, engine: str = "auto"
) -> bool:
    """Decide ``Q ≺_LD G`` — at least one perfect subgraph exists."""
    resolved = resolve_engine(engine, data)
    if resolved == "kernel":
        return kernel_matches_via_strong_simulation(pattern, data)
    if resolved == "numpy":
        return np_matches_via_strong_simulation(pattern, data)
    radius = pattern.diameter
    for center in data.nodes():
        ball = extract_ball(data, center, radius)
        relation = dual_simulation(pattern, ball.graph)
        if relation.is_empty():
            continue
        if extract_max_perfect_subgraph(pattern, ball, relation) is not None:
            return True
    return False


def candidate_centers(pattern: Pattern, data: DiGraph) -> Set[Node]:
    """Nodes of ``G`` whose label occurs in ``Q``.

    A sound restriction of the ball centers: a center that matches no
    pattern node can never appear in the maximum match relation of its own
    ball, so ``ExtractMaxPG`` would return ``nil`` for it (line 1 of
    Fig. 3).  Used by ``Match+`` and available as a standalone ablation.
    """
    centers: Set[Node] = set()
    for label in pattern.label_set():
        centers |= data.nodes_with_label(label)
    return centers
