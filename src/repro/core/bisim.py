"""Graph bisimulation and the intractable subgraph-bisimulation boundary.

Section 3.2 positions strong simulation at a tractability boundary:
replacing simulation with *bisimulation* in pattern matching makes the
problem np-hard (subgraph bisimulation, Dovier & Piazza 2003), although
graph bisimulation itself is ptime.  This module provides:

* :func:`maximum_bisimulation` — the coarsest bisimulation relation
  between two graphs, by fixpoint refinement (ptime);
* :func:`are_bisimilar` — ``Q ∼ G`` in the paper's sense: ``Q ≺ G`` with
  maximum relation ``S`` and ``G ≺ Q`` with ``S⁻``;
* :func:`subgraph_bisimulation_exists` — an exponential-time exact search
  for a subgraph of ``G`` bisimilar to ``Q``, usable only on tiny inputs;
  it exists to *demonstrate* the boundary, and its cost is measured by an
  ablation benchmark.
"""

from __future__ import annotations

from itertools import combinations
from typing import FrozenSet, Optional, Set, Tuple

from repro.core.digraph import DiGraph, Node
from repro.core.pattern import Pattern

Pair = Tuple[Node, Node]


def maximum_bisimulation(first: DiGraph, second: DiGraph) -> Set[Pair]:
    """The coarsest bisimulation relation between two labeled digraphs.

    A pair ``(a, b)`` survives iff labels agree and the child condition
    holds in both directions: every child of ``a`` is matched by a child
    of ``b`` in the relation and vice versa.  Computed by removing
    violating pairs until a fixpoint; the result may be empty.
    """
    relation: Set[Pair] = {
        (a, b)
        for a in first.nodes()
        for b in second.nodes_with_label(first.label(a))
    }
    changed = True
    while changed:
        changed = False
        stale = []
        for a, b in relation:
            forward_ok = all(
                any((a2, b2) in relation for b2 in second.successors_raw(b))
                for a2 in first.successors_raw(a)
            )
            backward_ok = forward_ok and all(
                any((a2, b2) in relation for a2 in first.successors_raw(a))
                for b2 in second.successors_raw(b)
            )
            if not (forward_ok and backward_ok):
                stale.append((a, b))
        if stale:
            relation.difference_update(stale)
            changed = True
    return relation


def are_bisimilar(pattern: Pattern, data: DiGraph) -> bool:
    """``Q ∼ G`` per Section 3.2.

    True iff the coarsest bisimulation is total on *both* node sets —
    every node of the pattern is bisimilar to some node of the data graph
    and vice versa.
    """
    relation = maximum_bisimulation(pattern.graph, data)
    covered_left = {a for a, _ in relation}
    covered_right = {b for _, b in relation}
    return (
        covered_left == set(pattern.nodes())
        and covered_right == set(data.nodes())
    )


def subgraph_bisimulation_exists(
    pattern: Pattern,
    data: DiGraph,
    max_extra_nodes: int = 3,
) -> Optional[FrozenSet[Node]]:
    """Exact subgraph-bisimulation search (exponential; tiny inputs only).

    Searches for a node subset ``Vs`` of ``G`` whose induced subgraph is
    bisimilar to ``Q``.  Subsets are enumerated by size from ``|Vq|`` up to
    ``|Vq| + max_extra_nodes``, restricted to nodes whose label occurs in
    the pattern (a sound pruning: a node with a foreign label can never be
    bisimilar to any pattern node, and an unmatched node in ``Vs`` breaks
    totality).  Returns the first witness subset, or ``None``.

    This is np-hard in general (Dovier & Piazza 2003) and the enumeration
    is exponential; callers must keep ``G`` small.  The function exists to
    exhibit the tractability boundary of Section 3.2 next to cubic-time
    strong simulation.
    """
    labels_needed = pattern.label_set()
    candidates = [
        v for v in data.nodes() if data.label(v) in labels_needed
    ]
    upper = min(len(candidates), pattern.num_nodes + max_extra_nodes)
    for size in range(pattern.num_nodes, upper + 1):
        for subset in combinations(candidates, size):
            node_set = frozenset(subset)
            induced = data.subgraph(node_set)
            if are_bisimilar(pattern, induced):
                return node_set
    return None
