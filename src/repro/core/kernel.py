"""Integer-indexed CSR execution kernel for the matching hot path.

The reference implementations (:mod:`repro.core.strong`,
:mod:`repro.core.matchplus`, :mod:`repro.core.dualsim`) operate directly on
:class:`~repro.core.digraph.DiGraph` — hash-set adjacency, object node ids,
a fresh ``DiGraph`` rebuilt for every ball.  That is the right shape for
reading the paper, but the constant factor dominates at scale: the cubic
bound of Theorem 5 turns into hours of dict churn.

This module compiles a data graph *once* into a compact form and
re-implements the two inner engines on top of it:

``GraphIndex``
    Integer node ids plus growable CSR adjacency rows (forward, reverse
    and undirected views; shared substrate :class:`GrowableCSRIndex`)
    and a label-partitioned node table.  Compilation is O(|V| + |E|),
    cached per data graph — and *maintained* rather than recompiled: the
    index subscribes to the graph's
    :class:`~repro.core.digraph.GraphDelta` stream and :func:`get_index`
    syncs pending events in place (O(1) per node event, O(degree) per
    edge event; a full recompile only once deletions pass a density
    threshold, observable via :attr:`GraphIndex.stats`).  Repeated
    queries against the same graph — even a mutating one — amortize one
    compilation.

Ball extraction
    Bounded undirected layered BFS over the flat arrays with a reusable
    epoch-stamped ``visited`` buffer — no per-ball ``DiGraph``
    reconstruction, no per-ball O(|V|) allocation.  Candidate sets carry
    ball membership implicitly from the seeding step onward, so the
    fixpoint, pruning and extraction all run over global CSR rows.

Dual simulation
    A counter-based deletion-propagation fixpoint in the style of
    Henzinger, Henzinger & Kopke (1995): for every (pattern edge, data
    node) pair the kernel maintains the number of surviving witnesses and
    cascades a removal only when a count reaches zero, replacing the
    repeated ``any(v2 in targets ...)`` scans of the reference fixpoints.
    Counters live in sparse dicts; on the ``dualFilter`` path they are
    computed *lazily* on first touch, so a ball whose projection needs few
    deletions pays only for the border pairs it actually inspects
    (Proposition 5), never for a full re-initialization.

Graph simulation
    The same counter machinery restricted to the *child* direction only:
    plain graph simulation (Milner-style, no duality) maintains one
    witness count per (pattern edge, parent candidate) and cascades
    removals when a candidate's last child witness disappears.  This is
    the counter fixpoint the ROADMAP asked to reuse for
    ``graph_simulation``.

Entry points — all *output-identical* to the reference Python path:

* :func:`kernel_match` — strong simulation (algorithm ``Match``);
* :func:`kernel_match_plus` — the optimized ``Match+`` core (global dual
  simulation + restricted balls + connectivity pruning + deletion-only
  per-ball refinement);
* :func:`dual_simulation_kernel` — the maximum dual-simulation relation
  over the full data graph;
* :func:`graph_simulation_kernel` — the maximum (child-direction-only)
  graph-simulation relation over the full data graph;
* :func:`kernel_matches_via_strong_simulation` — the boolean decision
  procedure with early exit.

The distributed runtime (:mod:`repro.distributed.sitekernel`) reuses the
compiled-pattern and fixpoint internals over its own incrementally
extended per-site index, which mirrors the :class:`GraphIndex` row
layout.

Callers normally do not import this module directly: ``match`` and
``match_plus`` take an ``engine`` argument (``"auto"`` | ``"kernel"`` |
``"numpy"`` | ``"python"``) and route here, as does the CLI via
``--engine``.  The ``"numpy"`` engine (:mod:`repro.core.npkernel`)
shares this module's compiled indexes but replaces the per-node loops
with vectorized array passes.
"""

from __future__ import annotations

import threading
import weakref
from collections import deque
from contextlib import contextmanager
from dataclasses import dataclass
from typing import Deque, Dict, FrozenSet, Iterable, List, Optional, Set, Tuple

from repro.core.digraph import (
    ADD_EDGE,
    ADD_NODE,
    REMOVE_EDGE,
    REMOVE_NODE,
    RELABEL,
    DiGraph,
    GraphDelta,
    Label,
    Node,
)
from repro.core.matchrel import MatchRelation
from repro.core.pattern import Pattern
from repro.core.result import MatchResult, PerfectSubgraph
from repro.exceptions import GraphError, MatchingError, NodeNotFound
from repro.obs.metrics import get_registry as _obs_registry
from repro.obs.trace import span as _obs_span

try:  # The numpy engine is optional; probe availability once at import.
    import numpy as _numpy_probe  # noqa: F401
    NUMPY_AVAILABLE = True
except ImportError:  # pragma: no cover - exercised via a subprocess test
    NUMPY_AVAILABLE = False

ENGINES = ("auto", "kernel", "numpy", "python")

#: ``"auto"`` falls back to the reference engine below this ``|V| + |E|``
#: when the graph has no compiled index yet: for a one-shot tiny query
#: the O(|V| + |E|) compilation cannot amortize.
TINY_AUTO_THRESHOLD = 256

#: ``"auto"`` prefers the vectorized numpy engine at or above this
#: ``|V| + |E|`` (when numpy is installed): the per-call dispatch
#: overhead of array operations amortizes once the CSR rows are a few
#: thousand entries, and below it the per-node kernel loops win.
NUMPY_AUTO_THRESHOLD = 2048

#: A pending removal: (pattern node id, data node id).
Pair = Tuple[int, int]

#: Sentinel stored in ``labels[i]`` for tombstoned (removed) node slots.
#: A fresh object, so it can never collide with a user label (including
#: ``None``, which is a legal label).
_DEAD = object()


def resolve_engine(engine: str, data: Optional[DiGraph] = None) -> str:
    """Validate ``engine`` and collapse ``"auto"`` to a concrete choice.

    ``"auto"`` selects a compiled engine — output-identical to the
    reference path and at least as fast on every workload we benchmark —
    by size: when ``data`` is given, is tiny (``|V| + |E| <``
    :data:`TINY_AUTO_THRESHOLD`) and has no compiled index cached yet,
    the reference engine is chosen, because a one-shot query on a tiny
    graph cannot amortize compilation (a cached index — even one with
    pending deltas, syncing is cheaper than compiling — always means a
    compiled engine); at or above :data:`NUMPY_AUTO_THRESHOLD` the
    vectorized numpy engine is chosen when numpy is installed (it shares
    the same cached :class:`GraphIndex`); everything in between is the
    per-node kernel.  Without ``data`` the answer is ``"kernel"``,
    preserving the pre-heuristic behavior for callers that validate only.

    ``"numpy"`` requested explicitly without numpy installed raises
    :class:`~repro.exceptions.MatchingError` — the ``python`` and
    ``kernel`` engines stay fully functional, and ``"auto"`` never
    selects numpy in that case.
    """
    if engine not in ENGINES:
        raise ValueError(
            f"unknown engine {engine!r}; expected one of {ENGINES}"
        )
    if engine == "numpy" and not NUMPY_AVAILABLE:
        raise MatchingError(
            "engine='numpy' requires numpy, which is not installed; "
            "the 'kernel' and 'python' engines remain fully functional"
        )
    if engine != "auto":
        return engine
    if (
        data is not None
        and data.size < TINY_AUTO_THRESHOLD
        and _INDEX_CACHE.get(data) is None
    ):
        return "python"
    if (
        NUMPY_AVAILABLE
        and data is not None
        and data.size >= NUMPY_AUTO_THRESHOLD
    ):
        return "numpy"
    return "kernel"


# ======================================================================
# Graph compilation
# ======================================================================
class _VisitState:
    """One thread's epoch-stamped visited buffer for ball BFS.

    ``stamp[v] == epoch`` marks node ``v`` visited in the current epoch;
    bumping the epoch invalidates the whole buffer in O(1).  Each thread
    querying an index gets its *own* state (see
    :meth:`GrowableCSRIndex.visit_state`), which is what makes the kernel
    read path safe under concurrent queries: the CSR rows and label
    groups are read-only during a query, so the visited buffer was the
    only shared mutable state on the path.
    """

    __slots__ = ("stamp", "epoch")

    def __init__(self) -> None:
        self.stamp: List[int] = []
        self.epoch = 0

    def new_epoch(self) -> int:
        """Invalidate this thread's stamp buffer in O(1)."""
        self.epoch += 1
        return self.epoch


class GrowableCSRIndex:
    """Shared growable-CSR substrate for compiled graph indexes.

    Holds the row layout every kernel loop iterates — ``nodes`` /
    ``index_of`` / ``labels`` plus the three adjacency views (forward,
    reverse, and the undirected union used by ball BFS) as per-node
    integer lists — and the epoch-stamped visited buffer.  Rows are
    *growable*: new node slots append in O(1) and edges patch the
    affected rows in O(degree), with ids stable across every extension,
    which is what lets both the centralized :class:`GraphIndex` (delta
    maintenance) and the distributed ``SiteGraphIndex`` (remote-stub
    materialization) stay warm instead of recompiling.

    Visited marking for ball BFS lives in per-thread :class:`_VisitState`
    buffers (:meth:`visit_state`): bumping an epoch invalidates a whole
    buffer in O(1), so per-ball BFS allocates nothing proportional to
    |V|, and concurrent queries on different threads never share a
    buffer — the read path (CSR rows, label groups) is immutable during
    a query, so queries are thread-safe.
    """

    __slots__ = (
        "nodes",
        "index_of",
        "labels",
        "fwd_rows",
        "rev_rows",
        "und_rows",
        "_visit_tls",
        "_np_view",
        "__weakref__",
    )

    def __init__(self) -> None:
        self.nodes: List[Node] = []
        self.index_of: Dict[Node, int] = {}
        self.labels: List[Label] = []
        self.fwd_rows: List[List[int]] = []
        self.rev_rows: List[List[int]] = []
        self.und_rows: List[List[int]] = []
        self._visit_tls = threading.local()
        # Cached numpy array view of the rows (built lazily by
        # repro.core.npkernel); every mutation drops it, so a stale view
        # can never be served.  None also when numpy is not installed.
        self._np_view = None

    def _new_slot(self, node: Node) -> int:
        """Append an empty slot for ``node``; returns its (stable) id."""
        i = len(self.nodes)
        self.index_of[node] = i
        self.nodes.append(node)
        self.labels.append(None)
        self.fwd_rows.append([])
        self.rev_rows.append([])
        self.und_rows.append([])
        self._np_view = None
        return i

    def _csr_add_edge(self, s: int, t: int) -> None:
        """Patch all three views for a new edge ``s -> t`` (both rows).

        The undirected rows hold each neighbor once, so the append is
        guarded by membership — already present exactly when the reverse
        edge existed (or for the second half of a self-loop).
        """
        self.fwd_rows[s].append(t)
        self.rev_rows[t].append(s)
        und_s = self.und_rows[s]
        if t not in und_s:
            und_s.append(t)
        if s != t:
            und_t = self.und_rows[t]
            if s not in und_t:
                und_t.append(s)
        self._np_view = None

    def _csr_remove_edge(self, s: int, t: int) -> None:
        """Patch all three views for a removed edge ``s -> t`` (both rows)."""
        self.fwd_rows[s].remove(t)
        self.rev_rows[t].remove(s)
        # The undirected link survives iff the reverse edge t -> s still
        # exists (never the case after removing a self-loop).
        if s == t or s not in self.fwd_rows[t]:
            self.und_rows[s].remove(t)
            if s != t:
                self.und_rows[t].remove(s)
        self._np_view = None

    def visit_state(self) -> _VisitState:
        """This thread's visited buffer, grown to cover every slot.

        Buffers are thread-local, so concurrent queries never race on
        visited marks; a buffer only ever grows (a recompile that shrinks
        the slot count leaves the tail unused, which is harmless — epochs
        make stale entries invisible).
        """
        state = getattr(self._visit_tls, "state", None)
        if state is None:
            state = _VisitState()
            self._visit_tls.state = state
        shortfall = len(self.nodes) - len(state.stamp)
        if shortfall > 0:
            state.stamp.extend([0] * shortfall)
        return state

    def new_epoch(self) -> int:
        """Invalidate this thread's stamp buffer in O(1)."""
        return self.visit_state().new_epoch()


@dataclass
class IndexStats:
    """Observability counters for one :class:`GraphIndex`.

    Attributes
    ----------
    full_compiles:
        From-scratch compilations, including the initial one.  A warm
        update workload holds this at 1; it grows only when deletions
        pass the density threshold (or maintenance is disabled and a new
        index replaces this one — a new index starts a new counter).
    incremental_syncs:
        ``sync`` calls that applied pending deltas in place.
    deltas_applied:
        Total mutation events applied incrementally.
    label_moves:
        Label-group entries actually moved by relabel maintenance.
        Relabels are coalesced per sync group — a node relabeled k times
        in one :meth:`~repro.core.digraph.DiGraph.batch` costs at most
        one move (zero when it returns to its initial label) — so this
        can be far below the number of ``relabel`` deltas applied.
    reach_builds:
        From-scratch compilations of the lazy :class:`ReachIndex`
        component (see :mod:`repro.core.reach`).  A pure-insertion
        workload holds this at 1 after the first path probe.
    reach_patches:
        Edge insertions absorbed by the reach labels in place (resumed
        pruned BFS sweeps) instead of a rebuild.
    reach_drops:
        Times the reach index was discarded for a lazy rebuild —
        deletions make stale distance labels over-approximate, so any
        deletion drops it (the rebuild is only paid if another path
        probe arrives).
    reach_probes:
        Distance/reachability questions answered from the labels
        (witness tests, pairwise queries).
    """

    full_compiles: int = 0
    incremental_syncs: int = 0
    deltas_applied: int = 0
    label_moves: int = 0
    reach_builds: int = 0
    reach_patches: int = 0
    reach_drops: int = 0
    reach_probes: int = 0


#: Every live :class:`GraphIndex` in this process, for metric
#: aggregation.  Weak: an index dies with its graph, exactly as the
#: ``_INDEX_CACHE`` entry does.
_ALL_INDEXES: "weakref.WeakSet" = weakref.WeakSet()

#: Maps :class:`IndexStats` fields to the registry's unified namespace.
_STATS_METRIC_NAMES = (
    ("full_compiles", "index.full_compiles"),
    ("incremental_syncs", "index.incremental_syncs"),
    ("deltas_applied", "index.deltas_applied"),
    ("label_moves", "index.label_moves"),
    ("reach_builds", "reach.builds"),
    ("reach_patches", "reach.patches"),
    ("reach_drops", "reach.drops"),
    ("reach_probes", "reach.probes"),
)


def aggregate_index_stats() -> IndexStats:
    """Sum the :class:`IndexStats` of every live index in this process.

    The process-wide view of the hot-path counters: the kernel loops
    keep their plain-int increments (zero observability overhead), and
    this aggregation runs only when someone asks — the metrics
    registry's collector, or a distributed worker's ``runtime_stats``.
    """
    total = IndexStats()
    for index in list(_ALL_INDEXES):
        stats = index.stats
        for field_name, _ in _STATS_METRIC_NAMES:
            setattr(
                total,
                field_name,
                getattr(total, field_name) + getattr(stats, field_name),
            )
    return total


def _sample_index_metrics():
    """Registry collector: absorb ``IndexStats`` into ``index.*``/``reach.*``."""
    total = aggregate_index_stats()
    return [
        (metric_name, {}, getattr(total, field_name))
        for field_name, metric_name in _STATS_METRIC_NAMES
    ]


_obs_registry().register_collector(_sample_index_metrics, _sample_index_metrics)


class GraphIndex(GrowableCSRIndex):
    """A ``DiGraph`` compiled to integer ids + growable CSR rows.

    Compilation is O(|V| + |E|); afterwards the index *maintains itself*:
    it subscribes to the graph's :class:`~repro.core.digraph.GraphDelta`
    stream, buffers events, and :meth:`sync` (called by
    :func:`get_index`) patches the rows in place — O(1) per node event,
    O(degree) per edge event — so ids stay stable and a warm index never
    recompiles under insertions.  Node removals tombstone their slot
    (label → sentinel, rows already emptied by the preceding edge
    deltas); when accumulated deletions pass the density threshold
    (:meth:`_deletions_over_threshold`) the next sync recompiles from
    scratch instead, compacting the tombstones away.

    :attr:`stats` (an :class:`IndexStats`) makes the maintenance
    observable: a pure-insertion workload keeps ``full_compiles`` at 1.

    ``n`` counts *slots* (including tombstones) — it is the bound for
    id-space iteration; :attr:`num_live` is the live ``|V|``.

    Using an index that has *unapplied* deltas (the graph mutated after
    the index was obtained, e.g. mid-query) raises
    :class:`~repro.exceptions.MatchingError` instead of silently serving
    rows from a mix of epochs — re-acquire via :func:`get_index`, which
    syncs first.
    """

    __slots__ = (
        "graph_version",
        "n",
        "label_groups",
        "num_edges",
        "stats",
        "_pending",
        "_overflowed",
        "_removed_weight",
        "_read_guard",
        "_reach",
    )

    def __init__(self, graph: DiGraph) -> None:
        super().__init__()
        self.stats = IndexStats()
        self._pending: List[GraphDelta] = []
        self._overflowed = False
        self._read_guard = _ReadGuard()
        # Lazily built reachability/distance labeling (repro.core.reach);
        # cached like _np_view and maintained off the delta stream.
        self._reach = None
        _ALL_INDEXES.add(self)
        self._compile(graph)
        graph.subscribe(self)

    def reading(self):
        """Context manager marking this thread as querying the index.

        While any thread is inside :meth:`reading`, :func:`get_index`
        defers incremental syncs (the writer blocks until the readers
        drain) instead of patching rows under an in-flight query.
        Re-entrant per thread; a thread that tries to *sync* while it is
        itself reading gets a fail-loud :class:`MatchingError` instead
        of a self-deadlock.
        """
        return self._read_guard.reading()

    def _write_access(self):
        """Context manager serializing a sync against in-flight readers."""
        return self._read_guard.writing()

    @property
    def num_live(self) -> int:
        """``|V|`` excluding tombstoned slots (``n`` counts all slots)."""
        return len(self.index_of)

    def _compile(self, graph: DiGraph) -> None:
        """(Re)build every array from scratch; resets deletion debt.

        ``graph_version`` is stamped *last*: the lock-free fast path of
        :func:`get_index` treats a current version with no pending
        deltas as "safe to use without the lock", so the stamp must not
        become visible to other threads until every array is rebuilt.
        """
        with _obs_span("index.compile") as _sp:
            self._compile_impl(graph)
            if _sp.enabled:
                _sp.set(nodes=self.n, edges=self.num_edges)

    def _compile_impl(self, graph: DiGraph) -> None:
        nodes: List[Node] = list(graph.nodes())
        self.nodes = nodes
        n = len(nodes)
        self.n = n
        index_of: Dict[Node, int] = {node: i for i, node in enumerate(nodes)}
        self.index_of = index_of
        labels_map = graph.labels_raw()
        labels: List[Label] = [labels_map[node] for node in nodes]
        self.labels = labels
        label_groups: Dict[Label, Set[int]] = {}
        for i, lab in enumerate(labels):
            label_groups.setdefault(lab, set()).add(i)
        self.label_groups = label_groups

        fwd_rows: List[List[int]] = []
        rev_rows: List[List[int]] = []
        und_rows: List[List[int]] = []
        for node in nodes:
            succ = graph.successors_raw(node)
            pred = graph.predecessors_raw(node)
            fwd = [index_of[target] for target in succ]
            fwd_rows.append(fwd)
            rev_rows.append([index_of[source] for source in pred])
            row = fwd.copy()
            row.extend(
                index_of[source] for source in pred if source not in succ
            )
            und_rows.append(row)
        self.num_edges = graph.num_edges
        self.fwd_rows = fwd_rows
        self.rev_rows = rev_rows
        self.und_rows = und_rows

        self._removed_weight = 0
        self._np_view = None
        self._drop_reach()
        self.stats.full_compiles += 1
        self.graph_version = graph.version

    # ------------------------------------------------------------------
    # Delta maintenance
    # ------------------------------------------------------------------
    def on_graph_deltas(self, deltas: Tuple[GraphDelta, ...]) -> None:
        """Change-log subscriber: buffer events until the next sync.

        The buffer is bounded: once replaying it would cost more than a
        fresh compile (more pending events than the index is large), the
        events are dropped and the index just marks itself for a full
        recompile — a graph mutated heavily between queries then costs
        one compile, not unbounded delta retention.
        """
        if self._overflowed:
            return
        self._pending.extend(deltas)
        if len(self._pending) > max(4096, self.n + self.num_edges):
            self._pending.clear()
            self._overflowed = True

    def _deletions_over_threshold(self, pending_deletions: int) -> bool:
        """The density threshold for falling back to a full recompile.

        Tombstoned slots and removed row entries make the arrays sparser
        than a fresh compile; once the accumulated deletion debt exceeds
        a quarter of the live size (with a floor of 64 so small graphs
        never thrash), rebuilding is cheaper than further patching.
        """
        debt = self._removed_weight + pending_deletions
        return debt > max(64, (self.n + self.num_edges) >> 2)

    def sync(self, graph: DiGraph) -> None:
        """Bring the index up to date with ``graph``'s pending deltas.

        Applies the buffered events in place (insertions never trigger a
        recompile); falls back to :meth:`_compile` when deletions exceed
        the density threshold or the delta stream cannot explain the
        version gap (defensive — cannot happen through ``DiGraph``'s own
        mutators).
        """
        deltas, self._pending = self._pending, []
        if self._overflowed:
            self._overflowed = False
            with _obs_span("index.sync") as _sp:
                _sp.set(outcome="recompile-overflow")
                self._compile(graph)
            return
        if not deltas and self.graph_version == graph.version:
            return
        with _obs_span("index.sync") as _sp:
            if _sp.enabled:
                _sp.set(deltas=len(deltas))
            pending_deletions = sum(
                1 for d in deltas if d.kind in (REMOVE_EDGE, REMOVE_NODE)
            )
            if (
                self.graph_version + len(deltas) != graph.version
                or self._deletions_over_threshold(pending_deletions)
            ):
                _sp.set(outcome="recompile-deletions")
                self._compile(graph)
                return
            _sp.set(outcome="incremental")
            self._apply_delta_group(deltas)
            self.graph_version = graph.version
            self.stats.incremental_syncs += 1
            self.stats.deltas_applied += len(deltas)

    def _apply_delta_group(self, deltas: Iterable[GraphDelta]) -> None:
        """Apply one synced delta group with coalesced label-group moves.

        Edge and node-lifecycle events apply in stream order — CSR row
        patches are inherently per-edge, and order matters (an edge delta
        may reference a node added earlier in the same group).  Relabels
        are *batched* instead: each slot's net first-old -> latest-new
        transition is collected while streaming, and the group ends with
        one label-group pass — ``difference_update`` per vacated label,
        ``update`` per gained label — so a node relabeled k times inside
        one :meth:`~repro.core.digraph.DiGraph.batch` moves at most one
        label-group entry (zero when the labels round-trip).
        """
        pending_relabel: Dict[int, Tuple[Label, Label]] = {}
        for delta in deltas:
            kind = delta.kind
            if kind == RELABEL:
                i = self.index_of[delta.node]
                first = pending_relabel.get(i)
                old = delta.old_label if first is None else first[0]
                pending_relabel[i] = (old, delta.label)
                continue
            if kind == REMOVE_NODE:
                # The removal delta carries the node's *latest* label; a
                # deferred relabel would leave the group lookup pointing
                # at the stale one, so settle this slot first.
                i = self.index_of[delta.node]
                net = pending_relabel.pop(i, None)
                if net is not None:
                    self._move_label_groups({i: net})
            self._apply_delta(delta)
        if pending_relabel:
            self._move_label_groups(pending_relabel)

    def _move_label_groups(
        self, transitions: Dict[int, Tuple[Label, Label]]
    ) -> None:
        """One label-group pass applying net ``old -> new`` transitions."""
        by_old: Dict[Label, List[int]] = {}
        by_new: Dict[Label, List[int]] = {}
        labels = self.labels
        for i, (old, new) in transitions.items():
            if old == new:
                continue  # round-tripped inside the group: net no-op
            labels[i] = new
            by_old.setdefault(old, []).append(i)
            by_new.setdefault(new, []).append(i)
        moved = 0
        for old, ids in by_old.items():
            group = self.label_groups[old]
            group.difference_update(ids)
            if not group:
                del self.label_groups[old]
            moved += len(ids)
        for new, ids in by_new.items():
            self.label_groups.setdefault(new, set()).update(ids)
        self.stats.label_moves += moved
        if moved:
            self._np_view = None

    def _drop_reach(self) -> None:
        """Discard the reach labeling for a lazy rebuild on next probe."""
        if self._reach is not None:
            self._reach = None
            self.stats.reach_drops += 1

    def _apply_delta(self, delta: GraphDelta) -> None:
        kind = delta.kind
        if kind == ADD_EDGE:
            a = self.index_of[delta.source]
            b = self.index_of[delta.target]
            self._csr_add_edge(a, b)
            self.num_edges += 1
            if self._reach is not None:
                # Sound in place: inserted edges only shorten distances,
                # and the resumed label sweeps restore the cover property.
                self._reach.apply_add_edge(a, b)
        elif kind == REMOVE_EDGE:
            self._csr_remove_edge(
                self.index_of[delta.source], self.index_of[delta.target]
            )
            self.num_edges -= 1
            self._removed_weight += 1
            self._drop_reach()
        elif kind == ADD_NODE:
            i = self._new_slot(delta.node)
            self.labels[i] = delta.label
            self.label_groups.setdefault(delta.label, set()).add(i)
            self.n += 1
            if self._reach is not None:
                self._reach.add_slot()
        elif kind == REMOVE_NODE:
            # Incident-edge deltas always precede (same batch), so the
            # slot's rows are already empty; tombstone it.
            i = self.index_of.pop(delta.node)
            group = self.label_groups[delta.label]
            group.discard(i)
            if not group:
                del self.label_groups[delta.label]
            self.labels[i] = _DEAD
            self.nodes[i] = None
            self._removed_weight += 1
            self._np_view = None
            self._drop_reach()
        elif kind == RELABEL:
            # Normally coalesced by _apply_delta_group; kept for callers
            # applying single deltas.
            i = self.index_of[delta.node]
            self._move_label_groups({i: (delta.old_label, delta.label)})
        else:  # pragma: no cover - the kinds above are exhaustive
            raise MatchingError(f"unknown graph delta kind {kind!r}")

    def ensure_current(self) -> None:
        """Raise if the graph mutated after this index was obtained.

        Serving rows from a mix of epochs (the pre-mutation compile plus
        whatever the caller sees live) is silently wrong; callers must
        re-acquire the index through :func:`get_index`, which syncs.
        """
        if self._pending or self._overflowed:
            count = "many" if self._overflowed else len(self._pending)
            raise MatchingError(
                f"stale GraphIndex: the data graph was mutated "
                f"({count} unapplied delta(s)) after this index was "
                "obtained; re-acquire it via get_index(graph) instead of "
                "using a held index across mutations"
            )

    def visit_state(self) -> _VisitState:
        """This thread's visited buffer; refuses to serve a stale index."""
        if self._pending or self._overflowed:
            self.ensure_current()
        return super().visit_state()

    def new_epoch(self) -> int:
        """Invalidate this thread's stamp buffer in O(1)."""
        return self.visit_state().new_epoch()

    def __repr__(self) -> str:
        return (
            f"GraphIndex(|V|={self.num_live}, |E|={self.num_edges}, "
            f"labels={len(self.label_groups)})"
        )


_INDEX_CACHE: "weakref.WeakKeyDictionary[DiGraph, GraphIndex]" = (
    weakref.WeakKeyDictionary()
)

#: Per-graph locks serializing compile/sync in :func:`get_index`.
#: Concurrent *queries* against an up-to-date index are lock-free reads;
#: a lock only guards the acquire path so two threads never compile or
#: sync the same graph simultaneously (the thread-safety contract of the
#: service layer).  Locks are per graph — one graph's O(|V|+|E|) compile
#: must not convoy an unrelated graph's cheap sync — with a tiny global
#: guard only around lock creation.
_INDEX_LOCKS: "weakref.WeakKeyDictionary[DiGraph, threading.Lock]" = (
    weakref.WeakKeyDictionary()
)
_INDEX_LOCKS_GUARD = threading.Lock()


def _index_lock(graph: DiGraph) -> threading.Lock:
    lock = _INDEX_LOCKS.get(graph)
    if lock is None:
        with _INDEX_LOCKS_GUARD:
            lock = _INDEX_LOCKS.get(graph)
            if lock is None:
                lock = threading.Lock()
                _INDEX_LOCKS[graph] = lock
    return lock


class _ReadGuard:
    """Reader–writer guard protecting a warm index from mid-query syncs.

    Query entry points register as *readers* for the duration of their
    traversal; :func:`get_index` takes the *writer* side around
    :meth:`GraphIndex.sync`, waiting until in-flight readers drain
    before patching rows (and blocking new readers while it patches).
    Reads are re-entrant per thread; the writer side detects the
    self-deadlock case — a thread mutating the graph and re-syncing
    while it is itself mid-query — and fails loud with
    :class:`MatchingError` instead of hanging.
    """

    __slots__ = ("_cond", "_readers", "_writing", "_tls")

    def __init__(self) -> None:
        self._cond = threading.Condition()
        self._readers = 0
        self._writing = False
        self._tls = threading.local()

    @contextmanager
    def reading(self):
        depth = getattr(self._tls, "depth", 0)
        if depth == 0:
            with self._cond:
                while self._writing:
                    self._cond.wait()
                self._readers += 1
        self._tls.depth = depth + 1
        try:
            yield
        finally:
            self._tls.depth = depth
            if depth == 0:
                with self._cond:
                    self._readers -= 1
                    if not self._readers:
                        self._cond.notify_all()

    @contextmanager
    def writing(self):
        if getattr(self._tls, "depth", 0):
            raise MatchingError(
                "cannot sync a GraphIndex from a thread that is mid-query "
                "on it: the graph was mutated and get_index() re-entered "
                "inside an active traversal; finish the query before "
                "mutating, or re-acquire the index afterwards"
            )
        with self._cond:
            while self._readers or self._writing:
                self._cond.wait()
            self._writing = True
        try:
            yield
        finally:
            with self._cond:
                self._writing = False
                self._cond.notify_all()

#: Whether cached indexes maintain themselves from the delta stream
#: (default) or are replaced wholesale on mutation (the pre-pipeline
#: behavior, kept for benchmarking the difference).
_MAINTENANCE_ENABLED = True


def set_index_maintenance(enabled: bool) -> bool:
    """Toggle incremental index maintenance; returns the previous value.

    With maintenance off, :func:`get_index` recompiles a fresh index for
    every mutated graph (the recompile-per-update baseline benchmarked in
    ``benchmarks/bench_kernel.py``); held stale indexes still raise
    :class:`~repro.exceptions.MatchingError` on use either way.
    """
    global _MAINTENANCE_ENABLED
    previous = _MAINTENANCE_ENABLED
    _MAINTENANCE_ENABLED = bool(enabled)
    return previous


@contextmanager
def index_maintenance(enabled: bool):
    """Context manager form of :func:`set_index_maintenance`."""
    previous = set_index_maintenance(enabled)
    try:
        yield
    finally:
        set_index_maintenance(previous)


def get_index(graph: DiGraph) -> GraphIndex:
    """The compiled index of ``graph``, maintained across mutations.

    Cached per graph object (weakly, so indexes die with their graphs).
    A cache hit whose graph has since mutated is *synced* — pending
    deltas applied in place, a full recompile only past the deletion
    threshold — so update workloads keep one warm index instead of
    recompiling per query.  With maintenance disabled
    (:func:`set_index_maintenance`) a mutated graph gets a brand-new
    index, the pre-pipeline behavior.
    """
    index = _INDEX_CACHE.get(graph)
    if index is not None and (
        index.graph_version == graph.version and not index._pending
    ):
        return index  # fast path: current index, lock-free
    with _index_lock(graph):
        index = _INDEX_CACHE.get(graph)  # re-check under the lock
        if index is not None:
            if index.graph_version == graph.version and not index._pending:
                return index
            if _MAINTENANCE_ENABLED:
                # Writer side of the reader–writer guard: wait for
                # in-flight queries to drain before patching rows.
                with index._write_access():
                    index.sync(graph)
                return index
        index = GraphIndex(graph)
        _INDEX_CACHE[graph] = index
        return index


class _CompiledPattern:
    """Pattern compiled to dense integer ids (patterns are tiny; per-call)."""

    __slots__ = (
        "size",
        "nodes",
        "labels",
        "edges",
        "out_edges",
        "in_edges",
        "by_label",
    )

    def __init__(self, pattern: Pattern) -> None:
        nodes: List[Node] = list(pattern.nodes())
        self.nodes = nodes
        index = {u: i for i, u in enumerate(nodes)}
        self.size = len(nodes)
        self.labels = [pattern.label(u) for u in nodes]
        edges: List[Tuple[int, int]] = [
            (index[a], index[b]) for a, b in pattern.edges()
        ]
        self.edges = edges
        out_edges: List[List[int]] = [[] for _ in nodes]
        in_edges: List[List[int]] = [[] for _ in nodes]
        for e, (a, b) in enumerate(edges):
            out_edges[a].append(e)
            in_edges[b].append(e)
        self.out_edges = out_edges
        self.in_edges = in_edges
        by_label: Dict[Label, List[int]] = {}
        for i, lab in enumerate(self.labels):
            by_label.setdefault(lab, []).append(i)
        self.by_label = by_label


# ======================================================================
# Counter-based dual-simulation fixpoint
# ======================================================================
def _run_fixpoint(
    cp: _CompiledPattern,
    gi: GraphIndex,
    sim: List[Set[int]],
    cnt_down: List[Dict[int, int]],
    cnt_up: List[Dict[int, int]],
    pending: Deque[Pair],
) -> bool:
    """Drain the deletion worklist; the HHK-style cascade.

    ``sim[u]`` holds the surviving candidates of pattern node ``u`` as
    global node ids; ball restriction (when any) is implicit — the seeds
    were intersected with the ball, and every witness must itself be a
    candidate, so ``w in sim[b]`` subsumes the ball-membership test.

    ``cnt_down[e][v]`` / ``cnt_up[e][w]`` are the surviving witness counts
    of pattern edge ``e = (a, b)``; entries are created lazily: the first
    time a removal touches a pair, its count is computed by one adjacency
    scan (already reflecting the removal), after which every later removal
    is a O(1) decrement.  A count hitting zero enqueues the pair — no pair
    is ever re-scanned.

    Returns ``False`` when some ``sim(u)`` empties (the caller must treat
    the whole relation as collapsed, per line 10 of Fig. 3).
    """
    fwd = gi.fwd_rows
    rev = gi.rev_rows
    edges = cp.edges
    in_edges = cp.in_edges
    out_edges = cp.out_edges
    push = pending.append
    while pending:
        u, v = pending.popleft()
        sim_u = sim[u]
        if v not in sim_u:
            continue  # already removed via another cascade path
        sim_u.discard(v)
        if not sim_u:
            return False
        # Pattern edges (a, u): predecessors of v lose a child witness.
        for e in in_edges[u]:
            a = edges[e][0]
            sim_a = sim[a]
            cd = cnt_down[e]
            for p in rev[v]:
                if p in sim_a:
                    c = cd.get(p)
                    if c is None:
                        # Lazy init: count the survivors (v already gone).
                        c = 0
                        for w in fwd[p]:
                            if w in sim_u:
                                c += 1
                    else:
                        c -= 1
                    cd[p] = c
                    if not c:
                        push((a, p))
        # Pattern edges (u, b): successors of v lose a parent witness.
        for e in out_edges[u]:
            b = edges[e][1]
            sim_b = sim[b]
            cu = cnt_up[e]
            for s in fwd[v]:
                if s in sim_b:
                    c = cu.get(s)
                    if c is None:
                        c = 0
                        for v2 in rev[s]:
                            if v2 in sim_u:
                                c += 1
                    else:
                        c -= 1
                    cu[s] = c
                    if not c:
                        push((b, s))
    return True


def _batch_prefilter(
    cp: _CompiledPattern, gi: GraphIndex, sim: List[Set[int]]
) -> bool:
    """Bulk-remove unsupported candidates before counting witnesses.

    Label seeds typically suffer a mass extinction in the first refinement
    rounds (most label-compatible nodes have no structural support at
    all).  Driving those removals through the one-at-a-time counter
    cascade is slower than batch refinement, so this runs simultaneous
    rounds first — the witness test is ``set.isdisjoint`` over a CSR row,
    which short-circuits in C — and stops as soon as a round's removals
    become a small fraction of the survivors, handing the tail to the
    exact counter fixpoint.  Simultaneous refinement deletes only invalid
    pairs, so the greatest fixpoint (Lemma 1) is unchanged.

    Returns ``False`` on collapse (some candidate set emptied).
    """
    fwd = gi.fwd_rows
    rev = gi.rev_rows
    edges = cp.edges
    while True:
        removed = 0
        remaining = 0
        for a, b in edges:
            sim_a = sim[a]
            sim_b = sim[b]
            stale = [v for v in sim_a if sim_b.isdisjoint(fwd[v])]
            if stale:
                if len(stale) == len(sim_a):
                    return False
                sim_a.difference_update(stale)
                removed += len(stale)
            stale = [w for w in sim_b if sim_a.isdisjoint(rev[w])]
            if stale:
                if len(stale) == len(sim_b):
                    return False
                sim_b.difference_update(stale)
                removed += len(stale)
            remaining += len(sim_a) + len(sim_b)
        if removed <= max(8, remaining >> 4):
            return True


def _dual_sim_eager(
    cp: _CompiledPattern,
    gi: GraphIndex,
    sim: List[Set[int]],
    cnt_down: Optional[List[Dict[int, int]]] = None,
    cnt_up: Optional[List[Dict[int, int]]] = None,
) -> bool:
    """Full counter fixpoint from arbitrary seeds (not known to be valid).

    First bulk-prunes hopeless candidates (:func:`_batch_prefilter`), then
    initializes every surviving witness count with one adjacency scan per
    candidate per incident pattern edge, and cascades the remaining
    deletions with O(1) decrements.  Used for the global dual simulation
    and for per-ball ``DualSim`` from label seeds.  Refines ``sim`` in
    place; ``False`` on collapse.

    ``cnt_down`` / ``cnt_up`` (one empty dict per pattern edge) may be
    supplied by callers that want to keep the witness counters after the
    fixpoint — :class:`~repro.core.incremental.IncrementalDualSimulation`
    decrements them across later deletions instead of recounting.  The
    counter invariant at return: every stored count for a *surviving*
    candidate is exact; missing entries are recomputed lazily on touch.
    """
    if not _batch_prefilter(cp, gi, sim):
        return False
    fwd = gi.fwd_rows
    rev = gi.rev_rows
    edges = cp.edges
    num_edges = len(edges)
    if cnt_down is None:
        cnt_down = [{} for _ in range(num_edges)]
    if cnt_up is None:
        cnt_up = [{} for _ in range(num_edges)]
    pending: Deque[Pair] = deque()
    push = pending.append
    for e in range(num_edges):
        a, b = edges[e]
        sim_a = sim[a]
        sim_b = sim[b]
        cd = cnt_down[e]
        cu = cnt_up[e]
        # One scan from the smaller side fills BOTH directions' counts:
        # every witness edge (v, w) contributes to cnt_down[e][v] and
        # cnt_up[e][w] alike.  Zero counts are not stored — the worklist
        # removes those pairs, and the cascade lazily recounts on a miss.
        if len(sim_a) <= len(sim_b):
            cu_get = cu.get
            for v in sim_a:
                c = 0
                for w in fwd[v]:
                    if w in sim_b:
                        c += 1
                        cu[w] = cu_get(w, 0) + 1
                if c:
                    cd[v] = c
                else:
                    push((a, v))
            for w in sim_b:
                if w not in cu:
                    push((b, w))
        else:
            cd_get = cd.get
            for w in sim_b:
                c = 0
                for v in rev[w]:
                    if v in sim_a:
                        c += 1
                        cd[v] = cd_get(v, 0) + 1
                if c:
                    cu[w] = c
                else:
                    push((b, w))
            for v in sim_a:
                if v not in cd:
                    push((a, v))
    return _run_fixpoint(cp, gi, sim, cnt_down, cnt_up, pending)


def _seed_by_label_full(
    cp: _CompiledPattern, gi: GraphIndex
) -> List[Set[int]]:
    """Label-compatible seeds over the whole graph (lines 1–2 of Fig. 3)."""
    groups = gi.label_groups
    return [set(groups.get(cp.labels[u], ())) for u in range(cp.size)]


def dual_simulation_kernel(pattern: Pattern, data: DiGraph) -> MatchRelation:
    """Maximum dual-simulation relation of ``Q`` on ``G`` — kernel engine.

    Output-identical to :func:`repro.core.dualsim.dual_simulation` (the
    maximum relation is unique by Lemma 1; both engines compute the
    greatest fixpoint below the label seeds).
    """
    with _obs_span("kernel.dual_simulation") as _sp:
        gi = get_index(data)
        if _sp.enabled:
            _sp.set(engine="kernel", pattern=pattern.size, nodes=gi.num_live)
        cp = _CompiledPattern(pattern)
        with gi.reading():
            sim = _seed_by_label_full(cp, gi)
            ok = all(sim) and _dual_sim_eager(cp, gi, sim)
            nodes = gi.nodes
            if not ok:
                return MatchRelation({u: set() for u in cp.nodes})
            return MatchRelation(
                {
                    cp.nodes[u]: {nodes[v] for v in sim[u]}
                    for u in range(cp.size)
                }
            )


# ======================================================================
# Child-direction-only counter fixpoint (graph simulation)
# ======================================================================
def _sim_child_only(
    cp: _CompiledPattern, gi: "GraphIndex", sim: List[Set[int]]
) -> bool:
    """Graph-simulation fixpoint: child witnesses only, counter-cascaded.

    Plain graph simulation (``Q ≺ G``) drops ``v`` from ``sim(u)`` only
    when some pattern edge ``(u, b)`` has no witness ``(v, w)`` with
    ``w ∈ sim(b)`` — the parent direction of dual simulation is absent.
    Structurally this is :func:`_dual_sim_eager` with the ``cnt_up``
    half deleted: one batch pre-filter round for the label-seed mass
    extinction, then exact per-(edge, parent) witness counts with O(1)
    decrements.  Removing ``v`` from ``sim(u)`` can only invalidate
    *predecessors* of ``v`` under pattern edges entering ``u``, so the
    cascade walks ``rev`` rows exclusively.  Refines ``sim`` in place;
    ``False`` on collapse (some candidate set emptied).
    """
    fwd = gi.fwd_rows
    rev = gi.rev_rows
    edges = cp.edges
    # Batch pre-filter, child direction only (same stopping rule as
    # _batch_prefilter: hand the tail to the exact counters).
    while True:
        removed = 0
        remaining = 0
        for a, b in edges:
            sim_a = sim[a]
            sim_b = sim[b]
            stale = [v for v in sim_a if sim_b.isdisjoint(fwd[v])]
            if stale:
                if len(stale) == len(sim_a):
                    return False
                sim_a.difference_update(stale)
                removed += len(stale)
            remaining += len(sim_a)
        if removed <= max(8, remaining >> 4):
            break

    num_edges = len(edges)
    cnt_down: List[Dict[int, int]] = [{} for _ in range(num_edges)]
    pending: Deque[Pair] = deque()
    push = pending.append
    for e in range(num_edges):
        a, b = edges[e]
        sim_b = sim[b]
        cd = cnt_down[e]
        for v in sim[a]:
            c = 0
            for w in fwd[v]:
                if w in sim_b:
                    c += 1
            if c:
                cd[v] = c
            else:
                push((a, v))

    in_edges = cp.in_edges
    while pending:
        u, v = pending.popleft()
        sim_u = sim[u]
        if v not in sim_u:
            continue
        sim_u.discard(v)
        if not sim_u:
            return False
        # Pattern edges (a, u): predecessors of v lose a child witness.
        for e in in_edges[u]:
            a = edges[e][0]
            sim_a = sim[a]
            cd = cnt_down[e]
            for p in rev[v]:
                if p in sim_a:
                    c = cd.get(p)
                    if c is None:
                        # Lazy recount (the pair was enqueued with zero at
                        # init and a cascade reached it first): count the
                        # survivors, v already removed.
                        c = 0
                        for w in fwd[p]:
                            if w in sim_u:
                                c += 1
                    else:
                        c -= 1
                    cd[p] = c
                    if not c:
                        push((a, p))
    return True


def graph_simulation_kernel(pattern: Pattern, data: DiGraph) -> MatchRelation:
    """Maximum graph-simulation relation of ``Q ≺ G`` — kernel engine.

    Output-identical to :func:`repro.core.simulation.simulation_fixpoint`
    (the maximum simulation relation is unique; both engines compute the
    greatest fixpoint below the label seeds, and both collapse to the
    empty relation when any pattern node ends up with no matches).
    """
    with _obs_span("kernel.graph_simulation") as _sp:
        gi = get_index(data)
        if _sp.enabled:
            _sp.set(engine="kernel", pattern=pattern.size, nodes=gi.num_live)
        cp = _CompiledPattern(pattern)
        with gi.reading():
            sim = _seed_by_label_full(cp, gi)
            ok = all(sim) and _sim_child_only(cp, gi, sim)
            if not ok:
                return MatchRelation({u: set() for u in cp.nodes})
            nodes = gi.nodes
            return MatchRelation(
                {
                    cp.nodes[u]: {nodes[v] for v in sim[u]}
                    for u in range(cp.size)
                }
            )


# ======================================================================
# Ball primitives (epoch-stamped, allocation-light)
# ======================================================================
def _ball_bfs(
    gi: GraphIndex, center: int, radius: int
) -> Tuple[List[int], List[int], List[int], int]:
    """Bounded undirected layered BFS from ``center``.

    Returns ``(order, border, stamp, epoch)``: ball nodes in BFS order
    (center first), the border layer (nodes at distance exactly
    ``radius``; empty when the ball exhausts its component earlier), and
    the calling thread's stamp buffer plus the epoch under which
    ``stamp[v] == epoch`` marks ball membership.
    """
    visit = gi.visit_state()
    epoch = visit.new_epoch()
    stamp = visit.stamp
    rows = gi.und_rows
    stamp[center] = epoch
    order = [center]
    frontier = [center]
    border: List[int] = [center] if radius == 0 else []
    depth = 0
    extend = order.extend
    mark = stamp.__setitem__
    while frontier and depth < radius:
        # One comprehension per layer: the `mark` call fires only for
        # first visits (short-circuit) and returns None, keeping the
        # filter truthy — the loop body runs at comprehension dispatch
        # speed, which measurably beats an explicit nested loop here.
        nxt = [
            w
            for v in frontier
            for w in rows[v]
            if stamp[w] != epoch and not mark(w, epoch)
        ]
        extend(nxt)
        frontier = nxt
        depth += 1
        if depth == radius:
            border = nxt
    return order, border, stamp, epoch


def _center_component(
    gi: GraphIndex, center: int, sim: List[Set[int]]
) -> Optional[Set[int]]:
    """Connectivity pruning (Example 6): the center's candidate component.

    The undirected component of ``center`` within the union of candidate
    sets (candidates are ball-restricted already, so ``w in union``
    subsumes ball membership).  ``None`` when the center is no candidate —
    the ball can be skipped outright, as ``ExtractMaxPG`` would return nil.
    """
    union: Set[int] = set()
    for s in sim:
        union |= s
    if center not in union:
        return None
    rows = gi.und_rows
    component = {center}
    add = component.add
    stack = [center]
    pop = stack.pop
    push = stack.append
    while stack:
        v = pop()
        for w in rows[v]:
            if w in union and w not in component:
                add(w)
                push(w)
    return component


def _extract_perfect_subgraph(
    cp: _CompiledPattern,
    gi: GraphIndex,
    center: int,
    sim: List[Set[int]],
    seen: Optional[Set[Tuple[FrozenSet[int], FrozenSet[Pair]]]] = None,
) -> Optional[PerfectSubgraph]:
    """Procedure ``ExtractMaxPG`` over integer candidate sets.

    Builds the match graph w.r.t. the refined relation (scanning each
    pattern edge from its cheaper side, as ``build_match_graph`` does),
    takes the undirected component containing the center, and materializes
    it as a real ``DiGraph`` + ``MatchRelation`` — identical to the
    reference implementation's output.  Only successful balls pay for
    object-graph construction.

    ``seen`` enables integer-level deduplication: neighboring centers
    usually rediscover the same perfect subgraph (Proposition 4 is what
    makes ``MatchResult`` dedup by signature), and recognizing a repeat on
    the int node/edge sets skips object-graph construction entirely.  A
    ``None`` return for a repeat is safe — the caller would have had its
    ``MatchResult.add`` rejected anyway.
    """
    if not any(center in s for s in sim):
        return None  # center unmatched: line 1 of ExtractMaxPG
    fwd = gi.fwd_rows
    rev = gi.rev_rows
    match_edges: Set[Pair] = set()
    madj: Dict[int, List[int]] = {}
    for a, b in cp.edges:
        sim_a, sim_b = sim[a], sim[b]
        if len(sim_a) <= len(sim_b):
            for v in sim_a:
                for w in fwd[v]:
                    if w in sim_b and (v, w) not in match_edges:
                        match_edges.add((v, w))
                        madj.setdefault(v, []).append(w)
                        madj.setdefault(w, []).append(v)
        else:
            for w in sim_b:
                for v in rev[w]:
                    if v in sim_a and (v, w) not in match_edges:
                        match_edges.add((v, w))
                        madj.setdefault(v, []).append(w)
                        madj.setdefault(w, []).append(v)
    component = {center}
    add = component.add
    stack = [center]
    while stack:
        v = stack.pop()
        for w in madj.get(v, ()):
            if w not in component:
                add(w)
                stack.append(w)

    # Match-graph components are edge-closed: v in component implies w too.
    component_edges = [(v, w) for v, w in match_edges if v in component]
    if seen is not None:
        key = (frozenset(component), frozenset(component_edges))
        if key in seen:
            return None
        seen.add(key)

    nodes = gi.nodes
    labels = gi.labels
    component_graph = DiGraph._build_unchecked(
        ((nodes[v], labels[v]) for v in component),
        ((nodes[v], nodes[w]) for v, w in component_edges),
    )
    relation = MatchRelation(
        {
            cp.nodes[u]: {nodes[v] for v in sim[u] if v in component}
            for u in range(cp.size)
        }
    )
    return PerfectSubgraph(component_graph, relation, nodes[center])


# ======================================================================
# Per-ball engines
# ======================================================================
def _match_ball(
    cp: _CompiledPattern,
    gi: GraphIndex,
    center: int,
    radius: int,
    use_pruning: bool = False,
    seen: Optional[Set[Tuple[FrozenSet[int], FrozenSet[Pair]]]] = None,
) -> Optional[PerfectSubgraph]:
    """One iteration of algorithm ``Match``: ball + DualSim + ExtractMaxPG.

    Candidate seeds are the ball-restricted label classes; the eager
    counter fixpoint then computes the ball's maximum dual simulation.
    """
    order, _, stamp, epoch = _ball_bfs(gi, center, radius)
    groups = gi.label_groups
    sim: List[Set[int]] = []
    for u in range(cp.size):
        group = groups.get(cp.labels[u], ())
        sim.append({v for v in group if stamp[v] == epoch})
        if not sim[u]:
            return None
    if use_pruning:
        component = _center_component(gi, center, sim)
        if component is None:
            return None
        sim = [s & component for s in sim]
        if not all(sim):
            return None
    if not _dual_sim_eager(cp, gi, sim):
        return None
    return _extract_perfect_subgraph(cp, gi, center, sim, seen)


def _refine_ball(
    cp: _CompiledPattern,
    gi: GraphIndex,
    center: int,
    radius: int,
    sim_global: List[Set[int]],
    use_pruning: bool,
    seen: Optional[Set[Tuple[FrozenSet[int], FrozenSet[Pair]]]] = None,
) -> Optional[PerfectSubgraph]:
    """The ``dualFilter`` step of ``Match+`` on a restricted ball.

    Ball distances are measured over the full graph but only globally
    matched nodes enter the candidate sets (``extract_ball_restricted``
    semantics — the global sets contain matched nodes only, so projecting
    on ball membership suffices).  Proposition 5 localizes the initial
    violations to border pairs: only those are validity-checked; interior
    pairs are touched exclusively through the lazy deletion cascade.
    Connectivity-pruning removals feed the same cascade, exactly like the
    reference path's ``extra_removals``.
    """
    _, border, stamp, epoch = _ball_bfs(gi, center, radius)
    sim: List[Set[int]] = []
    for s in sim_global:
        projected = {v for v in s if stamp[v] == epoch}
        if not projected:
            return None
        sim.append(projected)

    pending: Deque[Pair] = deque()
    push = pending.append
    if use_pruning:
        component = _center_component(gi, center, sim)
        if component is None:
            return None
        for u in range(cp.size):
            for v in sim[u]:
                if v not in component:
                    push((u, v))

    # Border seeding (lines 2–5 of Fig. 5): iterate the (small) candidate
    # sets and test border membership, not the other way around.  Witness
    # counts computed here are stored, so the cascade later decrements
    # them instead of recounting.
    num_edges = len(cp.edges)
    cnt_down: List[Dict[int, int]] = [{} for _ in range(num_edges)]
    cnt_up: List[Dict[int, int]] = [{} for _ in range(num_edges)]
    if border:
        border_set = set(border)
        fwd = gi.fwd_rows
        rev = gi.rev_rows
        edges = cp.edges
        out_edges = cp.out_edges
        in_edges = cp.in_edges
        for u in range(cp.size):
            for v in sim[u]:
                if v not in border_set:
                    continue
                valid = True
                for e in out_edges[u]:
                    sim_b = sim[edges[e][1]]
                    cd = cnt_down[e]
                    c = cd.get(v)
                    if c is None:
                        c = 0
                        for w in fwd[v]:
                            if w in sim_b:
                                c += 1
                        cd[v] = c
                    if not c:
                        valid = False
                        break
                if valid:
                    for e in in_edges[u]:
                        sim_a = sim[edges[e][0]]
                        cu = cnt_up[e]
                        c = cu.get(v)
                        if c is None:
                            c = 0
                            for p in rev[v]:
                                if p in sim_a:
                                    c += 1
                            cu[v] = c
                        if not c:
                            valid = False
                            break
                if not valid:
                    push((u, v))

    if not _run_fixpoint(cp, gi, sim, cnt_down, cnt_up, pending):
        return None
    return _extract_perfect_subgraph(cp, gi, center, sim, seen)


# ======================================================================
# Public entry points
# ======================================================================
def kernel_match(
    pattern: Pattern,
    data: DiGraph,
    centers: Optional[Iterable[Node]] = None,
    radius: Optional[int] = None,
) -> MatchResult:
    """Algorithm ``Match`` on the kernel engine.

    Output-identical to :func:`repro.core.strong.match` with
    ``engine="python"``: same perfect subgraphs, same relations, same
    discovery order over the same center sequence.
    """
    if radius is None:
        radius = pattern.diameter
    with _obs_span("kernel.match") as _sp:
        gi = get_index(data)
        cp = _CompiledPattern(pattern)
        result = MatchResult(pattern)
        scanned = 0
        with gi.reading():
            if centers is None:
                # All live slots, in id (= insertion) order; tombstoned
                # slots could only ever yield empty seeds, so skip them
                # outright.
                labels = gi.labels
                center_ids: Iterable[int] = (
                    i for i in range(gi.n) if labels[i] is not _DEAD
                )
                if radius < 0 and gi.num_live:
                    raise GraphError(
                        f"ball radius must be non-negative, got {radius}"
                    )
            else:
                center_ids = _resolve_centers(gi, centers, radius)
            seen: Set[Tuple[FrozenSet[int], FrozenSet[Pair]]] = set()
            if _sp.enabled:
                for center in center_ids:
                    scanned += 1
                    subgraph = _match_ball(cp, gi, center, radius, seen=seen)
                    if subgraph is not None:
                        result.add(subgraph)
                _sp.set(
                    engine="kernel",
                    pattern=pattern.size,
                    radius=radius,
                    **{
                        "balls.scanned": scanned,
                        "balls.matched": len(result),
                    },
                )
            else:
                for center in center_ids:
                    subgraph = _match_ball(cp, gi, center, radius, seen=seen)
                    if subgraph is not None:
                        result.add(subgraph)
        return result


def _resolve_centers(
    gi: GraphIndex, centers: Iterable[Node], radius: int
) -> Iterable[int]:
    """Map center objects to ids lazily, preserving the reference path's
    error behavior (unknown center / bad radius raise at that center)."""
    index_of = gi.index_of
    for center in centers:
        if radius < 0:
            raise GraphError(f"ball radius must be non-negative, got {radius}")
        try:
            yield index_of[center]
        except KeyError:
            raise NodeNotFound(center) from None


def kernel_matches_via_strong_simulation(
    pattern: Pattern, data: DiGraph
) -> bool:
    """Decide ``Q ≺_LD G`` on the kernel engine (early exit)."""
    radius = pattern.diameter
    with _obs_span("kernel.matches") as _sp:
        gi = get_index(data)
        cp = _CompiledPattern(pattern)
        with gi.reading():
            labels = gi.labels
            for center in range(gi.n):
                if labels[center] is _DEAD:
                    continue
                if _match_ball(cp, gi, center, radius) is not None:
                    if _sp.enabled:
                        _sp.set(engine="kernel", outcome=True)
                    return True
            if _sp.enabled:
                _sp.set(engine="kernel", outcome=False)
            return False


def kernel_match_plus(
    pattern: Pattern,
    data: DiGraph,
    radius: int,
    use_dual_filter: bool = True,
    use_pruning: bool = True,
    restrict_centers_by_label: bool = True,
) -> MatchResult:
    """The matching core of ``Match+`` on the kernel engine.

    ``pattern`` is the (possibly minimized) working pattern and ``radius``
    the original diameter — minimization happens in the caller
    (:func:`repro.core.matchplus.match_plus`), which owns the option
    handling.  Output-identical to the reference path for every option
    combination: same perfect subgraphs with the same match relations.
    Only the incidental ``PerfectSubgraph.center`` attribution (which of
    the equivalent discovering centers is recorded first) can differ on
    the dual-filter path, because the reference implementation iterates
    the matched-node *set* while the kernel visits centers in graph node
    order.
    """
    with _obs_span("kernel.match_plus") as _sp:
        gi = get_index(data)
        if _sp.enabled:
            _sp.set(
                engine="kernel",
                pattern=pattern.size,
                radius=radius,
                nodes=gi.num_live,
            )
        cp = _CompiledPattern(pattern)
        result = MatchResult(pattern)

        with gi.reading():
            if use_dual_filter:
                with _obs_span("kernel.global_dual_filter"):
                    sim_global = _seed_by_label_full(cp, gi)
                    filtered = all(sim_global) and _dual_sim_eager(
                        cp, gi, sim_global
                    )
                if not filtered:
                    _sp.set(**{"balls.scanned": 0, "balls.matched": 0})
                    return result
                matched: Set[int] = set()
                for s in sim_global:
                    matched |= s
                seen: Set[Tuple[FrozenSet[int], FrozenSet[Pair]]] = set()
                with _obs_span("kernel.ball_scan"):
                    for center in range(gi.n):
                        if center not in matched:
                            continue
                        subgraph = _refine_ball(
                            cp, gi, center, radius, sim_global, use_pruning,
                            seen=seen,
                        )
                        if subgraph is not None:
                            result.add(subgraph)
                if _sp.enabled:
                    _sp.set(
                        **{
                            "balls.scanned": len(matched),
                            "balls.matched": len(result),
                        }
                    )
                return result

            # Dual filter off: per-ball dual simulation from label seeds.
            labels = gi.labels
            if restrict_centers_by_label:
                pattern_labels = set(cp.labels)
                center_ids: Iterable[int] = (
                    i for i in range(gi.n) if labels[i] in pattern_labels
                )
            else:
                center_ids = (
                    i for i in range(gi.n) if labels[i] is not _DEAD
                )
            seen = set()
            with _obs_span("kernel.ball_scan"):
                for center in center_ids:
                    subgraph = _match_ball(
                        cp, gi, center, radius, use_pruning=use_pruning,
                        seen=seen,
                    )
                    if subgraph is not None:
                        result.add(subgraph)
            if _sp.enabled:
                _sp.set(**{"balls.matched": len(result)})
            return result
