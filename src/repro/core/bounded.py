"""Bounded simulation — the prior notion the paper revises (Fan et al. 2010).

Bounded simulation [19] extends graph simulation by attaching to each
pattern edge ``(u, u′)`` a bound ``k``: a match ``(u, v)`` is witnessed
when some ``v′`` matching ``u′`` is reachable from ``v`` by a *directed*
path of length at most ``k`` (``k = None`` meaning unbounded
reachability).  With every bound equal to 1 it degenerates to plain graph
simulation.  The paper cites it as the cubic-time predecessor that — like
plain simulation — fails to preserve topology; the library includes it
both as a usable feature and so the test suite can demonstrate the
containment ``strong ⊆ dual ⊆ bounded(1) = simulation``.

Two-path architecture
---------------------
:func:`bounded_simulation` carries an ``engine`` seam.  The ``python``
reference path below answers every witness test with a memoized BFS per
``(node, bound)`` — simple, allocation-heavy, and kept verbatim as
ground truth.  The ``kernel`` path
(:func:`repro.core.reach.bounded_simulation_kernel`) routes the same
fixpoint through the :class:`~repro.core.reach.ReachIndex` distance
labeling compiled into the graph's :class:`~repro.core.kernel.GraphIndex`:
witness tests become hub-label probes, so each fixpoint round costs
adjacency-row scans instead of BFS traversals.  The index is built once
per graph (lazily, on the first path query) and patched in place across
edge insertions — it amortizes as soon as a graph is queried more than
once, or once under repeated fixpoint rounds on graphs whose BFS
frontiers are large (anything past a few hundred nodes); for one-shot
queries on tiny graphs the reference path wins, which is exactly the
``engine="auto"`` policy.  Both paths compute the unique maximum
bounded-simulation relation, so their outputs are identical — enforced
by the differential suite (``tests/test_paths_equivalence.py``).
"""

from __future__ import annotations

from collections import deque
from typing import Dict, Mapping, Optional, Set, Tuple

from repro.core.digraph import DiGraph, Node
from repro.core.matchrel import MatchRelation
from repro.core.pattern import Pattern
from repro.core.reach import bounded_simulation_kernel, resolve_path_engine
from repro.exceptions import PatternError

Bound = Optional[int]  # None means "unbounded" (the * of Fan et al.)
EdgeBounds = Mapping[Tuple[Node, Node], Bound]


class BoundedPattern:
    """A pattern graph whose edges carry hop bounds.

    ``bounds`` maps pattern edges to a positive integer (maximum directed
    path length) or ``None`` for unbounded reachability.  Missing edges
    default to bound 1, i.e. ordinary simulation semantics on that edge.
    """

    __slots__ = ("pattern", "bounds")

    def __init__(self, pattern: Pattern, bounds: Optional[EdgeBounds] = None) -> None:
        self.pattern = pattern
        normalized: Dict[Tuple[Node, Node], Bound] = {}
        edges = set(pattern.edges())
        for edge, bound in (bounds or {}).items():
            if edge not in edges:
                raise PatternError(f"bound given for non-edge {edge!r}")
            if bound is not None and bound < 1:
                raise PatternError(f"bound for {edge!r} must be >= 1 or None")
            normalized[edge] = bound
        for edge in edges:
            normalized.setdefault(edge, 1)
        self.bounds = normalized

    def bound(self, edge: Tuple[Node, Node]) -> Bound:
        """The hop bound of a pattern edge."""
        return self.bounds[edge]

    def __repr__(self) -> str:
        return f"BoundedPattern({self.pattern!r}, {len(self.bounds)} bounds)"


class _ReachabilityOracle:
    """Memoized 'can v reach some node of T within k directed hops' tests."""

    def __init__(self, data: DiGraph) -> None:
        self._data = data
        self._cache: Dict[Tuple[Node, Bound], Set[Node]] = {}

    def reachable_set(self, source: Node, bound: Bound) -> Set[Node]:
        """Nodes reachable from ``source`` in 1..bound directed hops."""
        key = (source, bound)
        cached = self._cache.get(key)
        if cached is not None:
            return cached
        reached: Set[Node] = set()
        frontier = deque([(source, 0)])
        seen = {source}
        while frontier:
            node, depth = frontier.popleft()
            if bound is not None and depth >= bound:
                continue
            for child in self._data.successors_raw(node):
                if child not in seen:
                    seen.add(child)
                    reached.add(child)
                    frontier.append((child, depth + 1))
                elif child == source:
                    # Cycle back to the source, detected during the BFS
                    # itself: ``node`` sits at ``depth < bound``, so the
                    # cycle closes in ``depth + 1 <= bound`` hops.  (A
                    # self-loop is the ``depth == 0`` case.)
                    reached.add(source)
        self._cache[key] = reached
        return reached

    def witnesses(self, source: Node, bound: Bound, targets: Set[Node]) -> bool:
        """True iff some member of ``targets`` is reachable within the bound."""
        return not targets.isdisjoint(self.reachable_set(source, bound))


def bounded_simulation(
    bounded_pattern: BoundedPattern,
    data: DiGraph,
    engine: str = "auto",
) -> MatchRelation:
    """The maximum bounded-simulation relation (empty when no match).

    Fixpoint refinement identical in shape to plain simulation, with the
    edge-witness test replaced by bounded reachability.  Cubic-time, as in
    Fan et al. (2010).

    ``engine`` selects the evaluation path (``"auto"``, ``"python"``,
    ``"kernel"`` — see the module docstring); every engine returns the
    same relation.
    """
    if resolve_path_engine(engine, data) == "kernel":
        return bounded_simulation_kernel(bounded_pattern, data)
    pattern = bounded_pattern.pattern
    oracle = _ReachabilityOracle(data)
    sim: Dict[Node, Set[Node]] = {
        u: set(data.nodes_with_label(pattern.label(u))) for u in pattern.nodes()
    }
    queue = deque(pattern.nodes())
    queued: Set[Node] = set(queue)
    while queue:
        u_prime = queue.popleft()
        queued.discard(u_prime)
        targets = sim[u_prime]
        for u in pattern.predecessors(u_prime):
            bound = bounded_pattern.bound((u, u_prime))
            stale = [
                v for v in sim[u] if not oracle.witnesses(v, bound, targets)
            ]
            if not stale:
                continue
            sim[u].difference_update(stale)
            if not sim[u]:
                for candidates in sim.values():
                    candidates.clear()
                return MatchRelation(sim)
            if u not in queued:
                queue.append(u)
                queued.add(u)
    if any(not candidates for candidates in sim.values()):
        for candidates in sim.values():
            candidates.clear()
    return MatchRelation(sim)


def matches_via_bounded_simulation(
    bounded_pattern: BoundedPattern,
    data: DiGraph,
    engine: str = "auto",
) -> bool:
    """Decide bounded-simulation matching."""
    return bounded_simulation(bounded_pattern, data, engine=engine).is_total()
