"""A small regular-expression engine over node-label alphabets.

The paper's Remark (Section 2.2) notes strong simulation "can readily be
extended by supporting ... regular expressions as edge constraints on
pattern graphs, along the same lines as [18]" (Fan et al., ICDE 2011).
That extension needs path-matching machinery: this module provides a
self-contained regex engine — parser, Thompson NFA construction, and
product-graph reachability over a data graph.

Syntax (over *labels*, not characters)::

    expr    := alt
    alt     := concat ('|' concat)*
    concat  := repeat+
    repeat  := atom ('*' | '+' | '?')?
    atom    := LABEL | '(' expr ')' | '.'

``LABEL`` is any run of characters excluding the metacharacters
``( ) | * + ? .`` and whitespace; ``.`` matches any single label.  A path
*word* is the sequence of labels of the **intermediate** nodes of a path
(endpoints excluded), so the pattern edge constraint ``A.B* -> ...``
speaks about what lies strictly between the matched endpoints; the empty
word corresponds to a direct edge.

This mirrors [18]'s reachability semantics adapted to node-labeled
graphs (the paper's data model has no edge labels — DESIGN.md documents
the adaptation).
"""

from __future__ import annotations

from typing import Dict, FrozenSet, Iterable, List, Optional, Sequence, Set, Tuple

from repro.core.digraph import DiGraph, Label, Node
from repro.exceptions import PatternError

_METACHARS = set("()|*+?.")


class RegexSyntaxError(PatternError):
    """Raised for malformed regular expressions."""


# ----------------------------------------------------------------------
# Parsing to an AST
# ----------------------------------------------------------------------
class _Ast:
    __slots__ = ()


class _Atom(_Ast):
    __slots__ = ("label",)

    def __init__(self, label: Optional[str]) -> None:
        self.label = label  # None means wildcard '.'


class _Concat(_Ast):
    __slots__ = ("parts",)

    def __init__(self, parts: List[_Ast]) -> None:
        self.parts = parts


class _Alt(_Ast):
    __slots__ = ("options",)

    def __init__(self, options: List[_Ast]) -> None:
        self.options = options


class _Repeat(_Ast):
    __slots__ = ("inner", "op")

    def __init__(self, inner: _Ast, op: str) -> None:
        self.inner = inner
        self.op = op  # '*', '+' or '?'


def _tokenize(text: str) -> List[str]:
    tokens: List[str] = []
    index = 0
    while index < len(text):
        char = text[index]
        if char.isspace():
            index += 1
            continue
        if char in _METACHARS:
            tokens.append(char)
            index += 1
            continue
        start = index
        while index < len(text) and text[index] not in _METACHARS and not text[index].isspace():
            index += 1
        tokens.append(text[start:index])
    return tokens


class _Parser:
    def __init__(self, tokens: List[str]) -> None:
        self._tokens = tokens
        self._pos = 0

    def peek(self) -> Optional[str]:
        if self._pos < len(self._tokens):
            return self._tokens[self._pos]
        return None

    def take(self) -> str:
        token = self.peek()
        if token is None:
            raise RegexSyntaxError("unexpected end of expression")
        self._pos += 1
        return token

    def parse(self) -> _Ast:
        ast = self.parse_alt()
        if self.peek() is not None:
            raise RegexSyntaxError(f"unexpected token {self.peek()!r}")
        return ast

    def parse_alt(self) -> _Ast:
        options = [self.parse_concat()]
        while self.peek() == "|":
            self.take()
            options.append(self.parse_concat())
        if len(options) == 1:
            return options[0]
        return _Alt(options)

    def parse_concat(self) -> _Ast:
        parts: List[_Ast] = []
        while True:
            token = self.peek()
            if token is None or token in (")", "|"):
                break
            parts.append(self.parse_repeat())
        if not parts:
            return _Concat([])  # epsilon
        if len(parts) == 1:
            return parts[0]
        return _Concat(parts)

    def parse_repeat(self) -> _Ast:
        atom = self.parse_atom()
        token = self.peek()
        if token in ("*", "+", "?"):
            self.take()
            return _Repeat(atom, token)
        return atom

    def parse_atom(self) -> _Ast:
        token = self.take()
        if token == "(":
            inner = self.parse_alt()
            if self.peek() != ")":
                raise RegexSyntaxError("missing closing parenthesis")
            self.take()
            return inner
        if token == ".":
            return _Atom(None)
        if token in _METACHARS:
            raise RegexSyntaxError(f"unexpected metacharacter {token!r}")
        return _Atom(token)


# ----------------------------------------------------------------------
# Thompson NFA
# ----------------------------------------------------------------------
class LabelNfa:
    """An epsilon-free-stepped NFA over the label alphabet.

    States are integers; ``transitions[state]`` is a list of
    ``(label_or_None, next_state)`` where ``None`` is the wildcard.
    Epsilon transitions are kept separately and closed over on demand.
    """

    def __init__(self) -> None:
        self.transitions: List[List[Tuple[Optional[Label], int]]] = []
        self.epsilon: List[List[int]] = []
        self.start = self._new_state()
        self.accept = self._new_state()

    def _new_state(self) -> int:
        self.transitions.append([])
        self.epsilon.append([])
        return len(self.transitions) - 1

    def add_edge(self, source: int, label: Optional[Label], target: int) -> None:
        self.transitions[source].append((label, target))

    def add_epsilon(self, source: int, target: int) -> None:
        self.epsilon[source].append(target)

    # ------------------------------------------------------------------
    def epsilon_closure(self, states: Iterable[int]) -> FrozenSet[int]:
        """All states reachable via epsilon moves (including inputs)."""
        closure: Set[int] = set(states)
        stack = list(closure)
        while stack:
            state = stack.pop()
            for nxt in self.epsilon[state]:
                if nxt not in closure:
                    closure.add(nxt)
                    stack.append(nxt)
        return frozenset(closure)

    def step(self, states: FrozenSet[int], label: Label) -> FrozenSet[int]:
        """One consuming step on ``label`` followed by epsilon closure."""
        moved: Set[int] = set()
        for state in states:
            for expected, nxt in self.transitions[state]:
                if expected is None or expected == label:
                    moved.add(nxt)
        return self.epsilon_closure(moved)

    def accepts_word(self, word: Sequence[Label]) -> bool:
        """Whole-word acceptance (used by tests and documentation)."""
        current = self.epsilon_closure({self.start})
        for label in word:
            current = self.step(current, label)
            if not current:
                return False
        return self.accept in current


def _build(ast: _Ast, nfa: LabelNfa) -> Tuple[int, int]:
    """Thompson construction; returns (entry, exit) states."""
    if isinstance(ast, _Atom):
        entry, exit_ = nfa._new_state(), nfa._new_state()
        nfa.add_edge(entry, ast.label, exit_)
        return entry, exit_
    if isinstance(ast, _Concat):
        if not ast.parts:
            entry = nfa._new_state()
            return entry, entry
        entry, current = _build(ast.parts[0], nfa)
        for part in ast.parts[1:]:
            nxt_entry, nxt_exit = _build(part, nfa)
            nfa.add_epsilon(current, nxt_entry)
            current = nxt_exit
        return entry, current
    if isinstance(ast, _Alt):
        entry, exit_ = nfa._new_state(), nfa._new_state()
        for option in ast.options:
            o_entry, o_exit = _build(option, nfa)
            nfa.add_epsilon(entry, o_entry)
            nfa.add_epsilon(o_exit, exit_)
        return entry, exit_
    if isinstance(ast, _Repeat):
        i_entry, i_exit = _build(ast.inner, nfa)
        entry, exit_ = nfa._new_state(), nfa._new_state()
        nfa.add_epsilon(entry, i_entry)
        nfa.add_epsilon(i_exit, exit_)
        if ast.op in ("*", "?"):
            nfa.add_epsilon(entry, exit_)
        if ast.op in ("*", "+"):
            nfa.add_epsilon(i_exit, i_entry)
        return entry, exit_
    raise RegexSyntaxError(f"unknown AST node {type(ast).__name__}")


def compile_regex(expression: str) -> LabelNfa:
    """Parse and compile a label regex to an NFA.

    >>> nfa = compile_regex("A (B|C)* D?")
    >>> nfa.accepts_word(["A"])
    True
    >>> nfa.accepts_word(["A", "C", "B", "D"])
    True
    >>> nfa.accepts_word(["B"])
    False
    """
    ast = _Parser(_tokenize(expression)).parse()
    nfa = LabelNfa()
    entry, exit_ = _build(ast, nfa)
    nfa.add_epsilon(nfa.start, entry)
    nfa.add_epsilon(exit_, nfa.accept)
    return nfa


def reversed_nfa(nfa: LabelNfa) -> LabelNfa:
    """The NFA of the reversed language.

    Reverses every consuming and epsilon transition and swaps
    start/accept — walking a graph backwards while running this machine
    recognizes exactly the words the original machine reads forwards.
    """
    result = LabelNfa()
    # Allocate matching states (two already exist; add the rest).
    while len(result.transitions) < len(nfa.transitions):
        result._new_state()
    result.start = nfa.accept
    result.accept = nfa.start
    for state, edges in enumerate(nfa.transitions):
        for label, nxt in edges:
            result.add_edge(nxt, label, state)
    for state, targets in enumerate(nfa.epsilon):
        for nxt in targets:
            result.add_epsilon(nxt, state)
    return result


class LazyDfa:
    """On-the-fly subset construction over a :class:`LabelNfa`.

    The product-graph walks of :func:`regex_successors` key their
    visited sets by frozensets of NFA states and re-derive each
    ``step(states, label)`` from scratch.  For the index-backed kernel
    path, which replays the same machine over many sources, this class
    interns each reachable state-set once (small integer ids) and
    memoizes the per-label transitions, so repeated walks step through
    a dict of ints.  ``-1`` is the dead state (empty subset).
    """

    DEAD = -1

    __slots__ = ("nfa", "start", "_intern", "_sets", "_accepting", "_trans")

    def __init__(self, nfa: LabelNfa) -> None:
        self.nfa = nfa
        initial = nfa.epsilon_closure({nfa.start})
        self._intern: Dict[FrozenSet[int], int] = {initial: 0}
        self._sets: List[FrozenSet[int]] = [initial]
        self._accepting: List[bool] = [nfa.accept in initial]
        self._trans: List[Dict[Label, int]] = [{}]
        self.start = 0

    def accepting(self, state: int) -> bool:
        """Does this DFA state contain the NFA accept state?"""
        return self._accepting[state]

    def step(self, state: int, label: Label) -> int:
        """Memoized transition; returns :data:`DEAD` when the set empties."""
        trans = self._trans[state]
        nxt = trans.get(label)
        if nxt is None:
            target = self.nfa.step(self._sets[state], label)
            if not target:
                nxt = self.DEAD
            else:
                nxt = self._intern.get(target)
                if nxt is None:
                    nxt = len(self._sets)
                    self._intern[target] = nxt
                    self._sets.append(target)
                    self._accepting.append(self.nfa.accept in target)
                    self._trans.append({})
            trans[label] = nxt
        return nxt


# ----------------------------------------------------------------------
# Product-graph reachability
# ----------------------------------------------------------------------
def regex_successors(
    data: DiGraph,
    source: Node,
    nfa: LabelNfa,
    max_hops: Optional[int] = None,
) -> Set[Node]:
    """Nodes ``t`` with a directed path source → t whose *intermediate*
    labels spell a word in the regex language.

    Walks the product (node, NFA-state-set); a target qualifies when
    it is entered while the pre-step state set is accepting (the target's
    own label is not consumed).  ``max_hops`` bounds path length
    (``None`` = unbounded).  A direct edge corresponds to the empty word.

    Visited pruning is depth-aware: a (node, state-set) pair is
    re-expanded when reached again by a *shorter* path.  Keying the
    visited set on the pair alone would let a longer first arrival
    shadow a shorter one and silently drop targets near the hop bound
    (the truncated product walk is only complete from minimal depths).
    """
    start_states = nfa.epsilon_closure({nfa.start})
    results: Set[Node] = set()
    seen: Dict[Node, Dict[FrozenSet[int], int]] = {source: {start_states: 0}}
    frontier: List[Tuple[Node, FrozenSet[int], int]] = [
        (source, start_states, 0)
    ]
    while frontier:
        node, states, depth = frontier.pop()
        if max_hops is not None and depth >= max_hops:
            continue
        accepting = nfa.accept in states
        next_depth = depth + 1
        for child in data.successors_raw(node):
            if accepting:
                results.add(child)
            next_states = nfa.step(states, data.label(child))
            if not next_states:
                continue
            visited = seen.setdefault(child, {})
            prev = visited.get(next_states)
            if prev is not None and prev <= next_depth:
                continue
            visited[next_states] = next_depth
            frontier.append((child, next_states, next_depth))
    return results


def regex_predecessors(
    data: DiGraph,
    target: Node,
    nfa: LabelNfa,
    max_hops: Optional[int] = None,
) -> Set[Node]:
    """Nodes ``s`` with a regex-matching directed path s → target.

    Implemented as :func:`regex_successors` on the reversed word: the
    intermediate labels read from ``s`` to ``target`` must match, so we
    walk predecessors while running the NFA of the *reversed* language —
    obtained by reversing all consuming and epsilon transitions and
    swapping start/accept (:func:`reversed_nfa`).
    """
    rnfa = reversed_nfa(nfa)
    start_states = rnfa.epsilon_closure({rnfa.start})
    results: Set[Node] = set()
    seen: Dict[Node, Dict[FrozenSet[int], int]] = {target: {start_states: 0}}
    frontier: List[Tuple[Node, FrozenSet[int], int]] = [
        (target, start_states, 0)
    ]
    while frontier:
        node, states, depth = frontier.pop()
        if max_hops is not None and depth >= max_hops:
            continue
        accepting = rnfa.accept in states
        next_depth = depth + 1
        for parent in data.predecessors_raw(node):
            if accepting:
                results.add(parent)
            next_states = rnfa.step(states, data.label(parent))
            if not next_states:
                continue
            visited = seen.setdefault(parent, {})
            prev = visited.get(next_states)
            if prev is not None and prev <= next_depth:
                continue
            visited[next_states] = next_depth
            frontier.append((parent, next_states, next_depth))
    return results
