"""``Match+`` — algorithm ``Match`` with all optimizations of Section 4.2.

The three optimizations compose as follows:

1. **Query minimization** (``minQ``, Fig. 4): replace ``Q`` with its
   minimum dual-equivalent quotient ``Qm``, keeping the original diameter
   ``d_Q`` as the ball radius (Lemma 3).
2. **Dual-simulation filtering** (``dualFilter``, Fig. 5): compute the
   maximum dual-simulation relation once over the whole graph; only nodes
   it matches can be ball centers, only matched nodes enter the per-ball
   refinement, and refinement starts from border nodes (Proposition 5).
3. **Connectivity pruning** (Example 6): within each ball, candidates not
   undirected-connected to the center through other candidates are
   removed, with the removals propagated through the same deletion
   cascade as the border-induced ones.

Each optimization can be toggled independently through
:class:`MatchPlusOptions` for the ablation benchmarks; the default enables
all three.  The result is always identical to plain ``Match`` (asserted in
the integration tests); only the running time differs.

Like :func:`repro.core.strong.match`, ``match_plus`` takes an ``engine``
argument: ``"python"`` runs the reference path below, ``"kernel"`` runs
the same algorithm over the compiled CSR kernel of
:mod:`repro.core.kernel`, and ``"numpy"``
(:mod:`repro.core.npkernel`) walks the same compiled arrays with
vectorized passes — output-identical for every option combination.  The
default ``"auto"`` picks by graph size.  Query minimization always
happens here (pattern-side work is engine-independent).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Set, Tuple

from repro.core.ball import Ball, extract_ball, extract_ball_restricted
from repro.core.digraph import DiGraph, Node
from repro.core.dualfilter import dual_filter
from repro.core.dualsim import dual_simulation
from repro.core.kernel import kernel_match_plus, resolve_engine
from repro.core.npkernel import np_match_plus
from repro.core.matchrel import MatchRelation
from repro.core.minimize import minimize_pattern
from repro.core.pattern import Pattern
from repro.core.pruning import prune_candidates_by_connectivity
from repro.core.result import MatchResult, PerfectSubgraph
from repro.core.strong import candidate_centers, extract_max_perfect_subgraph


@dataclass(frozen=True)
class MatchPlusOptions:
    """Toggles for the optimizations composed by :func:`match_plus`.

    Attributes
    ----------
    use_minimization:
        Run ``minQ`` first and match with the quotient pattern.
    use_dual_filter:
        Compute the global dual-simulation relation once; restrict ball
        centers to matched nodes and refine per ball by deletion
        propagation from border nodes.
    use_pruning:
        Apply connectivity pruning inside each ball.
    restrict_centers_by_label:
        When the dual filter is off, still skip ball centers whose label
        does not occur in the pattern (a cheap, always-sound restriction).
    """

    use_minimization: bool = True
    use_dual_filter: bool = True
    use_pruning: bool = True
    restrict_centers_by_label: bool = True


def match_plus(
    pattern: Pattern,
    data: DiGraph,
    options: Optional[MatchPlusOptions] = None,
    engine: str = "auto",
) -> MatchResult:
    """Optimized strong simulation; output-identical to ``Match``.

    Returns the same deduplicated set Θ of maximum perfect subgraphs as
    :func:`repro.core.strong.match`.  ``engine`` selects the execution
    backend (``"auto"`` | ``"kernel"`` | ``"numpy"`` | ``"python"``, see
    module docstring); the result set is identical either way.
    """
    if options is None:
        options = MatchPlusOptions()

    if options.use_minimization:
        minimized = minimize_pattern(pattern)
        working_pattern = minimized.pattern
        radius = minimized.radius
    else:
        working_pattern = pattern
        radius = pattern.diameter

    resolved = resolve_engine(engine, data)
    if resolved in ("kernel", "numpy"):
        runner = kernel_match_plus if resolved == "kernel" else np_match_plus
        return runner(
            working_pattern,
            data,
            radius,
            use_dual_filter=options.use_dual_filter,
            use_pruning=options.use_pruning,
            restrict_centers_by_label=options.restrict_centers_by_label,
        )

    result = MatchResult(working_pattern)

    if options.use_dual_filter:
        global_relation = dual_simulation(working_pattern, data)
        if global_relation.is_empty():
            return result
        matched_nodes = global_relation.data_nodes()
        for center in matched_nodes:
            ball = extract_ball_restricted(data, center, radius, matched_nodes)
            subgraph = _refine_ball(
                working_pattern, global_relation, ball, options
            )
            if subgraph is not None:
                result.add(subgraph)
        return result

    # Dual filter off: fall back to per-ball dual simulation, optionally
    # with label-restricted centers and connectivity pruning.
    if options.restrict_centers_by_label:
        centers = candidate_centers(working_pattern, data)
    else:
        centers = set(data.nodes())
    for center in centers:
        ball = extract_ball(data, center, radius)
        seeds = {
            u: set(ball.graph.nodes_with_label(working_pattern.label(u)))
            for u in working_pattern.nodes()
        }
        if options.use_pruning:
            pruned = prune_candidates_by_connectivity(
                working_pattern, ball, seeds
            )
            if pruned is None:
                continue
            seeds = pruned
        relation = dual_simulation(working_pattern, ball.graph, seeds=seeds)
        if relation.is_empty():
            continue
        subgraph = extract_max_perfect_subgraph(working_pattern, ball, relation)
        if subgraph is not None:
            result.add(subgraph)
    return result


def _refine_ball(
    pattern: Pattern,
    global_relation: MatchRelation,
    ball: Ball,
    options: MatchPlusOptions,
) -> Optional[PerfectSubgraph]:
    """Per-ball refinement: projection + pruning + border-seeded deletion."""
    extra_removals: Optional[Set[Tuple[Node, Node]]] = None
    if options.use_pruning:
        ball_nodes = set(ball.graph.nodes())
        projected = {
            u: global_relation.matches_of_raw(u) & ball_nodes
            for u in pattern.nodes()
        }
        pruned = prune_candidates_by_connectivity(pattern, ball, projected)
        if pruned is None:
            return None
        extra_removals = {
            (u, v)
            for u in pattern.nodes()
            for v in projected[u] - pruned[u]
        }
    return dual_filter(pattern, global_relation, ball, extra_removals)
