"""Result containers for strong-simulation matching.

``Match`` (Fig. 3) returns the set Θ of *maximum perfect subgraphs*: for
each ball that admits a dual simulation whose match graph's component
contains the ball center, the perfect subgraph is that component together
with the (restricted) match relation.  Different centers can discover the
same perfect subgraph, so :class:`MatchResult` deduplicates by exact
node/edge signature — Proposition 4 bounds the number of *distinct*
subgraphs by |V|.
"""

from __future__ import annotations

from typing import Dict, FrozenSet, Iterator, List, Set, Tuple

from repro.core.digraph import DiGraph, Edge, Node
from repro.core.matchrel import MatchRelation
from repro.core.pattern import Pattern


class PerfectSubgraph:
    """One maximum perfect subgraph: match graph component + relation + center.

    Attributes
    ----------
    graph:
        The connected match-graph component (a subgraph of the data graph).
    relation:
        The maximum dual-simulation relation restricted to this component.
    center:
        The ball center from which this subgraph was first discovered.
        Only the first discovering center is recorded; the subgraph itself
        is center-independent.
    """

    __slots__ = ("graph", "relation", "center")

    def __init__(
        self,
        graph: DiGraph,
        relation: MatchRelation,
        center: Node,
    ) -> None:
        self.graph = graph
        self.relation = relation
        self.center = center

    @property
    def num_nodes(self) -> int:
        """Number of data nodes in the subgraph."""
        return self.graph.num_nodes

    @property
    def num_edges(self) -> int:
        """Number of data edges in the subgraph."""
        return self.graph.num_edges

    def signature(self) -> Tuple[FrozenSet[Node], FrozenSet[Edge]]:
        """Hashable identity of the subgraph (exact node and edge sets)."""
        return self.graph.node_edge_signature()

    def matches_of(self, pattern_node: Node) -> FrozenSet[Node]:
        """Data nodes matching ``pattern_node`` within this subgraph."""
        return self.relation.matches_of(pattern_node)

    def __repr__(self) -> str:
        return (
            f"PerfectSubgraph(center={self.center!r}, "
            f"|V|={self.num_nodes}, |E|={self.num_edges})"
        )


class MatchResult:
    """The deduplicated set Θ of maximum perfect subgraphs.

    Iterating yields :class:`PerfectSubgraph` objects in discovery order.
    """

    __slots__ = ("pattern", "_subgraphs", "_signatures")

    def __init__(self, pattern: Pattern) -> None:
        self.pattern = pattern
        self._subgraphs: List[PerfectSubgraph] = []
        self._signatures: Set[Tuple[FrozenSet[Node], FrozenSet[Edge]]] = set()

    def add(self, subgraph: PerfectSubgraph) -> bool:
        """Add a perfect subgraph; return False if it was a duplicate."""
        signature = subgraph.signature()
        if signature in self._signatures:
            return False
        self._signatures.add(signature)
        self._subgraphs.append(subgraph)
        return True

    def __iter__(self) -> Iterator[PerfectSubgraph]:
        return iter(self._subgraphs)

    def __len__(self) -> int:
        return len(self._subgraphs)

    def __bool__(self) -> bool:
        return bool(self._subgraphs)

    @property
    def subgraphs(self) -> List[PerfectSubgraph]:
        """The perfect subgraphs in discovery order (do not mutate)."""
        return list(self._subgraphs)

    def matched_data_nodes(self) -> Set[Node]:
        """Union of all data nodes across all perfect subgraphs."""
        nodes: Set[Node] = set()
        for subgraph in self._subgraphs:
            nodes.update(subgraph.graph.nodes())
        return nodes

    def all_matches_of(self, pattern_node: Node) -> Set[Node]:
        """All data nodes matching ``pattern_node`` in any subgraph."""
        result: Set[Node] = set()
        for subgraph in self._subgraphs:
            result |= subgraph.matches_of(pattern_node)
        return result

    def size_histogram(self, bin_width: int = 10) -> Dict[Tuple[int, int], int]:
        """Histogram of subgraph node counts in ``bin_width``-wide bins.

        Reproduces the row format of Table 3: bins [0,9], [10,19], ... and
        a final open bin for sizes >= 5 * bin_width.
        """
        bins: Dict[Tuple[int, int], int] = {}
        for subgraph in self._subgraphs:
            size = subgraph.num_nodes
            low = (size // bin_width) * bin_width
            bins[(low, low + bin_width - 1)] = bins.get(
                (low, low + bin_width - 1), 0
            ) + 1
        return bins

    def union_graph(self) -> DiGraph:
        """Union of all perfect subgraphs as one DiGraph (for display)."""
        union = DiGraph()
        for subgraph in self._subgraphs:
            for node in subgraph.graph.nodes():
                if node not in union:
                    union.add_node(node, subgraph.graph.label(node))
            for source, target in subgraph.graph.edges():
                union.add_edge(source, target)
        return union

    def __repr__(self) -> str:
        return f"MatchResult({len(self._subgraphs)} perfect subgraphs)"
