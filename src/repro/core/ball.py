"""Balls ``Ĝ[w, r]`` — the locality neighborhoods of strong simulation.

Section 2.2 defines the ball with center ``v`` and radius ``r`` as the
subgraph of ``G`` whose nodes lie within undirected distance ``r`` of
``v``, keeping *exactly* the edges of ``G`` over that node set (i.e. the
induced subgraph).  Border nodes — nodes at distance exactly ``r`` — drive
the ``dualFilter`` optimization (Proposition 5), so the ball records them.
"""

from __future__ import annotations

from typing import Dict, FrozenSet, Iterable, Iterator, Optional, Set

from repro.core.digraph import DiGraph, Node
from repro.core.traversal import undirected_distances
from repro.exceptions import GraphError


class Ball:
    """An extracted ball: induced subgraph + center + radius + border nodes.

    Attributes
    ----------
    graph:
        The induced subgraph ``Ĝ[w, r]``.
    center:
        The ball center ``w``.
    radius:
        The radius ``r`` used for extraction.
    distances:
        Undirected distance from the center for every ball node.
    """

    __slots__ = ("graph", "center", "radius", "distances", "_border")

    def __init__(
        self,
        graph: DiGraph,
        center: Node,
        radius: int,
        distances: Dict[Node, int],
    ) -> None:
        self.graph = graph
        self.center = center
        self.radius = radius
        self.distances = distances
        self._border: Optional[FrozenSet[Node]] = None

    @property
    def border_nodes(self) -> FrozenSet[Node]:
        """Nodes at distance exactly ``radius`` from the center.

        These are the only nodes whose match status can differ between the
        global dual-simulation relation and the per-ball relation
        (Proposition 5): every violation inside the ball is caused by an
        edge cut off at the border.

        Computed once and cached: ``dualFilter``'s seeding loop reads this
        per candidate pair, and distances never change after extraction.
        """
        border = self._border
        if border is None:
            radius = self.radius
            border = frozenset(
                node for node, dist in self.distances.items() if dist == radius
            )
            self._border = border
        return border

    def __contains__(self, node: Node) -> bool:
        return node in self.graph

    def __len__(self) -> int:
        return self.graph.num_nodes

    def __repr__(self) -> str:
        return (
            f"Ball(center={self.center!r}, radius={self.radius}, "
            f"|V|={self.graph.num_nodes}, |E|={self.graph.num_edges})"
        )


def extract_ball(graph: DiGraph, center: Node, radius: int) -> Ball:
    """Build ``Ĝ[center, radius]`` by bounded undirected BFS (Section 4.1).

    Runs in O(|V| + |E|) time per ball, as in the paper's analysis of
    ``BuildBall``.
    """
    if radius < 0:
        raise GraphError(f"ball radius must be non-negative, got {radius}")
    distances = undirected_distances(graph, center, radius)
    node_set = set(distances)
    labels = graph.labels_raw()  # BFS only visits existing nodes
    sub = DiGraph()
    for node in node_set:
        sub.add_node(node, labels[node])
    for node in node_set:
        for target in graph.successors_raw(node):
            if target in node_set:
                sub.add_edge(node, target)
    return Ball(sub, center, radius, distances)


def extract_ball_restricted(
    graph: DiGraph,
    center: Node,
    radius: int,
    allowed: Set[Node],
) -> Ball:
    """Extract ``Ĝ[center, radius]`` keeping only ``allowed`` nodes.

    Distances are measured over the *full* graph (ball membership is a
    property of ``G``), but the materialized subgraph is restricted to
    ``allowed`` — used by ``Match+`` where only nodes surviving global
    dual simulation can ever participate in a match, so carrying the rest
    into the per-ball refinement is wasted work.  The center itself must
    be allowed.
    """
    if radius < 0:
        raise GraphError(f"ball radius must be non-negative, got {radius}")
    if center not in allowed:
        raise GraphError("ball center must be in the allowed node set")
    distances = undirected_distances(graph, center, radius)
    node_set = set(distances) & allowed
    labels = graph.labels_raw()  # BFS only visits existing nodes
    sub = DiGraph()
    for node in node_set:
        sub.add_node(node, labels[node])
    for node in node_set:
        for target in graph.successors_raw(node):
            if target in node_set:
                sub.add_edge(node, target)
    kept_distances = {node: distances[node] for node in node_set}
    return Ball(sub, center, radius, kept_distances)


def iter_balls(
    graph: DiGraph,
    radius: int,
    centers: Optional[Iterable[Node]] = None,
) -> Iterator[Ball]:
    """Yield the ball around every center (all graph nodes by default).

    ``centers`` lets optimized algorithms restrict attention to candidate
    centers — e.g. nodes whose label occurs in the pattern, or nodes that
    survived global dual simulation (``dualFilter``).
    """
    if centers is None:
        centers = graph.nodes()
    for center in centers:
        yield extract_ball(graph, center, radius)


def ball_node_sets(
    graph: DiGraph,
    radius: int,
    centers: Optional[Iterable[Node]] = None,
) -> Dict[Node, Set[Node]]:
    """Map each center to its ball's node set, without building subgraphs.

    Cheaper than :func:`iter_balls` when only membership is needed (e.g.
    the distributed runtime sizing its data shipments).
    """
    if centers is None:
        centers = graph.nodes()
    return {
        center: set(undirected_distances(graph, center, radius))
        for center in centers
    }
