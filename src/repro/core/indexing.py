"""Neighborhood-label indexing (the paper's future work on indexing).

Section 6: "for large graphs, cubic time is still too expensive.  We are
to explore indexing techniques to speed up the computation."  This module
implements the natural index for ball-based matching: for every data node
``v`` and distance ``d ≤ cap``, the set of labels occurring within ``d``
undirected hops of ``v``.

A ball ``Ĝ[w, d_Q]`` can host a match only if *every* pattern label
occurs within ``d_Q`` hops of ``w`` (each pattern node must have at least
one candidate in the ball).  The index answers that in O(|labels(Q)|) per
center, so entire balls are skipped without being built.  The filter is
sound (never skips a ball that has a match) and is independent of the
query — one index serves any number of patterns with diameter ≤ cap.

Index construction costs O(cap · (|V| + |E|) · L) time and O(|V| · L)
space where L is the average label-set size; it is built once per graph.
The index is a *snapshot*: it records the graph's version counter at
build time and every probe checks it, raising :class:`MatchingError`
once the graph has mutated — a stale label set would silently turn the
sound filter into one that skips live matches.
"""

from __future__ import annotations

from typing import Dict, FrozenSet, Iterable, List, Optional, Set

from repro.core.digraph import DiGraph, Label, Node
from repro.core.matchplus import MatchPlusOptions, match_plus
from repro.core.pattern import Pattern
from repro.core.result import MatchResult
from repro.core.strong import match
from repro.exceptions import MatchingError


class NeighborhoodLabelIndex:
    """For each node, the labels reachable within d undirected hops.

    ``levels[d][v]`` is the frozen label set within distance ``d`` of
    ``v``; level 0 is the node's own label.  Levels are computed by
    synchronous set propagation: level d+1 of ``v`` is the union of level
    d over ``v`` and its neighbors.
    """

    def __init__(self, data: DiGraph, max_radius: int) -> None:
        if max_radius < 0:
            raise MatchingError("max_radius must be non-negative")
        self.data = data
        self.max_radius = max_radius
        self._built_version = data.version
        self.levels: List[Dict[Node, FrozenSet[Label]]] = []
        current: Dict[Node, FrozenSet[Label]] = {
            v: frozenset((data.label(v),)) for v in data.nodes()
        }
        self.levels.append(current)
        for _ in range(max_radius):
            nxt: Dict[Node, FrozenSet[Label]] = {}
            for v in data.nodes():
                combined = set(current[v])
                for neighbor in data.successors_raw(v):
                    combined |= current[neighbor]
                for neighbor in data.predecessors_raw(v):
                    combined |= current[neighbor]
                nxt[v] = frozenset(combined)
            self.levels.append(nxt)
            current = nxt

    def _check_fresh(self) -> None:
        """Refuse to answer from a snapshot the graph has outgrown."""
        if self.data.version != self._built_version:
            raise MatchingError(
                f"NeighborhoodLabelIndex is stale: built at graph version "
                f"{self._built_version}, graph is now at "
                f"{self.data.version}; rebuild the index"
            )

    def labels_within(self, node: Node, radius: int) -> FrozenSet[Label]:
        """Labels occurring within ``radius`` hops of ``node``.

        ``radius`` beyond the indexed cap clamps to the cap (the result
        is then a subset of the true label set — still sound for the
        "must contain all pattern labels" test *only when* radius <= cap,
        so :meth:`candidate_centers` refuses larger radii instead).
        """
        self._check_fresh()
        if node not in self.data:
            raise MatchingError(f"node {node!r} is not in the indexed graph")
        if radius < 0:
            raise MatchingError("radius must be non-negative")
        return self.levels[min(radius, self.max_radius)][node]

    def candidate_centers(self, pattern: Pattern) -> Set[Node]:
        """Centers whose d_Q-ball can possibly host a match.

        Sound filter: a ball missing any pattern label cannot contain a
        total match relation.  Requires ``pattern.diameter <= max_radius``
        (otherwise the index cannot answer exactly and raises).
        """
        self._check_fresh()
        radius = pattern.diameter
        if radius > self.max_radius:
            raise MatchingError(
                f"pattern diameter {radius} exceeds indexed radius "
                f"{self.max_radius}; rebuild the index with a larger cap"
            )
        needed = pattern.label_set()
        level = self.levels[radius]
        return {
            v
            for v in self.data.nodes()
            if self.data.label(v) in needed and needed <= level[v]
        }

    def pruning_ratio(self, pattern: Pattern) -> float:
        """Fraction of data nodes the index eliminates as centers."""
        self._check_fresh()
        if self.data.num_nodes == 0:
            return 0.0
        kept = len(self.candidate_centers(pattern))
        return 1.0 - kept / self.data.num_nodes


class IndexedMatcher:
    """Strong simulation with index-accelerated center filtering.

    Builds a :class:`NeighborhoodLabelIndex` once; each query first
    shrinks the center set through the index, then runs the per-ball
    algorithm on the survivors.  Output-identical to ``match`` /
    ``match_plus`` (verified in tests).
    """

    def __init__(self, data: DiGraph, max_radius: int = 4) -> None:
        self.data = data
        self.index = NeighborhoodLabelIndex(data, max_radius)

    def match(self, pattern: Pattern) -> MatchResult:
        """Strong simulation using the index to skip hopeless balls."""
        centers = self.index.candidate_centers(pattern)
        return match(pattern, self.data, centers=centers)

    def match_plus(
        self,
        pattern: Pattern,
        options: Optional[MatchPlusOptions] = None,
    ) -> MatchResult:
        """``Match+`` on the index-filtered graph.

        ``Match+``'s own global dual-simulation filter subsumes the label
        test, so here the index's value is skipping the *global* dual
        simulation when no center survives at all.
        """
        centers = self.index.candidate_centers(pattern)
        if not centers:
            return MatchResult(pattern)
        return match_plus(pattern, self.data, options)
