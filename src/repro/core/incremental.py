"""Incremental strong simulation under graph updates (the paper's future work).

Section 6 lists "incremental methods for strong simulation, minimizing
unnecessary recomputation in response to (frequent) changes to real-life
graphs" as future work; Section 4.2 already observes that "it is much
easier to deal with node or edge deletions than insertions".  This module
implements both observations:

* :class:`IncrementalDualSimulation` maintains the maximum dual-simulation
  relation of a fixed pattern over a mutable data graph.  **Deletions**
  are handled exactly and incrementally by the same deletion-propagation
  cascade as ``dualFilter``: removing an edge can only *shrink* the
  maximum relation (the gfp is monotone in the data graph), so the pairs
  that lost their witness are removed and the removal cascades.
  **Insertions** can only *grow* the relation; growth is computed by a
  bounded re-expansion: label-compatible pairs in the affected region are
  re-admitted optimistically and the ordinary fixpoint re-refines them.

* :class:`IncrementalMatcher` maintains the full strong-simulation result
  Θ.  The locality of strong simulation makes this precise: an edge
  change can only affect balls whose center lies within ``d_Q`` hops of
  either endpoint (any ball further away contains neither endpoint, and
  a shortest path of length ≤ d_Q through the edge would put an endpoint
  within d_Q).  Only those balls are re-evaluated.

Both classes take an ``engine`` argument (``"auto"`` | ``"kernel"`` |
``"numpy"`` | ``"python"``), mirroring the matching entry points:

* ``"python"`` — the reference path: the cascade revalidates pairs with
  set scans over ``DiGraph`` adjacency, insertions re-run the set-based
  fixpoint, and balls are rebuilt as per-ball ``DiGraph`` objects.
* ``"kernel"`` — the update path runs on the same compiled substrate as
  the query path.  Graph mutations flow through the
  :class:`~repro.core.digraph.GraphDelta` pipeline into an incrementally
  maintained :class:`~repro.core.kernel.GraphIndex` (no recompiles under
  insertions); the deletion cascade decrements the kernel's persistent
  *witness counters* directly (O(1) per surviving witness instead of a
  revalidation scan); insertion re-expansion re-runs the counter fixpoint
  over the CSR arrays; and :class:`IncrementalMatcher` re-evaluates
  affected balls via kernel ball extraction.  Output-identical to the
  reference path after every update.
* ``"numpy"`` — the same compiled substrate walked by the vectorized
  passes of :mod:`repro.core.npkernel`.  Deletions and insertions alike
  re-establish the relation with a warm vectorized full fixpoint (array
  recomputation replaces pointer-chasing counter maintenance — the
  whole-array pass is the cheaper primitive on this engine), and
  :class:`IncrementalMatcher` re-evaluates affected balls with the array
  ball matcher.  Output-identical again.
* ``"auto"`` (default) — the standard heuristic of
  :func:`~repro.core.kernel.resolve_engine` (kernel unless the graph is
  tiny and unindexed, numpy past the large-graph threshold), resolved
  once at construction.
"""

from __future__ import annotations

from collections import deque
from typing import Deque, Dict, Iterable, List, Optional, Set, Tuple

from repro.core.ball import extract_ball
from repro.core.digraph import DiGraph, Node
from repro.core.dualsim import dual_simulation
from repro.core.kernel import (
    GraphIndex,
    Pair,
    _ball_bfs,
    _CompiledPattern,
    _dual_sim_eager,
    _match_ball,
    _run_fixpoint,
    _seed_by_label_full,
    get_index,
    resolve_engine,
)
from repro.core.matchrel import MatchRelation
from repro.core.npkernel import np_dual_sim_ids, np_evaluate_ball
from repro.core.pattern import Pattern
from repro.core.result import MatchResult, PerfectSubgraph
from repro.core.simulation import initial_candidates
from repro.core.strong import extract_max_perfect_subgraph
from repro.core.traversal import undirected_distances
from repro.exceptions import MatchingError


class IncrementalDualSimulation:
    """Maintains the maximum dual-simulation relation under edge updates.

    The wrapped graph must be mutated *through this object* (``add_edge``
    / ``remove_edge`` / ``add_node`` / ``remove_node``) so the relation
    stays synchronized.

    Example
    -------
    >>> from repro.core.pattern import Pattern
    >>> from repro.core.digraph import DiGraph
    >>> g = DiGraph.from_parts({"a": "A", "b": "B"}, [("a", "b")])
    >>> q = Pattern.build({"x": "A", "y": "B"}, [("x", "y")])
    >>> inc = IncrementalDualSimulation(q, g)
    >>> sorted(inc.relation.matches_of("x"))
    ['a']
    >>> inc.remove_edge("a", "b")
    >>> inc.relation.is_empty()
    True
    """

    def __init__(
        self, pattern: Pattern, data: DiGraph, engine: str = "auto"
    ) -> None:
        self.pattern = pattern
        self.data = data
        self.engine = resolve_engine(engine, data)
        self.recomputations = 0  # full fixpoints run (observability)
        self.cascade_removals = 0  # pairs removed incrementally
        if self.engine == "kernel":
            self._cp = _CompiledPattern(pattern)
            self._gi: GraphIndex  # set (with _compiles_seen) by the call:
            self._kernel_refixpoint()
        elif self.engine == "numpy":
            self._cp = _CompiledPattern(pattern)
            self._np_refixpoint()
        else:
            self._sim: Dict[Node, Set[Node]] = dual_simulation(
                pattern, data
            ).to_sim_dict()

    # ------------------------------------------------------------------
    @property
    def relation(self) -> MatchRelation:
        """The current maximum dual-simulation relation."""
        if self.engine != "python":
            nodes = self._gi.nodes
            cp = self._cp
            return MatchRelation(
                {
                    cp.nodes[u]: {nodes[v] for v in self._sim_ids[u]}
                    for u in range(cp.size)
                }
            )
        return MatchRelation(self._sim)

    # ------------------------------------------------------------------
    # Kernel substrate: persistent counters over the maintained index
    # ------------------------------------------------------------------
    def _sync_index(self) -> GraphIndex:
        """The synced index, remapping ids if a recompile compacted them.

        Incremental maintenance keeps ids stable, but a deletion-heavy
        history triggers a compacting recompile (and disabled maintenance
        replaces the index object outright).  Either way the surviving
        candidates are translated object-wise and the witness counters
        dropped — the fixpoint's lazy-recount path rebuilds any counter
        it touches, so dropping them costs a recount, never correctness.
        """
        # Capture the node list our ids index BEFORE get_index: a
        # threshold-triggered recompile rebuilds the SAME index object in
        # place, replacing its .nodes with the compacted list (the old
        # list object survives only through this reference).
        old_nodes = self._gi.nodes
        gi = get_index(self.data)
        if gi is self._gi and gi.stats.full_compiles == self._compiles_seen:
            return gi
        index_of = gi.index_of
        self._sim_ids = [
            {
                index_of[old_nodes[v]]
                for v in s
                if old_nodes[v] in index_of
            }
            for s in self._sim_ids
        ]
        self._cnt_down = [{} for _ in self._cp.edges]
        self._cnt_up = [{} for _ in self._cp.edges]
        self._gi = gi
        self._compiles_seen = gi.stats.full_compiles
        return gi

    def _kernel_refixpoint(self) -> None:
        """(Re)establish the gfp from label seeds; keeps the counters."""
        gi = get_index(self.data)
        cp = self._cp
        sim = _seed_by_label_full(cp, gi)
        cnt_down: List[Dict[int, int]] = [{} for _ in cp.edges]
        cnt_up: List[Dict[int, int]] = [{} for _ in cp.edges]
        if not (all(sim) and _dual_sim_eager(cp, gi, sim, cnt_down, cnt_up)):
            for s in sim:
                s.clear()
        self._sim_ids = sim
        self._cnt_down = cnt_down
        self._cnt_up = cnt_up
        self._gi = gi
        self._compiles_seen = gi.stats.full_compiles

    # ------------------------------------------------------------------
    # NumPy substrate: warm vectorized refixpoints over the same index
    # ------------------------------------------------------------------
    def _np_refixpoint(self) -> None:
        """Re-establish the gfp with one vectorized array fixpoint.

        On this engine the whole-array pass *is* the cheap primitive, so
        deletions and insertions alike re-run it from label seeds over
        the warm (delta-maintained) index instead of maintaining sparse
        witness counters pair by pair; the unique greatest fixpoint makes
        the result identical to the kernel's incremental cascade.
        """
        gi = get_index(self.data)
        self._sim_ids = np_dual_sim_ids(self._cp, gi)
        self._gi = gi
        self._compiles_seen = gi.stats.full_compiles

    def _np_reestablish_after_deletion(self) -> None:
        """Refixpoint a deletion, keeping the removal count observable."""
        before = sum(len(s) for s in self._sim_ids)
        self._np_refixpoint()
        self.cascade_removals += before - sum(len(s) for s in self._sim_ids)

    def _kernel_seed_removed_edge(
        self, v: int, w: int, pending: Deque[Pair]
    ) -> None:
        """Decrement the witness counters that counted data edge (v, w).

        For every pattern edge ``e = (a, b)`` with ``v ∈ sim(a)`` and
        ``w ∈ sim(b)``, the removed data edge was one surviving witness:
        ``cnt_down[e][v]`` and ``cnt_up[e][w]`` each drop by one, and a
        count reaching zero enqueues its pair for the ordinary cascade.
        Missing counter entries are recomputed by one post-removal scan
        (the kernel's lazy-count invariant).
        """
        gi = self._gi
        fwd = gi.fwd_rows
        rev = gi.rev_rows
        sim = self._sim_ids
        push = pending.append
        for e, (a, b) in enumerate(self._cp.edges):
            sim_a = sim[a]
            sim_b = sim[b]
            if v not in sim_a or w not in sim_b:
                continue
            cd = self._cnt_down[e]
            c = cd.get(v)
            if c is None:
                c = 0
                for x in fwd[v]:
                    if x in sim_b:
                        c += 1
            else:
                c -= 1
            cd[v] = c
            if not c:
                push((a, v))
            cu = self._cnt_up[e]
            c = cu.get(w)
            if c is None:
                c = 0
                for x in rev[w]:
                    if x in sim_a:
                        c += 1
            else:
                c -= 1
            cu[w] = c
            if not c:
                push((b, w))

    def _kernel_cascade(self, pending: Deque[Pair]) -> None:
        """Drain a deletion worklist on the persistent counters."""
        if not pending:
            return
        before = sum(len(s) for s in self._sim_ids)
        if not _run_fixpoint(
            self._cp,
            self._gi,
            self._sim_ids,
            self._cnt_down,
            self._cnt_up,
            pending,
        ):
            for s in self._sim_ids:
                s.clear()
        self.cascade_removals += before - sum(len(s) for s in self._sim_ids)

    def _kernel_remove_edge(self, source: Node, target: Node) -> None:
        self.data.remove_edge(source, target)
        gi = self._sync_index()
        pending: Deque[Pair] = deque()
        self._kernel_seed_removed_edge(
            gi.index_of[source], gi.index_of[target], pending
        )
        self._kernel_cascade(pending)

    # ------------------------------------------------------------------
    # Reference substrate (the paper-shaped path)
    # ------------------------------------------------------------------
    def _pair_valid(self, u: Node, v: Node) -> bool:
        """Check both dual-simulation conditions for one pair."""
        for u1 in self.pattern.successors(u):
            targets = self._sim[u1]
            if not any(x in targets for x in self.data.successors_raw(v)):
                return False
        for u2 in self.pattern.predecessors(u):
            sources = self._sim[u2]
            if not any(x in sources for x in self.data.predecessors_raw(v)):
                return False
        return True

    def _cascade_remove(self, seeds: Iterable[Tuple[Node, Node]]) -> None:
        """Deletion propagation from invalid seed pairs (exact)."""
        queue = list(seeds)
        while queue:
            u, v = queue.pop()
            if v not in self._sim[u]:
                continue
            if self._pair_valid(u, v):
                continue
            self._sim[u].discard(v)
            self.cascade_removals += 1
            if not self._sim[u]:
                for candidates in self._sim.values():
                    candidates.clear()
                return
            # Neighbors of (u, v) in pattern x data may have lost their
            # witness: re-examine them.
            for u2 in self.pattern.predecessors(u):
                for v2 in self.data.predecessors_raw(v):
                    if v2 in self._sim[u2]:
                        queue.append((u2, v2))
            for u1 in self.pattern.successors(u):
                for v1 in self.data.successors_raw(v):
                    if v1 in self._sim[u1]:
                        queue.append((u1, v1))

    # ------------------------------------------------------------------
    def remove_edge(self, source: Node, target: Node) -> None:
        """Delete a data edge and repair the relation incrementally.

        Only pairs whose witness used the deleted edge can become
        invalid; they are exactly the pairs over the two endpoints, so
        the cascade is seeded there.  On the kernel engine the seeding is
        a counter decrement per surviving witness pair, not a scan.
        """
        if self.engine == "kernel":
            self._kernel_remove_edge(source, target)
            return
        if self.engine == "numpy":
            self.data.remove_edge(source, target)
            self._np_reestablish_after_deletion()
            return
        self.data.remove_edge(source, target)
        seeds = [
            (u, source) for u in self.pattern.nodes() if source in self._sim[u]
        ] + [
            (u, target) for u in self.pattern.nodes() if target in self._sim[u]
        ]
        self._cascade_remove(seeds)

    def remove_node(self, node: Node) -> None:
        """Delete a data node (and incident edges), repairing incrementally."""
        if self.engine == "kernel":
            # Exact decomposition: cascade each incident edge deletion on
            # the counters, then drop the (now isolated) node's own pairs
            # — an isolated node witnesses nothing, so no further cascade.
            for target in list(self.data.successors_raw(node)):
                self._kernel_remove_edge(node, target)
            for source in list(self.data.predecessors_raw(node)):
                self._kernel_remove_edge(source, node)
            gi = self._sync_index()
            node_id = gi.index_of[node]
            for s in self._sim_ids:
                s.discard(node_id)
            self.data.remove_node(node)
            self._sync_index()
            return
        if self.engine == "numpy":
            self.data.remove_node(node)
            self._np_reestablish_after_deletion()
            return
        neighbors = set(self.data.successors_raw(node)) | set(
            self.data.predecessors_raw(node)
        )
        self.data.remove_node(node)
        for candidates in self._sim.values():
            candidates.discard(node)
        seeds = [
            (u, v)
            for u in self.pattern.nodes()
            for v in neighbors
            if v in self._sim[u]
        ]
        self._cascade_remove(seeds)

    def add_edge(self, source: Node, target: Node) -> None:
        """Insert a data edge and grow the relation.

        Insertion can re-admit pairs arbitrarily far away (a chain
        pattern can transmit eligibility along a chain graph), so the
        exact maximum is re-established by re-running the fixpoint —
        but seeded with the *union* of the current relation and all
        label candidates, which converges to the same gfp as a fresh
        run while reusing no stale exclusions.  The paper's observation
        that insertions are the hard direction is thus made concrete:
        deletions are O(affected), insertions are a full (warm) fixpoint
        — on the kernel engine a counter fixpoint over the incrementally
        maintained CSR arrays, with zero index recompilation.
        """
        self.data.add_edge(source, target)
        self.recomputations += 1
        if self.engine == "kernel":
            self._kernel_refixpoint()
            return
        if self.engine == "numpy":
            self._np_refixpoint()
            return
        seeds = initial_candidates(self.pattern, self.data)
        self._sim = dual_simulation(
            self.pattern, self.data, seeds=seeds
        ).to_sim_dict()

    def add_node(self, node: Node, label) -> None:
        """Insert an isolated data node.

        An isolated node matches a pattern node only if that pattern node
        has no edges at all; with a connected pattern of ≥ 2 nodes the
        relation is unchanged, so no fixpoint is needed.
        """
        self.data.add_node(node, label)
        if self.engine == "kernel":
            gi = self._sync_index()
            cp = self._cp
            if cp.size == 1 and not cp.edges and cp.labels[0] == label:
                self._sim_ids[0].add(gi.index_of[node])
            return
        if self.engine == "numpy":
            self._np_refixpoint()
            return
        if self.pattern.num_nodes == 1:
            u = next(iter(self.pattern.nodes()))
            if self.pattern.label(u) == label and not list(self.pattern.edges()):
                self._sim[u].add(node)


class IncrementalMatcher:
    """Maintains the strong-simulation result Θ under edge updates.

    Per-ball results are cached by center; an update invalidates exactly
    the balls whose center lies within ``d_Q`` undirected hops of either
    endpoint of the changed edge (measured in the graph where the edge is
    present — before a deletion, after an insertion).  Everything else is
    provably untouched by the update (locality).

    On the kernel engine, affected-region discovery and ball
    re-evaluation both run over the incrementally maintained
    :class:`~repro.core.kernel.GraphIndex` — epoch-stamped CSR ball BFS
    plus the counter fixpoint — so an update costs O(affected balls) with
    no index recompilation.
    """

    def __init__(
        self, pattern: Pattern, data: DiGraph, engine: str = "auto"
    ) -> None:
        self.pattern = pattern
        self.data = data
        self.engine = resolve_engine(engine, data)
        self.radius = pattern.diameter
        self._cp = (
            _CompiledPattern(pattern) if self.engine != "python" else None
        )
        self._cache: Dict[Node, Optional[PerfectSubgraph]] = {}
        self.balls_recomputed = 0
        self._evaluate_all()

    def _evaluate_ball(self, center: Node) -> Optional[PerfectSubgraph]:
        self.balls_recomputed += 1
        if self.engine == "kernel":
            gi = get_index(self.data)
            return _match_ball(
                self._cp, gi, gi.index_of[center], self.radius
            )
        if self.engine == "numpy":
            gi = get_index(self.data)
            return np_evaluate_ball(
                self._cp, gi, gi.index_of[center], self.radius
            )
        ball = extract_ball(self.data, center, self.radius)
        relation = dual_simulation(self.pattern, ball.graph)
        if relation.is_empty():
            return None
        return extract_max_perfect_subgraph(self.pattern, ball, relation)

    def _evaluate_all(self) -> None:
        for center in self.data.nodes():
            self._cache[center] = self._evaluate_ball(center)

    # ------------------------------------------------------------------
    def result(self) -> MatchResult:
        """The current deduplicated Θ (assembled from the ball cache)."""
        result = MatchResult(self.pattern)
        for subgraph in self._cache.values():
            if subgraph is not None:
                result.add(subgraph)
        return result

    def _affected_centers(self, source: Node, target: Node) -> Set[Node]:
        """Centers within d_Q of either endpoint (edge currently present)."""
        affected: Set[Node] = set()
        endpoints = (source,) if source == target else (source, target)
        if self.engine != "python":  # both compiled engines share the BFS
            gi = get_index(self.data)
            for endpoint in endpoints:
                endpoint_id = gi.index_of.get(endpoint)
                if endpoint_id is not None:
                    order, _, _, _ = _ball_bfs(gi, endpoint_id, self.radius)
                    nodes = gi.nodes
                    affected.update(nodes[v] for v in order)
            return affected
        for endpoint in endpoints:
            if endpoint in self.data:
                affected |= set(
                    undirected_distances(self.data, endpoint, self.radius)
                )
        return affected

    def add_edge(self, source: Node, target: Node) -> None:
        """Insert an edge; re-evaluate only the affected balls."""
        self.data.add_edge(source, target)
        for center in self._affected_centers(source, target):
            self._cache[center] = self._evaluate_ball(center)

    def remove_edge(self, source: Node, target: Node) -> None:
        """Delete an edge; re-evaluate only the affected balls."""
        affected = self._affected_centers(source, target)
        self.data.remove_edge(source, target)
        for center in affected:
            self._cache[center] = self._evaluate_ball(center)

    def add_node(self, node: Node, label) -> None:
        """Insert an isolated node (its own new ball; others untouched)."""
        self.data.add_node(node, label)
        self._cache[node] = self._evaluate_ball(node)

    def remove_node(self, node: Node) -> None:
        """Delete a node with its edges; re-evaluate the affected balls."""
        if node not in self.data:
            raise MatchingError(f"node {node!r} is not in the data graph")
        affected = self._affected_centers(node, node)
        affected.discard(node)
        self.data.remove_node(node)
        self._cache.pop(node, None)
        for center in affected:
            self._cache[center] = self._evaluate_ball(center)
