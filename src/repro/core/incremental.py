"""Incremental strong simulation under graph updates (the paper's future work).

Section 6 lists "incremental methods for strong simulation, minimizing
unnecessary recomputation in response to (frequent) changes to real-life
graphs" as future work; Section 4.2 already observes that "it is much
easier to deal with node or edge deletions than insertions".  This module
implements both observations:

* :class:`IncrementalDualSimulation` maintains the maximum dual-simulation
  relation of a fixed pattern over a mutable data graph.  **Deletions**
  are handled exactly and incrementally by the same deletion-propagation
  cascade as ``dualFilter``: removing an edge can only *shrink* the
  maximum relation (the gfp is monotone in the data graph), so the pairs
  that lost their witness are removed and the removal cascades.
  **Insertions** can only *grow* the relation; growth is computed by a
  bounded re-expansion: label-compatible pairs in the affected region are
  re-admitted optimistically and the ordinary fixpoint re-refines them.

* :class:`IncrementalMatcher` maintains the full strong-simulation result
  Θ.  The locality of strong simulation makes this precise: an edge
  change can only affect balls whose center lies within ``d_Q`` hops of
  either endpoint (any ball further away contains neither endpoint, and
  a shortest path of length ≤ d_Q through the edge would put an endpoint
  within d_Q).  Only those balls are re-evaluated.
"""

from __future__ import annotations

from typing import Dict, Iterable, Optional, Set, Tuple

from repro.core.ball import extract_ball
from repro.core.digraph import DiGraph, Node
from repro.core.dualsim import dual_simulation
from repro.core.matchrel import MatchRelation
from repro.core.pattern import Pattern
from repro.core.result import MatchResult, PerfectSubgraph
from repro.core.simulation import initial_candidates
from repro.core.strong import extract_max_perfect_subgraph
from repro.core.traversal import undirected_distances
from repro.exceptions import MatchingError


class IncrementalDualSimulation:
    """Maintains the maximum dual-simulation relation under edge updates.

    The wrapped graph must be mutated *through this object* (``add_edge``
    / ``remove_edge``) so the relation stays synchronized.

    Example
    -------
    >>> from repro.core.pattern import Pattern
    >>> from repro.core.digraph import DiGraph
    >>> g = DiGraph.from_parts({"a": "A", "b": "B"}, [("a", "b")])
    >>> q = Pattern.build({"x": "A", "y": "B"}, [("x", "y")])
    >>> inc = IncrementalDualSimulation(q, g)
    >>> sorted(inc.relation.matches_of("x"))
    ['a']
    >>> inc.remove_edge("a", "b")
    >>> inc.relation.is_empty()
    True
    """

    def __init__(self, pattern: Pattern, data: DiGraph) -> None:
        self.pattern = pattern
        self.data = data
        self._sim: Dict[Node, Set[Node]] = dual_simulation(
            pattern, data
        ).to_sim_dict()
        self.recomputations = 0  # full fixpoints run (observability)
        self.cascade_removals = 0  # pairs removed incrementally

    # ------------------------------------------------------------------
    @property
    def relation(self) -> MatchRelation:
        """The current maximum dual-simulation relation."""
        return MatchRelation(self._sim)

    def _pair_valid(self, u: Node, v: Node) -> bool:
        """Check both dual-simulation conditions for one pair."""
        for u1 in self.pattern.successors(u):
            targets = self._sim[u1]
            if not any(x in targets for x in self.data.successors_raw(v)):
                return False
        for u2 in self.pattern.predecessors(u):
            sources = self._sim[u2]
            if not any(x in sources for x in self.data.predecessors_raw(v)):
                return False
        return True

    def _cascade_remove(self, seeds: Iterable[Tuple[Node, Node]]) -> None:
        """Deletion propagation from invalid seed pairs (exact)."""
        queue = list(seeds)
        while queue:
            u, v = queue.pop()
            if v not in self._sim[u]:
                continue
            if self._pair_valid(u, v):
                continue
            self._sim[u].discard(v)
            self.cascade_removals += 1
            if not self._sim[u]:
                for candidates in self._sim.values():
                    candidates.clear()
                return
            # Neighbors of (u, v) in pattern x data may have lost their
            # witness: re-examine them.
            for u2 in self.pattern.predecessors(u):
                for v2 in self.data.predecessors_raw(v):
                    if v2 in self._sim[u2]:
                        queue.append((u2, v2))
            for u1 in self.pattern.successors(u):
                for v1 in self.data.successors_raw(v):
                    if v1 in self._sim[u1]:
                        queue.append((u1, v1))

    # ------------------------------------------------------------------
    def remove_edge(self, source: Node, target: Node) -> None:
        """Delete a data edge and repair the relation incrementally.

        Only pairs whose witness used the deleted edge can become
        invalid; they are exactly the pairs over the two endpoints, so
        the cascade is seeded there.
        """
        self.data.remove_edge(source, target)
        seeds = [
            (u, source) for u in self.pattern.nodes() if source in self._sim[u]
        ] + [
            (u, target) for u in self.pattern.nodes() if target in self._sim[u]
        ]
        self._cascade_remove(seeds)

    def remove_node(self, node: Node) -> None:
        """Delete a data node (and incident edges), repairing incrementally."""
        neighbors = set(self.data.successors_raw(node)) | set(
            self.data.predecessors_raw(node)
        )
        self.data.remove_node(node)
        for candidates in self._sim.values():
            candidates.discard(node)
        seeds = [
            (u, v)
            for u in self.pattern.nodes()
            for v in neighbors
            if v in self._sim[u]
        ]
        self._cascade_remove(seeds)

    def add_edge(self, source: Node, target: Node) -> None:
        """Insert a data edge and grow the relation.

        Insertion can re-admit pairs arbitrarily far away (a chain
        pattern can transmit eligibility along a chain graph), so the
        exact maximum is re-established by re-running the fixpoint —
        but seeded with the *union* of the current relation and all
        label candidates, which converges to the same gfp as a fresh
        run while reusing no stale exclusions.  The paper's observation
        that insertions are the hard direction is thus made concrete:
        deletions are O(affected), insertions are a full (warm) fixpoint.
        """
        self.data.add_edge(source, target)
        self.recomputations += 1
        seeds = initial_candidates(self.pattern, self.data)
        self._sim = dual_simulation(
            self.pattern, self.data, seeds=seeds
        ).to_sim_dict()

    def add_node(self, node: Node, label) -> None:
        """Insert an isolated data node.

        An isolated node matches a pattern node only if that pattern node
        has no edges at all; with a connected pattern of ≥ 2 nodes the
        relation is unchanged, so no fixpoint is needed.
        """
        self.data.add_node(node, label)
        if self.pattern.num_nodes == 1:
            u = next(iter(self.pattern.nodes()))
            if self.pattern.label(u) == label and not list(self.pattern.edges()):
                self._sim[u].add(node)


class IncrementalMatcher:
    """Maintains the strong-simulation result Θ under edge updates.

    Per-ball results are cached by center; an update invalidates exactly
    the balls whose center lies within ``d_Q`` undirected hops of either
    endpoint of the changed edge (measured in the graph where the edge is
    present — before a deletion, after an insertion).  Everything else is
    provably untouched by the update (locality).
    """

    def __init__(self, pattern: Pattern, data: DiGraph) -> None:
        self.pattern = pattern
        self.data = data
        self.radius = pattern.diameter
        self._cache: Dict[Node, Optional[PerfectSubgraph]] = {}
        self.balls_recomputed = 0
        self._evaluate_all()

    def _evaluate_ball(self, center: Node) -> Optional[PerfectSubgraph]:
        ball = extract_ball(self.data, center, self.radius)
        relation = dual_simulation(self.pattern, ball.graph)
        self.balls_recomputed += 1
        if relation.is_empty():
            return None
        return extract_max_perfect_subgraph(self.pattern, ball, relation)

    def _evaluate_all(self) -> None:
        for center in self.data.nodes():
            self._cache[center] = self._evaluate_ball(center)

    # ------------------------------------------------------------------
    def result(self) -> MatchResult:
        """The current deduplicated Θ (assembled from the ball cache)."""
        result = MatchResult(self.pattern)
        for subgraph in self._cache.values():
            if subgraph is not None:
                result.add(subgraph)
        return result

    def _affected_centers(self, source: Node, target: Node) -> Set[Node]:
        """Centers within d_Q of either endpoint (edge currently present)."""
        affected: Set[Node] = set()
        for endpoint in (source, target):
            if endpoint in self.data:
                affected |= set(
                    undirected_distances(self.data, endpoint, self.radius)
                )
        return affected

    def add_edge(self, source: Node, target: Node) -> None:
        """Insert an edge; re-evaluate only the affected balls."""
        self.data.add_edge(source, target)
        for center in self._affected_centers(source, target):
            self._cache[center] = self._evaluate_ball(center)

    def remove_edge(self, source: Node, target: Node) -> None:
        """Delete an edge; re-evaluate only the affected balls."""
        affected = self._affected_centers(source, target)
        self.data.remove_edge(source, target)
        for center in affected:
            self._cache[center] = self._evaluate_ball(center)

    def add_node(self, node: Node, label) -> None:
        """Insert an isolated node (its own new ball; others untouched)."""
        self.data.add_node(node, label)
        self._cache[node] = self._evaluate_ball(node)

    def remove_node(self, node: Node) -> None:
        """Delete a node with its edges; re-evaluate the affected balls."""
        if node not in self.data:
            raise MatchingError(f"node {node!r} is not in the data graph")
        affected = set(undirected_distances(self.data, node, self.radius))
        affected.discard(node)
        self.data.remove_node(node)
        self._cache.pop(node, None)
        for center in affected:
            self._cache[center] = self._evaluate_ball(center)
