"""Connectivity pruning (Section 4.2, Example 6).

Theorem 2 implies that only the connected component of the match graph
containing the ball center can become the perfect subgraph.  Candidate
nodes that are not even *undirected-reachable from the center through
other candidates* therefore can never contribute, and can be removed
before the dual-simulation fixpoint runs.  This shrinks the refinement
work without changing the result: a disconnected candidate cannot witness
any edge for a node in the center's component (witnessing requires
adjacency), and by Theorem 2 each match-graph component is independently a
total dual simulation, so pruning cannot flip success into failure for the
center's component.
"""

from __future__ import annotations

from typing import Dict, Optional, Set

from repro.core.ball import Ball
from repro.core.components import component_containing_restricted
from repro.core.digraph import Node
from repro.core.pattern import Pattern


def prune_candidates_by_connectivity(
    pattern: Pattern,
    ball: Ball,
    sim: Dict[Node, Set[Node]],
) -> Optional[Dict[Node, Set[Node]]]:
    """Restrict candidate sets to the center's candidate-connected component.

    Parameters
    ----------
    pattern:
        The pattern graph (used only for its node set).
    ball:
        The ball whose center anchors the component.
    sim:
        Candidate sets ``sim(u)`` (label seeds or a projected global
        relation).  Not mutated.

    Returns
    -------
    Optional[Dict[Node, Set[Node]]]
        Pruned candidate sets, or ``None`` when the center is not a
        candidate for any pattern node (the ball can be skipped outright —
        ``ExtractMaxPG`` would return nil).
    """
    allowed: Set[Node] = set()
    for candidates in sim.values():
        allowed |= candidates
    if ball.center not in allowed:
        return None
    component = component_containing_restricted(ball.graph, ball.center, allowed)
    return {u: candidates & component for u, candidates in sim.items()}


def candidate_component_of_center(
    ball: Ball,
    candidate_union: Set[Node],
) -> Set[Node]:
    """The undirected component of the center within the candidate set.

    Exposed separately so ablation benchmarks can measure the pruning
    power (component size vs. ball size) without running a full match.
    """
    if ball.center not in candidate_union:
        return set()
    return component_containing_restricted(
        ball.graph, ball.center, candidate_union
    )
