"""Pattern graphs: connected, node-labeled, directed queries.

The paper assumes w.l.o.g. that pattern graphs are connected (Section 2.1)
and repeatedly uses the pattern diameter ``d_Q`` as the ball radius of the
locality condition.  :class:`Pattern` wraps a :class:`~repro.core.digraph.DiGraph`
with connectivity validation at construction time and a cached diameter,
so the matching algorithms can rely on both without re-checking.
"""

from __future__ import annotations

from typing import Iterable, Mapping

from repro.core.digraph import DiGraph, Edge, Label, Node
from repro.core.traversal import diameter_undirected, is_connected_undirected
from repro.exceptions import PatternError


class Pattern:
    """A validated pattern graph ``Q(Vq, Eq)`` with cached diameter ``d_Q``.

    ``Pattern`` delegates all read access to the wrapped graph, which is
    treated as immutable after construction: mutating the underlying graph
    through the ``graph`` property voids the cached diameter, so don't.

    Example
    -------
    >>> q = Pattern.build({"u": "HR", "v": "Bio"}, [("u", "v")])
    >>> q.diameter
    1
    >>> sorted(q.graph.successors("u"))
    ['v']
    """

    __slots__ = ("_graph", "_diameter", "_canonical_cache", "_quotient_cache")

    def __init__(self, graph: DiGraph) -> None:
        if graph.num_nodes == 0:
            raise PatternError("pattern graphs must be non-empty")
        if not is_connected_undirected(graph):
            raise PatternError(
                "pattern graphs are assumed connected (Section 2.1); got a "
                "disconnected graph — split it into one Pattern per component"
            )
        self._graph = graph
        self._diameter = diameter_undirected(graph)
        # Memo slots, valid because patterns are immutable after
        # construction (like the cached diameter): the canonical form is
        # computed and owned by repro.service.fingerprint, the minimized
        # quotient by repro.core.minimize.
        self._canonical_cache = None
        self._quotient_cache = None

    @classmethod
    def build(
        cls,
        labels: Mapping[Node, Label],
        edges: Iterable[Edge],
    ) -> "Pattern":
        """Construct from a node -> label mapping and an edge iterable."""
        return cls(DiGraph.from_parts(labels, edges))

    # ------------------------------------------------------------------
    @property
    def graph(self) -> DiGraph:
        """The underlying labeled digraph (treat as read-only)."""
        return self._graph

    @property
    def diameter(self) -> int:
        """``d_Q`` — diameter of the pattern, the default ball radius."""
        return self._diameter

    @property
    def num_nodes(self) -> int:
        """``|Vq|``."""
        return self._graph.num_nodes

    @property
    def num_edges(self) -> int:
        """``|Eq|``."""
        return self._graph.num_edges

    @property
    def size(self) -> int:
        """``|Q| = |Vq| + |Eq|`` — minimality is judged on this measure."""
        return self._graph.size

    def nodes(self):
        """Iterate over pattern nodes."""
        return self._graph.nodes()

    def edges(self):
        """Iterate over pattern edges."""
        return self._graph.edges()

    def label(self, node: Node) -> Label:
        """The label of a pattern node."""
        return self._graph.label(node)

    def label_set(self):
        """Labels occurring in the pattern."""
        return self._graph.label_set()

    def successors(self, node: Node):
        """Children of a pattern node."""
        return self._graph.successors(node)

    def predecessors(self, node: Node):
        """Parents of a pattern node."""
        return self._graph.predecessors(node)

    def canonical(self):
        """The pattern's canonical form (label-refined iso invariant).

        Computed once and cached — patterns are immutable after
        construction.  See :func:`repro.service.fingerprint.canonical_form`
        for the guarantees: equal canonical keys imply isomorphism, so
        the query-service cache can safely share results between
        structurally identical patterns.
        """
        if self._canonical_cache is None:
            from repro.service.fingerprint import canonical_form

            self._canonical_cache = canonical_form(self)
        return self._canonical_cache

    def fingerprint(self) -> str:
        """Hex digest of the canonical form (stable within a process)."""
        return self.canonical().fingerprint

    def __len__(self) -> int:
        return self._graph.num_nodes

    def __repr__(self) -> str:
        return (
            f"Pattern(|Vq|={self.num_nodes}, |Eq|={self.num_edges}, "
            f"d_Q={self._diameter})"
        )
