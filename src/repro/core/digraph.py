"""Node-labeled directed graphs — the data model of the paper.

The paper (Section 2.1) defines a *data graph* ``G(V, E, l)`` as a finite
set of nodes ``V``, a set of directed edges ``E ⊆ V × V`` and a labeling
function ``l`` mapping each node to a label drawn from a (possibly
infinite) alphabet ``Σ``.  :class:`DiGraph` implements exactly this model
with adjacency sets in both directions plus a label index, which the
simulation algorithms rely on for their initial candidate computation.

Node identifiers may be any hashable object; labels likewise.  Self-loops
are permitted (``E ⊆ V × V`` does not exclude them); parallel edges are
not, matching the set semantics of ``E``.

Graphs also carry a **structured change-log**: every mutator emits a
typed :class:`GraphDelta` to weakly-held subscribers
(:meth:`DiGraph.subscribe`), with :meth:`DiGraph.batch` grouping a burst
of mutations into one delivery.  The compiled execution kernel
(:mod:`repro.core.kernel`) maintains its :class:`~repro.core.kernel.\
GraphIndex` incrementally from this stream instead of recompiling; the
plain ``version`` counter remains the cheap staleness check.
"""

from __future__ import annotations

import weakref
from contextlib import contextmanager
from dataclasses import dataclass
from types import MappingProxyType
from typing import (
    AbstractSet,
    Dict,
    FrozenSet,
    Hashable,
    Iterable,
    Iterator,
    List,
    Mapping,
    Optional,
    Set,
    Tuple,
)

from repro.exceptions import DuplicateNode, EdgeNotFound, GraphError, NodeNotFound

Node = Hashable
Label = Hashable
Edge = Tuple[Node, Node]

# ----------------------------------------------------------------------
# Structured change-log: typed mutation events
# ----------------------------------------------------------------------
#: The five mutation kinds a :class:`DiGraph` can emit.
ADD_NODE = "add_node"
REMOVE_NODE = "remove_node"
ADD_EDGE = "add_edge"
REMOVE_EDGE = "remove_edge"
RELABEL = "relabel"


@dataclass(frozen=True)
class GraphDelta:
    """One typed mutation event emitted by a :class:`DiGraph` mutator.

    ``kind`` is one of :data:`ADD_NODE`, :data:`REMOVE_NODE`,
    :data:`ADD_EDGE`, :data:`REMOVE_EDGE`, :data:`RELABEL`.  Node events
    carry ``node`` and ``label`` (for :data:`RELABEL` additionally
    ``old_label``; for :data:`REMOVE_NODE`, ``label`` is the label the
    node had).  Edge events carry ``source`` and ``target``.

    Deltas describe the *applied* mutation: by the time a listener sees
    one, the graph already reflects it.  A ``remove_node`` is always
    preceded by one ``remove_edge`` per incident edge (delivered in the
    same batch), so listeners never need to reconstruct adjacency that
    is already gone.
    """

    kind: str
    node: Node = None
    label: Label = None
    old_label: Label = None
    source: Node = None
    target: Node = None

#: Shared empty bucket returned by :meth:`DiGraph.nodes_with_label_raw`
#: for labels that never occur.  A frozenset so that an (illegal) caller
#: mutation fails loudly instead of poisoning every graph's lookups.
_EMPTY_SET: FrozenSet[Node] = frozenset()


class DiGraph:
    """A finite, node-labeled, directed graph.

    The class exposes the vocabulary used throughout the paper:

    * ``successors`` / ``predecessors`` — the child / parent relations that
      simulation and dual simulation preserve;
    * ``label`` and ``nodes_with_label`` — the labeling function ``l`` and
      its inverse index;
    * ``subgraph`` — the node/edge-induced subgraph ``G[Vs, Es]``.

    Example
    -------
    >>> g = DiGraph()
    >>> g.add_node(1, "HR")
    >>> g.add_node(2, "Bio")
    >>> g.add_edge(1, 2)
    >>> sorted(g.successors(1))
    [2]
    >>> g.label(2)
    'Bio'
    """

    __slots__ = (
        "_labels",
        "_succ",
        "_pred",
        "_label_index",
        "_edge_count",
        "_version",
        "_listeners",
        "_batch_buffer",
        "_batch_depth",
        "__weakref__",
    )

    def __init__(self) -> None:
        self._labels: Dict[Node, Label] = {}
        self._succ: Dict[Node, Set[Node]] = {}
        self._pred: Dict[Node, Set[Node]] = {}
        self._label_index: Dict[Label, Set[Node]] = {}
        self._edge_count = 0
        self._version = 0
        self._listeners: List["weakref.ref"] = []
        self._batch_buffer: Optional[List[GraphDelta]] = None
        self._batch_depth = 0

    # ------------------------------------------------------------------
    # Change-log subscription
    # ------------------------------------------------------------------
    def subscribe(self, listener: object) -> None:
        """Register ``listener`` for mutation deltas (held weakly).

        ``listener`` must implement ``on_graph_deltas(deltas)``, receiving
        a tuple of :class:`GraphDelta` after every mutation — one event
        per call outside :meth:`batch`, the whole group at batch exit.
        The graph keeps only a weak reference: a listener dies with its
        owner (e.g. a compiled index) without unsubscribing.
        """
        self._listeners.append(weakref.ref(listener))

    def unsubscribe(self, listener: object) -> None:
        """Remove ``listener`` (idempotent; dead weakrefs pruned too).

        Safe to call for a listener that was never subscribed, or twice
        for the same listener — both are no-ops.  Dead weakrefs
        encountered along the way are pruned as a side effect, so a
        subscriber that was garbage-collected without unsubscribing never
        lingers in the list.
        """
        self._listeners = [
            ref for ref in self._listeners
            if ref() is not None and ref() is not listener
        ]

    @contextmanager
    def batch(self):
        """Group mutations into one delta delivery.

        Inside the context every mutator applies (and bumps ``version``)
        immediately, but listeners hear nothing until the outermost batch
        exits, when the buffered deltas arrive as one tuple — the unit an
        incremental index maintains itself by.  Nests; delivery happens
        even if the body raises, because the mutations did apply.
        """
        if self._batch_depth == 0:
            self._batch_buffer = []
        self._batch_depth += 1
        try:
            yield self
        finally:
            self._batch_depth -= 1
            if self._batch_depth == 0:
                buffered, self._batch_buffer = self._batch_buffer, None
                if buffered:
                    self._deliver(tuple(buffered))

    def _emit(self, delta: GraphDelta) -> None:
        """Route one applied delta to the batch buffer or the listeners."""
        if self._batch_buffer is not None:
            self._batch_buffer.append(delta)
        else:
            self._deliver((delta,))

    def _deliver(self, deltas: Tuple[GraphDelta, ...]) -> None:
        # Iterate over a snapshot: a callback may subscribe/unsubscribe
        # (mutating self._listeners) without disturbing this delivery.
        dead = False
        for ref in tuple(self._listeners):
            target = ref()
            if target is None:
                dead = True
            else:
                target.on_graph_deltas(deltas)
        if dead:
            # Prune dead weakrefs from the *current* list, not the
            # snapshot — rebuilding from the snapshot would resurrect a
            # listener that unsubscribed during delivery.
            self._listeners = [
                ref for ref in self._listeners if ref() is not None
            ]

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------
    @classmethod
    def from_parts(
        cls,
        labels: Mapping[Node, Label],
        edges: Iterable[Edge],
    ) -> "DiGraph":
        """Build a graph from a label mapping and an edge iterable.

        Every edge endpoint must appear in ``labels``.
        """
        graph = cls()
        for node, label in labels.items():
            graph.add_node(node, label)
        for source, target in edges:
            graph.add_edge(source, target)
        return graph

    @classmethod
    def _build_unchecked(
        cls,
        node_label_pairs: Iterable[Tuple[Node, Label]],
        edges: Iterable[Edge],
    ) -> "DiGraph":
        """Bulk-build from pre-validated parts, skipping per-call checks.

        Internal fast path for the execution kernel, which materializes
        many small result subgraphs from data it already knows to be
        consistent.  ``node_label_pairs`` must be duplicate-free,
        ``edges`` must be duplicate-free with both endpoints present.
        """
        graph = cls()
        labels = graph._labels
        succ = graph._succ
        pred = graph._pred
        label_index = graph._label_index
        for node, label in node_label_pairs:
            labels[node] = label
            succ[node] = set()
            pred[node] = set()
            bucket = label_index.get(label)
            if bucket is None:
                label_index[label] = {node}
            else:
                bucket.add(node)
        count = 0
        for source, target in edges:
            succ[source].add(target)
            pred[target].add(source)
            count += 1
        graph._edge_count = count
        graph._version = 1
        return graph

    def add_node(self, node: Node, label: Label) -> None:
        """Add ``node`` with ``label``; raise :class:`DuplicateNode` if present."""
        if node in self._labels:
            raise DuplicateNode(node)
        self._labels[node] = label
        self._succ[node] = set()
        self._pred[node] = set()
        self._label_index.setdefault(label, set()).add(node)
        self._version += 1
        if self._listeners:
            self._emit(GraphDelta(ADD_NODE, node=node, label=label))

    def add_edge(self, source: Node, target: Node) -> None:
        """Add the directed edge ``(source, target)``.

        Both endpoints must already be nodes.  Adding an existing edge is a
        no-op (edges form a set).
        """
        if source not in self._labels:
            raise NodeNotFound(source)
        if target not in self._labels:
            raise NodeNotFound(target)
        if target not in self._succ[source]:
            self._succ[source].add(target)
            self._pred[target].add(source)
            self._edge_count += 1
            self._version += 1
            if self._listeners:
                self._emit(GraphDelta(ADD_EDGE, source=source, target=target))

    def remove_edge(self, source: Node, target: Node) -> None:
        """Remove the directed edge ``(source, target)``."""
        if source not in self._labels or target not in self._succ[source]:
            raise EdgeNotFound(source, target)
        self._succ[source].discard(target)
        self._pred[target].discard(source)
        self._edge_count -= 1
        self._version += 1
        if self._listeners:
            self._emit(GraphDelta(REMOVE_EDGE, source=source, target=target))

    def remove_node(self, node: Node) -> None:
        """Remove ``node`` and every incident edge.

        Emits one ``remove_edge`` delta per incident edge followed by the
        ``remove_node`` delta, grouped as a single batch delivery.
        """
        if node not in self._labels:
            raise NodeNotFound(node)
        with self.batch():
            for target in list(self._succ[node]):
                self.remove_edge(node, target)
            for source in list(self._pred[node]):
                self.remove_edge(source, node)
            label = self._labels.pop(node)
            bucket = self._label_index[label]
            bucket.discard(node)
            if not bucket:
                del self._label_index[label]
            del self._succ[node]
            del self._pred[node]
            self._version += 1
            if self._listeners:
                self._emit(GraphDelta(REMOVE_NODE, node=node, label=label))

    def relabel_node(self, node: Node, label: Label) -> None:
        """Change the label of an existing node, keeping the index coherent."""
        if node not in self._labels:
            raise NodeNotFound(node)
        old = self._labels[node]
        if old == label:
            return
        bucket = self._label_index[old]
        bucket.discard(node)
        if not bucket:
            del self._label_index[old]
        self._labels[node] = label
        self._label_index.setdefault(label, set()).add(node)
        self._version += 1
        if self._listeners:
            self._emit(
                GraphDelta(RELABEL, node=node, label=label, old_label=old)
            )

    # ------------------------------------------------------------------
    # Inspection
    # ------------------------------------------------------------------
    @property
    def version(self) -> int:
        """Mutation counter; bumped by every structural or label change.

        The execution kernel (:mod:`repro.core.kernel`) keys its compiled
        :class:`~repro.core.kernel.GraphIndex` cache on this value so a
        stale index is never served after the graph changes.
        """
        return self._version

    def __contains__(self, node: Node) -> bool:
        return node in self._labels

    def __len__(self) -> int:
        return len(self._labels)

    def __iter__(self) -> Iterator[Node]:
        return iter(self._labels)

    @property
    def num_nodes(self) -> int:
        """``|V|`` — number of nodes."""
        return len(self._labels)

    @property
    def num_edges(self) -> int:
        """``|E|`` — number of directed edges."""
        return self._edge_count

    @property
    def size(self) -> int:
        """``|G| = |V| + |E|`` — the size measure used by the paper."""
        return self.num_nodes + self.num_edges

    def nodes(self) -> Iterator[Node]:
        """Iterate over nodes (insertion order)."""
        return iter(self._labels)

    def edges(self) -> Iterator[Edge]:
        """Iterate over directed edges as ``(source, target)`` pairs."""
        for source, targets in self._succ.items():
            for target in targets:
                yield (source, target)

    def label(self, node: Node) -> Label:
        """Return ``l(node)``."""
        try:
            return self._labels[node]
        except KeyError:
            raise NodeNotFound(node) from None

    def labels(self) -> Mapping[Node, Label]:
        """Read-only *view* of the labeling function (no copy).

        Returns a :class:`types.MappingProxyType` over the live internal
        dict: O(1) instead of the former full-dict copy per call, while
        still rejecting mutation.  The view tracks later graph changes.
        """
        return MappingProxyType(self._labels)

    def labels_raw(self) -> Dict[Node, Label]:
        """Internal label dict (no copy, no proxy).  Do not mutate.

        The hot paths (ball extraction, kernel compilation) look labels up
        per node; skipping the exception-wrapped :meth:`label` and the
        proxy indirection is a measurable constant-factor win.
        """
        return self._labels

    def label_set(self) -> FrozenSet[Label]:
        """The set of labels that occur in the graph."""
        return frozenset(self._label_index)

    def nodes_with_label(self, label: Label) -> FrozenSet[Node]:
        """All nodes carrying ``label`` (empty if the label never occurs)."""
        return frozenset(self._label_index.get(label, frozenset()))

    def nodes_with_label_raw(self, label: Label) -> AbstractSet[Node]:
        """Internal label bucket (no copy).  Callers must not mutate it.

        Candidate seeding iterates these buckets once per pattern node;
        avoiding the frozenset copy matters on large label classes.  For
        absent labels a shared immutable empty set is returned.
        """
        return self._label_index.get(label, _EMPTY_SET)

    def successors(self, node: Node) -> FrozenSet[Node]:
        """Children of ``node`` — targets of edges leaving it."""
        try:
            return frozenset(self._succ[node])
        except KeyError:
            raise NodeNotFound(node) from None

    def predecessors(self, node: Node) -> FrozenSet[Node]:
        """Parents of ``node`` — sources of edges entering it."""
        try:
            return frozenset(self._pred[node])
        except KeyError:
            raise NodeNotFound(node) from None

    def successors_raw(self, node: Node) -> Set[Node]:
        """Internal successor set (no copy).  Callers must not mutate it.

        The simulation fixpoints iterate adjacency heavily; avoiding a
        frozenset copy per call is a significant constant-factor win.
        """
        return self._succ[node]

    def predecessors_raw(self, node: Node) -> Set[Node]:
        """Internal predecessor set (no copy).  Callers must not mutate it."""
        return self._pred[node]

    def out_degree(self, node: Node) -> int:
        """Number of children of ``node``."""
        try:
            return len(self._succ[node])
        except KeyError:
            raise NodeNotFound(node) from None

    def in_degree(self, node: Node) -> int:
        """Number of parents of ``node``."""
        try:
            return len(self._pred[node])
        except KeyError:
            raise NodeNotFound(node) from None

    def degree(self, node: Node) -> int:
        """Total degree (in + out), counting a self-loop twice."""
        return self.in_degree(node) + self.out_degree(node)

    def has_edge(self, source: Node, target: Node) -> bool:
        """True iff ``(source, target)`` is an edge."""
        return source in self._succ and target in self._succ[source]

    def neighbors(self, node: Node) -> FrozenSet[Node]:
        """Undirected neighborhood: parents ∪ children."""
        try:
            return frozenset(self._succ[node]) | frozenset(self._pred[node])
        except KeyError:
            raise NodeNotFound(node) from None

    # ------------------------------------------------------------------
    # Derived graphs
    # ------------------------------------------------------------------
    def subgraph(
        self,
        nodes: Iterable[Node],
        edges: Optional[Iterable[Edge]] = None,
    ) -> "DiGraph":
        """Return the subgraph ``G[Vs, Es]`` (Section 2.1).

        With ``edges=None`` the *induced* subgraph is returned: all edges of
        ``G`` with both endpoints in ``nodes``.  Otherwise exactly the given
        edges are kept (each must exist in ``G`` and have both endpoints in
        ``nodes``).
        """
        node_set = set(nodes)
        labels = self._labels
        sub = DiGraph()
        for node in node_set:
            try:
                label = labels[node]
            except KeyError:
                raise NodeNotFound(node) from None
            sub.add_node(node, label)
        if edges is None:
            for node in node_set:
                for target in self._succ[node]:
                    if target in node_set:
                        sub.add_edge(node, target)
        else:
            for source, target in edges:
                if source not in node_set or target not in node_set:
                    raise GraphError(
                        f"edge ({source!r}, {target!r}) has an endpoint "
                        "outside the subgraph node set"
                    )
                if not self.has_edge(source, target):
                    raise EdgeNotFound(source, target)
                sub.add_edge(source, target)
        return sub

    def copy(self) -> "DiGraph":
        """Deep copy of the graph structure (labels are shared objects)."""
        clone = DiGraph()
        for node, label in self._labels.items():
            clone.add_node(node, label)
        for source, target in self.edges():
            clone.add_edge(source, target)
        return clone

    def reverse(self) -> "DiGraph":
        """Return the graph with every edge direction flipped."""
        rev = DiGraph()
        for node, label in self._labels.items():
            rev.add_node(node, label)
        for source, target in self.edges():
            rev.add_edge(target, source)
        return rev

    # ------------------------------------------------------------------
    # Equality / hashing / repr
    # ------------------------------------------------------------------
    def same_as(self, other: "DiGraph") -> bool:
        """Structural equality: identical node identities, labels and edges.

        This is *identity* equality, not isomorphism; use the baselines
        package for isomorphism checks.
        """
        if not isinstance(other, DiGraph):
            return NotImplemented  # type: ignore[return-value]
        if self._labels != other._labels:
            return False
        return self._succ == other._succ

    def node_edge_signature(self) -> Tuple[FrozenSet[Node], FrozenSet[Edge]]:
        """Hashable signature of the exact node and edge sets.

        Used to deduplicate perfect subgraphs discovered from different
        ball centers (Proposition 4 counts *distinct* maximum perfect
        subgraphs).
        """
        return (frozenset(self._labels), frozenset(self.edges()))

    def __repr__(self) -> str:
        return (
            f"{type(self).__name__}(|V|={self.num_nodes}, "
            f"|E|={self.num_edges}, labels={len(self._label_index)})"
        )

    # ------------------------------------------------------------------
    # Convenience constructors used widely in tests and examples
    # ------------------------------------------------------------------
    @classmethod
    def from_edge_label_pairs(
        cls,
        node_labels: Iterable[Tuple[Node, Label]],
        edges: Iterable[Edge],
    ) -> "DiGraph":
        """Build from ``[(node, label), ...]`` plus an edge list."""
        graph = cls()
        for node, label in node_labels:
            graph.add_node(node, label)
        for source, target in edges:
            graph.add_edge(source, target)
        return graph

    def degree_histogram(self) -> Dict[int, int]:
        """Map total degree -> number of nodes with that degree."""
        hist: Dict[int, int] = {}
        for node in self._labels:
            deg = self.degree(node)
            hist[deg] = hist.get(deg, 0) + 1
        return hist

    def to_edge_list(self) -> List[Edge]:
        """Materialize the edge set as a sorted-insertion list."""
        return list(self.edges())
