"""Node-labeled directed graphs — the data model of the paper.

The paper (Section 2.1) defines a *data graph* ``G(V, E, l)`` as a finite
set of nodes ``V``, a set of directed edges ``E ⊆ V × V`` and a labeling
function ``l`` mapping each node to a label drawn from a (possibly
infinite) alphabet ``Σ``.  :class:`DiGraph` implements exactly this model
with adjacency sets in both directions plus a label index, which the
simulation algorithms rely on for their initial candidate computation.

Node identifiers may be any hashable object; labels likewise.  Self-loops
are permitted (``E ⊆ V × V`` does not exclude them); parallel edges are
not, matching the set semantics of ``E``.
"""

from __future__ import annotations

from types import MappingProxyType
from typing import (
    AbstractSet,
    Dict,
    FrozenSet,
    Hashable,
    Iterable,
    Iterator,
    List,
    Mapping,
    Optional,
    Set,
    Tuple,
)

from repro.exceptions import DuplicateNode, EdgeNotFound, GraphError, NodeNotFound

Node = Hashable
Label = Hashable
Edge = Tuple[Node, Node]

#: Shared empty bucket returned by :meth:`DiGraph.nodes_with_label_raw`
#: for labels that never occur.  A frozenset so that an (illegal) caller
#: mutation fails loudly instead of poisoning every graph's lookups.
_EMPTY_SET: FrozenSet[Node] = frozenset()


class DiGraph:
    """A finite, node-labeled, directed graph.

    The class exposes the vocabulary used throughout the paper:

    * ``successors`` / ``predecessors`` — the child / parent relations that
      simulation and dual simulation preserve;
    * ``label`` and ``nodes_with_label`` — the labeling function ``l`` and
      its inverse index;
    * ``subgraph`` — the node/edge-induced subgraph ``G[Vs, Es]``.

    Example
    -------
    >>> g = DiGraph()
    >>> g.add_node(1, "HR")
    >>> g.add_node(2, "Bio")
    >>> g.add_edge(1, 2)
    >>> sorted(g.successors(1))
    [2]
    >>> g.label(2)
    'Bio'
    """

    __slots__ = (
        "_labels",
        "_succ",
        "_pred",
        "_label_index",
        "_edge_count",
        "_version",
        "__weakref__",
    )

    def __init__(self) -> None:
        self._labels: Dict[Node, Label] = {}
        self._succ: Dict[Node, Set[Node]] = {}
        self._pred: Dict[Node, Set[Node]] = {}
        self._label_index: Dict[Label, Set[Node]] = {}
        self._edge_count = 0
        self._version = 0

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------
    @classmethod
    def from_parts(
        cls,
        labels: Mapping[Node, Label],
        edges: Iterable[Edge],
    ) -> "DiGraph":
        """Build a graph from a label mapping and an edge iterable.

        Every edge endpoint must appear in ``labels``.
        """
        graph = cls()
        for node, label in labels.items():
            graph.add_node(node, label)
        for source, target in edges:
            graph.add_edge(source, target)
        return graph

    @classmethod
    def _build_unchecked(
        cls,
        node_label_pairs: Iterable[Tuple[Node, Label]],
        edges: Iterable[Edge],
    ) -> "DiGraph":
        """Bulk-build from pre-validated parts, skipping per-call checks.

        Internal fast path for the execution kernel, which materializes
        many small result subgraphs from data it already knows to be
        consistent.  ``node_label_pairs`` must be duplicate-free,
        ``edges`` must be duplicate-free with both endpoints present.
        """
        graph = cls()
        labels = graph._labels
        succ = graph._succ
        pred = graph._pred
        label_index = graph._label_index
        for node, label in node_label_pairs:
            labels[node] = label
            succ[node] = set()
            pred[node] = set()
            bucket = label_index.get(label)
            if bucket is None:
                label_index[label] = {node}
            else:
                bucket.add(node)
        count = 0
        for source, target in edges:
            succ[source].add(target)
            pred[target].add(source)
            count += 1
        graph._edge_count = count
        graph._version = 1
        return graph

    def add_node(self, node: Node, label: Label) -> None:
        """Add ``node`` with ``label``; raise :class:`DuplicateNode` if present."""
        if node in self._labels:
            raise DuplicateNode(node)
        self._labels[node] = label
        self._succ[node] = set()
        self._pred[node] = set()
        self._label_index.setdefault(label, set()).add(node)
        self._version += 1

    def add_edge(self, source: Node, target: Node) -> None:
        """Add the directed edge ``(source, target)``.

        Both endpoints must already be nodes.  Adding an existing edge is a
        no-op (edges form a set).
        """
        if source not in self._labels:
            raise NodeNotFound(source)
        if target not in self._labels:
            raise NodeNotFound(target)
        if target not in self._succ[source]:
            self._succ[source].add(target)
            self._pred[target].add(source)
            self._edge_count += 1
            self._version += 1

    def remove_edge(self, source: Node, target: Node) -> None:
        """Remove the directed edge ``(source, target)``."""
        if source not in self._labels or target not in self._succ[source]:
            raise EdgeNotFound(source, target)
        self._succ[source].discard(target)
        self._pred[target].discard(source)
        self._edge_count -= 1
        self._version += 1

    def remove_node(self, node: Node) -> None:
        """Remove ``node`` and every incident edge."""
        if node not in self._labels:
            raise NodeNotFound(node)
        for target in list(self._succ[node]):
            self.remove_edge(node, target)
        for source in list(self._pred[node]):
            self.remove_edge(source, node)
        label = self._labels.pop(node)
        bucket = self._label_index[label]
        bucket.discard(node)
        if not bucket:
            del self._label_index[label]
        del self._succ[node]
        del self._pred[node]
        self._version += 1

    def relabel_node(self, node: Node, label: Label) -> None:
        """Change the label of an existing node, keeping the index coherent."""
        if node not in self._labels:
            raise NodeNotFound(node)
        old = self._labels[node]
        if old == label:
            return
        bucket = self._label_index[old]
        bucket.discard(node)
        if not bucket:
            del self._label_index[old]
        self._labels[node] = label
        self._label_index.setdefault(label, set()).add(node)
        self._version += 1

    # ------------------------------------------------------------------
    # Inspection
    # ------------------------------------------------------------------
    @property
    def version(self) -> int:
        """Mutation counter; bumped by every structural or label change.

        The execution kernel (:mod:`repro.core.kernel`) keys its compiled
        :class:`~repro.core.kernel.GraphIndex` cache on this value so a
        stale index is never served after the graph changes.
        """
        return self._version

    def __contains__(self, node: Node) -> bool:
        return node in self._labels

    def __len__(self) -> int:
        return len(self._labels)

    def __iter__(self) -> Iterator[Node]:
        return iter(self._labels)

    @property
    def num_nodes(self) -> int:
        """``|V|`` — number of nodes."""
        return len(self._labels)

    @property
    def num_edges(self) -> int:
        """``|E|`` — number of directed edges."""
        return self._edge_count

    @property
    def size(self) -> int:
        """``|G| = |V| + |E|`` — the size measure used by the paper."""
        return self.num_nodes + self.num_edges

    def nodes(self) -> Iterator[Node]:
        """Iterate over nodes (insertion order)."""
        return iter(self._labels)

    def edges(self) -> Iterator[Edge]:
        """Iterate over directed edges as ``(source, target)`` pairs."""
        for source, targets in self._succ.items():
            for target in targets:
                yield (source, target)

    def label(self, node: Node) -> Label:
        """Return ``l(node)``."""
        try:
            return self._labels[node]
        except KeyError:
            raise NodeNotFound(node) from None

    def labels(self) -> Mapping[Node, Label]:
        """Read-only *view* of the labeling function (no copy).

        Returns a :class:`types.MappingProxyType` over the live internal
        dict: O(1) instead of the former full-dict copy per call, while
        still rejecting mutation.  The view tracks later graph changes.
        """
        return MappingProxyType(self._labels)

    def labels_raw(self) -> Dict[Node, Label]:
        """Internal label dict (no copy, no proxy).  Do not mutate.

        The hot paths (ball extraction, kernel compilation) look labels up
        per node; skipping the exception-wrapped :meth:`label` and the
        proxy indirection is a measurable constant-factor win.
        """
        return self._labels

    def label_set(self) -> FrozenSet[Label]:
        """The set of labels that occur in the graph."""
        return frozenset(self._label_index)

    def nodes_with_label(self, label: Label) -> FrozenSet[Node]:
        """All nodes carrying ``label`` (empty if the label never occurs)."""
        return frozenset(self._label_index.get(label, frozenset()))

    def nodes_with_label_raw(self, label: Label) -> AbstractSet[Node]:
        """Internal label bucket (no copy).  Callers must not mutate it.

        Candidate seeding iterates these buckets once per pattern node;
        avoiding the frozenset copy matters on large label classes.  For
        absent labels a shared immutable empty set is returned.
        """
        return self._label_index.get(label, _EMPTY_SET)

    def successors(self, node: Node) -> FrozenSet[Node]:
        """Children of ``node`` — targets of edges leaving it."""
        try:
            return frozenset(self._succ[node])
        except KeyError:
            raise NodeNotFound(node) from None

    def predecessors(self, node: Node) -> FrozenSet[Node]:
        """Parents of ``node`` — sources of edges entering it."""
        try:
            return frozenset(self._pred[node])
        except KeyError:
            raise NodeNotFound(node) from None

    def successors_raw(self, node: Node) -> Set[Node]:
        """Internal successor set (no copy).  Callers must not mutate it.

        The simulation fixpoints iterate adjacency heavily; avoiding a
        frozenset copy per call is a significant constant-factor win.
        """
        return self._succ[node]

    def predecessors_raw(self, node: Node) -> Set[Node]:
        """Internal predecessor set (no copy).  Callers must not mutate it."""
        return self._pred[node]

    def out_degree(self, node: Node) -> int:
        """Number of children of ``node``."""
        try:
            return len(self._succ[node])
        except KeyError:
            raise NodeNotFound(node) from None

    def in_degree(self, node: Node) -> int:
        """Number of parents of ``node``."""
        try:
            return len(self._pred[node])
        except KeyError:
            raise NodeNotFound(node) from None

    def degree(self, node: Node) -> int:
        """Total degree (in + out), counting a self-loop twice."""
        return self.in_degree(node) + self.out_degree(node)

    def has_edge(self, source: Node, target: Node) -> bool:
        """True iff ``(source, target)`` is an edge."""
        return source in self._succ and target in self._succ[source]

    def neighbors(self, node: Node) -> FrozenSet[Node]:
        """Undirected neighborhood: parents ∪ children."""
        try:
            return frozenset(self._succ[node]) | frozenset(self._pred[node])
        except KeyError:
            raise NodeNotFound(node) from None

    # ------------------------------------------------------------------
    # Derived graphs
    # ------------------------------------------------------------------
    def subgraph(
        self,
        nodes: Iterable[Node],
        edges: Optional[Iterable[Edge]] = None,
    ) -> "DiGraph":
        """Return the subgraph ``G[Vs, Es]`` (Section 2.1).

        With ``edges=None`` the *induced* subgraph is returned: all edges of
        ``G`` with both endpoints in ``nodes``.  Otherwise exactly the given
        edges are kept (each must exist in ``G`` and have both endpoints in
        ``nodes``).
        """
        node_set = set(nodes)
        labels = self._labels
        sub = DiGraph()
        for node in node_set:
            try:
                label = labels[node]
            except KeyError:
                raise NodeNotFound(node) from None
            sub.add_node(node, label)
        if edges is None:
            for node in node_set:
                for target in self._succ[node]:
                    if target in node_set:
                        sub.add_edge(node, target)
        else:
            for source, target in edges:
                if source not in node_set or target not in node_set:
                    raise GraphError(
                        f"edge ({source!r}, {target!r}) has an endpoint "
                        "outside the subgraph node set"
                    )
                if not self.has_edge(source, target):
                    raise EdgeNotFound(source, target)
                sub.add_edge(source, target)
        return sub

    def copy(self) -> "DiGraph":
        """Deep copy of the graph structure (labels are shared objects)."""
        clone = DiGraph()
        for node, label in self._labels.items():
            clone.add_node(node, label)
        for source, target in self.edges():
            clone.add_edge(source, target)
        return clone

    def reverse(self) -> "DiGraph":
        """Return the graph with every edge direction flipped."""
        rev = DiGraph()
        for node, label in self._labels.items():
            rev.add_node(node, label)
        for source, target in self.edges():
            rev.add_edge(target, source)
        return rev

    # ------------------------------------------------------------------
    # Equality / hashing / repr
    # ------------------------------------------------------------------
    def same_as(self, other: "DiGraph") -> bool:
        """Structural equality: identical node identities, labels and edges.

        This is *identity* equality, not isomorphism; use the baselines
        package for isomorphism checks.
        """
        if not isinstance(other, DiGraph):
            return NotImplemented  # type: ignore[return-value]
        if self._labels != other._labels:
            return False
        return self._succ == other._succ

    def node_edge_signature(self) -> Tuple[FrozenSet[Node], FrozenSet[Edge]]:
        """Hashable signature of the exact node and edge sets.

        Used to deduplicate perfect subgraphs discovered from different
        ball centers (Proposition 4 counts *distinct* maximum perfect
        subgraphs).
        """
        return (frozenset(self._labels), frozenset(self.edges()))

    def __repr__(self) -> str:
        return (
            f"{type(self).__name__}(|V|={self.num_nodes}, "
            f"|E|={self.num_edges}, labels={len(self._label_index)})"
        )

    # ------------------------------------------------------------------
    # Convenience constructors used widely in tests and examples
    # ------------------------------------------------------------------
    @classmethod
    def from_edge_label_pairs(
        cls,
        node_labels: Iterable[Tuple[Node, Label]],
        edges: Iterable[Edge],
    ) -> "DiGraph":
        """Build from ``[(node, label), ...]`` plus an edge list."""
        graph = cls()
        for node, label in node_labels:
            graph.add_node(node, label)
        for source, target in edges:
            graph.add_edge(source, target)
        return graph

    def degree_histogram(self) -> Dict[int, int]:
        """Map total degree -> number of nodes with that degree."""
        hist: Dict[int, int] = {}
        for node in self._labels:
            deg = self.degree(node)
            hist[deg] = hist.get(deg, 0) + 1
        return hist

    def to_edge_list(self) -> List[Edge]:
        """Materialize the edge set as a sorted-insertion list."""
        return list(self.edges())
