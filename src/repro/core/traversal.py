"""Traversal primitives: BFS, undirected distances, diameter.

The locality condition of strong simulation is defined over *undirected*
shortest-path distance (Section 2.1: "the distance from u to v ... is the
length of the shortest undirected path"), so the central primitive here is
an undirected breadth-first search over a directed graph, treating each
edge as bidirectional for reachability purposes while the graph itself
stays directed.
"""

from __future__ import annotations

from collections import deque
from typing import Dict, Iterator, List, Optional, Set, Tuple

from repro.core.digraph import DiGraph, Node
from repro.exceptions import GraphError, NodeNotFound


def bfs_layers_undirected(
    graph: DiGraph,
    source: Node,
    radius: Optional[int] = None,
) -> Iterator[Tuple[int, List[Node]]]:
    """Yield ``(distance, nodes)`` layers of an undirected BFS from ``source``.

    ``radius`` bounds the exploration: layers beyond it are not generated.
    Layer 0 is ``[source]`` itself.
    """
    if source not in graph:
        raise NodeNotFound(source)
    successors_raw = graph.successors_raw
    predecessors_raw = graph.predecessors_raw
    seen: Set[Node] = {source}
    seen_add = seen.add
    frontier: List[Node] = [source]
    distance = 0
    while frontier:
        yield (distance, frontier)
        if radius is not None and distance >= radius:
            return
        next_frontier: List[Node] = []
        append = next_frontier.append
        for node in frontier:
            for neighbor in successors_raw(node):
                if neighbor not in seen:
                    seen_add(neighbor)
                    append(neighbor)
            for neighbor in predecessors_raw(node):
                if neighbor not in seen:
                    seen_add(neighbor)
                    append(neighbor)
        frontier = next_frontier
        distance += 1


def undirected_distances(
    graph: DiGraph,
    source: Node,
    radius: Optional[int] = None,
) -> Dict[Node, int]:
    """Map each node within ``radius`` undirected hops of ``source`` to its distance."""
    distances: Dict[Node, int] = {}
    for distance, layer in bfs_layers_undirected(graph, source, radius):
        for node in layer:
            distances[node] = distance
    return distances


def bfs_directed(graph: DiGraph, source: Node) -> Dict[Node, int]:
    """Directed BFS distances (following edge direction only)."""
    if source not in graph:
        raise NodeNotFound(source)
    distances: Dict[Node, int] = {source: 0}
    queue = deque([source])
    while queue:
        node = queue.popleft()
        for child in graph.successors_raw(node):
            if child not in distances:
                distances[child] = distances[node] + 1
                queue.append(child)
    return distances


def reachable_from(graph: DiGraph, source: Node) -> Set[Node]:
    """Nodes reachable from ``source`` via directed paths (including itself)."""
    return set(bfs_directed(graph, source))


def eccentricity_undirected(graph: DiGraph, source: Node) -> int:
    """Greatest undirected distance from ``source`` to any reachable node.

    Raises :class:`GraphError` if some node of the graph is not reachable
    from ``source`` through undirected paths (the graph is disconnected),
    because eccentricity — and hence diameter — is defined on connected
    graphs only (Section 2.1).
    """
    distances = undirected_distances(graph, source)
    if len(distances) != graph.num_nodes:
        raise GraphError("eccentricity is undefined on a disconnected graph")
    return max(distances.values(), default=0)


def diameter_undirected(graph: DiGraph) -> int:
    """The diameter ``d_G``: the longest shortest undirected distance.

    Computed exactly by running one BFS per node, which is the textbook
    O(|V| (|V| + |E|)) method.  Pattern graphs are small, so exactness is
    affordable; never call this on a large data graph (the matching
    algorithms only ever need the diameter of the *pattern*).
    """
    if graph.num_nodes == 0:
        raise GraphError("diameter is undefined on an empty graph")
    best = 0
    for node in graph.nodes():
        best = max(best, eccentricity_undirected(graph, node))
    return best


def is_connected_undirected(graph: DiGraph) -> bool:
    """True iff every pair of nodes is joined by an undirected path."""
    if graph.num_nodes == 0:
        return True
    first = next(iter(graph.nodes()))
    return len(undirected_distances(graph, first)) == graph.num_nodes


def shortest_undirected_path(
    graph: DiGraph,
    source: Node,
    target: Node,
) -> Optional[List[Node]]:
    """One shortest undirected path from ``source`` to ``target``, or ``None``.

    Used by tests and by the ball-certificate utilities; matching itself
    only needs distances.
    """
    if source not in graph:
        raise NodeNotFound(source)
    if target not in graph:
        raise NodeNotFound(target)
    if source == target:
        return [source]
    parents: Dict[Node, Node] = {}
    seen: Set[Node] = {source}
    queue = deque([source])
    while queue:
        node = queue.popleft()
        # Iterate both directions without materializing their union —
        # the per-node set allocation dominated this loop.
        for adjacency in (graph.successors_raw(node), graph.predecessors_raw(node)):
            for neighbor in adjacency:
                if neighbor in seen:
                    continue
                seen.add(neighbor)
                parents[neighbor] = node
                if neighbor == target:
                    path = [target]
                    while path[-1] != source:
                        path.append(parents[path[-1]])
                    path.reverse()
                    return path
                queue.append(neighbor)
    return None


def has_directed_cycle(graph: DiGraph) -> bool:
    """True iff the graph contains a directed cycle (including self-loops).

    Iterative three-color DFS; used by the topology-preservation checks of
    Section 3 (Proposition 2).
    """
    WHITE, GRAY, BLACK = 0, 1, 2
    color: Dict[Node, int] = {node: WHITE for node in graph.nodes()}
    for root in graph.nodes():
        if color[root] != WHITE:
            continue
        stack: List[Tuple[Node, Iterator[Node]]] = [(root, iter(graph.successors_raw(root)))]
        color[root] = GRAY
        while stack:
            node, children = stack[-1]
            advanced = False
            for child in children:
                if color[child] == GRAY:
                    return True
                if color[child] == WHITE:
                    color[child] = GRAY
                    stack.append((child, iter(graph.successors_raw(child))))
                    advanced = True
                    break
            if not advanced:
                color[node] = BLACK
                stack.pop()
    return False


def has_undirected_cycle(graph: DiGraph) -> bool:
    """True iff the graph contains an undirected cycle.

    A directed graph, viewed as an undirected multigraph, has a cycle iff
    either (a) some pair of nodes is joined by edges in both directions
    (a 2-cycle), (b) it has a self-loop, or (c) the simple undirected graph
    on its edges has more edges than a forest allows within some connected
    component.  Used for the Theorem 3 checks.
    """
    simple_edges: Set[frozenset] = set()
    for source, target in graph.edges():
        if source == target:
            return True
        key = frozenset((source, target))
        if key in simple_edges:
            return True  # both directions present: undirected 2-cycle
        simple_edges.add(key)
    # Forest check: |E_simple| <= |V| - (#components)
    seen: Set[Node] = set()
    components = 0
    for node in graph.nodes():
        if node in seen:
            continue
        components += 1
        seen.update(undirected_distances(graph, node))
    return len(simple_edges) > graph.num_nodes - components
