"""Baseline matchers used by the paper's evaluation.

* :func:`vf2` — exact subgraph isomorphism (the paper's VF2 comparator);
* :func:`enumerate_embeddings_ullmann` — Ullmann's algorithm, kept as an
  independent exact oracle;
* :func:`tale` — TALE-style approximate matching (Tian & Patel 2008);
* :func:`mcs_match` — the maximum-common-subgraph comparator with the
  paper's 0.7 acceptance threshold.
"""

from repro.baselines.mcs import McsParameters, McsResult, greedy_mcs_size, mcs_match
from repro.baselines.tale import NeighborhoodIndex, TaleParameters, TaleResult, tale
from repro.baselines.ullmann import (
    enumerate_embeddings_ullmann,
    has_subgraph_isomorphism_ullmann,
)
from repro.baselines.vf2 import (
    VF2Budget,
    VF2Result,
    enumerate_embeddings,
    has_subgraph_isomorphism,
    vf2,
)

__all__ = [
    "McsParameters",
    "McsResult",
    "NeighborhoodIndex",
    "TaleParameters",
    "TaleResult",
    "VF2Budget",
    "VF2Result",
    "enumerate_embeddings",
    "enumerate_embeddings_ullmann",
    "greedy_mcs_size",
    "has_subgraph_isomorphism",
    "has_subgraph_isomorphism_ullmann",
    "mcs_match",
    "tale",
    "vf2",
]
