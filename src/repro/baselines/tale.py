"""TALE-style approximate graph matching (Tian & Patel, ICDE 2008).

The paper uses TALE as an approximate-matching comparator: it tolerates
node/edge mismatches, so it reports *more* matched subgraphs than exact
isomorphism and its closeness to VF2 lands between Sim's and MCS's
(Figures 7(c)–(h)).

This reimplementation follows TALE's published structure at the fidelity
required by that comparison:

1. **NH-index** — every data node is indexed by its *neighborhood unit*:
   label, degree, and the multiset of neighbor labels.
2. **Important-node probing** — the highest-degree pattern nodes (a
   configurable fraction) are matched first against NH-compatible data
   nodes; compatibility allows a fraction of missing neighbor labels
   (the ``rho`` mismatch ratio of the original paper).
3. **Match extension** — each probe seed is greedily extended to the
   remaining pattern nodes through adjacent candidates, allowing up to
   ``rho·|Vq|`` unmatched pattern nodes.

A match is reported when at least ``(1 - rho)`` of the pattern nodes are
mapped.  As in the paper's setup, candidate result subgraphs have the same
number of nodes as the pattern (unmatched pattern nodes simply have no
image).
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass
from typing import Dict, FrozenSet, List, Optional, Set, Tuple

from repro.core.digraph import DiGraph, Node
from repro.core.pattern import Pattern

Embedding = Dict[Node, Node]


@dataclass(frozen=True)
class TaleParameters:
    """Tuning knobs of the TALE matcher.

    Attributes
    ----------
    rho:
        Tolerated mismatch ratio — fraction of pattern nodes that may stay
        unmatched, and fraction of neighbor labels a data node may be
        missing while still NH-compatible.  TALE's default is 0.25; the
        paper adopted "the same setting as [32]".
    important_fraction:
        Fraction of pattern nodes treated as important (probed via the
        index); TALE's default probes the top 25% by degree.
    max_seeds_per_node:
        Cap on index hits explored per important pattern node, keeping the
        matcher polynomial on skewed graphs.
    """

    rho: float = 0.35
    important_fraction: float = 0.5
    max_seeds_per_node: int = 128


class NeighborhoodIndex:
    """The NH-index: per-label buckets of (degree, neighbor-label counter).

    Lookup returns data nodes whose unit *covers* a pattern node's unit up
    to the mismatch ratio: same label, degree at least ``(1-rho)`` of the
    pattern degree, and neighbor-label multiset missing at most
    ``rho``-fraction of the pattern's neighbor labels.
    """

    def __init__(self, data: DiGraph) -> None:
        self._data = data
        self._units: Dict[Node, Tuple[int, Counter]] = {}
        for v in data.nodes():
            neighbor_labels = Counter(
                data.label(w) for w in data.neighbors(v)
            )
            self._units[v] = (data.degree(v), neighbor_labels)

    def unit(self, node: Node) -> Tuple[int, Counter]:
        """The (degree, neighbor-label multiset) unit of a data node."""
        return self._units[node]

    def probe(
        self,
        pattern: Pattern,
        u: Node,
        rho: float,
        limit: int,
    ) -> List[Node]:
        """Data nodes NH-compatible with pattern node ``u`` (best first)."""
        pattern_degree = pattern.graph.degree(u)
        pattern_neighbor_labels = Counter(
            pattern.label(w)
            for w in (pattern.successors(u) | pattern.predecessors(u))
        )
        needed = sum(pattern_neighbor_labels.values())
        allowed_missing = int(rho * needed)
        hits: List[Tuple[int, Node]] = []
        for v in self._data.nodes_with_label(pattern.label(u)):
            degree, neighbor_labels = self._units[v]
            if degree < (1.0 - rho) * pattern_degree:
                continue
            missing = sum(
                (pattern_neighbor_labels - neighbor_labels).values()
            )
            if missing > allowed_missing:
                continue
            hits.append((missing, v))
        hits.sort(key=lambda pair: (pair[0], repr(pair[1])))
        return [v for _, v in hits[:limit]]


class TaleResult:
    """Aggregated TALE output: embeddings and distinct matched subgraphs."""

    __slots__ = ("pattern", "embeddings", "subgraph_signatures")

    def __init__(self, pattern: Pattern, embeddings: List[Embedding]) -> None:
        self.pattern = pattern
        self.embeddings = embeddings
        self.subgraph_signatures: Set[FrozenSet[Node]] = {
            frozenset(emb.values()) for emb in embeddings
        }

    @property
    def num_matched_subgraphs(self) -> int:
        """Distinct matched node sets (the counting unit of Fig. 7(i)–(n))."""
        return len(self.subgraph_signatures)

    def matched_nodes(self) -> Set[Node]:
        """Union of matched data nodes (closeness denominator)."""
        nodes: Set[Node] = set()
        for emb in self.embeddings:
            nodes.update(emb.values())
        return nodes

    def __repr__(self) -> str:
        return (
            f"TaleResult({len(self.embeddings)} embeddings, "
            f"{self.num_matched_subgraphs} subgraphs)"
        )


def tale(
    pattern: Pattern,
    data: DiGraph,
    params: Optional[TaleParameters] = None,
) -> TaleResult:
    """Run the TALE approximate matcher.

    Returns every distinct approximate embedding discovered from the
    important-node probes; an embedding maps at least ``(1-rho)·|Vq|``
    pattern nodes to distinct data nodes.
    """
    if params is None:
        params = TaleParameters()
    index = NeighborhoodIndex(data)

    nodes_by_degree = sorted(
        pattern.nodes(),
        key=lambda u: (-pattern.graph.degree(u), repr(u)),
    )
    num_important = max(1, int(len(nodes_by_degree) * params.important_fraction))
    important = nodes_by_degree[:num_important]
    min_mapped = max(1, int(round((1.0 - params.rho) * pattern.num_nodes)))

    embeddings: List[Embedding] = []
    seen: Set[Tuple[Tuple[Node, Node], ...]] = set()

    for u in important:
        for seed in index.probe(pattern, u, params.rho, params.max_seeds_per_node):
            embedding = _extend(pattern, data, u, seed)
            if embedding is None or len(embedding) < min_mapped:
                continue
            key = tuple(sorted(embedding.items(), key=repr))
            if key not in seen:
                seen.add(key)
                embeddings.append(embedding)
    return TaleResult(pattern, embeddings)


def _extend(
    pattern: Pattern,
    data: DiGraph,
    seed_u: Node,
    seed_v: Node,
) -> Optional[Embedding]:
    """Greedy match extension from one (pattern, data) seed pair.

    Pattern nodes are visited in BFS order from the seed; each is mapped
    to the adjacent, label-compatible, unused data node with the largest
    adjacency agreement with already-mapped neighbors.  Unmappable nodes
    are skipped (counted against the mismatch budget by the caller).
    """
    mapping: Embedding = {seed_u: seed_v}
    used: Set[Node] = {seed_v}
    frontier = [seed_u]
    visited = {seed_u}
    while frontier:
        next_frontier: List[Node] = []
        for u in frontier:
            for u2 in sorted(
                (pattern.successors(u) | pattern.predecessors(u)) - visited,
                key=repr,
            ):
                visited.add(u2)
                next_frontier.append(u2)
                if u not in mapping:
                    continue
                candidate = _best_candidate(pattern, data, mapping, used, u2)
                if candidate is not None:
                    mapping[u2] = candidate
                    used.add(candidate)
        frontier = next_frontier
    return mapping


def _best_candidate(
    pattern: Pattern,
    data: DiGraph,
    mapping: Embedding,
    used: Set[Node],
    u: Node,
) -> Optional[Node]:
    """The unused data node best supporting pattern node ``u``."""
    pool: Set[Node] = set()
    for u2 in pattern.predecessors(u):
        if u2 in mapping:
            pool |= set(data.successors_raw(mapping[u2]))
    for u2 in pattern.successors(u):
        if u2 in mapping:
            pool |= set(data.predecessors_raw(mapping[u2]))
    label = pattern.label(u)
    best: Optional[Node] = None
    best_score = -1
    for v in pool:
        if v in used or data.label(v) != label:
            continue
        score = 0
        for u2 in pattern.successors(u):
            if u2 in mapping and data.has_edge(v, mapping[u2]):
                score += 1
        for u2 in pattern.predecessors(u):
            if u2 in mapping and data.has_edge(mapping[u2], v):
                score += 1
        if score > best_score or (score == best_score and repr(v) < repr(best)):
            best = v
            best_score = score
    return best
