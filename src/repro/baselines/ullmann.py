"""Ullmann's subgraph-isomorphism algorithm (Ullmann 1976).

The paper cites Ullmann's algorithm [34] as the classical np-complete
formulation of graph pattern matching.  This implementation follows the
original matrix formulation — a candidate matrix refined by the
*neighbourhood consistency* rule, then depth-first assignment — expressed
over Python sets rather than bit matrices.

It enumerates the same embeddings as :mod:`repro.baselines.vf2` (subgraph
monomorphisms with label preservation); the test suite cross-checks the
two enumerators against each other and against networkx.  VF2 is the one
used by the benchmark harness (as in the paper); Ullmann exists as an
independent oracle and for the historical record.
"""

from __future__ import annotations

from typing import Dict, Iterator, List, Optional, Set

from repro.core.digraph import DiGraph, Node
from repro.core.pattern import Pattern

Embedding = Dict[Node, Node]


def _initial_candidates(pattern: Pattern, data: DiGraph) -> Dict[Node, Set[Node]]:
    """Label- and degree-compatible candidate sets for each pattern node."""
    candidates: Dict[Node, Set[Node]] = {}
    for u in pattern.nodes():
        out_needed = pattern.graph.out_degree(u)
        in_needed = pattern.graph.in_degree(u)
        candidates[u] = {
            v
            for v in data.nodes_with_label(pattern.label(u))
            if data.out_degree(v) >= out_needed
            and data.in_degree(v) >= in_needed
        }
    return candidates


def _refine(
    pattern: Pattern,
    data: DiGraph,
    candidates: Dict[Node, Set[Node]],
) -> bool:
    """Ullmann's refinement: prune candidates lacking adjacent support.

    A candidate ``v`` for ``u`` survives only if, for every pattern edge
    ``(u, u2)``, some successor of ``v`` is a candidate for ``u2`` (and
    symmetrically for incoming edges).  Iterates to fixpoint.  Returns
    False when some candidate set empties (no embedding exists).
    """
    changed = True
    while changed:
        changed = False
        for u in pattern.nodes():
            stale: List[Node] = []
            for v in candidates[u]:
                ok = True
                for u2 in pattern.successors(u):
                    if not candidates[u2] & data.successors_raw(v):
                        ok = False
                        break
                if ok:
                    for u2 in pattern.predecessors(u):
                        if not candidates[u2] & data.predecessors_raw(v):
                            ok = False
                            break
                if not ok:
                    stale.append(v)
            if stale:
                candidates[u].difference_update(stale)
                changed = True
                if not candidates[u]:
                    return False
    return True


def enumerate_embeddings_ullmann(
    pattern: Pattern,
    data: DiGraph,
    max_matches: Optional[int] = None,
) -> Iterator[Embedding]:
    """Yield every subgraph-monomorphism embedding, Ullmann-style.

    The assignment order picks the pattern node with the fewest remaining
    candidates first (fail-first), and the refinement re-runs after each
    tentative assignment, as in the original algorithm.
    """
    candidates = _initial_candidates(pattern, data)
    if not _refine(pattern, data, candidates):
        return
    order = sorted(pattern.nodes(), key=lambda u: (len(candidates[u]), repr(u)))
    produced = 0

    def assign(depth: int, current: Dict[Node, Set[Node]]) -> Iterator[Embedding]:
        nonlocal produced
        if max_matches is not None and produced >= max_matches:
            return
        if depth == len(order):
            produced += 1
            yield {u: next(iter(vs)) for u, vs in current.items()}
            return
        u = order[depth]
        used = {
            next(iter(current[w]))
            for w in order[:depth]
        }
        for v in sorted(current[u], key=repr):
            if v in used:
                continue
            trial = {w: set(vs) for w, vs in current.items()}
            trial[u] = {v}
            if _refine(pattern, data, trial):
                yield from assign(depth + 1, trial)
            if max_matches is not None and produced >= max_matches:
                return

    yield from assign(0, candidates)


def has_subgraph_isomorphism_ullmann(pattern: Pattern, data: DiGraph) -> bool:
    """Decide subgraph isomorphism via Ullmann's algorithm."""
    for _ in enumerate_embeddings_ullmann(pattern, data, max_matches=1):
        return True
    return False
