"""Maximum-common-subgraph approximate matching (the paper's MCS baseline).

Section 5: "For MCS, a subgraph Gs(Vs, Es) of G matches pattern graph Q if
|mcs(Q, Gs)| / max(|Vq|, |Vs|) >= 0.7", with the maximum common subgraph
approximated via Kann's polynomial approximation (STACS 1992).  Because
comparing Q against all 2^|V| subgraphs is infeasible, the paper compares
against subgraphs of G having the same number of nodes as Q; we realize
that as one BFS-grown connected |Vq|-node subgraph per data node (deduped).

The MCS size itself is approximated greedily: seed with the
label-compatible pair of highest degree product, then repeatedly add the
compatible pair that preserves adjacency agreement with the partial map —
a standard polynomial-time greedy relaxation in the spirit of Kann's
approximation (exact MCS is itself np-hard).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, FrozenSet, List, Optional, Set, Tuple

from repro.core.digraph import DiGraph, Node
from repro.core.pattern import Pattern


@dataclass(frozen=True)
class McsParameters:
    """Tuning knobs of the MCS comparator.

    Attributes
    ----------
    threshold:
        Acceptance ratio ``|mcs| / max(|Vq|, |Vs|)``; the paper uses 0.7.
    max_candidates:
        Cap on candidate subgraphs examined (one per distinct BFS-grown
        node set), keeping large sweeps bounded.
    """

    threshold: float = 0.7
    max_candidates: Optional[int] = None


class McsResult:
    """Accepted candidate subgraphs of one MCS run."""

    __slots__ = ("pattern", "accepted")

    def __init__(
        self,
        pattern: Pattern,
        accepted: List[Tuple[FrozenSet[Node], int]],
    ) -> None:
        self.pattern = pattern
        self.accepted = accepted

    @property
    def num_matched_subgraphs(self) -> int:
        """Number of accepted candidate subgraphs."""
        return len(self.accepted)

    def matched_nodes(self) -> Set[Node]:
        """Union of nodes over accepted subgraphs (closeness denominator)."""
        nodes: Set[Node] = set()
        for node_set, _ in self.accepted:
            nodes.update(node_set)
        return nodes

    def __repr__(self) -> str:
        return f"McsResult({self.num_matched_subgraphs} accepted subgraphs)"


def grow_candidate_subgraph(
    data: DiGraph,
    seed: Node,
    size: int,
) -> FrozenSet[Node]:
    """A connected node set of up to ``size`` nodes grown by BFS from ``seed``.

    Deterministic: neighbors are visited in sorted repr order, so repeated
    runs (and the deduplication of overlapping seeds) are stable.
    """
    selected: Set[Node] = {seed}
    frontier = [seed]
    while frontier and len(selected) < size:
        node = frontier.pop(0)
        for neighbor in sorted(data.neighbors(node), key=repr):
            if neighbor not in selected:
                selected.add(neighbor)
                frontier.append(neighbor)
                if len(selected) >= size:
                    break
    return frozenset(selected)


def greedy_mcs_size(pattern: Pattern, data: DiGraph, nodes: FrozenSet[Node]) -> int:
    """Greedy lower bound on ``|mcs(Q, Gs)|`` for ``Gs = data[nodes]``.

    Builds a partial injective map pattern-node -> candidate-node, adding
    at each step the label-compatible pair whose adjacency to the partial
    map agrees best (number of pattern edges to mapped nodes that are
    mirrored in the candidate subgraph).
    """
    candidate_nodes = list(nodes)
    mapping: Dict[Node, Node] = {}
    used: Set[Node] = set()

    def agreement(u: Node, v: Node) -> int:
        score = 0
        for u2, w in mapping.items():
            if pattern.graph.has_edge(u, u2) and _edge_within(data, nodes, v, w):
                score += 1
            if pattern.graph.has_edge(u2, u) and _edge_within(data, nodes, w, v):
                score += 1
        return score

    unmapped = set(pattern.nodes())
    while unmapped:
        best: Optional[Tuple[Node, Node]] = None
        best_key: Tuple[int, int] = (-1, -1)
        for u in unmapped:
            label = pattern.label(u)
            for v in candidate_nodes:
                if v in used or data.label(v) != label:
                    continue
                key = (agreement(u, v), pattern.graph.degree(u))
                if key > best_key:
                    best_key = key
                    best = (u, v)
        if best is None:
            break
        u, v = best
        # Grow a *connected* common subgraph: once the map is non-empty,
        # a pair contributes to |mcs| only if it shares at least one
        # agreeing edge with the structure mapped so far.  Without this,
        # isolated label coincidences inflate |mcs| and the 0.7 threshold
        # accepts nearly everything.
        if mapping and best_key[0] == 0:
            break
        mapping[u] = v
        used.add(v)
        unmapped.discard(u)

    # Count the nodes participating in at least the common structure:
    # every mapped pair contributes one common node.
    return len(mapping)


def _edge_within(
    data: DiGraph,
    nodes: FrozenSet[Node],
    source: Node,
    target: Node,
) -> bool:
    """True iff the data edge exists and stays inside the candidate set."""
    return source in nodes and target in nodes and data.has_edge(source, target)


def mcs_match(
    pattern: Pattern,
    data: DiGraph,
    params: Optional[McsParameters] = None,
    seeds: Optional[List[Node]] = None,
) -> McsResult:
    """Run the MCS comparator across candidate subgraphs of ``data``.

    ``seeds`` restricts the candidate growth to specific data nodes
    (defaults to nodes whose label occurs in the pattern, a sound and
    large reduction — a candidate subgraph containing no pattern label
    can never reach the 0.7 threshold).
    """
    if params is None:
        params = McsParameters()
    if seeds is None:
        seeds = sorted(
            (
                v
                for label in pattern.label_set()
                for v in data.nodes_with_label(label)
            ),
            key=repr,
        )
    size = pattern.num_nodes
    seen: Set[FrozenSet[Node]] = set()
    accepted: List[Tuple[FrozenSet[Node], int]] = []
    examined = 0
    for seed in seeds:
        if params.max_candidates is not None and examined >= params.max_candidates:
            break
        node_set = grow_candidate_subgraph(data, seed, size)
        if node_set in seen:
            continue
        seen.add(node_set)
        examined += 1
        mcs_size = greedy_mcs_size(pattern, data, node_set)
        denominator = max(pattern.num_nodes, len(node_set))
        if denominator and mcs_size / denominator >= params.threshold:
            accepted.append((node_set, mcs_size))
    return McsResult(pattern, accepted)
