"""VF2-style subgraph isomorphism enumeration (Cordella et al. 2004).

The paper's evaluation uses the VF2 implementation from igraph; this is a
from-scratch, pure-Python reimplementation of the same search strategy:
incremental state-space search with feasibility pruning on labels,
adjacency consistency, and look-ahead degree counts.

Semantics (Section 1 of the paper): a subgraph ``Gs`` of ``G`` matches
``Q`` iff there is a bijection ``f`` from ``Vq`` to the nodes of ``Gs``
with label preservation and ``(u, u′) ∈ Eq ⟺ (f(u), f(u′)) ∈ Gs``.
Choosing ``Gs`` as the image of ``Q`` under ``f`` (nodes ``f(Vq)`` and
edges ``f(Eq)``), the condition is exactly *subgraph monomorphism* on
``G``: every pattern edge must map to a data edge.  Each embedding found
is reported; the distinct *matched subgraphs* (node set + mapped edge set)
are what the paper counts in Figures 7(i)–(n).

The enumerator supports a result cap and a node-expansion budget so the
benchmark harness can keep the (worst-case exponential) search bounded on
larger inputs, mirroring how the paper could only run VF2 on its smallest
datasets.
"""

from __future__ import annotations

from typing import Dict, FrozenSet, Iterator, List, Optional, Set, Tuple

from repro.core.digraph import DiGraph, Edge, Node
from repro.core.pattern import Pattern

Embedding = Dict[Node, Node]


class VF2Budget:
    """Search budget shared across a single enumeration.

    ``max_states`` caps the number of search-tree nodes expanded;
    exceeding it stops the search and sets :attr:`exhausted`, so callers
    can distinguish "no more matches" from "gave up".
    """

    __slots__ = ("max_states", "states", "exhausted")

    def __init__(self, max_states: Optional[int] = None) -> None:
        self.max_states = max_states
        self.states = 0
        self.exhausted = False

    def charge(self) -> bool:
        """Account one expanded state; False when the budget ran out."""
        self.states += 1
        if self.max_states is not None and self.states > self.max_states:
            self.exhausted = True
            return False
        return True


def _pattern_order(pattern: Pattern) -> List[Node]:
    """A connectivity-aware matching order for the pattern nodes.

    Start from the highest-degree node and grow a BFS front, so every
    subsequent node (in a connected pattern) is adjacent to an
    already-matched node — the classic VF2 ordering that keeps the
    feasibility checks effective.
    """
    start = max(pattern.nodes(), key=lambda u: (
        pattern.graph.degree(u), repr(u)))
    order = [start]
    placed = {start}
    frontier = [start]
    while frontier:
        next_frontier: List[Node] = []
        for u in frontier:
            neighbors = sorted(
                (pattern.successors(u) | pattern.predecessors(u)) - placed,
                key=lambda x: (-pattern.graph.degree(x), repr(x)),
            )
            for v in neighbors:
                if v not in placed:
                    placed.add(v)
                    order.append(v)
                    next_frontier.append(v)
        frontier = next_frontier
    # Patterns are connected, so this covers every node; be defensive anyway.
    for u in pattern.nodes():
        if u not in placed:
            order.append(u)
            placed.add(u)
    return order


def enumerate_embeddings(
    pattern: Pattern,
    data: DiGraph,
    max_matches: Optional[int] = None,
    budget: Optional[VF2Budget] = None,
) -> Iterator[Embedding]:
    """Yield subgraph-isomorphism embeddings of ``pattern`` into ``data``.

    Embeddings are dictionaries mapping each pattern node to a distinct
    data node such that labels agree and every pattern edge maps to a data
    edge.  The iterator stops early when ``max_matches`` embeddings have
    been produced or the state ``budget`` is exhausted.
    """
    if budget is None:
        budget = VF2Budget()
    order = _pattern_order(pattern)
    mapping: Embedding = {}
    used: Set[Node] = set()
    produced = 0

    def candidates(u: Node) -> Iterator[Node]:
        """Data nodes worth trying for pattern node ``u`` at this depth."""
        # Prefer extending from an already-mapped neighbor: the candidate
        # must be adjacent to it in the right direction.
        for u2 in pattern.predecessors(u):
            if u2 in mapping:
                base = data.successors_raw(mapping[u2])
                return iter(
                    v for v in base
                    if v not in used and data.label(v) == pattern.label(u)
                )
        for u2 in pattern.successors(u):
            if u2 in mapping:
                base = data.predecessors_raw(mapping[u2])
                return iter(
                    v for v in base
                    if v not in used and data.label(v) == pattern.label(u)
                )
        return iter(
            v for v in data.nodes_with_label(pattern.label(u))
            if v not in used
        )

    def feasible(u: Node, v: Node) -> bool:
        """Label, degree look-ahead, and full adjacency consistency."""
        if data.out_degree(v) < pattern.graph.out_degree(u):
            return False
        if data.in_degree(v) < pattern.graph.in_degree(u):
            return False
        for u2 in pattern.successors(u):
            if u2 in mapping and not data.has_edge(v, mapping[u2]):
                return False
        for u2 in pattern.predecessors(u):
            if u2 in mapping and not data.has_edge(mapping[u2], v):
                return False
        return True

    def search(depth: int) -> Iterator[Embedding]:
        nonlocal produced
        if budget.exhausted:
            return
        if depth == len(order):
            produced += 1
            yield dict(mapping)
            return
        u = order[depth]
        for v in candidates(u):
            if max_matches is not None and produced >= max_matches:
                return
            if not budget.charge():
                return
            if not feasible(u, v):
                continue
            mapping[u] = v
            used.add(v)
            yield from search(depth + 1)
            del mapping[u]
            used.discard(v)

    yield from search(0)


def embedding_subgraph_signature(
    pattern: Pattern,
    embedding: Embedding,
) -> Tuple[FrozenSet[Node], FrozenSet[Edge]]:
    """The matched-subgraph identity of one embedding: ``(f(Vq), f(Eq))``."""
    nodes = frozenset(embedding.values())
    edges = frozenset(
        (embedding[u], embedding[u2]) for u, u2 in pattern.edges()
    )
    return (nodes, edges)


class VF2Result:
    """Aggregated outcome of a VF2 enumeration run.

    Attributes
    ----------
    embeddings:
        The embeddings found (possibly capped).
    subgraph_signatures:
        Distinct matched subgraphs — the quantity of Figures 7(i)–(n).
    exhausted:
        True when the search stopped on budget rather than completion.
    """

    __slots__ = ("pattern", "embeddings", "subgraph_signatures", "exhausted")

    def __init__(
        self,
        pattern: Pattern,
        embeddings: List[Embedding],
        exhausted: bool,
    ) -> None:
        self.pattern = pattern
        self.embeddings = embeddings
        self.subgraph_signatures = {
            embedding_subgraph_signature(pattern, emb) for emb in embeddings
        }
        self.exhausted = exhausted

    @property
    def num_matched_subgraphs(self) -> int:
        """Number of distinct matched subgraphs."""
        return len(self.subgraph_signatures)

    def matched_nodes(self) -> Set[Node]:
        """Union of data nodes over all embeddings (closeness numerator)."""
        nodes: Set[Node] = set()
        for emb in self.embeddings:
            nodes.update(emb.values())
        return nodes

    def __repr__(self) -> str:
        flag = ", exhausted" if self.exhausted else ""
        return (
            f"VF2Result({len(self.embeddings)} embeddings, "
            f"{self.num_matched_subgraphs} subgraphs{flag})"
        )


def vf2(
    pattern: Pattern,
    data: DiGraph,
    max_matches: Optional[int] = None,
    max_states: Optional[int] = None,
) -> VF2Result:
    """Run the VF2 enumeration and aggregate the result."""
    budget = VF2Budget(max_states)
    embeddings = list(
        enumerate_embeddings(pattern, data, max_matches=max_matches, budget=budget)
    )
    return VF2Result(pattern, embeddings, budget.exhausted)


def has_subgraph_isomorphism(
    pattern: Pattern,
    data: DiGraph,
    max_states: Optional[int] = None,
) -> bool:
    """Decide ``Q ⋞ G`` (at least one embedding exists)."""
    budget = VF2Budget(max_states)
    for _ in enumerate_embeddings(pattern, data, max_matches=1, budget=budget):
        return True
    return False
