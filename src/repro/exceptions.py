"""Exception hierarchy for the :mod:`repro` library.

Every error raised by the library derives from :class:`ReproError`, so
callers can catch a single base class.  The subclasses mirror the major
subsystems: graph construction, pattern validation, matching, and the
distributed runtime.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the repro library."""


class GraphError(ReproError):
    """Raised for invalid graph construction or mutation requests."""


class NodeNotFound(GraphError):
    """Raised when an operation references a node that is not in the graph."""

    def __init__(self, node: object) -> None:
        super().__init__(f"node {node!r} is not in the graph")
        self.node = node


class EdgeNotFound(GraphError):
    """Raised when an operation references an edge that is not in the graph."""

    def __init__(self, source: object, target: object) -> None:
        super().__init__(f"edge ({source!r}, {target!r}) is not in the graph")
        self.source = source
        self.target = target


class DuplicateNode(GraphError):
    """Raised when adding a node whose identifier already exists."""

    def __init__(self, node: object) -> None:
        super().__init__(f"node {node!r} already exists")
        self.node = node


class PatternError(ReproError):
    """Raised when a pattern graph violates the paper's assumptions.

    The paper assumes, without loss of generality, that pattern graphs are
    connected (Section 2.1).  Disconnected or empty patterns raise this
    error at construction time so matching code never needs to re-check.
    """


class MatchingError(ReproError):
    """Raised for invalid matching requests (e.g. malformed relations)."""


class DistributedError(ReproError):
    """Raised by the distributed runtime (bad partitions, routing errors)."""


class WireFormatError(DistributedError):
    """Raised when a runtime wire payload fails validation.

    Every payload crossing a process boundary carries a magic marker, a
    format version and a payload kind (:mod:`repro.distributed.runtime.wire`);
    a mismatch — truncated data, a foreign object, a frame from an
    incompatible runtime version — fails loud here instead of being
    half-decoded into a worker.
    """


class DatasetError(ReproError):
    """Raised by dataset generators for invalid parameter combinations."""
