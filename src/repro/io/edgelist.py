"""Edge-list serialization (the SNAP-style format of the paper's datasets).

Format: one ``source<TAB>target`` pair per line for edges, preceded by a
label section ``#L node<TAB>label`` (SNAP files carry labels out of band;
we inline them under a comment prefix so one file round-trips a labeled
graph).  Plain ``#`` comment lines are ignored, so genuine SNAP edge
files load too (all labels default to ``default_label``).
"""

from __future__ import annotations

from pathlib import Path
from typing import IO, Union

from repro.core.digraph import DiGraph
from repro.exceptions import GraphError

PathLike = Union[str, Path]

_LABEL_PREFIX = "#L"


def write_edgelist(graph: DiGraph, path: PathLike) -> None:
    """Write a labeled graph to ``path`` in the edge-list format."""
    with open(path, "w", encoding="utf-8") as handle:
        _write_edgelist(graph, handle)


def _write_edgelist(graph: DiGraph, handle: IO[str]) -> None:
    handle.write("# repro labeled edge list\n")
    for node in graph.nodes():
        handle.write(f"{_LABEL_PREFIX} {node}\t{graph.label(node)}\n")
    for source, target in graph.edges():
        handle.write(f"{source}\t{target}\n")


def read_edgelist(path: PathLike, default_label: str = "node") -> DiGraph:
    """Read a labeled (or plain SNAP) edge list from ``path``.

    Node identifiers are read back as strings; numeric ids are not
    coerced, keeping the reader format-agnostic.  Unlabeled endpoints get
    ``default_label``.
    """
    graph = DiGraph()
    with open(path, "r", encoding="utf-8") as handle:
        for line_number, raw in enumerate(handle, start=1):
            line = raw.rstrip("\n")
            if not line.strip():
                continue
            if line.startswith(_LABEL_PREFIX + " "):
                body = line[len(_LABEL_PREFIX) + 1:]
                parts = body.split("\t")
                if len(parts) != 2:
                    raise GraphError(
                        f"{path}:{line_number}: malformed label line"
                    )
                node, label = parts
                if node in graph:
                    graph.relabel_node(node, label)
                else:
                    graph.add_node(node, label)
                continue
            if line.startswith("#"):
                continue
            parts = line.split("\t") if "\t" in line else line.split()
            if len(parts) != 2:
                raise GraphError(
                    f"{path}:{line_number}: malformed edge line {line!r}"
                )
            source, target = parts
            for endpoint in (source, target):
                if endpoint not in graph:
                    graph.add_node(endpoint, default_label)
            graph.add_edge(source, target)
    return graph
