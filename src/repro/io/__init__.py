"""Graph and result (de)serialization: edge lists and JSON."""

from repro.io.edgelist import read_edgelist, write_edgelist
from repro.io.jsonio import (
    graph_from_dict,
    graph_to_dict,
    match_result_to_dict,
    pattern_from_dict,
    pattern_to_dict,
    read_graph_json,
    write_graph_json,
    write_match_result_json,
)

__all__ = [
    "graph_from_dict",
    "graph_to_dict",
    "match_result_to_dict",
    "pattern_from_dict",
    "pattern_to_dict",
    "read_edgelist",
    "read_graph_json",
    "write_edgelist",
    "write_graph_json",
    "write_match_result_json",
]
