"""JSON (de)serialization for graphs, patterns and match results.

A stable interchange format for examples and downstream tooling:

.. code-block:: json

    {
      "nodes": [{"id": "HR1", "label": "HR"}, ...],
      "edges": [["HR1", "Bio1"], ...]
    }

Node ids and labels must be JSON-representable (strings/numbers); the
library's hashable-anything node model is wider than JSON, so
:func:`graph_to_json` validates rather than silently coercing.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Any, Dict, Union

from repro.core.digraph import DiGraph
from repro.core.pattern import Pattern
from repro.core.result import MatchResult
from repro.exceptions import GraphError

PathLike = Union[str, Path]

_JSONABLE = (str, int, float, bool)


def _check_jsonable(value: Any, role: str) -> None:
    if not isinstance(value, _JSONABLE):
        raise GraphError(
            f"{role} {value!r} is not JSON-representable; "
            "use string or numeric identifiers for serialization"
        )


def graph_to_dict(graph: DiGraph) -> Dict[str, Any]:
    """The JSON-ready dictionary form of a graph."""
    for node in graph.nodes():
        _check_jsonable(node, "node id")
        _check_jsonable(graph.label(node), "label")
    return {
        "nodes": [
            {"id": node, "label": graph.label(node)} for node in graph.nodes()
        ],
        "edges": [[source, target] for source, target in graph.edges()],
    }


def graph_from_dict(payload: Dict[str, Any]) -> DiGraph:
    """Rebuild a graph from its dictionary form."""
    graph = DiGraph()
    for entry in payload.get("nodes", []):
        graph.add_node(entry["id"], entry["label"])
    for source, target in payload.get("edges", []):
        graph.add_edge(source, target)
    return graph


def write_graph_json(graph: DiGraph, path: PathLike) -> None:
    """Serialize a graph to a JSON file."""
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(graph_to_dict(graph), handle, indent=2, sort_keys=True)


def read_graph_json(path: PathLike) -> DiGraph:
    """Deserialize a graph from a JSON file."""
    with open(path, "r", encoding="utf-8") as handle:
        return graph_from_dict(json.load(handle))


def pattern_to_dict(pattern: Pattern) -> Dict[str, Any]:
    """The dictionary form of a pattern (its graph plus the diameter)."""
    payload = graph_to_dict(pattern.graph)
    payload["diameter"] = pattern.diameter
    return payload


def pattern_from_dict(payload: Dict[str, Any]) -> Pattern:
    """Rebuild a pattern; the diameter is re-derived (and cross-checked)."""
    pattern = Pattern(graph_from_dict(payload))
    stored = payload.get("diameter")
    if stored is not None and stored != pattern.diameter:
        raise GraphError(
            f"stored diameter {stored} disagrees with computed "
            f"{pattern.diameter}"
        )
    return pattern


def match_result_to_dict(result: MatchResult) -> Dict[str, Any]:
    """Serialize a match result: one entry per perfect subgraph."""
    return {
        "num_subgraphs": len(result),
        "subgraphs": [
            {
                "center": subgraph.center,
                "graph": graph_to_dict(subgraph.graph),
                "relation": {
                    str(u): sorted(subgraph.relation.matches_of(u), key=repr)
                    for u in subgraph.relation.pattern_nodes()
                },
            }
            for subgraph in result
        ],
    }


def write_match_result_json(result: MatchResult, path: PathLike) -> None:
    """Serialize a match result to a JSON file."""
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(match_result_to_dict(result), handle, indent=2, sort_keys=True)
