"""Scenario case reports, the matrix payload, and the dashboard diff.

:class:`ScenarioCaseReport` is the per-(engine, backend) observation a
:class:`~repro.scenarios.runner.ScenarioRunner` produces: the digest
(the correctness gate), SLO rows (p50/p99/mean per algorithm from the
case's own metrics-registry window), throughput, cache behavior, and —
for distributed cases — exact bus traffic.  :func:`matrix_payload`
folds case reports into the shared result envelope's payload;
:func:`diff_payloads` is the dashboard: it compares two payloads case
by case and returns findings for digest mismatches and p99 regressions
past a threshold, so ``repro scenarios diff`` can gate a change
mechanically against the committed baseline.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Tuple

__all__ = [
    "SCENARIO_SCHEMA_VERSION",
    "ScenarioCaseReport",
    "diff_payloads",
    "matrix_payload",
    "render_cases",
]

#: Version of the scenario payload layout inside the shared envelope.
SCENARIO_SCHEMA_VERSION = 1


@dataclass
class ScenarioCaseReport:
    """The observation of one scenario case (one engine/backend cell)."""

    scenario: str
    scale: str
    engine: str
    backend: Optional[str]
    digest: str
    expected_digest: Optional[str]
    queries: int
    seconds: float
    throughput_qps: float
    #: ``{algorithm: {"count", "mean_ms", "p50_ms", "p99_ms"}}`` from
    #: this case's own registry window (see the runner).
    latency: Dict[str, Dict[str, float]] = field(default_factory=dict)
    cache: Dict[str, float] = field(default_factory=dict)
    executed: Dict[str, int] = field(default_factory=dict)
    #: Distributed cases: exact per-query bus accounting.
    bus: Optional[Dict[str, Any]] = None
    #: Distributed cases: does the ``bus.log`` span attribute agree
    #: with the reports' ``query_log``?  ``None`` off the distributed
    #: path.
    bus_log_matches_trace: Optional[bool] = None
    skipped: Optional[str] = None

    @property
    def case_key(self) -> str:
        backend = self.backend or "-"
        return f"{self.scenario}/{self.scale}/{self.engine}/{backend}"

    @property
    def digest_ok(self) -> Optional[bool]:
        """``None`` when no digest is pinned for this (scenario, scale)."""
        if self.skipped is not None or self.expected_digest is None:
            return None
        return self.digest == self.expected_digest

    def to_payload(self) -> Dict[str, Any]:
        payload: Dict[str, Any] = {
            "scenario": self.scenario,
            "scale": self.scale,
            "engine": self.engine,
            "backend": self.backend,
            "digest": self.digest,
            "expected_digest": self.expected_digest,
            "digest_ok": self.digest_ok,
            "queries": self.queries,
            "seconds": self.seconds,
            "throughput_qps": self.throughput_qps,
            "latency": self.latency,
            "cache": self.cache,
            "executed": self.executed,
        }
        if self.bus is not None:
            payload["bus"] = self.bus
            payload["bus_log_matches_trace"] = self.bus_log_matches_trace
        if self.skipped is not None:
            payload["skipped"] = self.skipped
        return payload

    @classmethod
    def from_payload(cls, payload: Dict[str, Any]) -> "ScenarioCaseReport":
        return cls(
            scenario=payload["scenario"],
            scale=payload["scale"],
            engine=payload["engine"],
            backend=payload.get("backend"),
            digest=payload.get("digest", ""),
            expected_digest=payload.get("expected_digest"),
            queries=payload.get("queries", 0),
            seconds=payload.get("seconds", 0.0),
            throughput_qps=payload.get("throughput_qps", 0.0),
            latency=payload.get("latency", {}),
            cache=payload.get("cache", {}),
            executed=payload.get("executed", {}),
            bus=payload.get("bus"),
            bus_log_matches_trace=payload.get("bus_log_matches_trace"),
            skipped=payload.get("skipped"),
        )


def matrix_payload(
    cases: List[ScenarioCaseReport], scale: str
) -> Dict[str, Any]:
    """The payload ``repro scenarios run`` hands to ``write_result``."""
    ran = [case for case in cases if case.skipped is None]
    gated = [case for case in ran if case.digest_ok is not None]
    return {
        "benchmark": "scenarios",
        "scenario_schema_version": SCENARIO_SCHEMA_VERSION,
        "scale": scale,
        "cases": [case.to_payload() for case in cases],
        "ok": all(case.digest_ok for case in gated),
        "ran": len(ran),
        "skipped": len(cases) - len(ran),
    }


def _case_index(
    payload: Dict[str, Any]
) -> Dict[str, ScenarioCaseReport]:
    index: Dict[str, ScenarioCaseReport] = {}
    for entry in payload.get("cases", []):
        case = ScenarioCaseReport.from_payload(entry)
        if case.skipped is None:
            index[case.case_key] = case
    return index


def diff_payloads(
    before: Dict[str, Any],
    after: Dict[str, Any],
    threshold: float = 1.0,
    min_delta_ms: float = 1.0,
) -> List[Dict[str, Any]]:
    """Findings when ``after`` regresses against ``before``.

    * ``kind="digest"`` — a case's observation digest changed: the
      workload now produces different results.  Always a finding.
    * ``kind="slo"`` — a per-algorithm p99 grew by more than
      ``threshold`` (fractional) *and* more than ``min_delta_ms``
      absolute.  The absolute floor keeps micro-latency noise (a p99
      moving 30µs → 45µs) from tripping a relative-only gate.  The
      default threshold of 1.0 (p99 more than doubled) is deliberately
      one full log-2 histogram bucket: an interpolated p99 that
      jitters across one bucket boundary moves by exactly 2×, so only
      a shift past *two* boundaries — a real regression, not bucket
      noise — is flagged.  ``queue_wait`` rows are never compared:
      queue wait measures pool scheduling pressure, not query SLO.
    * ``kind="missing"`` — a case present before is gone (or now
      skipped): the matrix silently shrank.

    Cases only present in ``after`` are new coverage, not findings, and
    baseline cases at a scale the new report did not run at all (a
    smoke-only run diffed against a smoke+S baseline) are out of scope
    rather than missing.
    """
    findings: List[Dict[str, Any]] = []
    before_cases = _case_index(before)
    after_cases = _case_index(after)
    after_scales = {case.scale for case in after_cases.values()}
    for key in sorted(before_cases):
        old = before_cases[key]
        new = after_cases.get(key)
        if new is None:
            if old.scale not in after_scales:
                continue
            findings.append({
                "kind": "missing",
                "case": key,
                "detail": "case present in the baseline is absent/skipped "
                          "in the new report",
            })
            continue
        if old.digest and new.digest and old.digest != new.digest:
            findings.append({
                "kind": "digest",
                "case": key,
                "detail": f"observation digest changed "
                          f"{old.digest} -> {new.digest}",
            })
        for algorithm, row in sorted(new.latency.items()):
            if algorithm == "queue_wait":
                continue
            old_row = old.latency.get(algorithm)
            if not old_row:
                continue
            old_p99 = float(old_row.get("p99_ms", 0.0))
            new_p99 = float(row.get("p99_ms", 0.0))
            delta = new_p99 - old_p99
            if delta <= min_delta_ms:
                continue
            if old_p99 > 0 and new_p99 <= old_p99 * (1.0 + threshold):
                continue
            findings.append({
                "kind": "slo",
                "case": key,
                "algorithm": algorithm,
                "detail": f"p99 {algorithm}: {old_p99:.3f}ms -> "
                          f"{new_p99:.3f}ms "
                          f"(+{delta:.3f}ms, threshold {threshold:.0%} "
                          f"/ {min_delta_ms}ms)",
            })
    return findings


def render_cases(cases: List[ScenarioCaseReport]) -> str:
    """The per-case dashboard table ``repro scenarios run`` prints."""
    lines = [
        f"{'case':<44} {'digest':<18} {'gate':<6} {'q/s':>8} "
        f"{'p99 ms':>9}"
    ]
    for case in cases:
        if case.skipped is not None:
            lines.append(
                f"{case.case_key:<44} {'-':<18} {'skip':<6}"
                f" {'':>8} {'':>9}  ({case.skipped})"
            )
            continue
        gate = {True: "ok", False: "FAIL", None: "new"}[case.digest_ok]
        worst_p99 = max(
            (row.get("p99_ms", 0.0) for row in case.latency.values()),
            default=0.0,
        )
        lines.append(
            f"{case.case_key:<44} {case.digest:<18} {gate:<6} "
            f"{case.throughput_qps:>8.1f} {worst_p99:>9.3f}"
        )
    return "\n".join(lines)
