"""Scenario harness: manifest-driven workload fixtures with SLO gates.

The consumption layer over the PR-9 observability substrate (ROADMAP
open item 5, in the spirit of MADlib's reproducible
library-of-workloads methodology):

* :mod:`repro.scenarios.manifest` — the declarative, seeded scenario
  matrix (:data:`SCENARIOS`) and the pinned observation digests
  (:data:`EXPECTED_DIGESTS`);
* :mod:`repro.scenarios.digest` — canonical, engine- and
  backend-independent observation digests;
* :mod:`repro.scenarios.runner` — deterministic replay through
  :class:`~repro.service.MatchService` / a
  :class:`~repro.distributed.Cluster` with tracing and metrics on;
* :mod:`repro.scenarios.report` — per-case reports, the result-file
  payload, and the mechanical baseline diff behind
  ``repro scenarios diff``.

CLI surface: ``repro scenarios list | run | diff``.
"""

from repro.scenarios.digest import canonical_observation, digest_observations
from repro.scenarios.manifest import (
    EXPECTED_DIGESTS,
    SCALES,
    SCENARIOS,
    ScenarioManifest,
    get_scenario,
    scenario_names,
)
from repro.scenarios.report import (
    SCENARIO_SCHEMA_VERSION,
    ScenarioCaseReport,
    diff_payloads,
    matrix_payload,
    render_cases,
)
from repro.scenarios.runner import ScenarioRunner, run_matrix

__all__ = [
    "EXPECTED_DIGESTS",
    "SCALES",
    "SCENARIOS",
    "SCENARIO_SCHEMA_VERSION",
    "ScenarioCaseReport",
    "ScenarioManifest",
    "ScenarioRunner",
    "canonical_observation",
    "diff_payloads",
    "digest_observations",
    "get_scenario",
    "matrix_payload",
    "render_cases",
    "run_matrix",
    "scenario_names",
]
