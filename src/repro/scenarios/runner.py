"""Deterministic scenario replay with observability enabled.

:class:`ScenarioRunner` expands a manifest's (engine, backend) matrix
and replays each case from scratch — fresh dataset from the pinned
seed, fresh :class:`~repro.service.MatchService` or
:class:`~repro.distributed.Cluster`, fresh metrics window — so every
case report is an isolated, reproducible observation:

* **Digest** — SHA-256 over the canonical result stream (see
  :mod:`repro.scenarios.digest`): results only, in submission order,
  never timings or scheduler-dependent statistics.
* **SLO rows** — p50/p99/mean per algorithm from the case's own
  metrics-registry window: a snapshot before, one after (both taken
  while the case's service/cluster is alive, so collector-backed
  counters cannot vanish mid-window), folded with
  :func:`~repro.obs.metrics.subtract_snapshots` and summarized with
  :func:`~repro.obs.report.latency_summary`.  Distributed cases window
  :meth:`~repro.distributed.Cluster.metrics_snapshot` instead, which
  merges the worker processes' shipped registries
  (:func:`~repro.obs.metrics.merge_snapshots`).
* **Bus traffic** — exact, from each report's ``query_log``, and
  cross-checked two ways: against the windowed ``bus.*`` registry
  counters and against the ``bus.log`` attribute of the
  ``distributed.run`` trace spans captured during the case.

Unavailable cells (no numpy, no process backend on the platform) come
back as *skipped* reports with the reason — never silently dropped.
"""

from __future__ import annotations

from time import perf_counter
from typing import Dict, List, Optional, Sequence, Tuple

from repro.obs.metrics import get_registry, subtract_snapshots
from repro.obs.report import latency_summary
from repro.obs.trace import collector, set_tracing
from repro.scenarios.digest import digest_observations
from repro.scenarios.manifest import (
    EXPECTED_DIGESTS,
    SCENARIOS,
    ScenarioManifest,
    get_scenario,
)
from repro.scenarios.report import ScenarioCaseReport

__all__ = ["ScenarioRunner", "run_matrix"]


class ScenarioRunner:
    """Replays scenario manifests case by case (see module docstring)."""

    def __init__(self, manifest: ScenarioManifest) -> None:
        self.manifest = manifest

    # ------------------------------------------------------------------
    # Fixtures (deterministic per manifest + scale)
    # ------------------------------------------------------------------
    def build_graph(self, scale: str):
        manifest = self.manifest
        nodes = manifest.scale_nodes(scale)
        if manifest.dataset == "amazon":
            from repro.datasets import generate_amazon

            return generate_amazon(
                nodes, num_labels=manifest.num_labels, seed=manifest.seed
            )
        if manifest.dataset == "youtube":
            from repro.datasets import generate_youtube

            return generate_youtube(
                nodes, num_labels=manifest.num_labels, seed=manifest.seed
            )
        from repro.datasets import generate_graph

        return generate_graph(
            nodes, alpha=1.2, num_labels=manifest.num_labels,
            seed=manifest.seed,
        )

    def build_patterns(self, data) -> List:
        from repro.datasets import pattern_suite_for_data

        manifest = self.manifest
        patterns = pattern_suite_for_data(
            data, manifest.pattern_sizes, seed=manifest.pattern_seed
        )
        if not patterns:
            raise RuntimeError(
                f"scenario {manifest.name!r}: no pattern could be sampled "
                f"at |V|={data.num_nodes}; enlarge the scale or reseed"
            )
        if manifest.kind != "paths":
            return patterns
        if manifest.path_kind == "bounded":
            from repro.core.bounded import BoundedPattern

            # Every edge relaxed to a 2-hop bound: direct edges still
            # match, one intermediate hop newly allowed.
            return [
                BoundedPattern(p, {edge: 2 for edge in p.edges()})
                for p in patterns
            ]
        from repro.core.regular import RegularPattern

        # ``.?`` per edge: a direct edge or one any-label intermediate,
        # consistent with the 2-hop bound.
        return [
            RegularPattern(
                p,
                {edge: ".?" for edge in p.edges()},
                {edge: 2 for edge in p.edges()},
            )
            for p in patterns
        ]

    def mutation_batches(self, data) -> List[List[Tuple]]:
        manifest = self.manifest
        if manifest.mutation_segments <= 0 or manifest.mutation_count <= 0:
            return []
        from repro.experiments.performance import random_insertion_stream

        count = manifest.mutation_count
        stream = random_insertion_stream(
            data, manifest.mutation_segments * count,
            seed=manifest.mutation_seed,
        )
        return [
            stream[i * count: (i + 1) * count]
            for i in range(manifest.mutation_segments)
        ]

    def build_stream(self, patterns: Sequence, data, engine: str) -> List:
        from repro.service import Query, skewed_stream

        manifest = self.manifest
        if manifest.kind == "paths":
            algorithms: Tuple[str, ...] = (manifest.path_kind,)
        else:
            algorithms = manifest.algorithms
        if manifest.stream == "skewed":
            return skewed_stream(
                list(patterns), data, algorithms[0], engine,
                rounds=manifest.rounds,
            )
        # Sequential rounds with the algorithm mix cycled over both the
        # round and the pattern index — the "tenancy" shape where
        # different tenants hit different notions on the same graph.
        queries = []
        for round_no in range(manifest.rounds):
            for index, pattern in enumerate(patterns):
                algorithm = algorithms[(round_no + index) % len(algorithms)]
                queries.append(Query(pattern, data, algorithm, engine))
        return queries

    # ------------------------------------------------------------------
    # Case execution
    # ------------------------------------------------------------------
    def run_case(
        self, scale: str, engine: str, backend: Optional[str] = None
    ) -> ScenarioCaseReport:
        manifest = self.manifest
        skip = self._unavailable(engine, backend)
        if skip is not None:
            return self._skipped(scale, engine, backend, skip)
        if manifest.kind == "distributed":
            return self._run_distributed_case(scale, engine, backend)
        return self._run_service_case(scale, engine)

    def _unavailable(
        self, engine: str, backend: Optional[str]
    ) -> Optional[str]:
        if engine == "numpy":
            from repro.core.kernel import NUMPY_AVAILABLE

            if not NUMPY_AVAILABLE:
                return "numpy is not installed"
        if backend == "processes":
            from repro.distributed import process_backend_available

            if not process_backend_available():
                return "the 'processes' backend is unavailable here"
        return None

    def _skipped(
        self, scale: str, engine: str, backend: Optional[str], reason: str
    ) -> ScenarioCaseReport:
        manifest = self.manifest
        return ScenarioCaseReport(
            scenario=manifest.name, scale=scale, engine=engine,
            backend=backend, digest="",
            expected_digest=EXPECTED_DIGESTS.get((manifest.name, scale)),
            queries=0, seconds=0.0, throughput_qps=0.0, skipped=reason,
        )

    def _run_service_case(
        self, scale: str, engine: str
    ) -> ScenarioCaseReport:
        from repro.service import MatchService, replay_workload

        manifest = self.manifest
        data = self.build_graph(scale)
        patterns = self.build_patterns(data)
        stream = self.build_stream(patterns, data, engine)
        batches = self.mutation_batches(data)
        segments = _split_segments(stream, len(batches) + 1)
        registry = get_registry()
        results: List = []
        with MatchService(
            max_workers=manifest.workers, cache_size=manifest.cache_size
        ) as service:
            before = registry.snapshot()
            started = perf_counter()
            for index, segment in enumerate(segments):
                # Quiesce at every segment boundary: replay_workload
                # waits for the whole segment, so mutations never race
                # in-flight queries and later segments deterministically
                # observe the post-mutation graph.
                _, segment_results = replay_workload(service, segment)
                results.extend(segment_results)
                if index < len(batches):
                    for source, target in batches[index]:
                        data.add_edge(source, target)
            elapsed = perf_counter() - started
            after = registry.snapshot()
            stats = service.stats
            cache_stats = stats.cache
        window = subtract_snapshots(after, before)
        hit_total = cache_stats.hits + cache_stats.misses
        return ScenarioCaseReport(
            scenario=manifest.name,
            scale=scale,
            engine=engine,
            backend=None,
            digest=digest_observations(results),
            expected_digest=EXPECTED_DIGESTS.get((manifest.name, scale)),
            queries=len(stream),
            seconds=elapsed,
            throughput_qps=(len(stream) / elapsed) if elapsed else 0.0,
            latency=latency_summary(window),
            cache={
                "hits": cache_stats.hits,
                "misses": cache_stats.misses,
                "hit_rate": (cache_stats.hits / hit_total)
                if hit_total else 0.0,
                "stores": cache_stats.stores,
                "invalidations": cache_stats.invalidations,
                "evictions": cache_stats.evictions,
            },
            executed={
                "queries": stats.queries,
                "computed": stats.computed,
                "replayed": stats.replayed,
                "coalesced": stats.coalesced,
            },
        )

    def _run_distributed_case(
        self, scale: str, engine: str, backend: Optional[str]
    ) -> ScenarioCaseReport:
        from repro.distributed import PARTITIONERS, Cluster
        from repro.service import MatchService

        manifest = self.manifest
        data = self.build_graph(scale)
        patterns = self.build_patterns(data)
        batches = self.mutation_batches(data)
        registry = get_registry()
        reports: List = []
        previous_tracing = set_tracing(True)
        trace_sink = collector()
        trace_sink.clear()
        try:
            assignment = PARTITIONERS[manifest.partitioner](
                data, manifest.sites
            )
            with Cluster(
                data, assignment, manifest.sites, engine=engine,
                backend=backend,
            ) as cluster:
                cluster.enable_result_store()
                before = cluster.metrics_snapshot()
                started = perf_counter()
                with MatchService(max_workers=2) as service:
                    for round_no in range(manifest.rounds):
                        for pattern in patterns:
                            # Twice per round: the second call replays
                            # from the cluster's shared result store at
                            # the same version vector.
                            reports.append(
                                service.query_distributed(pattern, cluster)
                            )
                            reports.append(
                                service.query_distributed(pattern, cluster)
                            )
                        if round_no < len(batches):
                            for source, target in batches[round_no]:
                                cluster.add_edge(source, target)
                    elapsed = perf_counter() - started
                    after = cluster.metrics_snapshot()
                    stats = service.stats
                final_vector = list(cluster.version_vector())
        finally:
            set_tracing(previous_tracing)
        trace_ok = self._trace_cross_check(
            trace_sink, reports, stats.computed
        )
        trace_sink.clear()
        window = subtract_snapshots(after, before)
        queries = len(reports)
        by_kind: Dict[str, int] = {}
        for report in reports:
            for kind, units in report.units_by_kind().items():
                by_kind[kind] = by_kind.get(kind, 0) + units
        metric_messages = window["counters"].get("bus.messages", 0)
        fresh_messages = sum(
            len(report.query_log) for report in reports
        )
        return ScenarioCaseReport(
            scenario=manifest.name,
            scale=scale,
            engine=engine,
            backend=backend,
            digest=digest_observations(reports),
            expected_digest=EXPECTED_DIGESTS.get((manifest.name, scale)),
            queries=queries,
            seconds=elapsed,
            throughput_qps=(queries / elapsed) if elapsed else 0.0,
            latency=latency_summary(window),
            cache={
                "hits": stats.replayed,
                "misses": stats.computed,
                "hit_rate": (stats.replayed / queries) if queries else 0.0,
                "stores": stats.computed,
                "invalidations": 0,
                "evictions": 0,
            },
            executed={
                "queries": stats.queries,
                "computed": stats.computed,
                "replayed": stats.replayed,
                "coalesced": stats.coalesced,
            },
            bus={
                "messages": fresh_messages,
                "units": sum(by_kind.values()),
                "by_kind": by_kind,
                "metric_messages": metric_messages,
                "final_version_vector": final_vector,
            },
            bus_log_matches_trace=trace_ok,
        )

    @staticmethod
    def _trace_cross_check(trace_sink, reports, computed: int) -> bool:
        """``bus.log`` span attributes vs the reports' ``query_log``.

        Every protocol run traced a ``distributed.run`` span carrying
        its exact charges as ``bus.log``; replayed reports ran no
        protocol and traced none.  So the captured logs must (a) number
        exactly the computed runs and (b) each equal some report's
        ``query_log``.
        """
        trace_logs = []
        for root in trace_sink.roots():
            stack = [root]
            while stack:
                span = stack.pop()
                if span.name == "distributed.run":
                    trace_logs.append(
                        tuple(tuple(entry) for entry in span.attrs["bus.log"])
                    )
                stack.extend(span.children)
        report_logs = {tuple(report.query_log) for report in reports}
        return len(trace_logs) == computed and all(
            log in report_logs for log in trace_logs
        )

    # ------------------------------------------------------------------
    def run(self, scale: str) -> List[ScenarioCaseReport]:
        """Every case of the manifest's matrix at ``scale``."""
        return [
            self.run_case(scale, engine, backend)
            for engine, backend in self.manifest.cases()
        ]


def _split_segments(stream: List, parts: int) -> List[List]:
    """``stream`` in ``parts`` near-equal contiguous chunks (no empties
    unless the stream is shorter than ``parts``)."""
    if parts <= 1:
        return [list(stream)]
    size, extra = divmod(len(stream), parts)
    segments, cursor = [], 0
    for index in range(parts):
        take = size + (1 if index < extra else 0)
        segments.append(list(stream[cursor: cursor + take]))
        cursor += take
    return segments


def run_matrix(
    names: Optional[Sequence[str]] = None, scale: str = "smoke"
) -> List[ScenarioCaseReport]:
    """Run the (named or full) scenario matrix at one scale.

    Scenarios without the requested scale are skipped per case with a
    note, so ``--scale M`` over the full registry still reports every
    cell it could not fill.
    """
    manifests = (
        [get_scenario(name) for name in names] if names else list(SCENARIOS)
    )
    cases: List[ScenarioCaseReport] = []
    for manifest in manifests:
        runner = ScenarioRunner(manifest)
        if scale not in manifest.scales:
            cases.extend(
                ScenarioCaseReport(
                    scenario=manifest.name, scale=scale, engine=engine,
                    backend=backend, digest="", expected_digest=None,
                    queries=0, seconds=0.0, throughput_qps=0.0,
                    skipped=f"scenario has no {scale!r} scale",
                )
                for engine, backend in manifest.cases()
            )
            continue
        cases.extend(runner.run(scale))
    return cases
