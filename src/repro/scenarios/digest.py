"""Canonical observation digests for scenario cases.

A scenario case's *observation digest* is a SHA-256 over the canonical
JSON form of every query result the case produced, in submission order.
Two runs of the same manifest — on any engine, any backend, any thread
schedule — must produce the same digest, which is what makes a digest
mismatch a first-class correctness failure rather than flake:

* Canonicalization never depends on ``repr`` of sets or on dict/set
  iteration order (``PYTHONHASHSEED`` moves those), only on sorted
  canonical JSON fragments.
* Only *results* enter the digest — never timings, cache statistics or
  anything else the thread scheduler can reorder.
* The engines' output-identity contract (the differential suites'
  invariant) makes the digest engine-independent; the distributed
  protocol's byte-identical observation contract makes it
  backend-independent.
"""

from __future__ import annotations

import hashlib
import json
from typing import Any, Iterable

__all__ = ["canonical_observation", "digest_observations"]


def _dump(value: Any) -> str:
    return json.dumps(value, sort_keys=True, separators=(",", ":"))


def _node(value: Any) -> Any:
    """A JSON-able stand-in for a node id or label.

    Generated graphs use int ids and string labels; anything else
    (tests with tuple ids, say) falls back to ``repr`` — stable for the
    scalar-ish ids the repo uses, and never applied to sets.
    """
    if value is None or isinstance(value, (bool, int, float, str)):
        return value
    return repr(value)


def _relation_entries(relation) -> list:
    entries = [
        [_node(u), sorted((_node(v) for v in relation.matches_of_raw(u)),
                          key=_dump)]
        for u in relation.pattern_nodes()
    ]
    entries.sort(key=_dump)
    return entries


def _subgraph_entry(subgraph) -> dict:
    # NB: the recorded ``center`` is deliberately absent — only the
    # *first discovering* center is kept and center enumeration order is
    # an engine implementation detail (tests/engines.py excludes it from
    # the output-identity contract); the subgraph itself is
    # center-independent.
    graph = subgraph.graph
    return {
        "nodes": sorted(
            ([_node(n), _node(graph.label(n))] for n in graph.nodes()),
            key=_dump,
        ),
        "edges": sorted(
            ([_node(s), _node(t)] for s, t in graph.edges()), key=_dump
        ),
        "relation": _relation_entries(subgraph.relation),
    }


def canonical_observation(value: Any) -> Any:
    """``value`` as canonical JSON-able data (see module docstring).

    Understands the library's observation types — ``MatchRelation``
    (duck-typed via ``pattern_nodes``), ``MatchResult`` /
    ``PerfectSubgraph`` containers (via iteration), and
    ``DistributedRunReport`` (result + per-site counts + version vector
    + exact per-query bus log) — plus plain containers and scalars.
    """
    if hasattr(value, "query_log") and hasattr(value, "per_site_subgraphs"):
        # DistributedRunReport: the full protocol observation.
        return {
            "kind": "distributed",
            "result": canonical_observation(value.result),
            "per_site": sorted(
                ([int(site), int(count)]
                 for site, count in value.per_site_subgraphs.items()),
            ),
            "version_vector": [int(v) for v in value.version_vector],
            # The *multiset* of bus charges is backend-identical; the
            # interleaving is not (concurrent sites on the ``threads``
            # backend charge their fetches in thread-schedule order) —
            # so the canonical form sorts the log.  Exact accounting
            # (every sender/receiver/kind/units charge) is retained.
            "bus_log": sorted(
                ([int(s), int(r), k, int(u)]
                 for s, r, k, u in value.query_log),
            ),
        }
    if hasattr(value, "pattern_nodes") and hasattr(value, "matches_of_raw"):
        # MatchRelation (dual / sim / bounded observations).
        return {"kind": "relation", "pairs": _relation_entries(value)}
    if hasattr(value, "pattern") and hasattr(value, "add"):
        # MatchResult: sort the subgraph entries canonically — site
        # union order is deterministic anyway, but the digest should
        # not depend on it.
        entries = [_subgraph_entry(sg) for sg in value]
        entries.sort(key=_dump)
        return {"kind": "result", "subgraphs": entries}
    if isinstance(value, dict):
        return {
            str(k): canonical_observation(v)
            for k, v in sorted(value.items(), key=lambda kv: str(kv[0]))
        }
    if isinstance(value, (list, tuple)):
        return [canonical_observation(v) for v in value]
    if isinstance(value, (set, frozenset)):
        return sorted((canonical_observation(v) for v in value), key=_dump)
    return _node(value)


def digest_observations(observations: Iterable[Any]) -> str:
    """The case digest: SHA-256 over the canonical observation stream.

    ``observations`` is consumed in order — submission order is part of
    the observation (the scenario replays a *stream*, and a mutation
    segment boundary changes what later queries should see).
    """
    hasher = hashlib.sha256()
    for observation in observations:
        hasher.update(_dump(canonical_observation(observation)).encode())
        hasher.update(b"\x00")
    return hasher.hexdigest()[:16]
