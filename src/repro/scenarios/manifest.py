"""Declarative scenario manifests: the seeded workload matrix.

A :class:`ScenarioManifest` pins everything a run needs to be
reproducible — generator seed and dataset kind, pattern sample seeds,
the query/mutation stream shape, the engine/backend matrix and the
scale table — so ``repro scenarios run`` is a pure function of the
manifest.  The committed :data:`EXPECTED_DIGESTS` table pins the
observation digest per (scenario, scale); engines and backends are
deliberately *not* part of the key, because the engines'
output-identity contract makes the digest engine- and
backend-independent — a digest that differs across engines is a
correctness bug, which is exactly what the gate is for.

Scales: ``smoke`` runs in seconds (the digest-gated CI matrix), ``S``
is the committed-baseline scale, ``M`` the perf-trend scale.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Mapping, Optional, Tuple

__all__ = [
    "EXPECTED_DIGESTS",
    "SCALES",
    "SCENARIOS",
    "ScenarioManifest",
    "get_scenario",
    "scenario_names",
]

#: Recognized scale names, smallest first.
SCALES = ("smoke", "S", "M")


@dataclass(frozen=True)
class ScenarioManifest:
    """One declarative scenario (see the module docstring).

    ``kind`` picks the replay path: ``"service"`` streams
    :class:`~repro.service.Query` batches through a fresh
    :class:`~repro.service.MatchService`, ``"distributed"`` runs
    synchronous ``query_distributed`` calls against a fresh 4-site
    :class:`~repro.distributed.Cluster` per backend, ``"paths"``
    streams bounded/regular path queries through the service's
    uncached path algorithms.
    """

    name: str
    title: str
    kind: str = "service"  # "service" | "distributed" | "paths"
    dataset: str = "synthetic"  # "synthetic" | "amazon" | "youtube"
    scales: Mapping[str, int] = field(
        default_factory=lambda: {"smoke": 240, "S": 600, "M": 2500}
    )
    seed: int = 17
    num_labels: int = 20
    engines: Tuple[str, ...] = ("python", "kernel", "numpy")
    algorithms: Tuple[str, ...] = ("match-plus",)
    pattern_sizes: Tuple[int, ...] = (4, 6)
    pattern_seed: int = 301
    stream: str = "sequential"  # "sequential" | "skewed"
    rounds: int = 2
    #: Mutation batches interleaved between query segments (service
    #: kind) or between query rounds (distributed kind); 0 = read-only.
    mutation_segments: int = 0
    mutation_count: int = 0
    mutation_seed: int = 5
    #: Distributed-kind knobs.
    backends: Tuple[str, ...] = ()
    sites: int = 4
    partitioner: str = "bfs"
    #: Paths-kind knob: "bounded" | "regular".
    path_kind: Optional[str] = None
    workers: int = 4
    cache_size: int = 256

    def cases(self) -> Tuple[Tuple[str, Optional[str]], ...]:
        """The (engine, backend) matrix this scenario expands into."""
        if self.kind == "distributed":
            return tuple(
                (engine, backend)
                for engine in self.engines
                for backend in self.backends
            )
        return tuple((engine, None) for engine in self.engines)

    def scale_nodes(self, scale: str) -> int:
        if scale not in self.scales:
            raise KeyError(
                f"scenario {self.name!r} has no {scale!r} scale; "
                f"available: {tuple(self.scales)}"
            )
        return self.scales[scale]


#: The seeded matrix.  Every scenario carries a smoke scale (the
#: digest-gated CI set); heavier scales exist where the ISSUE's matrix
#: calls for them.
SCENARIOS: Tuple[ScenarioManifest, ...] = (
    ScenarioManifest(
        name="match-single",
        title="single-engine strong simulation (match) at S/M",
        algorithms=("match",),
        seed=17,
        pattern_seed=311,
    ),
    ScenarioManifest(
        name="match-plus-single",
        title="single-engine minimized strong simulation (match+) at S/M",
        algorithms=("match-plus",),
        seed=19,
        pattern_seed=313,
    ),
    ScenarioManifest(
        name="tenancy-mixed",
        title="mixed read/write tenancy: algorithm mix + interleaved edge "
              "insertions",
        algorithms=("match", "match-plus", "dual", "sim"),
        scales={"smoke": 220, "S": 600},
        seed=23,
        pattern_seed=317,
        rounds=2,
        mutation_segments=2,
        mutation_count=6,
        mutation_seed=7,
    ),
    ScenarioManifest(
        name="hot-key-skew",
        title="hot-key query skew: repetition-skewed stream through the "
              "result cache",
        algorithms=("match-plus",),
        scales={"smoke": 220, "S": 600},
        seed=29,
        pattern_seed=331,
        stream="skewed",
        rounds=3,
        pattern_sizes=(4, 5, 6),
    ),
    ScenarioManifest(
        name="distributed-4site",
        title="4-site distributed protocol per backend, with mid-stream "
              "updates",
        kind="distributed",
        engines=("kernel",),
        backends=("inproc", "threads", "processes"),
        scales={"smoke": 200, "S": 600},
        seed=31,
        pattern_seed=337,
        rounds=2,
        mutation_segments=1,
        mutation_count=2,
        mutation_seed=9,
        sites=4,
        pattern_sizes=(4, 5),
    ),
    ScenarioManifest(
        name="paths-bounded",
        title="bounded path matching (hop bounds) on python/kernel",
        kind="paths",
        path_kind="bounded",
        engines=("python", "kernel"),
        scales={"smoke": 220, "S": 600},
        seed=37,
        pattern_seed=347,
        pattern_sizes=(3, 4),
    ),
    ScenarioManifest(
        name="paths-regular",
        title="regular path matching (regex edge constraints) on "
              "python/kernel",
        kind="paths",
        path_kind="regular",
        engines=("python", "kernel"),
        scales={"smoke": 220, "S": 600},
        seed=41,
        pattern_seed=349,
        pattern_sizes=(3, 4),
    ),
)

_BY_NAME: Dict[str, ScenarioManifest] = {m.name: m for m in SCENARIOS}


def scenario_names() -> Tuple[str, ...]:
    return tuple(_BY_NAME)


def get_scenario(name: str) -> ScenarioManifest:
    try:
        return _BY_NAME[name]
    except KeyError:
        raise KeyError(
            f"unknown scenario {name!r}; known: {', '.join(_BY_NAME)}"
        ) from None


#: Pinned observation digests per (scenario, scale) — filled by running
#: the matrix and committing what it prints (``repro scenarios run``
#: prints the digest per case).  A missing key means "record, don't
#: gate" (used while a new scenario or scale stabilizes); present keys
#: are enforced by ``repro scenarios run`` and the CI smoke gate.
EXPECTED_DIGESTS: Dict[Tuple[str, str], str] = {
    ("match-single", "smoke"): "bf84c07dbb6ca087",
    ("match-single", "S"): "76295dabf76d258f",
    ("match-single", "M"): "acfacdec5919857b",
    ("match-plus-single", "smoke"): "0431f9109527ba27",
    ("match-plus-single", "S"): "e4366869402773f6",
    ("match-plus-single", "M"): "b6d6f82f11fcb47f",
    ("tenancy-mixed", "smoke"): "b7bdda56dfb607ad",
    ("tenancy-mixed", "S"): "9af2c4c0d86e6e0a",
    ("hot-key-skew", "smoke"): "e6f809c7e1aa8aeb",
    ("hot-key-skew", "S"): "d39a35bbbfb747e3",
    ("distributed-4site", "smoke"): "f8b10880d67e8940",
    ("distributed-4site", "S"): "00c45c9b4d1dea82",
    ("paths-bounded", "smoke"): "b9388d1b10f70ccf",
    ("paths-bounded", "S"): "f5d9e310075c677f",
    ("paths-regular", "smoke"): "202a916d42b17ebd",
    ("paths-regular", "S"): "cdb8d93de1a75836",
}
