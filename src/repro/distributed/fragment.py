"""Fragments — one site's shard of a partitioned data graph.

A fragment holds its nodes with labels, every edge incident to an owned
node (including *cut edges* whose other endpoint is remote), and the
identity of each remote neighbor's owning site.  This is exactly the
information a real sharded graph store gives a site, and all that the
distributed algorithm of Section 4.3 assumes.
"""

from __future__ import annotations

from typing import Dict, FrozenSet, List, Set

from repro.core.digraph import DiGraph, Label, Node
from repro.exceptions import DistributedError

Assignment = Dict[Node, int]


class Fragment:
    """The shard of one site.

    Attributes
    ----------
    site_id:
        The owning site's index.
    labels:
        ``node -> label`` for owned nodes.
    succ / pred:
        Adjacency of owned nodes over the *full* graph — targets/sources
        may be remote.
    remote_owner:
        ``remote_node -> site`` for every remote node adjacent to an owned
        node (the "which site do I ask" routing table).
    """

    __slots__ = ("site_id", "labels", "succ", "pred", "remote_owner")

    def __init__(self, site_id: int) -> None:
        self.site_id = site_id
        self.labels: Dict[Node, Label] = {}
        self.succ: Dict[Node, Set[Node]] = {}
        self.pred: Dict[Node, Set[Node]] = {}
        self.remote_owner: Dict[Node, int] = {}

    def owns(self, node: Node) -> bool:
        """True iff this fragment owns ``node``."""
        return node in self.labels

    @property
    def num_nodes(self) -> int:
        """Number of owned nodes."""
        return len(self.labels)

    @property
    def num_edges(self) -> int:
        """Number of edges whose *source* is owned (each edge counted once
        across the cluster when summed over sites with this convention,
        plus cut edges whose target is owned)."""
        return sum(len(targets) for targets in self.succ.values())

    def border_nodes(self) -> FrozenSet[Node]:
        """Owned nodes adjacent to at least one remote node.

        These are the nodes whose balls can cross fragments — the traffic
        bound of Section 4.3 is phrased over exactly these balls.
        """
        border: Set[Node] = set()
        for node in self.labels:
            if any(t not in self.labels for t in self.succ[node]) or any(
                s not in self.labels for s in self.pred[node]
            ):
                border.add(node)
        return frozenset(border)

    def __repr__(self) -> str:
        return (
            f"Fragment(site={self.site_id}, |V|={self.num_nodes}, "
            f"border={len(self.border_nodes())})"
        )


def fragment_graph(
    graph: DiGraph,
    assignment: Assignment,
    num_sites: int,
) -> List[Fragment]:
    """Split ``graph`` into per-site fragments according to ``assignment``.

    Every graph node must be assigned to a site in ``[0, num_sites)``.
    """
    fragments = [Fragment(site) for site in range(num_sites)]
    for node in graph.nodes():
        site = assignment.get(node)
        if site is None or not 0 <= site < num_sites:
            raise DistributedError(
                f"node {node!r} has invalid site assignment {site!r}"
            )
        fragment = fragments[site]
        fragment.labels[node] = graph.label(node)
        fragment.succ[node] = set(graph.successors_raw(node))
        fragment.pred[node] = set(graph.predecessors_raw(node))
    for fragment in fragments:
        for node in fragment.labels:
            for neighbor in fragment.succ[node] | fragment.pred[node]:
                if neighbor not in fragment.labels:
                    fragment.remote_owner[neighbor] = assignment[neighbor]
    return fragments
